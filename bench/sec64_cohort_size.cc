/**
 * @file
 * Section 6.4 "Cohort Size sensitivity": sweep cohort sizes 256-8192 on
 * Titan B. The paper found 4096 the right balance: larger cohorts launch
 * more work per kernel (throughput up) but grow memory linearly and add
 * formation latency; smaller cohorts underfill the machine.
 */

#include <iostream>

#include "bench/common.hh"
#include "platform/titan.hh"
#include "rhythm/banking_service.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("sec64_cohort_size", argc, argv);
    bench::banner("Section 6.4: cohort size sensitivity",
                  "Section 6.4 (4096 balances throughput vs memory)");

    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.recordConfig(report);
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    overlap.recordConfig(report);

    TableWriter table({"cohort size", "KReqs/s", "avg latency ms",
                       "device util", "pool memory MiB"});
    const uint32_t sizes[] = {256, 512, 1024, 2048, 4096, 8192};
    for (uint32_t size : sizes) {
        platform::TitanVariant b = platform::titanB();
        b.server.cohortSize = size;
        platform::IsolatedRunOptions opts;
        opts.cohorts = std::max<uint32_t>(6, 32768 / size);
        opts.users = 2000;
        opts.laneSample = std::min<uint32_t>(size, 128);
        faults.apply(opts);
        overlap.apply(opts);

        platform::TypeRunResult r = platform::runIsolatedType(
            b, specweb::RequestType::AccountSummary, opts);

        // Pool memory from the server's own accounting.
        des::EventQueue queue;
        simt::Device device(queue, b.device);
        backend::BankDb db(10, 1);
        core::BankingService service(db);
        core::RhythmServer server(queue, device, service, b.server);
        const double pool_mib =
            static_cast<double>(server.memoryFootprintBytes() -
                                server.sessions().footprintBytes()) /
            (1 << 20);

        table.addRow({std::to_string(size),
                      bench::fmt(r.throughput / 1e3, 0),
                      bench::fmt(r.avgLatencyMs, 2),
                      bench::fmt(r.deviceUtilization, 2),
                      bench::fmt(pool_mib, 0)});
        const std::string key = "cohort_" + std::to_string(size);
        report.metric(key + ".throughput", r.throughput);
        report.metric(key + ".avg_latency_ms", r.avgLatencyMs);
    }
    table.printAscii(std::cout);
    std::cout << "Expected shape (paper): throughput rises with cohort "
                 "size and saturates by 4096;\nmemory grows linearly; "
                 "latency grows with formation+execution time. 4096 is "
                 "the\nbalance point on a 6 GB device.\n";
    if (!report.write())
        return 1;
    return 0;
}
