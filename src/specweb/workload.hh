/**
 * @file
 * SPECWeb Banking workload generation and response validation.
 *
 * The paper's methodology (Section 5.3.1): requests are generated
 * synthetically with random session identifiers against a pre-populated
 * session array, each type is also testable in isolation, and responses
 * are validated against the SPECWeb client validator. This module is our
 * equivalent of that harness.
 */

#ifndef RHYTHM_SPECWEB_WORKLOAD_HH
#define RHYTHM_SPECWEB_WORKLOAD_HH

#include <string>

#include "backend/bankdb.hh"
#include "specweb/types.hh"
#include "util/rng.hh"

namespace rhythm::specweb {

/** A generated client request. */
struct GeneratedRequest
{
    RequestType type = RequestType::Login;
    /** Complete raw HTTP request message. */
    std::string raw;
    /** The user the request acts as. */
    uint64_t userId = 0;
    /** The session cookie carried (0 for login). */
    uint64_t sessionId = 0;
};

/**
 * Generates Table 2-distributed Banking requests.
 *
 * The generator owns the request-mix sampling and per-type parameter
 * synthesis (valid user ids, check transaction ids, transfer amounts
 * small enough not to drain accounts over long runs). Session ids are
 * supplied by the caller, which either pre-populates the server's
 * session store (open-loop isolation runs) or feeds back ids extracted
 * from login responses (closed-loop runs).
 */
class WorkloadGenerator
{
  public:
    /**
     * @param db The populated database (used to pick valid parameters).
     * @param seed Deterministic seed for sampling.
     */
    WorkloadGenerator(const backend::BankDb &db, uint64_t seed);

    /** Samples a request type according to the Table 2 mix. */
    RequestType sampleType();

    /** Samples a uniform user id. */
    uint64_t sampleUser();

    /**
     * Builds a raw request of the given type.
     * @param type Request type.
     * @param user_id Acting user (must be valid in the database).
     * @param session_id Session cookie value (ignored for login).
     */
    GeneratedRequest generate(RequestType type, uint64_t user_id,
                              uint64_t session_id);

    /** Convenience: sampleType + sampleUser + generate. */
    GeneratedRequest next(uint64_t session_id);

  private:
    const backend::BankDb &db_;
    Rng rng_;
    double cumulative_[kNumRequestTypes];
    std::vector<uint64_t> checkTxIds_;
};

/** Outcome of validating one response. */
struct ValidationResult
{
    bool ok = false;
    std::string reason;
};

/**
 * Validates a complete HTTP response for a request type: status line,
 * Content-Length consistency (including the whitespace-padded value the
 * device writer produces), page marker and type-specific content.
 */
ValidationResult validateResponse(RequestType type, std::string_view raw);

/**
 * Extracts the session id from a login response's Set-Cookie header.
 * @return Session id, or 0 when absent.
 */
uint64_t extractSessionId(std::string_view response);

} // namespace rhythm::specweb

#endif // RHYTHM_SPECWEB_WORKLOAD_HH
