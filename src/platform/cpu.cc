#include "platform/cpu.hh"

#include <cmath>

#include "util/logging.hh"

namespace rhythm::platform {

CpuResult
evaluateCpu(const CpuPlatform &platform, double insts_per_request)
{
    RHYTHM_ASSERT(insts_per_request > 0.0);
    CpuResult result;
    result.name = platform.name;
    result.throughput =
        platform.instructionsPerSecond() / insts_per_request;
    // Latency: the service time of one request on one worker (the CPU
    // baselines process each request straight through, paper Table 3).
    result.latencyMs = insts_per_request /
                       (platform.effectiveIpc * platform.clockGhz * 1e9) *
                       1e3;
    result.idleWatts = platform.idleWatts;
    result.wallWatts = platform.wallWatts;
    result.dynamicWatts = platform.dynamicWatts();
    result.reqsPerJouleWall = result.throughput / platform.wallWatts;
    result.reqsPerJouleDynamic =
        result.throughput / platform.dynamicWatts();
    return result;
}

std::vector<CpuPlatform>
standardCpuPlatforms()
{
    // Power columns are the paper's Table 3 measurements. Effective IPC
    // values are fitted so the paper's mix-weighted Table 2 instruction
    // count (~332K insts/request) reproduces the paper's measured
    // throughput on each row.
    std::vector<CpuPlatform> platforms;
    platforms.push_back(
        CpuPlatform{"Core i5 1 worker", 3.4, 1, 7.33, 1.00, 47, 67});
    platforms.push_back(
        CpuPlatform{"Core i5 4 workers", 3.4, 4, 7.33, 0.94, 47, 98});
    platforms.push_back(
        CpuPlatform{"Core i7 4 workers", 3.4, 4, 8.08, 1.00, 45, 147});
    platforms.push_back(
        CpuPlatform{"Core i7 8 workers", 3.4, 8, 8.08, 0.57, 45, 156});
    platforms.push_back(
        CpuPlatform{"ARM A9 1 worker", 1.2, 1, 2.21, 1.00, 2, 3.4});
    platforms.push_back(
        CpuPlatform{"ARM A9 2 workers", 1.2, 2, 2.21, 1.00, 2, 4.5});
    return platforms;
}

CpuPlatform
armA9OneWorker()
{
    return CpuPlatform{"ARM A9 core", 1.2, 1, 2.21, 1.00, 2, 3.4};
}

CpuPlatform
corei5OneWorker()
{
    return CpuPlatform{"Core i5 core", 3.4, 1, 7.33, 1.00, 47, 67};
}

ScalingResult
scaleToMatch(const std::string &core_name, double target_throughput,
             double core_throughput, double per_core_watts,
             double titan_dynamic_watts)
{
    RHYTHM_ASSERT(core_throughput > 0.0 && per_core_watts > 0.0);
    ScalingResult result;
    result.coreName = core_name;
    result.coresNeeded = std::ceil(target_throughput / core_throughput);
    result.scaledPowerWatts = result.coresNeeded * per_core_watts;
    result.titanPowerWatts = titan_dynamic_watts;
    result.headroomWatts = titan_dynamic_watts - result.scaledPowerWatts;
    result.headroomPercent =
        titan_dynamic_watts > 0.0
            ? result.headroomWatts / titan_dynamic_watts * 100.0
            : 0.0;
    return result;
}

} // namespace rhythm::platform
