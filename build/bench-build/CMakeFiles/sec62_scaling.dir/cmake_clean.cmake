file(REMOVE_RECURSE
  "../bench/sec62_scaling"
  "../bench/sec62_scaling.pdb"
  "CMakeFiles/sec62_scaling.dir/sec62_scaling.cc.o"
  "CMakeFiles/sec62_scaling.dir/sec62_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
