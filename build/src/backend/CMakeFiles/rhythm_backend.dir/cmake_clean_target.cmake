file(REMOVE_RECURSE
  "librhythm_backend.a"
)
