/**
 * @file
 * Unit and property tests for the warp lockstep simulator and coalescer.
 */

#include <gtest/gtest.h>

#include <vector>

#include "simt/kernel.hh"
#include "simt/warp.hh"
#include "util/rng.hh"

namespace rhythm::simt {
namespace {

/// Builds a trace from (blockId, instructions) pairs.
ThreadTrace
makeTrace(std::initializer_list<std::pair<uint32_t, uint32_t>> blocks)
{
    ThreadTrace t;
    RecordingTracer rec(t);
    for (auto [id, insts] : blocks)
        rec.block(id, insts);
    return t;
}

std::vector<const ThreadTrace *>
ptrs(const std::vector<ThreadTrace> &traces)
{
    std::vector<const ThreadTrace *> p;
    for (const auto &t : traces)
        p.push_back(&t);
    return p;
}

TEST(Coalescer, SingleLaneSingleSegment)
{
    std::vector<uint64_t> addrs = {0};
    EXPECT_EQ(coalesceTransactions(addrs, 4, 128), 1u);
}

TEST(Coalescer, FullWarpContiguousIsOneTransaction)
{
    std::vector<uint64_t> addrs;
    for (int l = 0; l < 32; ++l)
        addrs.push_back(l * 4);
    EXPECT_EQ(coalesceTransactions(addrs, 4, 128), 1u);
}

TEST(Coalescer, StridedLanesAreSeparateTransactions)
{
    // 4 KiB apart: the row-major buffer layout before transpose.
    std::vector<uint64_t> addrs;
    for (int l = 0; l < 32; ++l)
        addrs.push_back(static_cast<uint64_t>(l) * 4096);
    EXPECT_EQ(coalesceTransactions(addrs, 4, 128), 32u);
}

TEST(Coalescer, StraddlingAccessCountsBothSegments)
{
    std::vector<uint64_t> addrs = {126};
    EXPECT_EQ(coalesceTransactions(addrs, 4, 128), 2u);
}

TEST(Coalescer, DuplicateAddressesMerge)
{
    std::vector<uint64_t> addrs = {0, 0, 0, 64, 64};
    EXPECT_EQ(coalesceTransactions(addrs, 4, 128), 1u);
}

TEST(Warp, IdenticalTracesExecuteOnce)
{
    std::vector<ThreadTrace> traces;
    for (int i = 0; i < 32; ++i)
        traces.push_back(makeTrace({{1, 100}, {2, 50}, {3, 25}}));
    auto p = ptrs(traces);
    WarpStats ws = simulateWarp(p);
    EXPECT_EQ(ws.issueSlots, 175u);           // fetched once
    EXPECT_EQ(ws.laneInstructions, 32u * 175); // all lanes did the work
    EXPECT_EQ(ws.steps, 3u);
    EXPECT_DOUBLE_EQ(ws.simdEfficiency(32), 1.0);
}

TEST(Warp, FullyDivergentTracesSerialize)
{
    std::vector<ThreadTrace> traces;
    for (uint32_t i = 0; i < 8; ++i)
        traces.push_back(makeTrace({{100 + i, 10}}));
    auto p = ptrs(traces);
    WarpStats ws = simulateWarp(p);
    EXPECT_EQ(ws.issueSlots, 80u); // each block fetched separately
    EXPECT_EQ(ws.laneInstructions, 80u);
    EXPECT_EQ(ws.steps, 8u);
    EXPECT_NEAR(ws.simdEfficiency(32), 1.0 / 32.0, 1e-12);
}

TEST(Warp, IfElseDivergenceReconverges)
{
    // Half the warp takes block 2, half takes block 3; all share 1 and 4.
    std::vector<ThreadTrace> traces;
    for (int i = 0; i < 32; ++i) {
        if (i % 2 == 0)
            traces.push_back(makeTrace({{1, 10}, {2, 20}, {4, 10}}));
        else
            traces.push_back(makeTrace({{1, 10}, {3, 20}, {4, 10}}));
    }
    auto p = ptrs(traces);
    WarpStats ws = simulateWarp(p);
    // Blocks: 1 (once), 2 and 3 (serialized), 4 (once) = 10+20+20+10.
    EXPECT_EQ(ws.issueSlots, 60u);
    EXPECT_EQ(ws.steps, 4u);
    EXPECT_EQ(ws.laneInstructions, 32u * 40);
}

TEST(Warp, DifferentTripWeightsPredicate)
{
    // Same block id, different dynamic weights (e.g. different string
    // lengths): the group runs for max(weight) slots.
    std::vector<ThreadTrace> traces;
    traces.push_back(makeTrace({{1, 10}}));
    traces.push_back(makeTrace({{1, 30}}));
    auto p = ptrs(traces);
    WarpStats ws = simulateWarp(p);
    EXPECT_EQ(ws.issueSlots, 30u);
    EXPECT_EQ(ws.laneInstructions, 40u);
    EXPECT_EQ(ws.steps, 1u);
}

TEST(Warp, LoopTripCountDivergence)
{
    // Lane A loops 3 times over block 5, lane B twice; they re-merge.
    std::vector<ThreadTrace> traces;
    traces.push_back(makeTrace({{4, 1}, {5, 10}, {5, 10}, {5, 10}, {6, 1}}));
    traces.push_back(makeTrace({{4, 1}, {5, 10}, {5, 10}, {6, 1}}));
    auto p = ptrs(traces);
    WarpStats ws = simulateWarp(p);
    // 4 together, 5 ×2 together, 5 ×1 lane A alone, 6 together.
    EXPECT_EQ(ws.issueSlots, 1u + 30u + 1u);
    EXPECT_EQ(ws.steps, 5u);
}

TEST(Warp, NullLanesIgnored)
{
    ThreadTrace t = makeTrace({{1, 10}});
    std::vector<const ThreadTrace *> p = {&t, nullptr, &t, nullptr};
    WarpStats ws = simulateWarp(p);
    EXPECT_EQ(ws.issueSlots, 10u);
    EXPECT_EQ(ws.laneInstructions, 20u);
}

TEST(Warp, EmptyWarp)
{
    std::vector<const ThreadTrace *> p;
    WarpStats ws = simulateWarp(p);
    EXPECT_EQ(ws.issueSlots, 0u);
    EXPECT_EQ(ws.simdEfficiency(32), 0.0);
}

TEST(Warp, AllNullLaneWarp)
{
    // A fully padded tail warp (every lane idle) must cost nothing —
    // the shape the fusion packer eliminates.
    std::vector<const ThreadTrace *> p(32, nullptr);
    WarpStats ws = simulateWarp(p);
    EXPECT_EQ(ws, WarpStats{});
    EXPECT_EQ(ws.simdEfficiency(32), 0.0);
}

TEST(Warp, SingleActiveLaneAmongNulls)
{
    ThreadTrace t = makeTrace({{1, 10}, {2, 20}});
    std::vector<const ThreadTrace *> p(32, nullptr);
    p[17] = &t;
    WarpStats ws = simulateWarp(p);
    EXPECT_EQ(ws.issueSlots, 30u);
    EXPECT_EQ(ws.laneInstructions, 30u);
    EXPECT_EQ(ws.steps, 2u);
    EXPECT_EQ(ws.activeLaneSteps, 2u);
    EXPECT_NEAR(ws.simdEfficiency(32), 1.0 / 32.0, 1e-12);
}

TEST(Warp, InterleavedNullLanesMatchCompactWarp)
{
    // Null lanes are pure padding: the schedule (and all memory
    // traffic) must be identical whether the active lanes are packed
    // contiguously or interleaved with idle slots.
    std::vector<ThreadTrace> traces;
    traces.push_back(makeTrace({{1, 10}, {2, 20}, {4, 10}}));
    traces.push_back(makeTrace({{1, 10}, {3, 20}, {4, 10}}));
    traces.push_back(makeTrace({{1, 10}, {2, 20}, {4, 10}}));
    std::vector<const ThreadTrace *> interleaved = {
        nullptr, &traces[0], nullptr, nullptr,
        &traces[1], nullptr, &traces[2], nullptr};
    std::vector<const ThreadTrace *> compact = {&traces[0], &traces[1],
                                                &traces[2]};
    EXPECT_EQ(simulateWarp(interleaved), simulateWarp(compact));
}

TEST(Warp, SharedBlockWithinWindowReconverges)
{
    // Mixed-type lane groups: two "type A" lanes reach merge block 9
    // immediately, two "type B" lanes detour through a short private
    // region first. The merge block is within the reconvergence window
    // of the B lanes, so A waits and block 9 issues once for all four.
    std::vector<ThreadTrace> traces;
    for (int i = 0; i < 2; ++i)
        traces.push_back(makeTrace({{7, 10}, {9, 50}}));
    for (int i = 0; i < 2; ++i) {
        ThreadTrace t;
        RecordingTracer rec(t);
        rec.block(7, 10);
        for (uint32_t f = 0; f < 8; ++f)
            rec.block(100 + f, 1);
        rec.block(9, 50);
        traces.push_back(std::move(t));
    }
    auto p = ptrs(traces);
    WarpStats ws = simulateWarp(p);
    // Block 7 together (10), 8 filler blocks (8), block 9 together (50).
    EXPECT_EQ(ws.issueSlots, 68u);
    EXPECT_EQ(ws.steps, 10u);
    // 4 lanes at 7, 2 per filler, 4 at 9.
    EXPECT_EQ(ws.activeLaneSteps, 4u + 8u * 2 + 4u);
}

TEST(Warp, SharedBlockBeyondWindowStaysDivergent)
{
    // Same shape, but the detour is longer than the reconvergence
    // window (512 trace entries): the scheduler no longer sees block 9
    // as a future merge point, so the type-A lanes run it alone and the
    // type-B lanes re-issue it later. This is the divergence cliff the
    // fusion similarity threshold guards against.
    const WarpModel model; // reconvergenceWindow = 512
    constexpr uint32_t kFiller = 600;
    std::vector<ThreadTrace> traces;
    for (int i = 0; i < 2; ++i)
        traces.push_back(makeTrace({{7, 10}, {9, 50}}));
    for (int i = 0; i < 2; ++i) {
        ThreadTrace t;
        RecordingTracer rec(t);
        rec.block(7, 10);
        for (uint32_t f = 0; f < kFiller; ++f)
            rec.block(100 + f, 1);
        rec.block(9, 50);
        traces.push_back(std::move(t));
    }
    auto p = ptrs(traces);
    WarpStats ws = simulateWarp(p, model);
    // Block 7 together, fillers, then block 9 twice (A group, B group).
    EXPECT_EQ(ws.issueSlots, 10u + kFiller + 50u + 50u);
    EXPECT_EQ(ws.steps, 1u + kFiller + 2u);

    // Shrinking the window further must not resurrect the merge.
    WarpModel narrow = model;
    narrow.reconvergenceWindow = 4;
    WarpStats nw = simulateWarp(p, narrow);
    EXPECT_EQ(nw.issueSlots, ws.issueSlots);
}

/// Asserts mergeBlockSchedule() reproduces simulateWarp()'s scheduler
/// fields bit-for-bit while leaving every memory counter at zero.
void
expectScheduleMatches(std::span<const ThreadTrace *const> lanes,
                      const WarpModel &model = WarpModel{})
{
    const WarpStats full = simulateWarp(lanes, model);
    const WarpStats sched = mergeBlockSchedule(lanes, model);
    EXPECT_EQ(sched.issueSlots, full.issueSlots);
    EXPECT_EQ(sched.laneInstructions, full.laneInstructions);
    EXPECT_EQ(sched.steps, full.steps);
    EXPECT_EQ(sched.laneBlockExecs, full.laneBlockExecs);
    EXPECT_EQ(sched.activeLaneSteps, full.activeLaneSteps);
    EXPECT_EQ(sched.globalTransactions, 0u);
    EXPECT_EQ(sched.globalBytes, 0u);
    EXPECT_EQ(sched.sharedAccesses, 0u);
    EXPECT_EQ(sched.sharedReplaySlots, 0u);
    EXPECT_EQ(sched.constantAccesses, 0u);
}

TEST(Warp, MergeBlockScheduleMatchesSimulateWarp)
{
    // Control-flow-only traces: divergence, loops, nulls.
    {
        std::vector<ThreadTrace> traces;
        for (int i = 0; i < 32; ++i) {
            if (i % 2 == 0)
                traces.push_back(makeTrace({{1, 10}, {2, 20}, {4, 10}}));
            else
                traces.push_back(makeTrace({{1, 10}, {3, 20}, {4, 10}}));
        }
        auto p = ptrs(traces);
        expectScheduleMatches(p);
    }
    {
        ThreadTrace t = makeTrace({{4, 1}, {5, 10}, {5, 10}, {6, 1}});
        std::vector<const ThreadTrace *> p = {&t, nullptr, &t, nullptr};
        expectScheduleMatches(p);
    }
    // Traces with memory ops: the fields simulateWarp() derives from
    // them must not leak into the schedule.
    {
        std::vector<ThreadTrace> traces(8);
        for (int l = 0; l < 8; ++l) {
            RecordingTracer rec(traces[static_cast<size_t>(l)]);
            rec.block(1, 100);
            rec.load(static_cast<uint64_t>(l) * 4, 16, 4, 4);
            if (l % 2 == 0) {
                rec.block(2, 40 + static_cast<uint32_t>(l));
                rec.store(4096 + static_cast<uint64_t>(l) * 128, 8, 4, 4);
            }
            rec.block(3, 25);
            rec.load(static_cast<uint64_t>(l) * 4, 4, 4, 4,
                     MemSpace::Shared);
            rec.load(0x100, 1, 0, 4, MemSpace::Constant);
        }
        auto p = ptrs(traces);
        expectScheduleMatches(p);
        // And under a non-default model, since the window changes the
        // schedule itself.
        WarpModel narrow;
        narrow.reconvergenceWindow = 2;
        expectScheduleMatches(p, narrow);
    }
    {
        std::vector<const ThreadTrace *> p;
        expectScheduleMatches(p);
    }
}

TEST(Warp, CoalescedStoresAcrossLanes)
{
    // 32 lanes store 4 B each at consecutive addresses (transposed
    // layout): one transaction per element index.
    std::vector<ThreadTrace> traces(32);
    for (int l = 0; l < 32; ++l) {
        RecordingTracer rec(traces[static_cast<size_t>(l)]);
        rec.block(1, 10);
        // 16 elements, per-element stride = 128 (cohort row), lane offset 4.
        rec.store(static_cast<uint64_t>(l) * 4, 16, 128, 4);
    }
    auto p = ptrs(traces);
    WarpStats ws = simulateWarp(p);
    EXPECT_EQ(ws.globalTransactions, 16u);
    EXPECT_EQ(ws.globalBytes, 32u * 16 * 4);
    EXPECT_DOUBLE_EQ(ws.coalescingEfficiency(), 1.0);
}

TEST(Warp, UncoalescedRowMajorStores)
{
    // Row-major: lane l writes its own contiguous 64 B buffer 4 KiB apart.
    std::vector<ThreadTrace> traces(32);
    for (int l = 0; l < 32; ++l) {
        RecordingTracer rec(traces[static_cast<size_t>(l)]);
        rec.block(1, 10);
        rec.store(static_cast<uint64_t>(l) * 4096, 16, 4, 4);
    }
    auto p = ptrs(traces);
    WarpStats ws = simulateWarp(p);
    // Each element index: 32 lanes in 32 distinct segments.
    EXPECT_EQ(ws.globalTransactions, 16u * 32);
    EXPECT_LT(ws.coalescingEfficiency(), 0.05);
}

TEST(Warp, SharedAndConstantProduceNoDramTraffic)
{
    std::vector<ThreadTrace> traces(4);
    for (int l = 0; l < 4; ++l) {
        RecordingTracer rec(traces[static_cast<size_t>(l)]);
        rec.block(1, 5);
        rec.load(0x100, 8, 4, 4, MemSpace::Shared);
        rec.load(0x200, 2, 0, 4, MemSpace::Constant);
    }
    auto p = ptrs(traces);
    WarpStats ws = simulateWarp(p);
    EXPECT_EQ(ws.globalTransactions, 0u);
    EXPECT_EQ(ws.sharedAccesses, 4u * 8);
    EXPECT_EQ(ws.constantAccesses, 4u * 2);
}

TEST(Warp, BulkSampledPathMatchesExactForUniformPattern)
{
    // Large uniform op exercises the sampled fast path; a smaller version
    // with identical per-element geometry exercises the exact path.
    auto build = [](uint32_t count) {
        std::vector<ThreadTrace> traces(32);
        for (int l = 0; l < 32; ++l) {
            RecordingTracer rec(traces[static_cast<size_t>(l)]);
            rec.block(1, 1);
            rec.store(static_cast<uint64_t>(l) * 4, count, 128, 4);
        }
        return traces;
    };
    auto small = build(1024); // exact path
    auto big = build(8192);   // sampled path
    auto ps = ptrs(small);
    auto pb = ptrs(big);
    WarpStats s = simulateWarp(ps);
    WarpStats b = simulateWarp(pb);
    EXPECT_EQ(s.globalTransactions, 1024u);
    EXPECT_EQ(b.globalTransactions, 8192u);
}

// Property sweep: merged issue slots are bounded below by the longest
// lane and above by the sum of all lanes, for random trace populations.
class WarpMergeProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(WarpMergeProperty, SlotsBoundedByMaxAndSum)
{
    rhythm::Rng rng(GetParam());
    std::vector<ThreadTrace> traces;
    uint64_t sum = 0, max_one = 0;
    const int lanes = static_cast<int>(rng.nextRange(1, 32));
    for (int l = 0; l < lanes; ++l) {
        ThreadTrace t;
        RecordingTracer rec(t);
        uint64_t insts = 0;
        const int blocks = static_cast<int>(rng.nextRange(1, 20));
        for (int b = 0; b < blocks; ++b) {
            const uint32_t id = static_cast<uint32_t>(rng.nextRange(1, 6));
            const uint32_t w = static_cast<uint32_t>(rng.nextRange(1, 50));
            rec.block(id, w);
            insts += w;
        }
        sum += insts;
        max_one = std::max(max_one, insts);
        traces.push_back(std::move(t));
    }
    auto p = ptrs(traces);
    WarpStats ws = simulateWarp(p);
    EXPECT_GE(ws.issueSlots, max_one);
    EXPECT_LE(ws.issueSlots, sum);
    EXPECT_EQ(ws.laneInstructions, sum);
    // Every lane's block executions are consumed exactly once.
    uint64_t lane_blocks = 0;
    for (const auto &t : traces)
        lane_blocks += t.blocks.size();
    EXPECT_EQ(ws.laneBlockExecs, lane_blocks);
    EXPECT_GE(ws.activeLaneSteps, lane_blocks);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, WarpMergeProperty,
                         ::testing::Range<uint64_t>(1, 33));

TEST(KernelProfile, FromTracesPacksWarps)
{
    std::vector<ThreadTrace> traces;
    for (int i = 0; i < 70; ++i)
        traces.push_back(makeTrace({{1, 10}}));
    auto p = ptrs(traces);
    KernelProfile kp = KernelProfile::fromTraces(p, WarpModel{}, "t");
    EXPECT_EQ(kp.threads, 70u);
    EXPECT_EQ(kp.warps, 3u); // 32 + 32 + 6
    EXPECT_EQ(kp.totals.issueSlots, 30u);
    EXPECT_EQ(kp.totals.laneInstructions, 700u);
}

TEST(KernelProfile, StreamingIsMemoryBoundAndCoalesced)
{
    WarpModel model;
    KernelProfile kp =
        KernelProfile::streaming(4096, 1 << 20, 64, model, "transpose");
    EXPECT_EQ(kp.warps, 128u);
    EXPECT_EQ(kp.totals.globalTransactions, (1u << 20) / 128);
    DeviceConfig cfg;
    KernelCost cost = computeKernelCost(kp, cfg);
    EXPECT_TRUE(cost.memoryBound);
    EXPECT_GT(cost.deviceSeconds, 0.0);
}

TEST(KernelCost, OccupancyCapScalesWithWarps)
{
    DeviceConfig cfg;
    WarpModel model;
    KernelProfile small = KernelProfile::streaming(256, 1 << 16, 64, model);
    KernelProfile big = KernelProfile::streaming(4096, 1 << 20, 64, model);
    KernelCost cs = computeKernelCost(small, cfg);
    KernelCost cb = computeKernelCost(big, cfg);
    EXPECT_LT(cs.maxShare, cb.maxShare);
    EXPECT_DOUBLE_EQ(cb.maxShare, 1.0);
    EXPECT_NEAR(cs.maxShare, 8.0 / cfg.saturatingWarps(), 1e-12);
}

TEST(KernelCost, ComputeBoundKernel)
{
    WarpModel model;
    // Many instructions, almost no memory.
    KernelProfile kp = KernelProfile::streaming(4096, 128, 100000, model);
    DeviceConfig cfg;
    KernelCost cost = computeKernelCost(kp, cfg);
    EXPECT_FALSE(cost.memoryBound);
    const double expected = static_cast<double>(kp.totals.issueSlots) *
                            cfg.instructionExpansion /
                            cfg.issueSlotsPerSecond();
    EXPECT_NEAR(cost.deviceSeconds, expected, 1e-15);
    EXPECT_EQ(cost.memoryBytes, kp.totals.movedBytes());
}

TEST(SharedBanks, ConflictFreeStrideOne)
{
    // 32 lanes hit 32 consecutive 4-byte words: one word per bank.
    std::vector<uint64_t> addrs;
    for (int l = 0; l < 32; ++l)
        addrs.push_back(static_cast<uint64_t>(l) * 4);
    EXPECT_EQ(sharedBankReplays(addrs), 0u);
}

TEST(SharedBanks, BroadcastIsFree)
{
    std::vector<uint64_t> addrs(32, 128);
    EXPECT_EQ(sharedBankReplays(addrs), 0u);
}

TEST(SharedBanks, StrideThirtyTwoIsWorstCase)
{
    // All lanes hit bank 0 with distinct addresses: 31 replays.
    std::vector<uint64_t> addrs;
    for (int l = 0; l < 32; ++l)
        addrs.push_back(static_cast<uint64_t>(l) * 128);
    EXPECT_EQ(sharedBankReplays(addrs), 31u);
}

TEST(SharedBanks, TwoWayConflict)
{
    // Stride 2 words: lanes l and l+16 share a bank: 1 replay.
    std::vector<uint64_t> addrs;
    for (int l = 0; l < 32; ++l)
        addrs.push_back(static_cast<uint64_t>(l) * 8);
    EXPECT_EQ(sharedBankReplays(addrs), 1u);
}

TEST(SharedBanks, SixteenWayConflict)
{
    // Stride 16 words: lanes collapse onto banks 0 and 16: 15 replays.
    std::vector<uint64_t> addrs;
    for (int l = 0; l < 32; ++l)
        addrs.push_back(static_cast<uint64_t>(l) * 64);
    EXPECT_EQ(sharedBankReplays(addrs), 15u);
}

TEST(SharedBanks, ReplaysFlowIntoWarpStatsAndCost)
{
    // A warp whose shared accesses all collide must cost more compute
    // time than a conflict-free one.
    auto build = [](uint32_t stride) {
        std::vector<ThreadTrace> traces(32);
        for (int l = 0; l < 32; ++l) {
            RecordingTracer rec(traces[static_cast<size_t>(l)]);
            rec.block(1, 10);
            rec.load(static_cast<uint64_t>(l) * stride, 8, 4, 4,
                     MemSpace::Shared);
        }
        std::vector<const ThreadTrace *> p;
        for (auto &t : traces)
            p.push_back(&t);
        return KernelProfile::fromTraces(p, WarpModel{}, "t");
    };
    KernelProfile clean = build(4);     // conflict free
    KernelProfile dirty = build(128);   // 32-way conflicts
    EXPECT_EQ(clean.totals.sharedReplaySlots, 0u);
    EXPECT_EQ(dirty.totals.sharedReplaySlots, 8u * 31);
    DeviceConfig cfg;
    EXPECT_GT(computeKernelCost(dirty, cfg).deviceSeconds,
              computeKernelCost(clean, cfg).deviceSeconds);
}

// Regression: the segment scratch buffer used to be a fixed
// std::array<uint64_t, 128> that silently dropped segments beyond its
// capacity, under-counting transactions for wide bulk accesses. The
// count must be exact for any number of distinct segments.
TEST(Coalescer, MoreThan128DistinctSegmentsAreAllCounted)
{
    std::vector<uint64_t> addrs;
    for (uint64_t i = 0; i < 256; ++i)
        addrs.push_back(i * 128);
    EXPECT_EQ(coalesceTransactions(addrs, 4, 128), 256u);
}

TEST(Coalescer, StraddlingAccessesBeyondCapSpillExactly)
{
    // 100 accesses, each straddling a 128 B boundary: 200 distinct
    // segments, beyond the old 128-entry cap.
    std::vector<uint64_t> addrs;
    for (uint64_t i = 0; i < 100; ++i)
        addrs.push_back(i * 256 + 126);
    EXPECT_EQ(coalesceTransactions(addrs, 4, 128), 200u);
}

TEST(Coalescer, WideWarpModelExceedsOldSegmentCap)
{
    // A 256-wide warp model with 200 lanes each touching its own
    // segment: one warp-level access must produce one transaction per
    // lane. With the old 128-entry scratch array the access-level
    // count clamped at 128 (and the 64-entry lane buffers clamped
    // earlier still).
    std::vector<ThreadTrace> traces;
    for (uint64_t l = 0; l < 200; ++l) {
        ThreadTrace t;
        RecordingTracer rec(t);
        rec.block(1, 10);
        rec.load(l * 128, 1, 0, 4);
        traces.push_back(std::move(t));
    }
    auto p = ptrs(traces);
    WarpModel model;
    model.warpWidth = 256;
    WarpStats ws = simulateWarp(p, model);
    EXPECT_EQ(ws.globalTransactions, 200u);
}

// Regression: sharedBankReplays sorted same-bank addresses into a fixed
// std::array<uint64_t, 64>, silently dropping distinct addresses beyond
// 64 and under-counting replays.
TEST(SharedBanks, MoreThan64DistinctSameBankAddressesAllReplay)
{
    // 70 distinct addresses, all in bank 0 (addr/4 % 32 == 0): replays
    // are distinct-count minus one. The old cap reported 63.
    std::vector<uint64_t> addrs;
    for (uint64_t i = 0; i < 70; ++i)
        addrs.push_back(i * 128);
    EXPECT_EQ(sharedBankReplays(addrs), 69u);
}

TEST(SharedBanks, DuplicatesBeyondCapStillBroadcast)
{
    // 80 same-bank accesses but only 66 distinct addresses: broadcast
    // dedup must survive the spill path.
    std::vector<uint64_t> addrs;
    for (uint64_t i = 0; i < 66; ++i)
        addrs.push_back(i * 128);
    for (uint64_t i = 0; i < 14; ++i)
        addrs.push_back(i * 128);
    EXPECT_EQ(sharedBankReplays(addrs), 65u);
}

} // namespace
} // namespace rhythm::simt
