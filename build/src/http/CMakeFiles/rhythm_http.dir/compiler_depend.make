# Empty compiler generated dependencies file for rhythm_http.
# This may be replaced when dependencies are built.
