file(REMOVE_RECURSE
  "CMakeFiles/simt_device_test.dir/simt_device_test.cc.o"
  "CMakeFiles/simt_device_test.dir/simt_device_test.cc.o.d"
  "simt_device_test"
  "simt_device_test.pdb"
  "simt_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
