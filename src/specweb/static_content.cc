#include "specweb/static_content.hh"

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/strings.hh"

namespace rhythm::specweb {
namespace {

/** Synthesizes deterministic pseudo-binary content of a given size. */
std::string
synthesize(Rng &rng, size_t bytes, std::string_view magic)
{
    std::string out;
    out.reserve(bytes);
    out.append(magic);
    while (out.size() < bytes)
        out.push_back(static_cast<char>(rng.next() & 0xff));
    out.resize(bytes);
    return out;
}

} // namespace

StaticContent::StaticContent(uint32_t check_images, uint64_t seed)
{
    Rng rng(seed);
    // Site chrome.
    add("/images/logo.gif", synthesize(rng, 4 * 1024, "GIF89a"));
    add("/images/masthead.png", synthesize(rng, 12 * 1024, "\x89PNG"));
    add("/images/nav_sprite.png", synthesize(rng, 6 * 1024, "\x89PNG"));
    add("/images/fdic_badge.gif", synthesize(rng, 2 * 1024, "GIF89a"));
    // Check scans (front/back pairs).
    for (uint32_t i = 1; i <= check_images; ++i) {
        const size_t size =
            8 * 1024 + rng.nextBounded(16 * 1024); // 8-24 KiB
        add("/images/check_" + std::to_string(i) + "_front.gif",
            synthesize(rng, size, "GIF89a"));
        add("/images/check_" + std::to_string(i) + "_back.gif",
            synthesize(rng, size, "GIF89a"));
    }
}

void
StaticContent::add(std::string path, std::string bytes)
{
    totalBytes_ += bytes.size();
    paths_.push_back(path);
    assets_.emplace(std::move(path), std::move(bytes));
}

const std::string *
StaticContent::lookup(std::string_view path) const
{
    auto it = assets_.find(std::string(path));
    return it == assets_.end() ? nullptr : &it->second;
}

bool
StaticContent::isStaticPath(std::string_view path)
{
    if (!startsWith(path, "/images/"))
        return false;
    return path.ends_with(".gif") || path.ends_with(".png") ||
           path.ends_with(".jpg");
}

std::string
StaticContent::buildResponse(std::string_view path) const
{
    const std::string *bytes = lookup(path);
    RHYTHM_ASSERT(bytes, "buildResponse for unknown asset");
    std::string out = "HTTP/1.1 200 OK\r\nServer: Rhythm/1.0\r\n"
                      "Content-Type: image/gif\r\n"
                      "Cache-Control: max-age=86400\r\nContent-Length: ";
    out.append(std::to_string(bytes->size()));
    out.append("\r\n\r\n");
    out.append(*bytes);
    return out;
}

} // namespace rhythm::specweb
