/**
 * @file
 * Section 6.2: scaling many-core processors — how many replicated ARM
 * A9 / Core i5 cores match Titan B's and Titan C's throughput, and how
 * much power headroom remains for the uncore. Paper: 192 ARM / 21 i5
 * cores vs Titan B leaving 40 W (21%) / 22 W (10%); 385 ARM / 41 i5 vs
 * Titan C leaving Titan C >170 W to implement the transpose offload.
 */

#include <iostream>

#include "bench/common.hh"
#include "platform/cpu.hh"
#include "platform/measure.hh"
#include "platform/titan.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("sec62_scaling", argc, argv);
    bench::banner("Section 6.2: scaling many-core processors",
                  "Section 6.2 (replicated cores vs Rhythm on Titan B/C)");

    platform::WorkloadMeasurement wm =
        platform::measureWorkload(60, 2000, 7);
    const double arm_core =
        platform::evaluateCpu(platform::armA9OneWorker(),
                              wm.mixWeightedInstructions)
            .throughput;
    const double i5_core =
        platform::evaluateCpu(platform::corei5OneWorker(),
                              wm.mixWeightedInstructions)
            .throughput;

    platform::IsolatedRunOptions opts;
    opts.cohorts = 10;
    opts.users = 2000;
    opts.laneSample = 128;
    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.apply(opts);
    faults.recordConfig(report);
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    overlap.apply(opts);
    overlap.recordConfig(report);
    platform::TitanWorkloadResult b =
        platform::evaluateTitan(platform::titanB(), opts);
    platform::TitanWorkloadResult c =
        platform::evaluateTitan(platform::titanC(), opts);

    // Paper reference points: (cores, scaled W, headroom W, headroom %).
    struct Ref
    {
        double cores, scaled, headroom_pct;
    };
    const Ref refs[4] = {{192, 192, 21}, {21, 210, 10},
                         {385, 385, -66}, {41, 410, -77}};

    TableWriter table({"target", "core", "cores needed", "scaled W",
                       "titan dynamic W", "headroom W", "headroom %"});
    int r = 0;
    for (const auto &[label, titan] :
         {std::pair<const char *, platform::TitanWorkloadResult &>{
              "Titan B", b},
          {"Titan C", c}}) {
        for (const auto &[core_name, core_thr, core_w] :
             {std::tuple<const char *, double, double>{"ARM A9", arm_core,
                                                       1.0},
              {"Core i5", i5_core, 10.0}}) {
            platform::ScalingResult s = platform::scaleToMatch(
                core_name, titan.throughput, core_thr, core_w,
                titan.dynamicWatts);
            const std::string key =
                bench::slug(label) + "." + bench::slug(core_name);
            report.metric(key + ".cores_needed", s.coresNeeded);
            report.metric(key + ".headroom_watts", s.headroomWatts);
            table.addRow(
                {label, core_name,
                 bench::withRef(s.coresNeeded, refs[r].cores, 0),
                 bench::withRef(s.scaledPowerWatts, refs[r].scaled, 0),
                 bench::fmt(s.titanPowerWatts, 0),
                 bench::fmt(s.headroomWatts, 0),
                 bench::withRef(s.headroomPercent, refs[r].headroom_pct,
                                0)});
            ++r;
        }
    }
    table.printAscii(std::cout);
    std::cout
        << "Each 'cores needed' cell: measured (paper). Negative "
           "headroom for Titan C\nmeans the replicated design exceeds "
           "Titan C's power before any uncore is added\n(the paper "
           "frames it as Titan C having >170 W to spend on the "
           "transpose offload).\n";
    report.config("cohorts", opts.cohorts);
    report.config("users", opts.users);
    auto worst_p99 = [](const platform::TitanWorkloadResult &w) {
        double p99 = 0.0;
        for (const auto &t : w.perType)
            p99 = std::max(p99, t.p99LatencyMs);
        return p99;
    };
    report.metric("titan_b.throughput", b.throughput);
    report.metric("titan_c.throughput", c.throughput);
    report.metric("titan_b.p99_latency_ms", worst_p99(b));
    report.metric("titan_c.p99_latency_ms", worst_p99(c));
    if (!report.write())
        return 1;
    return 0;
}
