# Empty dependencies file for http_test.
# This may be replaced when dependencies are built.
