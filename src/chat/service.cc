#include "chat/service.hh"

#include <cstdio>

#include "util/logging.hh"
#include "util/strings.hh"

namespace rhythm::chat {
namespace {

/** Handler basic-block base (per type: base + type*32 + local). */
constexpr uint32_t kChatBlockBase = 7400;

enum LocalBlock : uint32_t {
    kLbValidate = 0,
    kLbCompose = 1,
    kLbConsume = 2,
    kLbRender = 3,
    kLbRow = 4,
    kLbError = 31,
};

constexpr uint32_t
blockBase(PageType type)
{
    return kChatBlockBase + static_cast<uint32_t>(type) * 32;
}

constexpr PageTypeInfo kPages[] = {
    {PageType::RoomList, "room list", "/chat", 1, 8 * 1024, 5.0},
    {PageType::History, "history", "/chat/history", 1, 16 * 1024, 25.0},
    {PageType::Post, "post", "/chat/post", 1, 4 * 1024, 15.0},
    {PageType::Poll, "poll", "/chat/poll", 1, 4 * 1024, 55.0},
};
static_assert(sizeof(kPages) / sizeof(kPages[0]) == kNumPageTypes);

struct Frame
{
    size_t clOffset;
    size_t headerEnd;
};

Frame
beginPage(specweb::HandlerContext &ctx, PageType type,
          std::string_view title)
{
    const uint32_t rb = blockBase(type) + kLbRender;
    ctx.out->appendStatic(rb,
                          "HTTP/1.1 200 OK\r\nServer: RhythmChat/1.0\r\n"
                          "Content-Type: text/html\r\nContent-Length: ");
    Frame frame;
    frame.clOffset = ctx.out->reserve(rb, 10);
    ctx.out->appendStatic(rb, "\r\n\r\n");
    frame.headerEnd = ctx.out->size();
    ctx.out->appendStatic(
        rb,
        "<!DOCTYPE html><html><head><style>body{font-family:Helvetica,"
        "sans-serif;margin:0;color:#222}#top{background:#473080;"
        "color:#fff;padding:8px 16px;font-size:18px}#m{margin:12px 16px}"
        ".msg{padding:4px 0;border-bottom:1px solid #eee;font-size:13px}"
        ".who{color:#473080;font-weight:bold}.seq{color:#999;"
        "font-size:11px}</style><title>");
    ctx.out->appendDynamic(rb, title);
    ctx.out->appendStatic(rb,
                          " - Rhythm Chat</title></head><body>"
                          "<div id=\"top\">Rhythm Chat</div>"
                          "<div id=\"m\">\n");
    return frame;
}

void
endPage(specweb::HandlerContext &ctx, PageType type, const Frame &frame)
{
    const uint32_t rb = blockBase(type) + kLbRender;
    ctx.out->appendStatic(rb,
                          "<!-- chat:ok -->\n</div></body></html>\n");
    const size_t body = ctx.out->size() - frame.headerEnd;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%zu", body);
    ctx.out->patch(frame.clOffset, buf);
}

void
emitChatError(specweb::HandlerContext &ctx, std::string_view reason)
{
    ctx.failed = true;
    const uint32_t rb = kChatBlockBase + 500;
    ctx.rec->block(rb, 160);
    std::string body = "<html><body><p>chat error: ";
    body += reason;
    body += "</p><!-- chat:error --></body></html>\n";
    ctx.out->appendStatic(rb, "HTTP/1.1 400 Bad Request\r\n"
                              "Content-Type: text/html\r\n"
                              "Content-Length: ");
    ctx.out->appendDynamic(rb, std::to_string(body.size()));
    ctx.out->appendStatic(rb, "\r\n\r\n");
    ctx.out->appendDynamic(rb, body);
}

/** Renders "seq,user,text" records as message rows. */
void
renderMessages(specweb::HandlerContext &ctx, PageType type,
               std::string_view payload)
{
    const uint32_t row = blockBase(type) + kLbRow;
    for (std::string_view record : split(payload, ';')) {
        if (record.empty())
            continue;
        auto f = split(record, ',');
        if (f.size() < 3)
            continue;
        ctx.out->appendStatic(row, "<div class=\"msg\"><span class=\"seq\">#");
        ctx.out->appendDynamic(row, f[0]);
        ctx.out->appendStatic(row, "</span> <span class=\"who\">user ");
        ctx.out->appendDynamic(row, f[1]);
        ctx.out->appendStatic(row, "</span> ");
        ctx.out->appendDynamic(row, f[2]);
        ctx.out->appendStatic(row, "</div>\n");
    }
}

} // namespace

const PageTypeInfo *
pageTable()
{
    return kPages;
}

bool
ChatService::resolveType(const http::Request &request,
                         uint32_t &type_id) const
{
    for (const PageTypeInfo &info : kPages) {
        if (request.path == info.path) {
            type_id = static_cast<uint32_t>(info.type);
            return true;
        }
    }
    return false;
}

std::string_view
ChatService::typeName(uint32_t type_id) const
{
    RHYTHM_ASSERT(type_id < kNumPageTypes);
    return kPages[type_id].name;
}

int
ChatService::numStages(uint32_t type_id) const
{
    RHYTHM_ASSERT(type_id < kNumPageTypes);
    return kPages[type_id].backendRequests + 1;
}

uint32_t
ChatService::responseBufferBytes(uint32_t type_id) const
{
    RHYTHM_ASSERT(type_id < kNumPageTypes);
    return kPages[type_id].bufferBytes;
}

void
ChatService::runStage(uint32_t type_id, int stage,
                      specweb::HandlerContext &ctx) const
{
    switch (static_cast<PageType>(type_id)) {
      case PageType::RoomList:
        roomList(stage, ctx);
        return;
      case PageType::History:
        history(stage, ctx);
        return;
      case PageType::Post:
        post(stage, ctx);
        return;
      case PageType::Poll:
        poll(stage, ctx);
        return;
    }
    RHYTHM_PANIC("unknown chat page type");
}

// ---------------------------------------------------------------------
// Backend: ROOMS, HIST|room|n, POST|room|user|text, POLL|room|since
// ---------------------------------------------------------------------

std::string
ChatService::executeBackend(std::string_view request,
                            simt::TraceRecorder &rec)
{
    auto parts = split(request, '|');
    if (parts.empty())
        return "ERR|malformed";
    rec.block(7390, 120);

    auto serializeMessages =
        [&](const std::vector<const Message *> &messages) {
            std::string payload;
            for (const Message *m : messages) {
                rec.block(7391,
                          20 + 3 * static_cast<uint32_t>(m->text.size()));
                payload += std::to_string(m->seq);
                payload += ',';
                payload += std::to_string(m->userId);
                payload += ',';
                payload += m->text;
                payload += ';';
            }
            return payload;
        };

    if (parts[0] == "ROOMS") {
        std::string payload;
        for (uint32_t r = 1; r <= store_.numRooms(); ++r) {
            rec.block(7392, 18);
            payload += std::to_string(r);
            payload += ',';
            payload += std::to_string(store_.latestSeq(r));
            payload += ';';
        }
        return "OK|" + payload;
    }
    if (parts[0] == "HIST" && parts.size() >= 3) {
        uint64_t room = 0, n = 30;
        parseU64(parts[1], room);
        parseU64(parts[2], n);
        if (!store_.validRoom(static_cast<uint32_t>(room)))
            return "ERR|no such room";
        return "OK|" + serializeMessages(store_.history(
                           static_cast<uint32_t>(room), n));
    }
    if (parts[0] == "POST" && parts.size() >= 4) {
        uint64_t room = 0, user = 0;
        parseU64(parts[1], room);
        parseU64(parts[2], user);
        const uint64_t seq = store_.post(static_cast<uint32_t>(room),
                                         user, std::string(parts[3]));
        if (seq == 0)
            return "ERR|post rejected";
        rec.block(7393, 260);
        return "OK|" + std::to_string(seq);
    }
    if (parts[0] == "POLL" && parts.size() >= 3) {
        uint64_t room = 0, since = 0;
        parseU64(parts[1], room);
        parseU64(parts[2], since);
        if (!store_.validRoom(static_cast<uint32_t>(room)))
            return "ERR|no such room";
        return "OK|" + serializeMessages(store_.since(
                           static_cast<uint32_t>(room), since));
    }
    return "ERR|unknown op";
}

// ---------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------

void
ChatService::roomList(int stage, specweb::HandlerContext &ctx) const
{
    const PageType type = PageType::RoomList;
    if (stage == 0) {
        ctx.rec->block(blockBase(type) + kLbValidate, 400);
        ctx.backendRequest = "ROOMS";
        return;
    }
    ctx.rec->block(blockBase(type) + kLbConsume, 120);
    if (!startsWith(ctx.backendResponse, "OK|")) {
        emitChatError(ctx, "room list failed");
        return;
    }
    Frame frame = beginPage(ctx, type, "Rooms");
    const uint32_t rb = blockBase(type) + kLbRender;
    const uint32_t row = blockBase(type) + kLbRow;
    ctx.out->appendStatic(rb, "<h3>Rooms</h3>\n<ul>\n");
    for (std::string_view record :
         split(std::string_view(ctx.backendResponse).substr(3), ';')) {
        if (record.empty())
            continue;
        auto f = split(record, ',');
        if (f.size() < 2)
            continue;
        ctx.out->appendStatic(row, "<li><a href=\"/chat/history?room=");
        ctx.out->appendDynamic(row, f[0]);
        ctx.out->appendStatic(row, "\">room ");
        ctx.out->appendDynamic(row, f[0]);
        ctx.out->appendStatic(row, "</a> &middot; ");
        ctx.out->appendDynamic(row, f[1]);
        ctx.out->appendStatic(row, " messages</li>\n");
    }
    ctx.out->appendStatic(rb, "</ul>\n");
    endPage(ctx, type, frame);
}

void
ChatService::history(int stage, specweb::HandlerContext &ctx) const
{
    const PageType type = PageType::History;
    if (stage == 0) {
        ctx.rec->block(blockBase(type) + kLbValidate, 500);
        uint64_t room = 0;
        if (!parseU64(ctx.request->param("room"), room) || room == 0) {
            emitChatError(ctx, "missing room");
            return;
        }
        ctx.backendRequest = "HIST|" + std::to_string(room) + "|30";
        return;
    }
    ctx.rec->block(blockBase(type) + kLbConsume,
                   60 + static_cast<uint32_t>(
                            ctx.backendResponse.size()) /
                            4);
    if (!startsWith(ctx.backendResponse, "OK|")) {
        emitChatError(ctx, "no such room");
        return;
    }
    Frame frame = beginPage(ctx, type, "History");
    ctx.out->appendStatic(blockBase(type) + kLbRender,
                          "<h3>Recent messages</h3>\n");
    renderMessages(ctx, type,
                   std::string_view(ctx.backendResponse).substr(3));
    endPage(ctx, type, frame);
}

void
ChatService::post(int stage, specweb::HandlerContext &ctx) const
{
    const PageType type = PageType::Post;
    if (stage == 0) {
        ctx.rec->block(blockBase(type) + kLbValidate, 600);
        uint64_t room = 0, user = 0;
        parseU64(ctx.request->param("room"), room);
        parseU64(ctx.request->param("user"), user);
        const std::string_view text = ctx.request->param("text");
        if (room == 0 || user == 0 || text.empty()) {
            emitChatError(ctx, "missing post fields");
            return;
        }
        ctx.rec->block(blockBase(type) + kLbCompose,
                       30 + 4 * static_cast<uint32_t>(text.size()));
        ctx.backendRequest = "POST|" + std::to_string(room) + "|" +
                             std::to_string(user) + "|" +
                             std::string(text);
        return;
    }
    ctx.rec->block(blockBase(type) + kLbConsume, 80);
    if (!startsWith(ctx.backendResponse, "OK|")) {
        emitChatError(ctx, "post rejected");
        return;
    }
    Frame frame = beginPage(ctx, type, "Posted");
    const uint32_t rb = blockBase(type) + kLbRender;
    ctx.out->appendStatic(rb, "<p>Message posted as #");
    ctx.out->appendDynamic(
        rb, std::string_view(ctx.backendResponse).substr(3));
    ctx.out->appendStatic(rb, ".</p>\n");
    endPage(ctx, type, frame);
}

void
ChatService::poll(int stage, specweb::HandlerContext &ctx) const
{
    const PageType type = PageType::Poll;
    if (stage == 0) {
        ctx.rec->block(blockBase(type) + kLbValidate, 350);
        uint64_t room = 0, since = 0;
        if (!parseU64(ctx.request->param("room"), room) || room == 0) {
            emitChatError(ctx, "missing room");
            return;
        }
        parseU64(ctx.request->param("since"), since);
        ctx.backendRequest = "POLL|" + std::to_string(room) + "|" +
                             std::to_string(since);
        return;
    }
    ctx.rec->block(blockBase(type) + kLbConsume, 60);
    if (!startsWith(ctx.backendResponse, "OK|")) {
        emitChatError(ctx, "poll failed");
        return;
    }
    Frame frame = beginPage(ctx, type, "Updates");
    const std::string_view payload =
        std::string_view(ctx.backendResponse).substr(3);
    if (payload.empty()) {
        ctx.out->appendStatic(blockBase(type) + kLbRender,
                              "<p>no new messages</p>\n");
    } else {
        renderMessages(ctx, type, payload);
    }
    endPage(ctx, type, frame);
}

// ---------------------------------------------------------------------
// Generator & validator
// ---------------------------------------------------------------------

ChatGenerator::ChatGenerator(const RoomStore &store, uint64_t seed)
    : store_(store), rng_(seed)
{
    double total = 0.0;
    for (const PageTypeInfo &info : kPages)
        total += info.mixPercent;
    double acc = 0.0;
    for (uint32_t i = 0; i < kNumPageTypes; ++i) {
        acc += kPages[i].mixPercent / total;
        cumulative_[i] = acc;
    }
    cumulative_[kNumPageTypes - 1] = 1.0;
}

PageType
ChatGenerator::sampleType()
{
    const double u = rng_.nextDouble();
    for (uint32_t i = 0; i < kNumPageTypes; ++i) {
        if (u <= cumulative_[i])
            return static_cast<PageType>(i);
    }
    return PageType::Poll;
}

std::string
ChatGenerator::generate(PageType type)
{
    using Params = std::vector<std::pair<std::string, std::string>>;
    Params params;
    const uint32_t room =
        1 + static_cast<uint32_t>(rng_.nextBounded(store_.numRooms()));
    switch (type) {
      case PageType::RoomList:
        break;
      case PageType::History:
        params = {{"room", std::to_string(room)}};
        break;
      case PageType::Post: {
        Rng text_rng(rng_.next());
        std::string text = RoomStore::synthesizeText(text_rng);
        // URL-encode spaces the way buildRequest expects.
        for (char &c : text)
            if (c == ' ')
                c = '+';
        params = {{"room", std::to_string(room)},
                  {"user", std::to_string(1 + rng_.nextBounded(500))},
                  {"text", text}};
        break;
      }
      case PageType::Poll: {
        const uint64_t latest = store_.latestSeq(room);
        const uint64_t back = rng_.nextBounded(8);
        params = {{"room", std::to_string(room)},
                  {"since",
                   std::to_string(latest > back ? latest - back : 0)}};
        break;
      }
    }
    const PageTypeInfo &info = kPages[static_cast<uint32_t>(type)];
    return http::buildRequest(type == PageType::Post ? http::Method::Post
                                                     : http::Method::Get,
                              info.path, params);
}

std::string
ChatGenerator::next(PageType &type_out)
{
    type_out = sampleType();
    return generate(type_out);
}

bool
validateChatResponse(PageType type, std::string_view raw,
                     std::string *reason)
{
    auto fail = [&](const char *why) {
        if (reason)
            *reason = why;
        return false;
    };
    if (!startsWith(raw, "HTTP/1.1 200 OK\r\n"))
        return fail("bad status");
    const size_t header_end = raw.find("\r\n\r\n");
    if (header_end == std::string_view::npos)
        return fail("no header end");
    const size_t cl_pos = raw.find("Content-Length: ");
    if (cl_pos == std::string_view::npos)
        return fail("no content length");
    uint64_t declared = 0;
    size_t p = cl_pos + 16;
    while (p < raw.size() && raw[p] >= '0' && raw[p] <= '9')
        declared = declared * 10 + static_cast<uint64_t>(raw[p++] - '0');
    if (declared != raw.size() - header_end - 4)
        return fail("content length mismatch");
    if (raw.find("<!-- chat:ok -->") == std::string_view::npos)
        return fail("missing marker");
    const char *markers[] = {"Rooms", "Recent messages",
                             "Message posted", "Rhythm Chat"};
    if (raw.find(markers[static_cast<uint32_t>(type)]) ==
        std::string_view::npos)
        return fail("missing type marker");
    return true;
}

} // namespace rhythm::chat
