# Empty compiler generated dependencies file for simt_device_test.
# This may be replaced when dependencies are built.
