#include "simt/device.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/obs.hh"
#include "simt/pcie.hh"
#include "util/logging.hh"

namespace rhythm::simt {
namespace {

/// Demand remaining below this (device-seconds) counts as finished.
constexpr double kFinishEpsilon = 1e-10;
/// Occupancy caps are clamped to at least this share.
constexpr double kMinShare = 1e-6;

} // namespace

Device::Device(des::EventQueue &queue, DeviceConfig config)
    : queue_(queue), config_(std::move(config)),
      createTime_(queue.now()), poolLastUpdate_(queue.now()),
      engine_(config_.numSms)
{
    RHYTHM_ASSERT(config_.hardwareQueues >= 1);
    RHYTHM_ASSERT(config_.numSms >= 1);
    RHYTHM_ASSERT(config_.copyEngines >= 1);
    hwQueues_.resize(static_cast<size_t>(config_.hardwareQueues));
    h2dPool_.toDevice = true;
    d2hPool_.toDevice = false;
    const size_t engines = static_cast<size_t>(config_.copyEngines);
    h2dPool_.engines.resize(engines);
    d2hPool_.engines.resize(engines);
    overlapLast_ = queue.now();
}

int
Device::createStream()
{
    return nextStream_++;
}

void
Device::copyToDevice(int stream, uint64_t bytes, Callback done)
{
    enqueue(stream, Command{CommandType::CopyH2D, bytes, {}, std::move(done)});
}

void
Device::copyToHost(int stream, uint64_t bytes, Callback done)
{
    enqueue(stream, Command{CommandType::CopyD2H, bytes, {}, std::move(done)});
}

void
Device::launchKernel(int stream, KernelCost cost, Callback done)
{
    enqueue(stream, Command{CommandType::Kernel, 0, cost, std::move(done)});
}

void
Device::setFaultHooks(DeviceFaultHooks hooks)
{
    faultHooks_ = std::move(hooks);
}

void
Device::enqueue(int stream, Command cmd)
{
    RHYTHM_ASSERT(stream >= 0 && stream < nextStream_, "unknown stream");
    const int qi = stream % config_.hardwareQueues;
    auto &q = hwQueues_[static_cast<size_t>(qi)];
    q.push_back(std::move(cmd));
    ++pendingCommands_;
    if (q.size() == 1)
        startCommand(qi);
}

void
Device::startCommand(int queue_index)
{
    auto &q = hwQueues_[static_cast<size_t>(queue_index)];
    RHYTHM_ASSERT(!q.empty());
    // The command stays at the queue head (blocking the queue, and
    // keeping its completion callback alive) until it completes; only
    // its parameters travel into the execution machinery.
    Command &cmd = q.front();
    if (faultHooks_.commandStall && !cmd.stallChecked) {
        cmd.stallChecked = true;
        const des::Time stall = faultHooks_.commandStall();
        if (stall > 0) {
            OBS_INSTANT(obs::track::kEvents, "stream-stall", "fault",
                        {"queue", static_cast<uint64_t>(queue_index)},
                        {"stall_us", des::toMicros(stall)});
            OBS_COUNTER_ADD("device.stream_stalls", 1);
            // The stream wedges: its hardware queue stays blocked for
            // the stall duration, then the command proceeds normally.
            queue_.scheduleAfter(stall, [this, queue_index]() {
                startCommand(queue_index);
            });
            return;
        }
    }
    switch (cmd.type) {
      case CommandType::CopyH2D:
        if (pooledCopies())
            assignEngine(h2dPool_, PendingCopy{cmd.bytes, true, queue_index});
        else
            startCopy(h2d_, PendingCopy{cmd.bytes, true, queue_index});
        break;
      case CommandType::CopyD2H:
        if (pooledCopies())
            assignEngine(d2hPool_, PendingCopy{cmd.bytes, false, queue_index});
        else
            startCopy(d2h_, PendingCopy{cmd.bytes, false, queue_index});
        break;
      case CommandType::Kernel:
        // Model the fixed launch overhead as serial latency before the
        // kernel is admitted to the execution pool.
        queue_.scheduleAfter(config_.launchOverhead,
                             [this, cost = cmd.cost, queue_index]() {
                                 kernelAdmitted(cost, queue_index);
                             });
        break;
    }
}

void
Device::commandFinished(int queue_index)
{
    auto &q = hwQueues_[static_cast<size_t>(queue_index)];
    RHYTHM_ASSERT(!q.empty());
    Callback done = std::move(q.front().done);
    q.pop_front();
    RHYTHM_ASSERT(pendingCommands_ > 0);
    --pendingCommands_;
    if (!q.empty())
        startCommand(queue_index);
    if (done)
        done();
}

void
Device::startCopy(CopyEngine &engine, PendingCopy copy)
{
    if (engine.busy) {
        engine.waiting.push_back(copy);
        return;
    }
    engine.busy = true;
    accrueCopyOverlap();
    ++activeCopies_;
    if (copy.toDevice) {
        ++stats_.copiesToDevice;
        stats_.bytesToDevice += copy.bytes;
    } else {
        ++stats_.copiesToHost;
        stats_.bytesToHost += copy.bytes;
    }
    const double transfer_seconds =
        static_cast<double>(copy.bytes) / (config_.pcieBandwidthGBs * 1e9);
    const des::Time nominal =
        config_.pcieLatency + des::fromSeconds(transfer_seconds);
    des::Time base = nominal;
    if (config_.pcieCrcEnabled) {
        // Frame-level CRC + bounded retransmit (simt/pcie.hh). The
        // per-frame corruption oracle is the installed hook; without
        // one no frame ever corrupts, but framing overhead still rides
        // on the wire — CRC protection costs bandwidth even when
        // nothing goes wrong, and the §6.3 accounting must show that.
        const PcieLink link(config_);
        const PcieTransfer xfer = link.transfer(
            copy.bytes, [this, &copy]() {
                return faultHooks_.frameCorrupt &&
                       faultHooks_.frameCorrupt(copy.toDevice);
            });
        base = xfer.duration;
        stats_.pcieFrames += xfer.frames;
        stats_.pcieWireBytes += xfer.wireBytes;
        stats_.pcieCrcErrors += xfer.crcErrors;
        stats_.pcieRetransmittedBytes += xfer.retransmittedBytes;
        stats_.pcieRetrains += xfer.retrains;
        if (OBS_ENABLED()) {
            OBS_COUNTER_ADD("pcie.crc.frames", xfer.frames);
            OBS_COUNTER_ADD("pcie.crc.wire_bytes", xfer.wireBytes);
            if (xfer.crcErrors > 0)
                OBS_COUNTER_ADD("pcie.crc.errors", xfer.crcErrors);
            if (xfer.retransmittedBytes > 0)
                OBS_COUNTER_ADD("pcie.crc.retransmitted_bytes",
                                xfer.retransmittedBytes);
            if (xfer.retrains > 0)
                OBS_COUNTER_ADD("pcie.crc.retrains", xfer.retrains);
        }
    }
    des::Time extra = 0;
    if (faultHooks_.copyExtra)
        extra = faultHooks_.copyExtra(copy.toDevice, copy.bytes, nominal);
    const des::Time duration = base + extra;
    engine.busySeconds += des::toSeconds(duration);
    if (OBS_ENABLED()) {
        const uint32_t tr =
            copy.toDevice ? obs::track::kPcieH2D : obs::track::kPcieD2H;
        OBS_TRACK_NAME(tr, copy.toDevice ? "pcie h2d" : "pcie d2h");
        OBS_SPAN_COMPLETE(tr, copy.toDevice ? "copy h2d" : "copy d2h",
                          "pcie", queue_.now(), queue_.now() + duration,
                          {"bytes", copy.bytes});
        OBS_COUNTER_ADD(copy.toDevice ? "device.pcie_bytes_h2d"
                                      : "device.pcie_bytes_d2h",
                        copy.bytes);
        if (extra > 0) {
            OBS_INSTANT(obs::track::kEvents, "pcie-fault", "fault",
                        {"extra_us", des::toMicros(extra)},
                        {"bytes", copy.bytes});
            OBS_COUNTER_ADD("device.pcie_faults", 1);
        }
    }
    queue_.scheduleAfter(duration, [this, &engine, qi = copy.queueIndex]() {
        copyFinished(engine);
        commandFinished(qi);
    });
}

void
Device::copyFinished(CopyEngine &engine)
{
    accrueCopyOverlap();
    --activeCopies_;
    engine.busy = false;
    if (!engine.waiting.empty()) {
        PendingCopy next = engine.waiting.front();
        engine.waiting.pop_front();
        startCopy(engine, next);
    }
}

void
Device::accrueCopyOverlap()
{
    const des::Time now = queue_.now();
    const double dt = des::toSeconds(now - overlapLast_);
    overlapLast_ = now;
    if (dt <= 0.0 || activeCopies_ == 0)
        return;
    copyBusySeconds_ += dt;
    if (!pool_.empty())
        overlapSeconds_ += dt;
}

void
Device::assignEngine(CopyDirection &dir, PendingCopy copy)
{
    // Lowest free index keeps engine assignment deterministic under any
    // --sim-threads setting (assignment happens on the DES thread in
    // canonical event order).
    int idx = -1;
    for (size_t i = 0; i < dir.engines.size(); ++i) {
        if (!dir.engines[i].busy) {
            idx = static_cast<int>(i);
            break;
        }
    }
    if (idx < 0) {
        dir.waiting.push_back(copy);
        return;
    }
    accrueCopyOverlap();
    ++activeCopies_;
    DmaEngine &eng = dir.engines[static_cast<size_t>(idx)];
    eng.busy = true;
    eng.assignedAt = queue_.now();
    eng.bytesLeft = copy.bytes;
    eng.totalBytes = copy.bytes;
    eng.queueIndex = copy.queueIndex;
    eng.extra = 0;
    if (dir.toDevice) {
        ++stats_.copiesToDevice;
        stats_.bytesToDevice += copy.bytes;
    } else {
        ++stats_.copiesToHost;
        stats_.bytesToHost += copy.bytes;
    }
    const double transfer_seconds =
        static_cast<double>(copy.bytes) / (config_.pcieBandwidthGBs * 1e9);
    const des::Time nominal =
        config_.pcieLatency + des::fromSeconds(transfer_seconds);
    // The copyExtra fault hook is consulted exactly once per transfer
    // (same contract as the legacy path); the penalty lands on the
    // final chunk so the transfer still completes as one unit.
    if (faultHooks_.copyExtra)
        eng.extra = faultHooks_.copyExtra(dir.toDevice, copy.bytes, nominal);
    if (OBS_ENABLED()) {
        OBS_COUNTER_ADD(dir.toDevice ? "device.pcie_bytes_h2d"
                                     : "device.pcie_bytes_d2h",
                        copy.bytes);
        if (eng.extra > 0) {
            OBS_INSTANT(obs::track::kEvents, "pcie-fault", "fault",
                        {"extra_us", des::toMicros(eng.extra)},
                        {"bytes", copy.bytes});
            OBS_COUNTER_ADD("device.pcie_faults", 1);
        }
    }
    // DMA setup / per-transfer link latency: engines pay it
    // concurrently, then arbitrate for the serial wire chunk by chunk.
    queue_.scheduleAfter(config_.pcieLatency, [this, &dir, idx]() {
        engineReady(dir, idx);
    });
}

void
Device::engineReady(CopyDirection &dir, int engine_index)
{
    dir.ready.push_back(engine_index);
    if (!dir.linkBusy)
        startNextChunk(dir);
}

void
Device::startNextChunk(CopyDirection &dir)
{
    if (dir.linkBusy || dir.ready.empty())
        return;
    const int idx = dir.ready.front();
    dir.ready.pop_front();
    DmaEngine &eng = dir.engines[static_cast<size_t>(idx)];
    const uint64_t chunk =
        config_.copyChunkBytes == 0
            ? eng.bytesLeft
            : std::min<uint64_t>(config_.copyChunkBytes, eng.bytesLeft);
    des::Time duration = 0;
    if (config_.pcieCrcEnabled) {
        // Chunks carry the same frame/CRC/retransmit accounting as a
        // whole legacy transfer; only the per-transfer latency is
        // excluded (charged once in the engine setup phase).
        const PcieLink link(config_);
        const PcieTransfer xfer = link.transferChunk(
            chunk, [this, &dir]() {
                return faultHooks_.frameCorrupt &&
                       faultHooks_.frameCorrupt(dir.toDevice);
            });
        duration = xfer.duration;
        stats_.pcieFrames += xfer.frames;
        stats_.pcieWireBytes += xfer.wireBytes;
        stats_.pcieCrcErrors += xfer.crcErrors;
        stats_.pcieRetransmittedBytes += xfer.retransmittedBytes;
        stats_.pcieRetrains += xfer.retrains;
        if (OBS_ENABLED()) {
            OBS_COUNTER_ADD("pcie.crc.frames", xfer.frames);
            OBS_COUNTER_ADD("pcie.crc.wire_bytes", xfer.wireBytes);
            if (xfer.crcErrors > 0)
                OBS_COUNTER_ADD("pcie.crc.errors", xfer.crcErrors);
            if (xfer.retransmittedBytes > 0)
                OBS_COUNTER_ADD("pcie.crc.retransmitted_bytes",
                                xfer.retransmittedBytes);
            if (xfer.retrains > 0)
                OBS_COUNTER_ADD("pcie.crc.retrains", xfer.retrains);
        }
    } else {
        const double seconds = static_cast<double>(chunk) /
                               (config_.pcieBandwidthGBs * 1e9);
        duration = des::fromSeconds(seconds);
    }
    if (chunk >= eng.bytesLeft && eng.extra > 0)
        duration += eng.extra;
    dir.linkBusy = true;
    dir.linkBusySeconds += des::toSeconds(duration);
    if (dir.toDevice)
        ++stats_.copyChunksH2D;
    else
        ++stats_.copyChunksD2H;
    if (OBS_ENABLED()) {
        const uint32_t tr =
            (dir.toDevice ? obs::track::kPcieH2DEngineBase
                          : obs::track::kPcieD2HEngineBase) +
            static_cast<uint32_t>(idx);
        OBS_TRACK_NAME(tr, (dir.toDevice ? "pcie h2d ce" : "pcie d2h ce") +
                               std::to_string(idx));
        OBS_SPAN_COMPLETE(tr, dir.toDevice ? "chunk h2d" : "chunk d2h",
                          "pcie", queue_.now(), queue_.now() + duration,
                          {"bytes", chunk},
                          {"transfer_bytes", eng.totalBytes});
    }
    queue_.scheduleAfter(duration, [this, &dir, idx, chunk]() {
        chunkDone(dir, idx, chunk, 0);
    });
}

void
Device::chunkDone(CopyDirection &dir, int engine_index, uint64_t chunk,
                  des::Time /*wire*/)
{
    dir.linkBusy = false;
    DmaEngine &eng = dir.engines[static_cast<size_t>(engine_index)];
    RHYTHM_ASSERT(chunk <= eng.bytesLeft);
    eng.bytesLeft -= chunk;
    if (eng.bytesLeft > 0) {
        // More chunks to go: rejoin the round-robin service order.
        dir.ready.push_back(engine_index);
    } else {
        accrueCopyOverlap();
        --activeCopies_;
        eng.busy = false;
        eng.busySeconds += des::toSeconds(queue_.now() - eng.assignedAt);
        const int qi = eng.queueIndex;
        if (OBS_ENABLED()) {
            const uint32_t tr =
                dir.toDevice ? obs::track::kPcieH2D : obs::track::kPcieD2H;
            OBS_TRACK_NAME(tr, dir.toDevice ? "pcie h2d" : "pcie d2h");
            OBS_SPAN_COMPLETE(tr,
                              dir.toDevice ? "copy h2d" : "copy d2h",
                              "pcie", eng.assignedAt, queue_.now(),
                              {"bytes", eng.totalBytes},
                              {"engine", static_cast<uint64_t>(engine_index)});
        }
        if (!dir.waiting.empty()) {
            PendingCopy next = dir.waiting.front();
            dir.waiting.pop_front();
            assignEngine(dir, next);
        }
        commandFinished(qi);
    }
    startNextChunk(dir);
}

void
Device::kernelAdmitted(KernelCost cost, int queue_index)
{
    advancePool();
    RunningKernel rk;
    rk.remaining = std::max(cost.deviceSeconds, kFinishEpsilon);
    rk.cap = std::clamp(cost.maxShare, kMinShare, 1.0);
    rk.queueIndex = queue_index;
    rk.admitted = queue_.now();
    ++stats_.kernelsLaunched;
    stats_.kernelMemoryBytes += cost.memoryBytes;
    if (OBS_ENABLED())
        OBS_COUNTER_ADD("device.kernels", 1);
    rk.cost = std::move(cost);
    pool_.push_back(std::move(rk));
    recomputeRates();
    reschedulePoolEvent();
}

void
Device::advancePool()
{
    // Pool membership is about to change; settle the copy/kernel
    // overlap integral against the old membership first.
    accrueCopyOverlap();
    const des::Time now = queue_.now();
    const double dt = des::toSeconds(now - poolLastUpdate_);
    poolLastUpdate_ = now;
    if (dt <= 0.0 || pool_.empty())
        return;
    double total_rate = 0.0;
    for (auto &k : pool_) {
        k.remaining -= k.rate * dt;
        total_rate += k.rate;
    }
    stats_.kernelBusySeconds += total_rate * dt;
}

void
Device::recomputeRates()
{
    // Water-filling: capacity 1.0 shared equally, except that a kernel
    // never receives more than its occupancy cap; freed capacity is
    // redistributed among the uncapped kernels.
    for (auto &k : pool_)
        k.rate = 0.0;
    double capacity = 1.0;
    size_t unset = pool_.size();
    std::vector<bool> fixed(pool_.size(), false);
    while (unset > 0) {
        const double share = capacity / static_cast<double>(unset);
        bool changed = false;
        for (size_t i = 0; i < pool_.size(); ++i) {
            if (!fixed[i] && pool_[i].cap <= share) {
                pool_[i].rate = pool_[i].cap;
                capacity -= pool_[i].cap;
                fixed[i] = true;
                --unset;
                changed = true;
            }
        }
        if (!changed) {
            for (size_t i = 0; i < pool_.size(); ++i) {
                if (!fixed[i])
                    pool_[i].rate = share;
            }
            break;
        }
    }
}

void
Device::reschedulePoolEvent()
{
    if (poolEventValid_) {
        queue_.cancel(poolEvent_);
        poolEventValid_ = false;
    }
    if (pool_.empty())
        return;
    double min_finish = 1e300;
    for (const auto &k : pool_) {
        if (k.rate > 0.0)
            min_finish = std::min(min_finish, k.remaining / k.rate);
    }
    RHYTHM_ASSERT(min_finish < 1e300, "kernel pool stalled with zero rates");
    // Round up a picosecond so the earliest kernel is guaranteed done.
    const des::Time delta = des::fromSeconds(min_finish) + 1;
    poolEvent_ = queue_.scheduleAfter(delta, [this]() { poolEventFired(); });
    poolEventValid_ = true;
}

void
Device::poolEventFired()
{
    poolEventValid_ = false;
    advancePool();
    std::vector<int> finished_queues;
    for (size_t i = 0; i < pool_.size();) {
        if (pool_[i].remaining <= kFinishEpsilon) {
            const RunningKernel &rk = pool_[i];
            if (OBS_ENABLED()) {
                const uint32_t tr = obs::track::kHwqBase +
                    static_cast<uint32_t>(rk.queueIndex);
                OBS_TRACK_NAME(tr, "hwq " + std::to_string(rk.queueIndex));
                OBS_SPAN_COMPLETE(
                    tr,
                    rk.cost.name.empty() ? std::string("kernel")
                                         : rk.cost.name,
                    "kernel", rk.admitted, queue_.now(),
                    {"occupancy", rk.cap},
                    {"simd_efficiency", rk.cost.simdEfficiency},
                    {"global_transactions", rk.cost.globalTransactions},
                    {"warps", rk.cost.warps},
                    {"memory_bound",
                     std::string(rk.cost.memoryBound ? "yes" : "no")});
            }
            finished_queues.push_back(rk.queueIndex);
            pool_.erase(pool_.begin() + static_cast<long>(i));
        } else {
            ++i;
        }
    }
    recomputeRates();
    reschedulePoolEvent();
    // Callbacks run after the pool is consistent; they may enqueue more
    // commands (the event loop pipelines cohorts).
    for (int qi : finished_queues)
        commandFinished(qi);
}

Device::Stats
Device::stats() const
{
    Stats s = stats_;
    // Fold in the in-progress interval since the last pool update.
    const double dt = des::toSeconds(queue_.now() - poolLastUpdate_);
    if (dt > 0.0) {
        double total_rate = 0.0;
        for (const auto &k : pool_)
            total_rate += k.rate;
        s.kernelBusySeconds += total_rate * dt;
    }
    s.h2dBusySeconds = h2d_.busySeconds;
    s.d2hBusySeconds = d2h_.busySeconds;
    if (pooledCopies()) {
        // Pooled path: direction busy time is serial link occupancy
        // (the legacy single-engine analog); per-engine busy time spans
        // assignment → completion, with open intervals folded in.
        s.h2dBusySeconds = h2dPool_.linkBusySeconds;
        s.d2hBusySeconds = d2hPool_.linkBusySeconds;
        const des::Time now = queue_.now();
        auto fold = [now](const CopyDirection &dir) {
            std::vector<double> busy;
            busy.reserve(dir.engines.size());
            for (const auto &eng : dir.engines) {
                double secs = eng.busySeconds;
                if (eng.busy)
                    secs += des::toSeconds(now - eng.assignedAt);
                busy.push_back(secs);
            }
            return busy;
        };
        s.engineBusySecondsH2D = fold(h2dPool_);
        s.engineBusySecondsD2H = fold(d2hPool_);
    }
    s.copyBusySeconds = copyBusySeconds_;
    s.overlapSeconds = overlapSeconds_;
    // Fold the open copy-busy interval without mutating the integrals.
    const double odt = des::toSeconds(queue_.now() - overlapLast_);
    if (odt > 0.0 && activeCopies_ > 0) {
        s.copyBusySeconds += odt;
        if (!pool_.empty())
            s.overlapSeconds += odt;
    }
    return s;
}

double
Device::kernelUtilization() const
{
    const double elapsed = des::toSeconds(queue_.now() - createTime_);
    if (elapsed <= 0.0)
        return 0.0;
    return stats().kernelBusySeconds / elapsed;
}

bool
Device::idle() const
{
    return pendingCommands_ == 0;
}

} // namespace rhythm::simt
