/**
 * @file
 * Figure 8: throughput-efficiency scatter for wall power (8a) and
 * dynamic power (8b). Throughput is normalized to the Core i7 with 8
 * workers; efficiency (reqs/Joule) is normalized to the ARM A9 with 2
 * workers. The shaded "desired operating range" of the paper is
 * throughput >= 1.0 and efficiency >= 1.0.
 */

#include <iostream>

#include "bench/common.hh"
#include "platform/cpu.hh"
#include "platform/measure.hh"
#include "platform/titan.hh"

namespace {

struct Point
{
    std::string name;
    double throughput;
    double wallEff;
    double dynEff;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("fig8_throughput_efficiency", argc, argv);
    bench::banner("Figure 8: throughput-efficiency (8a wall, 8b dynamic)",
                  "Figure 8 (normalized to i7-8w throughput, A9-2w "
                  "efficiency)");

    platform::WorkloadMeasurement wm =
        platform::measureWorkload(60, 2000, 7);

    std::vector<Point> points;
    auto cpus = platform::standardCpuPlatforms();
    for (const auto &cpu : cpus) {
        platform::CpuResult r =
            platform::evaluateCpu(cpu, wm.mixWeightedInstructions);
        points.push_back(Point{r.name, r.throughput, r.reqsPerJouleWall,
                               r.reqsPerJouleDynamic});
    }

    platform::IsolatedRunOptions opts;
    opts.cohorts = 10;
    opts.users = 2000;
    opts.laneSample = 128;
    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.apply(opts);
    faults.recordConfig(report);
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    overlap.apply(opts);
    overlap.recordConfig(report);
    std::vector<platform::TitanWorkloadResult> titan_results;
    for (const auto &variant :
         {platform::titanA(), platform::titanB(), platform::titanC()}) {
        platform::TitanWorkloadResult r =
            platform::evaluateTitan(variant, opts);
        points.push_back(Point{r.name, r.throughput, r.reqsPerJouleWall,
                               r.reqsPerJouleDynamic});
        titan_results.push_back(std::move(r));
    }

    // Normalization anchors.
    const Point &i7_8w = points[3];
    const Point &a9_2w = points[5];

    // Paper reference normalized values, derived from Table 3.
    const double paper_thr[] = {75.0 / 377,  282.0 / 377, 331.0 / 377,
                                1.0,         8.0 / 377,   16.0 / 377,
                                398.0 / 377, 1535.0 / 377, 3082.0 / 377};
    const double paper_wall[] = {972.0 / 2683,  2447.0 / 2683,
                                 1901.0 / 2683, 2042.0 / 2683,
                                 1672.0 / 2683, 1.0,
                                 1469.0 / 2683, 3329.0 / 2683,
                                 9070.0 / 2683};
    const double paper_dyn[] = {3283.0 / 4830,  4712.0 / 4830,
                                2735.0 / 4830,  2873.0 / 4830,
                                4061.0 / 4830,  1.0,
                                2193.0 / 4830,  4410.0 / 4830,
                                12264.0 / 4830};

    TableWriter table({"platform", "norm throughput",
                       "8a: norm wall eff", "8b: norm dynamic eff",
                       "in desired range (dyn)"});
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        const double nt = p.throughput / i7_8w.throughput;
        const double nw = p.wallEff / a9_2w.wallEff;
        const double nd = p.dynEff / a9_2w.dynEff;
        table.addRow({p.name, bench::withRef(nt, paper_thr[i], 2),
                      bench::withRef(nw, paper_wall[i], 2),
                      bench::withRef(nd, paper_dyn[i], 2),
                      (nt >= 1.0 && nd >= 1.0) ? "yes" : "no"});
    }
    table.printAscii(std::cout);
    std::cout << "Each cell: measured (paper). The paper's desired "
                 "operating range is reached\nonly by the Titan B/C "
                 "Rhythm platforms.\n";

    report.config("cohorts", opts.cohorts);
    report.config("users", opts.users);
    report.config("lane_sample", opts.laneSample);
    for (const Point &p : points) {
        const std::string key = bench::slug(p.name);
        report.metric(key + ".throughput", p.throughput);
        report.metric(key + ".wall_efficiency", p.wallEff);
        report.metric(key + ".dynamic_efficiency", p.dynEff);
    }
    // Per-type warp occupancy on each Titan variant (DESIGN.md 6j):
    // SIMD efficiency and the idle tail lanes padded per type — the
    // per-type view of what cohort fusion reclaims.
    for (const platform::TitanWorkloadResult &tr : titan_results) {
        const std::string pkey = bench::slug(tr.name);
        for (size_t i = 0; i < specweb::kNumRequestTypes; ++i) {
            const platform::TypeRunResult &r = tr.perType[i];
            const std::string key =
                pkey + "." +
                bench::slug(std::string(specweb::typeTable()[i].name));
            report.metric(key + ".simd_efficiency", r.simdEfficiency);
            report.metric(key + ".padded_lanes",
                          static_cast<double>(r.paddedLanes));
        }
    }
    if (!report.write())
        return 1;
    return 0;
}
