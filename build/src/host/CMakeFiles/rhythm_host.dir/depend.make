# Empty dependencies file for rhythm_host.
# This may be replaced when dependencies are built.
