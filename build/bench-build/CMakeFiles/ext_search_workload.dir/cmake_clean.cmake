file(REMOVE_RECURSE
  "../bench/ext_search_workload"
  "../bench/ext_search_workload.pdb"
  "CMakeFiles/ext_search_workload.dir/ext_search_workload.cc.o"
  "CMakeFiles/ext_search_workload.dir/ext_search_workload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_search_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
