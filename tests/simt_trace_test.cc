/**
 * @file
 * Unit tests for trace recording (src/simt/trace).
 */

#include <gtest/gtest.h>

#include "simt/trace.hh"

namespace rhythm::simt {
namespace {

TEST(RecordingTracer, CapturesBlocksInOrder)
{
    ThreadTrace trace;
    RecordingTracer rec(trace);
    rec.block(1, 10);
    rec.block(2, 20);
    rec.block(1, 5);
    ASSERT_EQ(trace.blocks.size(), 3u);
    EXPECT_EQ(trace.blocks[0].blockId, 1u);
    EXPECT_EQ(trace.blocks[1].blockId, 2u);
    EXPECT_EQ(trace.blocks[2].instructions, 5u);
    EXPECT_EQ(trace.totalInstructions(), 35u);
    EXPECT_EQ(trace.length(), 3u);
}

TEST(RecordingTracer, AttachesMemOpsToCurrentBlock)
{
    ThreadTrace trace;
    RecordingTracer rec(trace);
    rec.block(1, 10);
    rec.load(0x1000, 4, 4, 4);
    rec.store(0x2000, 1, 0, 8);
    rec.block(2, 10);
    rec.load(0x3000, 1, 0, 4);

    ASSERT_EQ(trace.memOps.size(), 3u);
    EXPECT_EQ(trace.blocks[0].memBegin, 0u);
    EXPECT_EQ(trace.blocks[0].memCount, 2u);
    EXPECT_EQ(trace.blocks[1].memBegin, 2u);
    EXPECT_EQ(trace.blocks[1].memCount, 1u);
    EXPECT_FALSE(trace.memOps[0].isStore);
    EXPECT_TRUE(trace.memOps[1].isStore);
    EXPECT_EQ(trace.memOps[1].width, 8u);
}

TEST(RecordingTracer, BindClearsPreviousContent)
{
    ThreadTrace trace;
    {
        RecordingTracer rec(trace);
        rec.block(1, 1);
    }
    RecordingTracer rec2(trace);
    EXPECT_EQ(trace.blocks.size(), 0u);
    rec2.block(9, 9);
    EXPECT_EQ(trace.blocks.size(), 1u);
}

TEST(CountingTracer, CountsEverything)
{
    CountingTracer ct;
    ct.block(1, 100);
    ct.block(2, 200);
    ct.load(0, 16, 4, 4);
    ct.store(64, 2, 8, 8);
    EXPECT_EQ(ct.instructions(), 300u);
    EXPECT_EQ(ct.blocks(), 2u);
    EXPECT_EQ(ct.bytes(), 16u * 4 + 2 * 8);
    ct.reset();
    EXPECT_EQ(ct.instructions(), 0u);
    EXPECT_EQ(ct.bytes(), 0u);
}

TEST(NullTracer, AcceptsCallsSilently)
{
    NullTracer nt;
    nt.block(1, 1);
    nt.load(0, 1, 0, 4);
    nt.store(0, 1, 0, 4);
    SUCCEED();
}

TEST(ThreadTrace, ClearResets)
{
    ThreadTrace trace;
    RecordingTracer rec(trace);
    rec.block(1, 10);
    rec.load(0, 1, 0, 4);
    trace.clear();
    EXPECT_EQ(trace.blocks.size(), 0u);
    EXPECT_EQ(trace.memOps.size(), 0u);
    EXPECT_EQ(trace.totalInstructions(), 0u);
}

TEST(RecordingTracer, ConstantAndSharedSpaces)
{
    ThreadTrace trace;
    RecordingTracer rec(trace);
    rec.block(1, 1);
    rec.load(0x10, 1, 0, 4, MemSpace::Constant);
    rec.store(0x20, 1, 0, 4, MemSpace::Shared);
    EXPECT_EQ(trace.memOps[0].space, MemSpace::Constant);
    EXPECT_EQ(trace.memOps[1].space, MemSpace::Shared);
}

} // namespace
} // namespace rhythm::simt
