#include "rhythm/fleet.hh"

#include <algorithm>

#include "backend/protocol.hh"
#include "obs/obs.hh"
#include "simt/trace.hh"
#include "util/logging.hh"

namespace rhythm::core {
namespace {

/**
 * Cross-shard idempotency tokens live far above the per-server token
 * space (launch-ordinal based, growing from 1), so coordinator legs
 * and regular cohort backend calls can never collide in a shard's
 * recovery memo. Token = base | (transfer id << 1) | phase.
 */
constexpr uint64_t kCrossTokenBase = 1ull << 62;

/** splitmix64 finalizer: the shard map must scatter consecutive user
 *  ids, which a plain modulo would stripe. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Rewrites the digits following "session=" in a raw request. */
bool
rewriteSessionCookie(std::string &raw, uint64_t old_sid, uint64_t new_sid)
{
    const std::string needle = "session=" + std::to_string(old_sid);
    const size_t pos = raw.find(needle);
    if (pos == std::string::npos)
        return false;
    // Reject partial-number matches ("session=12" inside "session=123").
    const size_t digits_end = pos + needle.size();
    if (digits_end < raw.size() && raw[digits_end] >= '0' &&
        raw[digits_end] <= '9')
        return false;
    raw.replace(pos + 8, needle.size() - 8, std::to_string(new_sid));
    return true;
}

} // namespace

Fleet::Fleet(des::EventQueue &queue,
             const simt::DeviceConfig &device_config,
             const RhythmConfig &server_config, const FleetConfig &config,
             uint64_t users, uint64_t db_seed)
    : queue_(queue), config_(config)
{
    RHYTHM_ASSERT(config_.devices >= 1, "fleet needs at least one device");
    pools_.resize(config_.devices);
    for (uint32_t i = 0; i < config_.devices; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->stream = queue_.createStream();
        obs::global().bindStreamDevice(shard->stream, i);
        // Everything the shard schedules during construction and
        // startup must land on its stream; afterwards stream
        // inheritance keeps the causal chain there automatically.
        des::EventQueue::StreamScope scope(queue_, shard->stream);
        shard->db = std::make_unique<backend::BankDb>(users, db_seed);
        shard->device =
            std::make_unique<simt::Device>(queue_, device_config);
        shard->service = std::make_unique<BankingService>(*shard->db);
        if (config_.recovery) {
            backend::RecoveryConfig rc;
            rc.checkpointInterval = config_.checkpointInterval;
            shard->recovery = std::make_unique<backend::RecoverableBackend>(
                shard->service->backendService(), *shard->db, rc);
            shard->service->setRecovery(shard->recovery.get());
        }
        shard->server = std::make_unique<RhythmServer>(
            queue_, *shard->device, *shard->service, server_config);
        if (shard->recovery)
            attachSessionRecovery(*shard->recovery, shard->server->sessions());
        const uint32_t index = i;
        shard->server->setResponseCallback(
            [this, index](uint64_t client_id, std::string_view response,
                          des::Time latency) {
                Shard &s = *shards_[index];
                if (s.outstanding > 0)
                    --s.outstanding;
                if (userCb_)
                    userCb_(client_id, response, latency);
            });
        shards_.push_back(std::move(shard));
    }
}

Fleet::~Fleet()
{
    // Sequential fleets in one process (the scaling bench runs its
    // arms back to back) must not inherit this fleet's stream →
    // device bindings: stream ids restart with every fresh queue.
    obs::global().clearDeviceBindings();
}

uint32_t
Fleet::aliveCount() const
{
    uint32_t n = 0;
    for (const auto &s : shards_)
        n += s->alive ? 1 : 0;
    return n;
}

uint32_t
Fleet::homeShard(uint64_t user_id) const
{
    return static_cast<uint32_t>(mix64(user_id ^ config_.shardMapSeed) %
                                 shards_.size());
}

uint32_t
Fleet::remapShard(uint64_t user_id) const
{
    std::vector<uint32_t> survivors;
    survivors.reserve(shards_.size());
    for (uint32_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i]->alive)
            survivors.push_back(i);
    }
    RHYTHM_ASSERT(!survivors.empty(), "no surviving shards");
    // Mixed with a distinct constant so the remap is independent of
    // the home map (a dead shard's users spread over all survivors).
    const uint64_t h = mix64(user_id ^ config_.shardMapSeed ^
                             0x6465616476696365ull);
    return survivors[h % survivors.size()];
}

uint32_t
Fleet::leastOutstandingShard() const
{
    uint32_t best = shards_.size();
    for (uint32_t i = 0; i < shards_.size(); ++i) {
        if (!shards_[i]->alive)
            continue;
        if (best == shards_.size() ||
            shards_[i]->outstanding < shards_[best]->outstanding)
            best = i;
    }
    RHYTHM_ASSERT(best != shards_.size(), "no surviving shards");
    return best;
}

uint32_t
Fleet::routeShard(uint64_t user_id, uint32_t type_id) const
{
    const bool least =
        config_.balance == BalanceMode::LeastOutstanding ||
        std::find(config_.leastOutstandingTypes.begin(),
                  config_.leastOutstandingTypes.end(),
                  type_id) != config_.leastOutstandingTypes.end();
    if (least)
        return leastOutstandingShard();
    const uint32_t home = homeShard(user_id);
    if (shards_[home]->alive)
        return home;
    return remapShard(user_id);
}

void
Fleet::setStaticContent(const specweb::StaticContent *content)
{
    for (auto &s : shards_)
        s->server->setStaticContent(content);
}

void
Fleet::setResponseCallback(RhythmServer::ResponseCallback cb)
{
    userCb_ = std::move(cb);
}

const std::vector<std::vector<std::pair<uint64_t, uint64_t>>> &
Fleet::populateSessions(uint64_t per_shard, uint64_t max_user_id)
{
    for (uint32_t i = 0; i < shards_.size(); ++i) {
        if (config_.balance == BalanceMode::SessionHash) {
            pools_[i] = shards_[i]->server->sessions().populate(
                per_shard, max_user_id,
                [this, i](uint64_t user) { return homeShard(user) == i; });
        } else {
            // Identical pools everywhere: the arrays share one RNG
            // seed, so unfiltered population creates the same
            // (sid, user) pairs on every shard and any shard can
            // resolve any session.
            pools_[i] =
                shards_[i]->server->sessions().populate(per_shard,
                                                        max_user_id);
        }
    }
    return pools_;
}

bool
Fleet::injectRequest(std::string raw, uint64_t client_id, uint64_t user_id,
                     uint32_t type_id)
{
    uint32_t target = routeShard(user_id, type_id);
    if (!sessionRemap_.empty()) {
        // Re-sharded session? Follow the remap and rewrite the cookie
        // so the survivor's session array resolves it.
        const size_t pos = raw.find("session=");
        if (pos != std::string::npos) {
            uint64_t sid = 0;
            for (size_t i = pos + 8;
                 i < raw.size() && raw[i] >= '0' && raw[i] <= '9'; ++i)
                sid = sid * 10 + static_cast<uint64_t>(raw[i] - '0');
            auto it = sessionRemap_.find(sid);
            if (it != sessionRemap_.end()) {
                target = it->second.first;
                if (rewriteSessionCookie(raw, sid, it->second.second))
                    ++stats_.rewrittenCookies;
            }
        }
    }
    Shard &shard = *shards_[target];
    des::EventQueue::StreamScope scope(queue_, shard.stream);
    const bool ok = shard.server->injectRequest(std::move(raw), client_id);
    if (ok)
        ++shard.outstanding;
    return ok;
}

std::string
Fleet::execBackend(Shard &shard, const backend::BackendRequest &req,
                   uint64_t token)
{
    simt::NullTracer rec;
    const std::string wire = req.serialize();
    if (shard.recovery)
        return shard.recovery->execute(wire, token, rec);
    return shard.service->backendService().execute(wire, rec);
}

uint64_t
Fleet::beginCrossShardTransfer(uint64_t payer, uint64_t payee,
                               int64_t cents)
{
    const uint64_t xfer_id = ++crossSeq_;
    ++stats_.crossStarted;
    const uint64_t token_out = kCrossTokenBase | (xfer_id << 1);
    const uint64_t token_in = token_out | 1;
    const uint32_t payer_shard = routeShard(payer, 0);
    queue_.scheduleAfterOn(
        shards_[payer_shard]->stream, 0,
        [this, payer, payee, cents, token_out, token_in, payer_shard] {
            backend::BackendRequest debit;
            debit.op = backend::Op::XferOut;
            debit.userId = payer;
            debit.args = {std::to_string(payee), std::to_string(cents)};
            const std::string resp =
                execBackend(*shards_[payer_shard], debit, token_out);
            if (!backend::response::isOk(resp)) {
                ++stats_.crossRejected;
                return;
            }
            const uint32_t payee_shard = routeShard(payee, 0);
            queue_.scheduleAfterOn(
                shards_[payee_shard]->stream, config_.crossShardHop,
                [this, payer, payee, cents, token_in, payee_shard] {
                    backend::BackendRequest credit;
                    credit.op = backend::Op::XferIn;
                    credit.userId = payee;
                    credit.args = {std::to_string(payer),
                                   std::to_string(cents)};
                    execBackend(*shards_[payee_shard], credit, token_in);
                    ++stats_.crossCompleted;
                });
        });
    return xfer_id;
}

void
Fleet::killDevice(uint32_t index)
{
    RHYTHM_ASSERT(index < shards_.size(), "no such device");
    Shard &dead = *shards_[index];
    RHYTHM_ASSERT(dead.alive, "device already dead");
    RHYTHM_ASSERT(aliveCount() > 1, "cannot kill the last device");
    ++stats_.devicesKilled;
    dead.alive = false;
    if (dead.recovery) {
        // The serving process restarts: replay the journal over the
        // last checkpoint. Every committed (journaled) transaction
        // survives by construction — the chaos test asserts the digest.
        des::EventQueue::StreamScope scope(queue_, dead.stream);
        dead.recovery->crashAndRecover(false);
    }
    // Drain the dead shard's sessions to the survivors: re-create each
    // pooled session on the user's remap target and remember the old →
    // new session id mapping for the front-end cookie rewrite.
    simt::NullTracer rec;
    for (const auto &[sid, user] : pools_[index]) {
        const uint32_t target = remapShard(user);
        Shard &survivor = *shards_[target];
        des::EventQueue::StreamScope scope(queue_, survivor.stream);
        // create() journals itself through the survivor's session
        // mutation hook when recovery is attached.
        const uint64_t new_sid = survivor.server->sessions().create(user, rec);
        if (new_sid != 0) {
            sessionRemap_[sid] = {target, new_sid};
            pools_[target].emplace_back(new_sid, user);
            ++stats_.sessionsResharded;
        } else {
            ++stats_.reshardDrops;
        }
    }
    pools_[index].clear();
}

void
Fleet::flushAll()
{
    for (auto &s : shards_) {
        des::EventQueue::StreamScope scope(queue_, s->stream);
        s->server->flush();
    }
}

bool
Fleet::drainedAll() const
{
    for (const auto &s : shards_) {
        if (!s->server->drained())
            return false;
    }
    return true;
}

uint64_t
Fleet::totalAccepted() const
{
    uint64_t n = 0;
    for (const auto &s : shards_)
        n += s->server->stats().requestsAccepted;
    return n;
}

uint64_t
Fleet::totalResponses() const
{
    uint64_t n = 0;
    for (const auto &s : shards_)
        n += s->server->stats().responsesCompleted;
    return n;
}

uint64_t
Fleet::totalErrors() const
{
    uint64_t n = 0;
    for (const auto &s : shards_)
        n += s->server->stats().errorResponses;
    return n;
}

uint64_t
Fleet::totalShed() const
{
    uint64_t n = 0;
    for (const auto &s : shards_)
        n += s->server->stats().requestsShed;
    return n;
}

uint64_t
Fleet::totalReaderDrops() const
{
    uint64_t n = 0;
    for (const auto &s : shards_)
        n += s->server->stats().readerDrops;
    return n;
}

uint64_t
Fleet::totalCohorts() const
{
    uint64_t n = 0;
    for (const auto &s : shards_)
        n += s->server->stats().cohortsLaunched;
    return n;
}

} // namespace rhythm::core
