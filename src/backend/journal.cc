#include "backend/journal.hh"

#include <charconv>

#include "util/hash.hh"
#include "util/logging.hh"

namespace rhythm::backend {
namespace {

/** Formats a 64-bit checksum as 16 lowercase hex digits. */
void
appendHex16(std::string &out, uint64_t v)
{
    static const char kDigits[] = "0123456789abcdef";
    for (int shift = 60; shift >= 0; shift -= 4)
        out.push_back(kDigits[(v >> shift) & 0xf]);
}

/** Parses a decimal uint64 ending at '|'. @return false on junk. */
bool
parseU64Field(std::string_view data, size_t &pos, uint64_t &out)
{
    const size_t bar = data.find('|', pos);
    if (bar == std::string_view::npos || bar == pos)
        return false;
    const char *first = data.data() + pos;
    const char *last = data.data() + bar;
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc{} || ptr != last)
        return false;
    pos = bar + 1;
    return true;
}

} // namespace

uint64_t
journalChecksum(std::string_view bytes)
{
    util::Fnv1a64 f;
    util::Mix64 m;
    uint64_t word = 0;
    int shift = 0;
    for (char c : bytes) {
        word |= static_cast<uint64_t>(static_cast<uint8_t>(c)) << shift;
        shift += 8;
        if (shift == 64) {
            f.update(word);
            m.update(word);
            word = 0;
            shift = 0;
        }
    }
    if (shift != 0) {
        f.update(word);
        m.update(word);
    }
    f.update(bytes.size());
    m.update(bytes.size());
    m.update(f.digest());
    return m.digest();
}

void
Journal::append(const JournalRecord &record)
{
    lastRecordOffset_ = data_.size();
    // The checksummed region runs from <kind> through <payload>.
    std::string body;
    body.reserve(record.payload.size() + 32);
    body.push_back(record.kind);
    body.push_back('|');
    body += std::to_string(record.token);
    body.push_back('|');
    body += std::to_string(record.payload.size());
    body.push_back('|');
    body += record.payload;

    data_ += "J|";
    data_ += body;
    data_.push_back('|');
    appendHex16(data_, journalChecksum(body));
    data_.push_back('\n');
    ++records_;
}

void
Journal::tearLastRecord()
{
    if (data_.empty())
        return;
    RHYTHM_ASSERT(lastRecordOffset_ < data_.size());
    const size_t record_bytes = data_.size() - lastRecordOffset_;
    data_.resize(lastRecordOffset_ + record_bytes / 2);
}

void
Journal::clear()
{
    data_.clear();
    records_ = 0;
    lastRecordOffset_ = 0;
}

void
Journal::setData(std::string data, uint64_t records)
{
    data_ = std::move(data);
    records_ = records;
    lastRecordOffset_ = 0;
}

Journal::ScanResult
Journal::scan(std::string_view data)
{
    ScanResult result;
    size_t pos = 0;
    while (pos < data.size()) {
        const size_t record_start = pos;
        const auto torn = [&]() {
            result.torn = true;
            result.tornBytes = data.size() - record_start;
            return result;
        };

        if (data.size() - pos < 4 || data[pos] != 'J' ||
            data[pos + 1] != '|')
            return torn();
        pos += 2;
        const size_t body_start = pos;

        JournalRecord rec;
        rec.kind = data[pos];
        if ((rec.kind != 'B' && rec.kind != 'C' && rec.kind != 'D') ||
            pos + 1 >= data.size() || data[pos + 1] != '|')
            return torn();
        pos += 2;

        uint64_t len = 0;
        if (!parseU64Field(data, pos, rec.token) ||
            !parseU64Field(data, pos, len))
            return torn();

        // Payload + '|' + 16 hex digits + '\n'.
        if (data.size() - pos < len + 18)
            return torn();
        rec.payload.assign(data.data() + pos, len);
        pos += len;
        if (data[pos] != '|')
            return torn();
        const size_t body_end = pos;
        ++pos;

        uint64_t sum = 0;
        for (int i = 0; i < 16; ++i) {
            const char c = data[pos + i];
            uint64_t nibble;
            if (c >= '0' && c <= '9')
                nibble = static_cast<uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                nibble = static_cast<uint64_t>(c - 'a') + 10;
            else
                return torn();
            sum = (sum << 4) | nibble;
        }
        pos += 16;
        if (data[pos] != '\n')
            return torn();
        ++pos;

        if (sum != journalChecksum(data.substr(body_start,
                                               body_end - body_start)))
            return torn();
        result.records.push_back(std::move(rec));
    }
    return result;
}

} // namespace rhythm::backend
