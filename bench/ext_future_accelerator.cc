/**
 * @file
 * Extension experiment: future data-parallel server accelerators (paper
 * Section 8 — "we plan to explore ways to increase the efficiency of
 * Rhythm by designing data parallel processors specialized for server
 * workloads").
 *
 * Evaluates the Banking workload on a ladder of hypothetical designs
 * derived from the Titan C configuration:
 *
 *  - Titan C            — the paper's best platform (reference point).
 *  - +HBM               — 2x memory bandwidth (stacked DRAM).
 *  - +SMs               — 2x SM array (+80% device power).
 *  - server SIMT        — both, plus the server-specialization savings
 *    the paper anticipates: no graphics hardware (lower idle), finer
 *    clock gating (lower active floor), low-power DRAM.
 */

#include <iostream>

#include "bench/common.hh"
#include "platform/titan.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("ext_future_accelerator", argc, argv);
    bench::banner("Extension: future server accelerators",
                  "Section 8 (specialized data-parallel server designs)");

    struct Design
    {
        const char *name;
        int smMultiplier;
        double bwMultiplier;
        double peakWatts;
        double activeFloor;
        double idleWatts;
    };
    const Design designs[] = {
        {"Titan C (paper best)", 1, 1.0, 225.0, 0.45, 74.0},
        {"+HBM (2x bandwidth)", 1, 2.0, 235.0, 0.45, 74.0},
        {"+SMs (2x array)", 2, 1.0, 405.0, 0.45, 74.0},
        {"server SIMT (both + specialization)", 2, 2.0, 380.0, 0.25,
         40.0},
    };

    platform::IsolatedRunOptions opts;
    opts.cohorts = 10;
    opts.users = 2000;
    opts.laneSample = 128;
    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.apply(opts);
    faults.recordConfig(report);
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    overlap.apply(opts);
    overlap.recordConfig(report);

    TableWriter table({"design", "MReqs/s", "latency ms", "dynamic W",
                       "reqs/J wall", "vs Titan C"});
    double baseline = 0.0;
    for (const Design &d : designs) {
        platform::TitanVariant v = platform::titanC();
        v.name = d.name;
        v.device.numSms *= d.smMultiplier;
        v.device.memBandwidthGBs *= d.bwMultiplier;
        v.power.devicePeakWatts = d.peakWatts;
        v.power.deviceActiveFloor = d.activeFloor;
        v.power.idleWatts = d.idleWatts;
        // More SMs need proportionally more cohorts in flight.
        v.server.cohortContexts =
            8u * static_cast<uint32_t>(d.smMultiplier);

        platform::TitanWorkloadResult r =
            platform::evaluateTitan(v, opts);
        if (baseline == 0.0)
            baseline = r.throughput;
        const std::string key = bench::slug(d.name);
        report.metric(key + ".throughput", r.throughput);
        report.metric(key + ".reqs_per_joule_wall", r.reqsPerJouleWall);
        table.addRow({d.name, bench::fmt(r.throughput / 1e6, 2),
                      bench::fmt(r.avgLatencyMs, 1),
                      bench::fmt(r.dynamicWatts, 0),
                      bench::fmt(r.reqsPerJouleWall, 0),
                      bench::fmt(r.throughput / baseline, 2) + "x"});
    }
    table.printAscii(std::cout);
    std::cout
        << "No paper reference — this experiment extends the paper. "
           "Expected shape: the\nBanking pipeline on Titan C is "
           "memory-bound (transposes & response stores), so\nbandwidth "
           "scales throughput more than SMs do; combining both with "
           "server\nspecialization compounds throughput and efficiency "
           "gains.\n";
    report.config("cohorts", opts.cohorts);
    if (!report.write())
        return 1;
    return 0;
}
