/**
 * @file
 * Figure 2: potential speedup of the SPECWeb2009 Banking workload on
 * data-parallel hardware, relative to ideal (linear) speedup.
 *
 * Methodology (paper Section 2.3): capture dynamic basic-block traces of
 * independent same-type requests, merge them in lockstep, and report
 * (sum of trace lengths / merged length) normalized by the trace count.
 * The paper merged 2-6 Pin traces per type (most types: 5) and observed
 * nearly linear speedup for every request type.
 */

#include <iostream>

#include "analysis/similarity.hh"
#include "bench/common.hh"
#include "specweb/types.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("fig2_similarity", argc, argv);
    bench::banner("Figure 2: request similarity / potential SIMD speedup",
                  "Section 2.3, Figure 2 (nearly linear for all types)");

    TableWriter table({"request type", "traces", "sum blocks",
                       "merged blocks", "speedup",
                       "normalized (paper: ~1.0)"});

    double min_normalized = 1.0;
    for (size_t i = 0; i < specweb::kNumRequestTypes; ++i) {
        const auto &info = specweb::typeTable()[i];
        // The paper merges 2-6 traces per type, most types 5.
        const int traces = 5;
        auto captured =
            analysis::captureRequestTraces(info.type, traces, 1000, 21);
        std::vector<const simt::ThreadTrace *> lanes;
        for (auto &t : captured)
            lanes.push_back(&t);
        auto r = analysis::measureSimilarity(lanes);
        min_normalized = std::min(min_normalized, r.normalizedSpeedup);
        report.metric(bench::slug(info.name) + ".normalized_speedup",
                      r.normalizedSpeedup);
        table.addRow({std::string(info.name), std::to_string(traces),
                      std::to_string(r.sumBlocks),
                      std::to_string(r.mergedBlocks),
                      bench::fmt(r.speedup, 2),
                      bench::fmt(r.normalizedSpeedup, 3)});
    }
    table.printAscii(std::cout);
    std::cout << "Minimum normalized speedup across types: "
              << bench::fmt(min_normalized, 3)
              << " (paper: nearly linear, ~0.95-1.0)\n";
    report.config("traces_per_type", 5.0);
    report.metric("min_normalized_speedup", min_normalized);
    if (!report.write())
        return 1;
    return 0;
}
