/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (request mixes, arrival
 * processes, session identifiers, synthetic database population) flows
 * through Rng so that every experiment is reproducible from a seed.
 */

#ifndef RHYTHM_UTIL_RNG_HH
#define RHYTHM_UTIL_RNG_HH

#include <array>
#include <cstdint>

#include "util/logging.hh"

namespace rhythm {

/**
 * A small, fast, deterministic generator (xoshiro256**).
 *
 * Not cryptographic; used only for workload synthesis and sampling.
 */
class Rng
{
  public:
    /** Constructs a generator from a 64-bit seed via splitmix64. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Returns the next 64 random bits. */
    uint64_t next();

    /** Returns a uniform integer in [0, bound). Requires bound > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** Returns a uniform integer in [lo, hi]. Requires lo <= hi. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Returns a uniform double in [0, 1). */
    double nextDouble();

    /** Returns true with the given probability (clamped to [0, 1]). */
    bool nextBool(double probability);

    /**
     * Samples an exponential inter-arrival gap with the given mean.
     * @param mean Mean of the distribution; must be positive.
     */
    double nextExponential(double mean);

    /**
     * Raw generator state, for snapshot/restore (crash-recovery
     * checkpoints must capture every deterministic input, and session
     * id probing draws from an Rng). A restored generator continues
     * the exact variate stream of the captured one.
     */
    std::array<uint64_t, 4> state() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    /** Restores state captured with state(). */
    void setState(const std::array<uint64_t, 4> &s)
    {
        for (size_t i = 0; i < 4; ++i)
            state_[i] = s[i];
    }

  private:
    uint64_t state_[4];
};

} // namespace rhythm

#endif // RHYTHM_UTIL_RNG_HH
