file(REMOVE_RECURSE
  "../bench/sec64_cohort_size"
  "../bench/sec64_cohort_size.pdb"
  "CMakeFiles/sec64_cohort_size.dir/sec64_cohort_size.cc.o"
  "CMakeFiles/sec64_cohort_size.dir/sec64_cohort_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec64_cohort_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
