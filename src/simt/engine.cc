#include "simt/engine.hh"

#include <algorithm>
#include <limits>
#include <span>
#include <unordered_map>
#include <utility>

#include "obs/obs.hh"
#include "util/logging.hh"

namespace rhythm::simt {
namespace {

/** One warp's slice of a launch's trace array. */
struct WarpWork
{
    const ThreadTrace *const *lanes = nullptr;
    size_t laneCount = 0;
    const WarpModel *model = nullptr;
    /** Per-lane type tags of a fused launch's warp, or null (untagged). */
    const uint32_t *tags = nullptr;

    std::span<const ThreadTrace *const> span() const
    {
        return std::span<const ThreadTrace *const>(lanes, laneCount);
    }

    std::span<const uint32_t> tagSpan() const
    {
        return std::span<const uint32_t>(tags, tags ? laneCount : 0);
    }
};

/**
 * Memoized warp simulation (see engine.hh and profile_cache.hh):
 * parallel fingerprinting, serial canonical classification against the
 * cross-launch LRU plus an intra-batch equivalence map, parallel
 * simulation of class representatives only, then serial replication
 * and cache publication. Every serial step walks warps in canonical
 * (flattened) order, so cache state and all emitted metrics are
 * identical for any worker count — and the filled slots are bit-equal
 * to the uncached path's.
 */
void
profileMemoized(util::ThreadPool &pool, ProfileCache &cache,
                const std::vector<WarpWork> &work,
                std::vector<WarpStats> &slots)
{
    std::vector<WarpKey> keys(work.size());
    pool.parallelFor(work.size(), [&work, &keys](size_t i) {
        keys[i] =
            warpFingerprint(work[i].span(), *work[i].model, work[i].tagSpan());
    });

    // Classification: cross-launch hits fill their slots immediately;
    // the rest form intra-batch equivalence classes keyed on the
    // fingerprint, each represented by its first (canonical) member.
    constexpr size_t kFromCache = std::numeric_limits<size_t>::max();
    ProfileCache::Stats &cs = cache.stats();
    const ProfileCache::Stats before = cs;
    std::vector<size_t> rep(work.size());
    std::vector<size_t> to_sim;
    std::unordered_map<WarpKey, size_t, WarpKeyHash> classes;
    for (size_t i = 0; i < work.size(); ++i) {
        if (const WarpStats *hit = cache.find(keys[i])) {
            slots[i] = *hit;
            rep[i] = kFromCache;
            cs.bytesSaved += warpTraceBytes(work[i].span());
            continue;
        }
        auto [it, inserted] = classes.try_emplace(keys[i], i);
        rep[i] = it->second;
        if (inserted) {
            to_sim.push_back(i);
        } else {
            ++cs.intraHits;
            cs.bytesSaved += warpTraceBytes(work[i].span());
        }
    }
    cs.misses += to_sim.size();

    pool.parallelFor(to_sim.size(), [&work, &slots, &to_sim](size_t j) {
        const size_t i = to_sim[j];
        slots[i] = simulateWarp(work[i].span(), *work[i].model);
    });

    for (size_t i = 0; i < work.size(); ++i) {
        if (rep[i] != kFromCache && rep[i] != i)
            slots[i] = slots[rep[i]];
    }
    for (size_t i : to_sim)
        cache.insert(keys[i], slots[i]);

    // Aggregate emission equals the uncached path's per-warp total, so
    // the engine counter stays byte-identical with the cache on. The
    // cache's own meta-metrics live under a distinct "profile_cache."
    // prefix that comparable outputs exclude (see rhythm_sim).
    OBS_COUNTER_ADD("engine.warps_simulated",
                    static_cast<uint64_t>(work.size()));
    if (OBS_ENABLED()) {
        OBS_COUNTER_ADD("profile_cache.hits", cs.hits - before.hits);
        OBS_COUNTER_ADD("profile_cache.intra_hits",
                        cs.intraHits - before.intraHits);
        OBS_COUNTER_ADD("profile_cache.misses", cs.misses - before.misses);
        OBS_COUNTER_ADD("profile_cache.evictions",
                        cs.evictions - before.evictions);
        OBS_GAUGE_SET("profile_cache.bytes_saved",
                      static_cast<double>(cs.bytesSaved));
        OBS_GAUGE_SET("profile_cache.entries",
                      static_cast<double>(cache.size()));
    }
}

} // namespace

Engine::Engine(int num_sms, util::ThreadPool *pool)
    : numSms_(num_sms), pool_(pool)
{
    RHYTHM_ASSERT(numSms_ >= 1);
    sms_.resize(static_cast<size_t>(numSms_));
}

util::ThreadPool &
Engine::pool() const
{
    return pool_ ? *pool_ : util::simPool();
}

KernelProfile
Engine::profile(const std::vector<const ThreadTrace *> &traces,
                const WarpModel &model, std::string name)
{
    Launch launch;
    launch.traces = &traces;
    launch.model = &model;
    launch.name = std::move(name);
    std::vector<KernelProfile> profiles = profileMany({std::move(launch)});
    return std::move(profiles.front());
}

std::vector<KernelProfile>
Engine::profileMany(const std::vector<Launch> &launches)
{
    // Flatten every warp of every launch into one index space so the
    // pool load-balances across launch boundaries.
    std::vector<WarpWork> work;
    std::vector<size_t> warpBase(launches.size() + 1, 0);
    for (size_t li = 0; li < launches.size(); ++li) {
        const Launch &l = launches[li];
        RHYTHM_ASSERT(l.traces != nullptr && l.model != nullptr);
        const auto &traces = *l.traces;
        const size_t width = static_cast<size_t>(l.model->warpWidth);
        RHYTHM_ASSERT(width >= 1);
        RHYTHM_ASSERT(!l.laneTags || l.laneTags->size() == traces.size(),
                      "lane tags must align with traces");
        for (size_t base = 0; base < traces.size(); base += width) {
            work.push_back(WarpWork{traces.data() + base,
                                    std::min(width, traces.size() - base),
                                    l.model,
                                    l.laneTags ? l.laneTags->data() + base
                                               : nullptr});
        }
        warpBase[li + 1] = work.size();
    }

    // Fork: each warp writes only its own slot. Which worker simulates
    // which warp is irrelevant — the slots are merged canonically below.
    std::vector<WarpStats> slots(work.size());
    if (cache_ && !work.empty()) {
        profileMemoized(pool(), *cache_, work, slots);
    } else {
        pool().parallelFor(work.size(), [&work, &slots](size_t i) {
            slots[i] = simulateWarp(work[i].span(), *work[i].model);
            // Cross-thread metric emission; the obs counter sinks are
            // atomic, and the total is thread-count-invariant.
            OBS_COUNTER_ADD("engine.warps_simulated", 1);
        });
    }

    // Join done; merge on the calling thread in canonical order:
    // launch index, then warp index within the launch.
    std::vector<KernelProfile> profiles;
    profiles.reserve(launches.size());
    for (size_t li = 0; li < launches.size(); ++li) {
        const size_t begin = warpBase[li];
        const size_t end = warpBase[li + 1];
        const std::span<const WarpStats> launchStats(slots.data() + begin,
                                                     end - begin);
        profiles.push_back(KernelProfile::fromWarpStats(
            launchStats, launches[li].traces->size(), launches[li].name));
        // Per-SM accounting: warp w of a launch runs on SM (w % numSms).
        for (size_t w = 0; w < launchStats.size(); ++w) {
            SmCounters &sm = sms_[w % static_cast<size_t>(numSms_)];
            ++sm.warps;
            sm.stats.merge(launchStats[w]);
        }
        const size_t touched =
            std::min(launchStats.size(), static_cast<size_t>(numSms_));
        for (size_t s = 0; s < touched; ++s)
            ++sms_[s].launches;
        ++launches_;
        warps_ += launchStats.size();
    }
    return profiles;
}

void
Engine::resetCounters()
{
    std::fill(sms_.begin(), sms_.end(), SmCounters{});
    launches_ = 0;
    warps_ = 0;
}

} // namespace rhythm::simt
