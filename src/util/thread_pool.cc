#include "util/thread_pool.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/logging.hh"

namespace rhythm::util {
namespace {

/// Set while a thread is executing chunks of some pool's job; nested
/// parallel regions detect it and run inline instead of re-entering
/// the pool (which would deadlock the barrier).
thread_local bool tlsInParallelRegion = false;

/// RAII marker for tlsInParallelRegion. Saves and restores the previous
/// value: an inline nested region ending must not make its enclosing
/// worker chunk look top-level again.
struct RegionScope
{
    bool prev;
    RegionScope() : prev(tlsInParallelRegion) { tlsInParallelRegion = true; }
    ~RegionScope() { tlsInParallelRegion = prev; }
};

} // namespace

ThreadPool::ThreadPool(unsigned threads)
    : threads_(std::max(threads, 1u))
{
    // The calling thread participates in every region, so spawn one
    // fewer worker than the requested width.
    workers_.reserve(threads_ - 1);
    for (unsigned i = 0; i + 1 < threads_; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::parallelFor(size_t n, const IndexBody &body)
{
    parallelRanges(n, 1, [&body](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            body(i);
    });
}

void
ThreadPool::parallelRanges(size_t n, size_t grain, const RangeBody &body)
{
    if (n == 0)
        return;
    grain = std::max<size_t>(grain, 1);
    ++regions_;
    // Serial pool, nested call from a worker, or trivially small job:
    // run inline on the calling thread. Identical results by contract
    // (per-index output slots, canonical merge by the caller).
    if (threads_ == 1 || tlsInParallelRegion || n <= grain) {
        RegionScope scope;
        body(0, n);
        return;
    }

    Job job;
    job.body = &body;
    job.n = n;
    job.grain = grain;
    job.chunks = (n + grain - 1) / grain;
    job.errors.assign(job.chunks, nullptr);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        RHYTHM_ASSERT(job_ == nullptr, "pool re-entered concurrently");
        job_ = &job;
        ++generation_;
    }
    workCv_.notify_all();
    {
        // The owner works too; runChunks returns when no unclaimed
        // chunks remain (other threads may still be executing theirs).
        RegionScope scope;
        runChunks(job);
    }
    {
        // Wait not just for all chunks to complete but for every worker
        // to have *left* the job — `job` lives on this stack frame.
        std::unique_lock<std::mutex> lock(mutex_);
        doneCv_.wait(lock, [this, &job]() {
            return job.completed == job.chunks && activeWorkers_ == 0;
        });
        job_ = nullptr;
    }
    // Deterministic propagation: lowest failing chunk index wins,
    // independent of which thread hit it or in what order.
    for (auto &err : job.errors) {
        if (err)
            std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [this, seen]() {
                return shutdown_ || (job_ != nullptr && generation_ != seen);
            });
            if (shutdown_)
                return;
            seen = generation_;
            job = job_;
            ++activeWorkers_;
        }
        {
            RegionScope scope;
            runChunks(*job);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --activeWorkers_;
            if (activeWorkers_ == 0)
                doneCv_.notify_all();
        }
    }
}

void
ThreadPool::runChunks(Job &job)
{
    for (;;) {
        size_t chunk;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (job.nextChunk >= job.chunks)
                return;
            chunk = job.nextChunk++;
        }
        const size_t begin = chunk * job.grain;
        const size_t end = std::min(begin + job.grain, job.n);
        try {
            (*job.body)(begin, end);
        } catch (...) {
            job.errors[chunk] = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++job.completed;
            if (job.completed == job.chunks)
                doneCv_.notify_all();
        }
    }
}

namespace {

unsigned gSimThreads = 1;
std::unique_ptr<ThreadPool> gSimPool;

} // namespace

ThreadPool &
simPool()
{
    if (!gSimPool || gSimPool->threads() != gSimThreads)
        gSimPool = std::make_unique<ThreadPool>(gSimThreads);
    return *gSimPool;
}

void
setSimThreads(unsigned threads)
{
    gSimThreads = std::max(threads, 1u);
    gSimPool.reset();
}

unsigned
simThreads()
{
    return gSimThreads;
}

} // namespace rhythm::util
