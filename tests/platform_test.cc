/**
 * @file
 * Tests for the platform models: CPU rows, scaling analysis, workload
 * measurement, Titan variants and the PCIe bound, plus Figure 2
 * similarity analysis.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/fingerprint.hh"
#include "analysis/similarity.hh"
#include "platform/cpu.hh"
#include "platform/measure.hh"
#include "platform/titan.hh"

namespace rhythm::platform {
namespace {

// Reference: the paper's mix-weighted Table 2 instruction count.
constexpr double kPaperMixInsts = 331507.0;

TEST(Cpu, StandardPlatformsMatchTable3Power)
{
    auto platforms = standardCpuPlatforms();
    ASSERT_EQ(platforms.size(), 6u);
    EXPECT_EQ(platforms[0].name, "Core i5 1 worker");
    EXPECT_DOUBLE_EQ(platforms[0].idleWatts, 47.0);
    EXPECT_DOUBLE_EQ(platforms[1].dynamicWatts(), 51.0);
    EXPECT_DOUBLE_EQ(platforms[3].dynamicWatts(), 111.0);
    EXPECT_DOUBLE_EQ(platforms[5].dynamicWatts(), 2.5);
}

TEST(Cpu, EvaluationReproducesTable3Throughputs)
{
    // With the paper's instruction count, each fitted row must land
    // near the paper's measured throughput (within 10%).
    const double expected[6] = {75e3, 282e3, 331e3, 377e3, 8e3, 16e3};
    auto platforms = standardCpuPlatforms();
    for (size_t i = 0; i < platforms.size(); ++i) {
        CpuResult r = evaluateCpu(platforms[i], kPaperMixInsts);
        EXPECT_NEAR(r.throughput / expected[i], 1.0, 0.10)
            << platforms[i].name << " got " << r.throughput;
    }
}

TEST(Cpu, EfficiencyOrderingMatchesPaper)
{
    auto platforms = standardCpuPlatforms();
    auto eff = [&](size_t i) {
        return evaluateCpu(platforms[i], kPaperMixInsts)
            .reqsPerJouleDynamic;
    };
    // A9 2w > i5 4w > i7 8w (Table 3 dynamic efficiency ordering).
    EXPECT_GT(eff(5), eff(1));
    EXPECT_GT(eff(1), eff(3));
}

TEST(Cpu, LatencySubMillisecond)
{
    auto platforms = standardCpuPlatforms();
    for (const auto &p : platforms) {
        CpuResult r = evaluateCpu(p, kPaperMixInsts);
        EXPECT_LT(r.latencyMs, 1.0) << p.name;
        EXPECT_GT(r.latencyMs, 0.001) << p.name;
    }
}

TEST(Cpu, ScalingMatchesSection62)
{
    // 192 ARM cores / 21 i5 cores to match Titan B's 1.535M reqs/s.
    const double titan_b = 1.535e6;
    CpuResult arm = evaluateCpu(armA9OneWorker(), kPaperMixInsts);
    CpuResult i5 = evaluateCpu(corei5OneWorker(), kPaperMixInsts);
    ScalingResult arm_scale =
        scaleToMatch("ARM A9", titan_b, arm.throughput, 1.0, 232.0);
    ScalingResult i5_scale =
        scaleToMatch("Core i5", titan_b, i5.throughput, 10.0, 232.0);
    EXPECT_NEAR(arm_scale.coresNeeded, 192, 20);
    EXPECT_NEAR(i5_scale.coresNeeded, 21, 3);
    EXPECT_GT(arm_scale.headroomWatts, 0.0);
    EXPECT_LT(arm_scale.headroomPercent, 30.0);
}

TEST(Measure, WorkloadMeasurementTracksTable2)
{
    WorkloadMeasurement wm = measureWorkload(40, 500, 9);
    for (size_t i = 0; i < specweb::kNumRequestTypes; ++i) {
        const auto &info = specweb::typeTable()[i];
        const auto &tm = wm.perType[i];
        EXPECT_EQ(tm.type, info.type);
        EXPECT_NEAR(tm.instructionsPerRequest / info.paperInstructions,
                    1.0, 0.3)
            << info.name;
        EXPECT_NEAR(tm.responseBytes / (info.specwebResponseKb * 1024),
                    1.0, 0.25)
            << info.name;
        EXPECT_DOUBLE_EQ(tm.validationRate, 1.0) << info.name;
    }
    EXPECT_NEAR(wm.mixWeightedInstructions / kPaperMixInsts, 1.0, 0.25);
}

TEST(Titan, VariantsDifferAsDescribed)
{
    TitanVariant a = titanA(), b = titanB(), c = titanC();
    EXPECT_TRUE(a.server.networkOverPcie);
    EXPECT_FALSE(a.server.backendOnDevice);
    EXPECT_FALSE(b.server.networkOverPcie);
    EXPECT_TRUE(b.server.backendOnDevice);
    EXPECT_FALSE(b.server.offloadResponseTranspose);
    EXPECT_TRUE(c.server.offloadResponseTranspose);
    EXPECT_EQ(a.device.hardwareQueues, 32); // HyperQ
    EXPECT_EQ(a.server.cohortSize, 4096u);
}

TEST(Titan, PcieBoundMatchesHandArithmetic)
{
    TitanVariant a = titanA();
    // account summary: 32 KiB response buffer dominates D2H, 1 backend
    // trip: D2H = 1 KiB + 32 KiB.
    const double expected =
        a.device.pcieBandwidthGBs * 1e9 / ((1 + 32) * 1024.0);
    EXPECT_NEAR(pcieThroughputBound(a, specweb::RequestType::AccountSummary),
                expected, 1.0);
    // Titan B has no PCIe path.
    EXPECT_TRUE(std::isinf(
        pcieThroughputBound(titanB(), specweb::RequestType::Login)));
}

TEST(Titan, IsolatedRunCompletesAndIsPcieBound)
{
    // Small-scale Titan A run: throughput must be below (and near) the
    // analytic PCIe bound — Figure 9's claim.
    TitanVariant a = titanA();
    a.server.cohortSize = 512;
    a.server.cohortContexts = 6;
    IsolatedRunOptions opts;
    opts.cohorts = 6;
    opts.users = 500;
    opts.laneSample = 64;
    TypeRunResult r =
        runIsolatedType(a, specweb::RequestType::AccountSummary, opts);
    EXPECT_EQ(r.requests, 6u * 512);
    EXPECT_GT(r.throughput, 0.0);
    const double bound =
        pcieThroughputBound(a, specweb::RequestType::AccountSummary);
    EXPECT_LE(r.throughput, bound * 1.001);
    EXPECT_GT(r.throughput, bound * 0.5);
    EXPECT_GT(r.copyUtilization, 0.5); // the link is the bottleneck
    EXPECT_GT(r.dynamicWatts, 0.0);
}

TEST(Titan, TitanBOutperformsTitanA)
{
    IsolatedRunOptions opts;
    opts.cohorts = 6;
    opts.users = 500;
    opts.laneSample = 64;
    TitanVariant a = titanA(), b = titanB();
    a.server.cohortSize = b.server.cohortSize = 512;
    a.server.cohortContexts = b.server.cohortContexts = 6;
    TypeRunResult ra =
        runIsolatedType(a, specweb::RequestType::BillPay, opts);
    TypeRunResult rb =
        runIsolatedType(b, specweb::RequestType::BillPay, opts);
    EXPECT_GT(rb.throughput, ra.throughput * 1.5);
    EXPECT_GT(rb.reqsPerJouleDynamic, ra.reqsPerJouleDynamic);
}

TEST(Titan, TitanCOutperformsTitanB)
{
    IsolatedRunOptions opts;
    opts.cohorts = 6;
    opts.users = 500;
    opts.laneSample = 64;
    TitanVariant b = titanB(), c = titanC();
    b.server.cohortSize = c.server.cohortSize = 512;
    b.server.cohortContexts = c.server.cohortContexts = 6;
    TypeRunResult rb =
        runIsolatedType(b, specweb::RequestType::AccountSummary, opts);
    TypeRunResult rc =
        runIsolatedType(c, specweb::RequestType::AccountSummary, opts);
    EXPECT_GT(rc.throughput, rb.throughput);
    EXPECT_GT(rc.reqsPerJouleDynamic, rb.reqsPerJouleDynamic);
}

} // namespace

namespace analysis_tests {

using rhythm::analysis::captureRequestTraces;
using rhythm::analysis::measureSimilarity;

TEST(Similarity, IdenticalTracesAreIdealSpeedup)
{
    simt::ThreadTrace t;
    simt::RecordingTracer rec(t);
    for (uint32_t b = 0; b < 20; ++b)
        rec.block(b, 5);
    std::vector<const simt::ThreadTrace *> lanes(6, &t);
    auto r = measureSimilarity(lanes);
    EXPECT_EQ(r.mergedBlocks, 20u);
    EXPECT_EQ(r.sumBlocks, 120u);
    EXPECT_DOUBLE_EQ(r.normalizedSpeedup, 1.0);
}

TEST(Similarity, DisjointTracesHaveNoSpeedup)
{
    std::vector<simt::ThreadTrace> traces(4);
    for (uint32_t i = 0; i < 4; ++i) {
        simt::RecordingTracer rec(traces[i]);
        for (uint32_t b = 0; b < 10; ++b)
            rec.block(1000 * (i + 1) + b, 5);
    }
    std::vector<const simt::ThreadTrace *> lanes;
    for (auto &t : traces)
        lanes.push_back(&t);
    auto r = measureSimilarity(lanes);
    EXPECT_EQ(r.mergedBlocks, 40u);
    EXPECT_DOUBLE_EQ(r.speedup, 1.0);
    EXPECT_DOUBLE_EQ(r.normalizedSpeedup, 0.25);
}

TEST(Similarity, BankingRequestsAreNearIdeal)
{
    // Figure 2's headline: every request type merges near-linearly.
    for (specweb::RequestType type :
         {specweb::RequestType::Login, specweb::RequestType::Logout,
          specweb::RequestType::AccountSummary}) {
        auto traces = captureRequestTraces(type, 5, 300, 17);
        std::vector<const simt::ThreadTrace *> lanes;
        for (auto &t : traces)
            lanes.push_back(&t);
        auto r = measureSimilarity(lanes);
        EXPECT_GT(r.normalizedSpeedup, 0.85)
            << specweb::typeInfo(type).name;
        EXPECT_LE(r.normalizedSpeedup, 1.0 + 1e-9);
    }
}

TEST(Similarity, EmptyInputIsSafe)
{
    auto r = measureSimilarity({});
    EXPECT_EQ(r.traceCount, 0u);
    EXPECT_EQ(r.speedup, 0.0);
}

using rhythm::analysis::measureSimilarityFast;

/// Asserts the fast path is bit-equal to the offline merge — exact
/// double comparison on purpose, since the scheduler fields the metric
/// consumes are produced by the identical code path.
void
expectFastPathBitEqual(const std::vector<const simt::ThreadTrace *> &lanes)
{
    const auto off = measureSimilarity(lanes);
    const auto fast = measureSimilarityFast(lanes);
    EXPECT_EQ(fast.traceCount, off.traceCount);
    EXPECT_EQ(fast.sumBlocks, off.sumBlocks);
    EXPECT_EQ(fast.mergedBlocks, off.mergedBlocks);
    EXPECT_EQ(fast.speedup, off.speedup);
    EXPECT_EQ(fast.normalizedSpeedup, off.normalizedSpeedup);
}

TEST(Similarity, FastPathBitEqualToOfflineOnSyntheticTraces)
{
    // Partially overlapping traces so the merge is non-trivial.
    std::vector<simt::ThreadTrace> traces(8);
    for (uint32_t i = 0; i < 8; ++i) {
        simt::RecordingTracer rec(traces[i]);
        rec.block(1, 10);
        rec.block(i % 3 == 0 ? 2u : 3u, 20);
        for (uint32_t b = 0; b < i; ++b)
            rec.block(500 + i * 16 + b, 1);
        rec.block(4, 10);
    }
    std::vector<const simt::ThreadTrace *> lanes;
    for (auto &t : traces)
        lanes.push_back(&t);
    expectFastPathBitEqual(lanes);
    expectFastPathBitEqual({});
}

TEST(Similarity, FastPathBitEqualToOfflineOnCapturedRequests)
{
    // The contract the online fingerprint relies on, over real served
    // request traces (which include memory ops the fast path skips).
    for (specweb::RequestType type :
         {specweb::RequestType::AccountSummary,
          specweb::RequestType::BillPay}) {
        auto traces = captureRequestTraces(type, 6, 300, 17);
        std::vector<const simt::ThreadTrace *> lanes;
        for (auto &t : traces)
            lanes.push_back(&t);
        expectFastPathBitEqual(lanes);
    }
}

using rhythm::analysis::FingerprintConfig;
using rhythm::analysis::FingerprintTracker;

/// @p n lanes all executing the same @p blocks-long body at @p base.
std::vector<simt::ThreadTrace>
uniformTraces(size_t n, uint32_t base, uint32_t blocks = 10)
{
    std::vector<simt::ThreadTrace> traces(n);
    for (auto &t : traces) {
        simt::RecordingTracer rec(t);
        for (uint32_t b = 0; b < blocks; ++b)
            rec.block(base + b, 5);
    }
    return traces;
}

std::vector<const simt::ThreadTrace *>
lanePtrs(const std::vector<simt::ThreadTrace> &traces)
{
    std::vector<const simt::ThreadTrace *> p;
    for (const auto &t : traces)
        p.push_back(&t);
    return p;
}

TEST(Fingerprint, OptimisticBootstrap)
{
    FingerprintTracker fp(4);
    for (uint32_t t = 0; t < 4; ++t)
        EXPECT_DOUBLE_EQ(fp.typeSimilarity(t), 1.0);
    EXPECT_DOUBLE_EQ(fp.pairSimilarity(0, 1), 1.0);
    EXPECT_EQ(fp.observations(), 0u);
    EXPECT_EQ(fp.memoHits(), 0u);
}

TEST(Fingerprint, SelfEwmaTracksLaunchSimilarity)
{
    FingerprintConfig cfg;
    cfg.alpha = 0.25;
    FingerprintTracker fp(2, cfg);

    auto coherent = uniformTraces(4, 1);
    fp.observeLaunch(0, lanePtrs(coherent));
    EXPECT_DOUBLE_EQ(fp.typeSimilarity(0), 1.0); // first sample seeds

    // Four fully disjoint lanes merge at 1/4 of ideal.
    std::vector<simt::ThreadTrace> disjoint(4);
    for (uint32_t i = 0; i < 4; ++i) {
        simt::RecordingTracer rec(disjoint[i]);
        for (uint32_t b = 0; b < 10; ++b)
            rec.block(1000 * (i + 1) + b, 5);
    }
    fp.observeLaunch(0, lanePtrs(disjoint));
    EXPECT_DOUBLE_EQ(fp.typeSimilarity(0), 0.75 * 1.0 + 0.25 * 0.25);
    EXPECT_DOUBLE_EQ(fp.typeSimilarity(1), 1.0); // untouched
    EXPECT_EQ(fp.observations(), 2u);
}

TEST(Fingerprint, PairFallsBackToWorseSelfUntilMeasured)
{
    FingerprintTracker fp(3);
    auto coherent = uniformTraces(4, 1);
    std::vector<simt::ThreadTrace> disjoint(4);
    for (uint32_t i = 0; i < 4; ++i) {
        simt::RecordingTracer rec(disjoint[i]);
        for (uint32_t b = 0; b < 10; ++b)
            rec.block(1000 * (i + 1) + b, 5);
    }
    fp.observeLaunch(0, lanePtrs(coherent)); // self = 1.0
    fp.observeLaunch(1, lanePtrs(disjoint)); // self = 0.25
    EXPECT_DOUBLE_EQ(fp.pairSimilarity(0, 1), 0.25);
    EXPECT_DOUBLE_EQ(fp.pairSimilarity(1, 0), 0.25);
    // A pair with an unobserved type stays optimistic.
    EXPECT_DOUBLE_EQ(fp.pairSimilarity(0, 2), 1.0);
}

TEST(Fingerprint, MeasuredPairOverridesFallback)
{
    // Two types, each internally coherent (self = 1.0) but mutually
    // disjoint: the measured cross merge runs both bodies serially, so
    // the pair value is 0.5 — below the min-of-selves fallback of 1.0.
    FingerprintTracker fp(2);
    auto type_a = uniformTraces(4, 1);
    auto type_b = uniformTraces(4, 5000);
    fp.observeLaunch(0, lanePtrs(type_a));
    fp.observeLaunch(1, lanePtrs(type_b));
    EXPECT_DOUBLE_EQ(fp.pairSimilarity(0, 1), 1.0);

    fp.observePair(0, lanePtrs(type_a), 1, lanePtrs(type_b));
    EXPECT_DOUBLE_EQ(fp.pairSimilarity(0, 1), 0.5);
    EXPECT_DOUBLE_EQ(fp.pairSimilarity(1, 0), 0.5); // symmetric
    // Self similarities are not polluted by the pair observation.
    EXPECT_DOUBLE_EQ(fp.typeSimilarity(0), 1.0);
    EXPECT_DOUBLE_EQ(fp.typeSimilarity(1), 1.0);
}

TEST(Fingerprint, MemoizesRepeatedBlockContent)
{
    FingerprintTracker fp(1);
    auto traces = uniformTraces(8, 1);
    auto p = lanePtrs(traces);
    fp.observeLaunch(0, p);
    EXPECT_EQ(fp.memoHits(), 0u);
    const double first = fp.typeSimilarity(0);
    fp.observeLaunch(0, p);
    EXPECT_EQ(fp.memoHits(), 1u);
    EXPECT_EQ(fp.observations(), 2u);
    EXPECT_DOUBLE_EQ(fp.typeSimilarity(0), first); // same sample value
}

TEST(Fingerprint, DeterministicAcrossInstances)
{
    // Same launch sequence → bit-identical state, the property the
    // fusion byte-equality contract needs at any --sim-threads.
    auto type_a = uniformTraces(6, 1);
    auto type_b = uniformTraces(6, 9000);
    auto feed = [&](FingerprintTracker &fp) {
        fp.observeLaunch(0, lanePtrs(type_a));
        fp.observeLaunch(1, lanePtrs(type_b));
        fp.observePair(0, lanePtrs(type_a), 1, lanePtrs(type_b));
        fp.observeLaunch(0, lanePtrs(type_a));
    };
    FingerprintTracker fa(2), fb(2);
    feed(fa);
    feed(fb);
    EXPECT_EQ(fa.typeSimilarity(0), fb.typeSimilarity(0));
    EXPECT_EQ(fa.typeSimilarity(1), fb.typeSimilarity(1));
    EXPECT_EQ(fa.pairSimilarity(0, 1), fb.pairSimilarity(0, 1));
    EXPECT_EQ(fa.observations(), fb.observations());
    EXPECT_EQ(fa.memoHits(), fb.memoHits());
}

} // namespace analysis_tests
} // namespace rhythm::platform
