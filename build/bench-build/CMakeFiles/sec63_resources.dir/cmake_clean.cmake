file(REMOVE_RECURSE
  "../bench/sec63_resources"
  "../bench/sec63_resources.pdb"
  "CMakeFiles/sec63_resources.dir/sec63_resources.cc.o"
  "CMakeFiles/sec63_resources.dir/sec63_resources.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec63_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
