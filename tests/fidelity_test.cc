/**
 * @file
 * Headline-fidelity regression tests: the paper's central quantitative
 * claims, asserted end-to-end at reduced scale so the suite stays fast.
 * If a model or calibration change breaks the Table 3 shape, these
 * tests fail before the bench harness would reveal it.
 */

#include <gtest/gtest.h>

#include "platform/cpu.hh"
#include "platform/measure.hh"
#include "platform/titan.hh"

namespace rhythm::platform {
namespace {

/** Shared measurement and runs (computed once; the suite reuses them). */
class FidelityData
{
  public:
    static FidelityData &
    instance()
    {
        static FidelityData data;
        return data;
    }

    WorkloadMeasurement workload;
    CpuResult i7_8w;
    CpuResult a9_2w;
    TypeRunResult titanA;
    TypeRunResult titanB;
    TypeRunResult titanC;

  private:
    FidelityData()
    {
        workload = measureWorkload(40, 1000, 7);
        auto cpus = standardCpuPlatforms();
        i7_8w = evaluateCpu(cpus[3], workload.mixWeightedInstructions);
        a9_2w = evaluateCpu(cpus[5], workload.mixWeightedInstructions);

        IsolatedRunOptions opts;
        opts.cohorts = 8;
        opts.users = 1000;
        opts.laneSample = 128;
        // One representative heavy type keeps the run short; the full
        // mix is exercised by bench/table3_platforms.
        titanA = runIsolatedType(platform::titanA(),
                                 specweb::RequestType::AccountSummary,
                                 opts);
        titanB = runIsolatedType(platform::titanB(),
                                 specweb::RequestType::AccountSummary,
                                 opts);
        titanC = runIsolatedType(platform::titanC(),
                                 specweb::RequestType::AccountSummary,
                                 opts);
    }
};

TEST(Fidelity, CpuOrderingAndBands)
{
    const FidelityData &d = FidelityData::instance();
    // i7 throughput >> A9; A9 efficiency > i7 (the paper's CPU trade).
    EXPECT_GT(d.i7_8w.throughput, d.a9_2w.throughput * 10);
    EXPECT_GT(d.a9_2w.reqsPerJouleDynamic, d.i7_8w.reqsPerJouleDynamic);
    // Latency bands: sub-millisecond CPUs.
    EXPECT_LT(d.i7_8w.latencyMs, 1.0);
    EXPECT_LT(d.a9_2w.latencyMs, 1.0);
}

TEST(Fidelity, TitanAIsPcieBoundAndMarginal)
{
    const FidelityData &d = FidelityData::instance();
    const double bound = pcieThroughputBound(
        platform::titanA(), specweb::RequestType::AccountSummary);
    // Figure 9's claim: achieved within 80-100% of the PCIe bound.
    EXPECT_LE(d.titanA.throughput, bound * 1.001);
    EXPECT_GE(d.titanA.throughput, bound * 0.80);
    // Far below Titan B, at worse efficiency.
    EXPECT_LT(d.titanA.throughput, d.titanB.throughput / 2.0);
    EXPECT_LT(d.titanA.reqsPerJouleDynamic,
              d.titanB.reqsPerJouleDynamic);
}

TEST(Fidelity, TitanBClaims)
{
    const FidelityData &d = FidelityData::instance();
    // ~4x the i7 on the paper's average; this single heavy type lands
    // in a 2-6x band.
    const double ratio = d.titanB.throughput / d.i7_8w.throughput;
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 6.0);
    // Dynamic efficiency comparable to the A9 (paper: 91%).
    const double eff =
        d.titanB.reqsPerJouleDynamic / d.a9_2w.reqsPerJouleDynamic;
    EXPECT_GT(eff, 0.4);
    EXPECT_LT(eff, 1.6);
    // Latency in the tens of milliseconds.
    EXPECT_GT(d.titanB.avgLatencyMs, 1.0);
    EXPECT_LT(d.titanB.avgLatencyMs, 100.0);
}

TEST(Fidelity, TitanCClaims)
{
    const FidelityData &d = FidelityData::instance();
    // The transpose offload buys a substantial throughput multiple
    // (paper: ~2x over Titan B on the workload mean).
    const double over_b = d.titanC.throughput / d.titanB.throughput;
    EXPECT_GT(over_b, 1.3);
    EXPECT_LT(over_b, 3.0);
    // Better efficiency than the A9 (paper: >2.5x dynamic).
    EXPECT_GT(d.titanC.reqsPerJouleDynamic,
              d.a9_2w.reqsPerJouleDynamic);
    // Lower latency than Titan B at higher throughput.
    EXPECT_LT(d.titanC.avgLatencyMs, d.titanB.avgLatencyMs);
}

TEST(Fidelity, WorkloadTracksTable2)
{
    const FidelityData &d = FidelityData::instance();
    // Mix-weighted instruction count within 25% of the paper-derived
    // value, every response validated.
    EXPECT_NEAR(d.workload.mixWeightedInstructions / 331507.0, 1.0,
                0.25);
    for (const auto &tm : d.workload.perType)
        EXPECT_DOUBLE_EQ(tm.validationRate, 1.0);
}

TEST(Fidelity, ScalingMatchesSection62Magnitude)
{
    const FidelityData &d = FidelityData::instance();
    const double arm_core =
        evaluateCpu(armA9OneWorker(), d.workload.mixWeightedInstructions)
            .throughput;
    // Order of magnitude of the paper's 192-core figure against the
    // paper's Titan B throughput target.
    ScalingResult s =
        scaleToMatch("ARM A9", 1.5e6, arm_core, 1.0, 230.0);
    EXPECT_GT(s.coresNeeded, 120);
    EXPECT_LT(s.coresNeeded, 260);
}

} // namespace
} // namespace rhythm::platform
