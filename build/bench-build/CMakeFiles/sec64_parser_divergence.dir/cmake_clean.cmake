file(REMOVE_RECURSE
  "../bench/sec64_parser_divergence"
  "../bench/sec64_parser_divergence.pdb"
  "CMakeFiles/sec64_parser_divergence.dir/sec64_parser_divergence.cc.o"
  "CMakeFiles/sec64_parser_divergence.dir/sec64_parser_divergence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec64_parser_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
