/**
 * @file
 * Kernel-level profiles and the device cost model.
 *
 * A KernelProfile aggregates warp statistics for one kernel launch (one
 * pipeline stage executed over one cohort). The cost model converts a
 * profile into a resource demand on the simulated device using a roofline:
 * compute time from issue slots, memory time from coalesced transactions,
 * whichever binds.
 */

#ifndef RHYTHM_SIMT_KERNEL_HH
#define RHYTHM_SIMT_KERNEL_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "des/time.hh"
#include "simt/warp.hh"

namespace rhythm::simt {

/** Static configuration of the simulated accelerator. */
struct DeviceConfig
{
    std::string name = "GTX Titan (simulated)";
    /** Streaming multiprocessors. */
    int numSms = 14;
    /** Core clock in GHz. */
    double clockGhz = 0.837;
    /** SIMT width. */
    int warpWidth = 32;
    /** CUDA cores per SM (Kepler SMX: 192). */
    int coresPerSm = 192;
    /** Peak DRAM bandwidth, GB/s (GTX Titan: 288). */
    double memBandwidthGBs = 288.0;
    /**
     * Achievable fraction of peak DRAM bandwidth for kernel traffic
     * (streaming/transpose access patterns sustain well below peak on
     * real GDDR5; calibration, see DESIGN.md Section 5).
     */
    double memoryEfficiency = 0.6;
    /** Hardware work queues: 32 = HyperQ Titan, 1 = GTX690-style. */
    int hardwareQueues = 32;
    /** Fixed host-side kernel launch overhead. */
    des::Time launchOverhead = 5 * des::kMicrosecond;
    /** Resident warps per SM needed to saturate its throughput. */
    int saturatingWarpsPerSm = 8;
    /**
     * SIMT instructions issued per traced x86-equivalent instruction
     * (calibration): the RISC expansion of CISC-equivalent work plus
     * scheduler issue inefficiency. Fitted against the paper's Titan B
     * throughput; see DESIGN.md Section 5.
     */
    double instructionExpansion = 1.6;
    /** PCIe usable bandwidth per direction, GB/s (3.0 x16 ≈ 12). */
    double pcieBandwidthGBs = 12.0;
    /** PCIe per-transfer latency. */
    des::Time pcieLatency = 8 * des::kMicrosecond;
    /**
     * Frame-level CRC + bounded retransmit on the PCIe link model
     * (simt/pcie.hh). Off by default: the legacy model treats an
     * injected corruption as one whole-transfer link-layer replay,
     * and the default path must stay byte-identical to it.
     */
    bool pcieCrcEnabled = false;
    /** Link frame payload bytes — the CRC/retransmit granularity. */
    uint32_t pcieFrameBytes = 4096;
    /** CRC + sequence overhead bytes carried per frame on the wire. */
    uint32_t pcieFrameOverheadBytes = 8;
    /** Retransmit attempts per frame before the link retrains. */
    uint32_t pcieMaxRetransmits = 4;
    /** Retrain penalty once a frame exhausts its retransmit budget. */
    des::Time pcieRetrainTime = 50 * des::kMicrosecond;
    /**
     * Modeled DMA copy engines per direction. 1 (the default) keeps the
     * legacy single-engine serial copy model bit for bit. With more
     * engines (or a non-zero chunk size) the device switches to the
     * overlapped copy model (DESIGN.md Section 6h): each transfer's
     * per-transfer latency phase runs on its own engine concurrently
     * with other transfers, while the shared link wire transmits one
     * chunk at a time at full bandwidth, round-robin over the engines
     * with data ready.
     */
    int copyEngines = 1;
    /**
     * Chunk granularity of overlapped transfers in bytes (0 = whole
     * transfer). Smaller chunks interleave concurrent transfers more
     * finely on the wire; the chunk size never changes total wire time,
     * only how transfers share it.
     */
    uint32_t copyChunkBytes = 0;
    /** Device DRAM capacity in bytes (GTX Titan: 6 GiB). */
    uint64_t memoryBytes = 6ull << 30;

    /** Warp-instruction issue slots per cycle per SM. */
    double issueSlotsPerCyclePerSm() const
    {
        return static_cast<double>(coresPerSm) / warpWidth;
    }

    /** Device-wide issue slots per second. */
    double issueSlotsPerSecond() const
    {
        return issueSlotsPerCyclePerSm() * numSms * clockGhz * 1e9;
    }

    /** Warps needed in flight to saturate the whole device. */
    int saturatingWarps() const { return numSms * saturatingWarpsPerSm; }
};

/** Aggregated execution profile of one kernel launch. */
struct KernelProfile
{
    std::string name;
    uint64_t threads = 0;
    uint64_t warps = 0;
    WarpStats totals;

    /**
     * Builds a profile by lockstep-simulating a grid of thread traces,
     * packing consecutive threads into warps (the Rhythm parser sorts
     * requests so that same-type requests are warp-contiguous).
     */
    static KernelProfile fromTraces(
        const std::vector<const ThreadTrace *> &traces,
        const WarpModel &model, std::string name = "");

    /**
     * Builds a profile by merging pre-simulated per-warp statistics in
     * index order. fromTraces() and the parallel simt::Engine both
     * funnel through this, so their aggregates are identical by
     * construction regardless of which thread simulated which warp.
     */
    static KernelProfile fromWarpStats(std::span<const WarpStats> warp_stats,
                                       uint64_t threads,
                                       std::string name = "");

    /**
     * Builds an analytic profile for a streaming, memory-bound kernel
     * such as the buffer transpose: @p bytes_moved DRAM traffic with
     * perfect coalescing and @p insts_per_thread lane instructions.
     */
    static KernelProfile streaming(uint64_t threads, uint64_t bytes_moved,
                                   uint32_t insts_per_thread,
                                   const WarpModel &model,
                                   std::string name = "");

    /** SIMD efficiency across the whole launch. */
    double simdEfficiency(int warp_width) const
    {
        return totals.simdEfficiency(warp_width);
    }
};

/** Resource demand of one kernel launch on the device. */
struct KernelCost
{
    /**
     * Execution time if the kernel had the whole device to itself with
     * saturating occupancy (seconds).
     */
    double deviceSeconds = 0.0;
    /**
     * Maximum fraction of device throughput this launch can use, capped
     * by its warp count (small cohorts cannot fill the machine; the
     * pipeline overlaps multiple cohorts to compensate — Section 4.2).
     */
    double maxShare = 1.0;
    /** True if the roofline was memory-bound. */
    bool memoryBound = false;
    /** DRAM bytes this launch moves (for device power accounting). */
    uint64_t memoryBytes = 0;

    // ---- Observability metadata (carried through to the device so
    // ---- kernel-launch spans can report what executed; not consumed
    // ---- by the cost model itself) -------------------------------
    /** Kernel name from the profile. */
    std::string name;
    /** Warps in the launch (occupancy numerator). */
    uint64_t warps = 0;
    /** SIMD efficiency of the profiled launch. */
    double simdEfficiency = 0.0;
    /** Coalesced global-memory transactions of the launch. */
    uint64_t globalTransactions = 0;
};

/** Converts a kernel profile into its demand under a device config. */
KernelCost computeKernelCost(const KernelProfile &profile,
                             const DeviceConfig &config);

} // namespace rhythm::simt

#endif // RHYTHM_SIMT_KERNEL_HH
