# Empty dependencies file for specweb_test.
# This may be replaced when dependencies are built.
