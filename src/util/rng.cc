#include "util/rng.hh"

#include <cmath>

namespace rhythm {
namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    RHYTHM_ASSERT(bound > 0);
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    RHYTHM_ASSERT(lo <= hi);
    return lo + static_cast<int64_t>(
                    nextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double probability)
{
    if (probability <= 0.0)
        return false;
    if (probability >= 1.0)
        return true;
    return nextDouble() < probability;
}

double
Rng::nextExponential(double mean)
{
    RHYTHM_ASSERT(mean > 0.0);
    double u = nextDouble();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

} // namespace rhythm
