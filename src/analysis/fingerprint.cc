#include "analysis/fingerprint.hh"

#include <algorithm>

#include "simt/warp.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace rhythm::analysis {
namespace {

/**
 * Collects up to @p limit non-null lanes from @p lanes into @p out.
 * The prefix order is canonical (launch lane order), so the sample —
 * and everything derived from it — is a pure function of the launch.
 */
void
sampleLanes(std::span<const simt::ThreadTrace *const> lanes, uint32_t limit,
            std::vector<const simt::ThreadTrace *> &out)
{
    for (const simt::ThreadTrace *lane : lanes) {
        if (out.size() >= limit)
            break;
        if (lane)
            out.push_back(lane);
    }
}

/** Content hash of a sample's block sequences (memo key). */
uint64_t
blockContentHash(const std::vector<const simt::ThreadTrace *> &lanes)
{
    util::Fnv1a64 h;
    h.update(lanes.size());
    for (const simt::ThreadTrace *lane : lanes) {
        h.update(lane->blocks.size());
        for (const simt::BlockExec &b : lane->blocks)
            h.update((static_cast<uint64_t>(b.blockId) << 32) |
                     b.instructions);
    }
    return h.digest();
}

} // namespace

FingerprintTracker::FingerprintTracker(uint32_t num_types,
                                       const FingerprintConfig &config)
    : numTypes_(num_types), config_(config),
      self_(num_types, Ewma(config.alpha)),
      pair_(static_cast<size_t>(num_types) * num_types,
            Ewma(config.alpha))
{
    RHYTHM_ASSERT(config_.alpha > 0.0 && config_.alpha <= 1.0);
    RHYTHM_ASSERT(config_.sampleLanes >= 2);
}

double
FingerprintTracker::sampledSimilarity(
    std::span<const simt::ThreadTrace *const> lanes,
    std::span<const simt::ThreadTrace *const> extra_lanes)
{
    std::vector<const simt::ThreadTrace *> sample;
    sample.reserve(config_.sampleLanes);
    if (extra_lanes.empty()) {
        sampleLanes(lanes, config_.sampleLanes, sample);
    } else {
        // Mixed observation: half the budget per side, so the sample
        // stays the same size as a self sample and each type is
        // represented evenly.
        const uint32_t half = std::max<uint32_t>(1, config_.sampleLanes / 2);
        sampleLanes(lanes, half, sample);
        sampleLanes(extra_lanes,
                    half + static_cast<uint32_t>(sample.size()), sample);
    }
    if (sample.size() < 2)
        return 1.0; // A lone trace merges with itself perfectly.

    const uint64_t key = blockContentHash(sample);
    if (auto it = memo_.find(key); it != memo_.end()) {
        ++memoHits_;
        return it->second;
    }

    // The Figure 2 metric over the widened warp, scheduler fields only
    // (bit-equal to the offline merge; see measureSimilarityFast).
    simt::WarpModel model;
    model.warpWidth = std::max<int>(32, static_cast<int>(sample.size()));
    const simt::WarpStats ws = simt::mergeBlockSchedule(
        std::span<const simt::ThreadTrace *const>(sample.data(),
                                                  sample.size()),
        model);
    double normalized = 0.0;
    if (ws.steps > 0)
        normalized = static_cast<double>(ws.laneBlockExecs) /
                     static_cast<double>(ws.steps) /
                     static_cast<double>(sample.size());

    if (memo_.size() >= config_.memoEntries)
        memo_.clear();
    memo_.emplace(key, normalized);
    return normalized;
}

void
FingerprintTracker::observeLaunch(
    uint32_t type, std::span<const simt::ThreadTrace *const> lanes)
{
    RHYTHM_ASSERT(type < numTypes_);
    ++observations_;
    self_[type].add(sampledSimilarity(lanes, {}));
}

void
FingerprintTracker::observePair(
    uint32_t a, std::span<const simt::ThreadTrace *const> a_lanes,
    uint32_t b, std::span<const simt::ThreadTrace *const> b_lanes)
{
    RHYTHM_ASSERT(a < numTypes_ && b < numTypes_);
    ++observations_;
    const double measured = sampledSimilarity(a_lanes, b_lanes);
    pair_[static_cast<size_t>(a) * numTypes_ + b].add(measured);
    if (a != b)
        pair_[static_cast<size_t>(b) * numTypes_ + a].add(measured);
}

double
FingerprintTracker::typeSimilarity(uint32_t type) const
{
    RHYTHM_ASSERT(type < numTypes_);
    const Ewma &e = self_[type];
    return e.empty() ? 1.0 : e.value();
}

double
FingerprintTracker::pairSimilarity(uint32_t a, uint32_t b) const
{
    RHYTHM_ASSERT(a < numTypes_ && b < numTypes_);
    const Ewma &measured =
        pair_[static_cast<size_t>(a) * numTypes_ + b];
    if (!measured.empty())
        return measured.value();
    const Ewma &sa = self_[a];
    const Ewma &sb = self_[b];
    if (sa.empty() || sb.empty())
        return 1.0; // Optimistic bootstrap: the first fusion measures it.
    return std::min(sa.value(), sb.value());
}

} // namespace rhythm::analysis
