file(REMOVE_RECURSE
  "CMakeFiles/chat_test.dir/chat_test.cc.o"
  "CMakeFiles/chat_test.dir/chat_test.cc.o.d"
  "chat_test"
  "chat_test.pdb"
  "chat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
