#include "rhythm/banking_service.hh"

#include "backend/protocol.hh"
#include "specweb/quickpay.hh"

namespace rhythm::core {

bool
BankingService::resolveType(const http::Request &request,
                            uint32_t &type_id) const
{
    specweb::RequestType type;
    if (!specweb::typeFromPath(request.path, type))
        return false;
    type_id = static_cast<uint32_t>(specweb::typeIndex(type));
    return true;
}

void
BankingService::runStage(uint32_t type_id, int stage,
                         specweb::HandlerContext &ctx) const
{
    app_.runStage(static_cast<specweb::RequestType>(type_id), stage, ctx);
}

std::string
BankingService::executeBackend(std::string_view request,
                               simt::TraceRecorder &rec)
{
    return backend_.execute(request, rec);
}

uint32_t
BankingService::backendRequestSlotBytes() const
{
    return backend::kRequestSlotBytes;
}

uint32_t
BankingService::backendResponseSlotBytes() const
{
    return backend::kResponseSlotBytes;
}

std::optional<std::string>
BankingService::serveFallback(const http::Request &request,
                              specweb::SessionProvider &sessions,
                              simt::TraceRecorder &rec)
{
    if (request.path != specweb::kQuickPayPath)
        return std::nullopt;
    return specweb::serveQuickPay(request, backend_, sessions, rec);
}

} // namespace rhythm::core
