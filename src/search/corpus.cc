#include "search/corpus.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhythm::search {
namespace {

const char *kSyllables[] = {"al", "an", "ar", "as", "at", "ba", "be",
                            "ca", "co", "da", "de", "di", "do", "el",
                            "en", "er", "es", "fa", "fi", "ga", "go",
                            "ha", "he", "in", "is", "it", "ka", "la",
                            "le", "li", "lo", "ma", "me", "mi", "mo",
                            "na", "ne", "ni", "no", "or", "pa", "pe",
                            "po", "ra", "re", "ri", "ro", "sa", "se",
                            "si", "so", "ta", "te", "ti", "to", "un",
                            "va", "ve", "vi", "wa", "we"};
constexpr size_t kNumSyllables =
    sizeof(kSyllables) / sizeof(kSyllables[0]);

/** Builds a pronounceable synthetic word from an index. */
std::string
makeWord(uint32_t index, Rng &rng)
{
    std::string word;
    const int syllables = 2 + static_cast<int>(rng.nextBounded(3));
    uint32_t x = index * 2654435761u + 1;
    for (int s = 0; s < syllables; ++s) {
        word += kSyllables[x % kNumSyllables];
        x = x / static_cast<uint32_t>(kNumSyllables) + 0x9e37u + x * 31u;
    }
    return word;
}

} // namespace

Corpus::Corpus(uint32_t num_docs, uint32_t vocabulary_size, uint64_t seed)
{
    RHYTHM_ASSERT(num_docs > 0 && vocabulary_size > 16);
    Rng rng(seed);

    // Vocabulary: unique synthetic words.
    vocabulary_.reserve(vocabulary_size);
    for (uint32_t w = 0; w < vocabulary_size; ++w) {
        std::string word = makeWord(w, rng);
        word += std::to_string(w % 97); // guarantee uniqueness
        vocabulary_.push_back(std::move(word));
    }

    // Zipf(s = 1.0) CDF over word ids: word 0 is the most frequent.
    zipfCdf_.resize(vocabulary_size);
    double norm = 0.0;
    for (uint32_t w = 0; w < vocabulary_size; ++w)
        norm += 1.0 / (w + 1);
    double acc = 0.0;
    for (uint32_t w = 0; w < vocabulary_size; ++w) {
        acc += 1.0 / ((w + 1) * norm);
        zipfCdf_[w] = acc;
    }
    zipfCdf_.back() = 1.0;

    // Documents: 80-400 body words plus a short title.
    docs_.reserve(num_docs);
    for (uint32_t d = 1; d <= num_docs; ++d) {
        Document doc;
        doc.docId = d;
        const int title_words = 2 + static_cast<int>(rng.nextBounded(4));
        for (int t = 0; t < title_words; ++t) {
            if (t)
                doc.title += ' ';
            doc.title += vocabulary_[sampleWord(rng)];
        }
        const size_t body = 80 + rng.nextBounded(321);
        doc.words.reserve(body);
        for (size_t w = 0; w < body; ++w)
            doc.words.push_back(sampleWord(rng));
        docs_.push_back(std::move(doc));
    }
}

const std::string &
Corpus::word(uint32_t word_id) const
{
    RHYTHM_ASSERT(word_id < vocabulary_.size());
    return vocabulary_[word_id];
}

const Document *
Corpus::document(uint32_t doc_id) const
{
    if (doc_id == 0 || doc_id > docs_.size())
        return nullptr;
    return &docs_[doc_id - 1];
}

uint32_t
Corpus::sampleWord(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it =
        std::lower_bound(zipfCdf_.begin(), zipfCdf_.end(), u);
    return static_cast<uint32_t>(it - zipfCdf_.begin());
}

std::string
Corpus::renderText(const Document &doc, size_t begin, size_t count) const
{
    std::string out;
    const size_t end = std::min(doc.words.size(), begin + count);
    for (size_t i = begin; i < end; ++i) {
        if (i != begin)
            out += ' ';
        out += vocabulary_[doc.words[i]];
    }
    return out;
}

} // namespace rhythm::search
