#include "util/flags.hh"

#include <cstdlib>

#include "util/strings.hh"

namespace rhythm {

bool
Flags::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (!startsWith(arg, "--")) {
            positional_.emplace_back(arg);
            continue;
        }
        std::string_view body = arg.substr(2);
        if (body.empty()) {
            error_ = "bare '--' is not a flag";
            return false;
        }
        const size_t eq = body.find('=');
        if (eq != std::string_view::npos) {
            values_[std::string(body.substr(0, eq))] =
                std::string(body.substr(eq + 1));
            continue;
        }
        if (startsWith(body, "no-")) {
            values_[std::string(body.substr(3))] = "false";
            continue;
        }
        // --key value when the next token is not a flag; else a switch.
        if (i + 1 < argc && !startsWith(argv[i + 1], "--")) {
            values_[std::string(body)] = argv[++i];
        } else {
            values_[std::string(body)] = "true";
        }
    }
    return true;
}

bool
Flags::has(std::string_view name) const
{
    return values_.find(name) != values_.end();
}

std::string
Flags::getString(std::string_view name, std::string_view fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? std::string(fallback) : it->second;
}

uint64_t
Flags::getU64(std::string_view name, uint64_t fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    uint64_t value = 0;
    return parseU64(it->second, value) ? value : fallback;
}

double
Flags::getDouble(std::string_view name, double fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    return (end && *end == '\0' && end != it->second.c_str()) ? value
                                                              : fallback;
}

bool
Flags::getBool(std::string_view name, bool fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    return fallback;
}

std::vector<std::string>
Flags::names() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[name, value] : values_)
        out.push_back(name);
    return out;
}

bool
Flags::allowOnly(const std::vector<std::string> &known)
{
    for (const auto &[name, value] : values_) {
        bool ok = false;
        for (const std::string &k : known)
            ok |= k == name;
        if (!ok) {
            error_ = "unknown flag: --" + name;
            return false;
        }
    }
    return true;
}

} // namespace rhythm
