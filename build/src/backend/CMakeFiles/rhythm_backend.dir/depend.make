# Empty dependencies file for rhythm_backend.
# This may be replaced when dependencies are built.
