#include "net/arrival.hh"

#include <cmath>
#include <numbers>

#include "util/logging.hh"

namespace rhythm::net {
namespace {

/** Smallest inter-arrival gap, in seconds (1 ps: the des::Time tick). */
constexpr double kMinGapSeconds = 1e-12;

/** Salt separating a schedule's type stream from its time stream. */
constexpr uint64_t kTypeStreamSalt = 0x7ad5'1e57'9e37'79b9ull;

} // namespace

std::string_view
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Closed:
        return "closed";
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Diurnal:
        return "diurnal";
      case ArrivalKind::Flash:
        return "flash";
    }
    return "unknown";
}

std::optional<ArrivalKind>
parseArrivalKind(std::string_view name)
{
    if (name == "closed")
        return ArrivalKind::Closed;
    if (name == "poisson")
        return ArrivalKind::Poisson;
    if (name == "diurnal")
        return ArrivalKind::Diurnal;
    if (name == "flash")
        return ArrivalKind::Flash;
    return std::nullopt;
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig &config)
    : config_(config), rng_(config.seed)
{
    RHYTHM_ASSERT(config_.rate > 0.0);
    if (config_.kind == ArrivalKind::Diurnal) {
        RHYTHM_ASSERT(config_.diurnalPeriodSec > 0.0);
        RHYTHM_ASSERT(config_.diurnalTroughFraction > 0.0 &&
                      config_.diurnalTroughFraction <= 1.0);
    }
    if (config_.kind == ArrivalKind::Flash) {
        RHYTHM_ASSERT(config_.flashMultiplier >= 1.0);
        RHYTHM_ASSERT(config_.flashDurationSec >= 0.0);
    }
}

double
ArrivalProcess::rateAt(double t) const
{
    switch (config_.kind) {
      case ArrivalKind::Closed:
      case ArrivalKind::Poisson:
        return config_.rate;
      case ArrivalKind::Diurnal: {
        // Raised cosine between the trough (t = 0 mod period) and the
        // peak (mid-period): monotone non-decreasing over the first
        // half of each period and non-increasing over the second half.
        const double trough = config_.rate * config_.diurnalTroughFraction;
        const double phase = 2.0 * std::numbers::pi *
                             (t / config_.diurnalPeriodSec);
        return trough +
               (config_.rate - trough) * 0.5 * (1.0 - std::cos(phase));
      }
      case ArrivalKind::Flash: {
        const bool in_spike =
            t >= config_.flashStartSec &&
            t < config_.flashStartSec + config_.flashDurationSec;
        return in_spike ? config_.rate * config_.flashMultiplier
                        : config_.rate;
      }
    }
    return config_.rate;
}

double
ArrivalProcess::peakRate() const
{
    if (config_.kind == ArrivalKind::Flash)
        return config_.rate * config_.flashMultiplier;
    return config_.rate;
}

double
ArrivalProcess::nextArrivalSeconds()
{
    // Lewis-Shedler thinning: candidate gaps at the envelope peak
    // rate, each candidate accepted with probability rate(t)/peak.
    // Homogeneous kinds accept every candidate, so they consume one
    // uniform variate less per arrival — the streams are deliberately
    // kind-specific but seed-deterministic.
    const double peak = peakRate();
    const bool homogeneous = config_.kind == ArrivalKind::Closed ||
                             config_.kind == ArrivalKind::Poisson;
    for (;;) {
        const double gap =
            std::max(rng_.nextExponential(1.0 / peak), kMinGapSeconds);
        lastSeconds_ += gap;
        if (homogeneous ||
            rng_.nextDouble() * peak < rateAt(lastSeconds_))
            return lastSeconds_;
    }
}

des::Time
ArrivalProcess::nextGap()
{
    const des::Time at = des::fromSeconds(nextArrivalSeconds());
    // Quantization to integer picoseconds may collapse a sub-ps gap to
    // zero; clamp so consecutive schedule points never tie (a tie
    // would make the DES event order depend on scheduling internals).
    const des::Time gap = at > lastTick_ ? at - lastTick_ : 1;
    lastTick_ += gap;
    return gap;
}

std::vector<ScheduleEntry>
buildSchedule(const ArrivalConfig &config,
              std::span<const double> typeWeights, uint64_t count)
{
    RHYTHM_ASSERT(!typeWeights.empty());
    double total = 0.0;
    for (double w : typeWeights) {
        RHYTHM_ASSERT(w >= 0.0);
        total += w;
    }
    RHYTHM_ASSERT(total > 0.0);

    ArrivalProcess arrivals(config);
    // Independent type stream: same seed family, different stream, so
    // changing the mix never perturbs the arrival times (and vice
    // versa).
    Rng type_rng(config.seed ^ kTypeStreamSalt);

    std::vector<ScheduleEntry> schedule;
    schedule.reserve(count);
    des::Time at = 0;
    for (uint64_t i = 0; i < count; ++i) {
        at += arrivals.nextGap();
        const double pick = type_rng.nextDouble() * total;
        double cumulative = 0.0;
        uint32_t type = static_cast<uint32_t>(typeWeights.size()) - 1;
        for (size_t t = 0; t < typeWeights.size(); ++t) {
            cumulative += typeWeights[t];
            if (pick < cumulative) {
                type = static_cast<uint32_t>(t);
                break;
            }
        }
        schedule.push_back(ScheduleEntry{at, type});
    }
    return schedule;
}

} // namespace rhythm::net
