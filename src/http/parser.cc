#include "http/parser.hh"

#include <algorithm>
#include <cctype>

#include "util/strings.hh"

namespace rhythm::http {
namespace {

/// Approximate dynamic x86 instructions per byte scanned in tight
/// tokenizing loops (compare + advance + branch, amortized).
constexpr uint32_t kScanInstsPerByte = 4;
/// Fixed per-token bookkeeping weight.
constexpr uint32_t kTokenOverhead = 24;

/// Records a scan over [offset, offset+len) of the request buffer.
void
recordScan(simt::TraceRecorder &rec, uint64_t vaddr, size_t offset,
           size_t len)
{
    if (len == 0)
        return;
    // The parser reads the buffer as 4-byte words.
    const uint32_t words = static_cast<uint32_t>((len + 3) / 4);
    rec.load(vaddr + offset, words, 4, 4);
}

/// Decodes %XX escapes and '+' in a URL-encoded token.
std::string
urlDecode(std::string_view text)
{
    // Fast path: most tokens (ids, amounts, plain words) contain no
    // escapes at all — one scan, then a straight copy.
    if (text.find_first_of("%+") == std::string_view::npos)
        return std::string(text);
    std::string out;
    out.reserve(text.size());
    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '+') {
            out.push_back(' ');
        } else if (c == '%' && i + 2 < text.size() &&
                   std::isxdigit(static_cast<unsigned char>(text[i + 1])) &&
                   std::isxdigit(static_cast<unsigned char>(text[i + 2]))) {
            auto hex = [](char h) {
                if (h >= '0' && h <= '9')
                    return h - '0';
                return (std::tolower(static_cast<unsigned char>(h)) - 'a') +
                       10;
            };
            out.push_back(static_cast<char>(hex(text[i + 1]) * 16 +
                                            hex(text[i + 2])));
            i += 2;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

/// Splits a form/query string into decoded key/value pairs.
void
parseParams(std::string_view text, uint64_t vaddr, size_t offset,
            simt::TraceRecorder &rec, Request &out)
{
    if (text.empty())
        return;
    out.params.reserve(
        out.params.size() + 1 +
        static_cast<size_t>(std::count(text.begin(), text.end(), '&')));
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == '&') {
            const std::string_view pair = text.substr(start, i - start);
            rec.block(kBlockQueryParam,
                      kTokenOverhead +
                          static_cast<uint32_t>(pair.size()) *
                              kScanInstsPerByte);
            recordScan(rec, vaddr, offset + start, pair.size());
            const size_t eq = pair.find('=');
            if (eq == std::string_view::npos) {
                out.params.emplace_back(urlDecode(pair), "");
            } else {
                out.params.emplace_back(urlDecode(pair.substr(0, eq)),
                                        urlDecode(pair.substr(eq + 1)));
            }
            start = i + 1;
        }
    }
}

} // namespace

bool
parseRequest(std::string_view raw, uint64_t vaddr, simt::TraceRecorder &rec,
             Request &out)
{
    out = Request{};

    // ---- Request line ----------------------------------------------
    const size_t line_end = raw.find("\r\n");
    if (line_end == std::string_view::npos) {
        rec.block(kBlockParseError, kTokenOverhead);
        return false;
    }
    const std::string_view line = raw.substr(0, line_end);
    rec.block(kBlockRequestLine,
              kTokenOverhead +
                  static_cast<uint32_t>(line.size()) * kScanInstsPerByte);
    recordScan(rec, vaddr, 0, line.size());

    const size_t sp1 = line.find(' ');
    const size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        rec.block(kBlockParseError, kTokenOverhead);
        return false;
    }
    const std::string_view method = line.substr(0, sp1);
    std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = line.substr(sp2 + 1);

    if (method == "GET") {
        out.method = Method::Get;
    } else if (method == "POST") {
        out.method = Method::Post;
    } else {
        rec.block(kBlockParseError, kTokenOverhead);
        return false;
    }
    if (version != "HTTP/1.1" && version != "HTTP/1.0") {
        rec.block(kBlockParseError, kTokenOverhead);
        return false;
    }
    out.keepAlive = version == "HTTP/1.1";

    std::string_view query;
    const size_t qmark = target.find('?');
    if (qmark != std::string_view::npos) {
        query = target.substr(qmark + 1);
        target = target.substr(0, qmark);
    }
    out.path = std::string(target);

    // ---- Headers ----------------------------------------------------
    size_t pos = line_end + 2;
    std::string_view cookie;
    while (pos < raw.size()) {
        const size_t eol = raw.find("\r\n", pos);
        if (eol == std::string_view::npos) {
            rec.block(kBlockParseError, kTokenOverhead);
            return false;
        }
        const std::string_view header = raw.substr(pos, eol - pos);
        if (header.empty()) {
            pos = eol + 2; // end of headers
            break;
        }
        rec.block(kBlockHeaderLine,
                  kTokenOverhead + static_cast<uint32_t>(header.size()) *
                                       kScanInstsPerByte);
        recordScan(rec, vaddr, pos, header.size());

        const size_t colon = header.find(':');
        if (colon != std::string_view::npos) {
            const std::string_view name = header.substr(0, colon);
            const std::string_view value =
                trim(header.substr(colon + 1));
            if (iequals(name, "Cookie")) {
                rec.block(kBlockCookieParse,
                          kTokenOverhead +
                              static_cast<uint32_t>(value.size()) *
                                  kScanInstsPerByte);
                cookie = value;
            } else if (iequals(name, "Content-Length")) {
                rec.block(kBlockContentLength, kTokenOverhead);
                uint64_t len = 0;
                if (!parseU64(value, len)) {
                    rec.block(kBlockParseError, kTokenOverhead);
                    return false;
                }
                out.contentLength = len;
            } else if (iequals(name, "Connection")) {
                rec.block(kBlockConnection, kTokenOverhead);
                if (iequals(value, "close"))
                    out.keepAlive = false;
                else if (iequals(value, "keep-alive"))
                    out.keepAlive = true;
            }
        }
        pos = eol + 2;
    }

    // ---- Cookie / session -------------------------------------------
    out.cookie = std::string(cookie);
    if (!cookie.empty()) {
        for (std::string_view part : split(cookie, ';')) {
            part = trim(part);
            if (startsWith(part, "session=")) {
                rec.block(kBlockSessionCookie, kTokenOverhead);
                uint64_t sid = 0;
                if (parseU64(part.substr(8), sid))
                    out.sessionId = sid;
            }
        }
    }

    // ---- Parameters --------------------------------------------------
    const size_t query_offset =
        sp1 + 1 + (qmark == std::string_view::npos ? 0 : qmark + 1);
    parseParams(query, vaddr, query_offset, rec, out);

    if (out.method == Method::Post && out.contentLength > 0) {
        // Compare without computing pos + contentLength (a hostile
        // Content-Length of UINT64_MAX would overflow the addition).
        if (out.contentLength > raw.size() - pos) {
            rec.block(kBlockParseError, kTokenOverhead);
            return false;
        }
        const std::string_view body = raw.substr(pos, out.contentLength);
        rec.block(kBlockBody,
                  kTokenOverhead + static_cast<uint32_t>(body.size()) *
                                       kScanInstsPerByte);
        recordScan(rec, vaddr, pos, body.size());
        parseParams(body, vaddr, pos, rec, out);
    }

    rec.block(kBlockParseDone, kTokenOverhead);
    return true;
}

} // namespace rhythm::http
