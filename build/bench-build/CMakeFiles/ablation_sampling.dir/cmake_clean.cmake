file(REMOVE_RECURSE
  "../bench/ablation_sampling"
  "../bench/ablation_sampling.pdb"
  "CMakeFiles/ablation_sampling.dir/ablation_sampling.cc.o"
  "CMakeFiles/ablation_sampling.dir/ablation_sampling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
