/**
 * @file
 * Small string utilities shared across the library and harnesses.
 */

#ifndef RHYTHM_UTIL_STRINGS_HH
#define RHYTHM_UTIL_STRINGS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rhythm {

/** Splits a string on a single-character delimiter (empty parts kept). */
std::vector<std::string_view> split(std::string_view text, char delim);

/** Removes leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view text);

/** Case-sensitive prefix test. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Case-insensitive ASCII equality. */
bool iequals(std::string_view a, std::string_view b);

/** Formats an integer with thousands separators, e.g. 1,234,567. */
std::string withCommas(uint64_t value);

/** Formats a byte count with a binary-unit suffix, e.g. "26.4 KiB". */
std::string humanBytes(double bytes);

/** Formats a rate with an SI suffix, e.g. "1.53 M". */
std::string humanCount(double value);

/** Formats a double with the given precision. */
std::string formatDouble(double value, int precision);

/**
 * Parses a non-negative decimal integer.
 * @return true and stores into @p out on success; false on malformed input
 *         or overflow.
 */
bool parseU64(std::string_view text, uint64_t &out);

} // namespace rhythm

#endif // RHYTHM_UTIL_STRINGS_HH
