/**
 * @file
 * Methodology validation: lane-sampling fidelity.
 *
 * The Titan experiments execute a sample of each cohort's lanes and
 * scale the kernel profiles (DESIGN.md §5) — the standard sampling trade
 * of architectural simulators. This bench quantifies the error that
 * sampling introduces: the same run at full execution vs progressively
 * smaller samples.
 */

#include <iostream>

#include "bench/common.hh"
#include "platform/titan.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("ablation_sampling", argc, argv);
    bench::banner("Methodology: lane-sampling fidelity",
                  "DESIGN.md Section 5 (profile scaling)");

    platform::TitanVariant b = platform::titanB();
    b.server.cohortSize = 512; // small enough to run unsampled quickly
    platform::IsolatedRunOptions opts;
    opts.cohorts = 6;
    opts.users = 1000;
    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.apply(opts);
    faults.recordConfig(report);
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    overlap.apply(opts);
    overlap.recordConfig(report);

    TableWriter table({"lanes executed / cohort", "KReqs/s",
                       "latency ms", "throughput error %"});
    double full_throughput = 0.0;
    for (uint32_t sample : {0u, 256u, 128u, 64u, 32u}) {
        opts.laneSample = sample;
        platform::TypeRunResult r = platform::runIsolatedType(
            b, specweb::RequestType::BillPay, opts);
        if (sample == 0)
            full_throughput = r.throughput;
        const double err =
            (r.throughput - full_throughput) / full_throughput * 100.0;
        table.addRow({sample == 0 ? "512 (full)" : std::to_string(sample),
                      bench::fmt(r.throughput / 1e3, 1),
                      bench::fmt(r.avgLatencyMs, 2),
                      bench::fmt(err, 1)});
        const std::string key =
            "sample_" + (sample == 0 ? "full" : std::to_string(sample));
        report.metric(key + ".throughput", r.throughput);
        report.metric(key + ".error_pct", err);
    }
    table.printAscii(std::cout);
    std::cout << "Expected: sampling error within a few percent down to "
                 "one warp's worth of\nlanes — same-type requests are "
                 "statistically interchangeable, which is the very\n"
                 "property Rhythm exploits.\n";
    if (!report.write())
        return 1;
    return 0;
}
