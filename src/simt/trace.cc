#include "simt/trace.hh"

#include "util/logging.hh"

namespace rhythm::simt {

uint64_t
ThreadTrace::totalInstructions() const
{
    uint64_t total = 0;
    for (const auto &b : blocks)
        total += b.instructions;
    return total;
}

void
ThreadTrace::clear()
{
    blocks.clear();
    memOps.clear();
}

RecordingTracer::RecordingTracer(ThreadTrace &out) : trace_(out)
{
    trace_.clear();
}

void
RecordingTracer::block(uint32_t block_id, uint32_t instructions)
{
    trace_.blocks.push_back(BlockExec{
        block_id, instructions, static_cast<uint32_t>(trace_.memOps.size()),
        0});
}

void
RecordingTracer::memory(const MemOp &op)
{
    RHYTHM_ASSERT(!trace_.blocks.empty(),
                  "memory op recorded before any block");
    RHYTHM_ASSERT(op.count > 0 && op.width > 0, "malformed memory op");
    trace_.memOps.push_back(op);
    ++trace_.blocks.back().memCount;
}

} // namespace rhythm::simt
