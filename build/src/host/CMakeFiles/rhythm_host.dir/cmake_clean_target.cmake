file(REMOVE_RECURSE
  "librhythm_host.a"
)
