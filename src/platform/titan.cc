#include "platform/titan.hh"

#include <algorithm>
#include <memory>
#include <optional>

#include "backend/protocol.hh"
#include "backend/recovery.hh"
#include "fault/device_injector.hh"
#include "obs/obs.hh"
#include "rhythm/banking_service.hh"
#include "specweb/workload.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"

namespace rhythm::platform {
namespace {

core::RhythmConfig
baseServerConfig()
{
    core::RhythmConfig cfg;
    cfg.cohortSize = 4096;
    cfg.cohortContexts = 8;
    cfg.cohortTimeout = 2 * des::kMillisecond;
    cfg.transposeBuffers = true;
    cfg.padResponses = true;
    return cfg;
}

} // namespace

TitanVariant
titanA()
{
    TitanVariant v;
    v.name = "Titan A";
    v.server = baseServerConfig();
    v.server.backendOnDevice = false;
    v.server.networkOverPcie = true;
    return v;
}

TitanVariant
titanB()
{
    TitanVariant v;
    v.name = "Titan B";
    v.server = baseServerConfig();
    v.server.backendOnDevice = true;
    v.server.networkOverPcie = false;
    return v;
}

TitanVariant
titanC()
{
    TitanVariant v = titanB();
    v.name = "Titan C";
    v.server.offloadResponseTranspose = true;
    return v;
}

TypeRunResult
runIsolatedType(const TitanVariant &variant, specweb::RequestType type,
                const IsolatedRunOptions &options)
{
    const uint64_t total_requests =
        static_cast<uint64_t>(options.cohorts) *
        variant.server.cohortSize;

    core::RhythmConfig cfg = variant.server;
    cfg.laneSample = options.laneSample;
    // Login creates, and logout consumes, one session per request. Every
    // user's sessions hash to a single bucket, so the bucket depth must
    // cover sessions-per-user (with margin for hash skew), not just the
    // average bucket load.
    if (type == specweb::RequestType::Login ||
        type == specweb::RequestType::Logout) {
        const uint64_t reachable_buckets =
            std::min<uint64_t>(options.users, cfg.cohortSize);
        cfg.sessionNodesPerBucket = static_cast<uint32_t>(
            3 * total_requests / std::max<uint64_t>(1, reachable_buckets) +
            16);
    }

    if (options.profileCacheEntries > 0)
        cfg.traceTemplateCacheEntries = options.profileCacheEntries;

    // Fault/robustness overlay (quiet by default: the healthy run's
    // configuration and outputs are untouched).
    if (options.retryBudget > 0)
        cfg.backendRetryBudget = options.retryBudget;
    if (options.watchdogTimeout > 0)
        cfg.watchdogTimeout = options.watchdogTimeout;
    simt::DeviceConfig device_cfg = variant.device;
    if (options.pcieFrameCrc)
        device_cfg.pcieCrcEnabled = true;
    if (options.overlapPipeline)
        cfg.overlapPipeline = true;
    if (options.copyEngines > 0)
        device_cfg.copyEngines = options.copyEngines;
    if (options.copyChunkBytes > 0)
        device_cfg.copyChunkBytes = options.copyChunkBytes;

    des::EventQueue queue;
    simt::ProfileCache profile_cache(
        std::max<size_t>(options.profileCacheEntries, 1));
    simt::Device device(queue, device_cfg);
    if (options.profileCacheEntries > 0)
        device.engine().setProfileCache(&profile_cache);
    backend::BankDb db(options.users, options.seed);
    core::BankingService service(db);
    core::RhythmServer server(queue, device, service, cfg);
    specweb::WorkloadGenerator gen(db, options.seed * 977 + 13);

    std::optional<fault::FaultPlan> plan;
    if (!options.faults.allQuiet()) {
        plan.emplace(options.faults);
        server.setFaultPlan(&*plan);
        fault::installDeviceFaults(device, *plan, queue);
    }

    // Pre-populate sessions (the paper's isolation methodology): logout
    // consumes a fresh session per request, the rest reuse a pool.
    std::vector<std::pair<uint64_t, uint64_t>> sessions;
    if (type == specweb::RequestType::Logout) {
        sessions =
            server.sessions().populate(total_requests, options.users);
        RHYTHM_ASSERT(sessions.size() == total_requests,
                      "session array too small for logout run");
    } else if (type != specweb::RequestType::Login) {
        sessions = server.sessions().populate(
            std::min<uint64_t>(total_requests, 8192), options.users);
    }

    // Crash-recovery layer: journals backend mutations and session
    // create/destroy with exactly-once idempotency semantics. Attached
    // after pre-population so the populated sessions live inside the
    // baseline checkpoint.
    std::unique_ptr<backend::RecoverableBackend> recoverable;
    if (options.recovery) {
        backend::RecoveryConfig rcfg;
        rcfg.checkpointInterval = options.checkpointInterval;
        recoverable = std::make_unique<backend::RecoverableBackend>(
            service.backendService(), db, rcfg);
        if (plan) {
            recoverable->setFaultPlan(
                &*plan, [&queue]() { return queue.now(); });
        }
        core::attachSessionRecovery(*recoverable, server.sessions());
        service.setRecovery(recoverable.get());
    }

    uint64_t issued = 0;
    server.start([&]() -> std::optional<std::string> {
        if (issued >= total_requests)
            return std::nullopt;
        specweb::GeneratedRequest req;
        if (type == specweb::RequestType::Login) {
            req = gen.generate(type, gen.sampleUser(), 0);
        } else {
            const auto &[sid, user] =
                sessions[issued % sessions.size()];
            req = gen.generate(type, user, sid);
        }
        ++issued;
        return std::move(req.raw);
    });
    queue.run();
    RHYTHM_ASSERT(server.drained(), "pipeline failed to drain");

    const core::RhythmStats &stats = server.stats();
    const simt::Device::Stats dstats = device.stats();
    const double elapsed = des::toSeconds(queue.now());

    TypeRunResult result;
    result.type = type;
    result.requests = stats.responsesCompleted;
    result.elapsedSeconds = elapsed;
    result.throughput =
        elapsed > 0.0 ? static_cast<double>(result.requests) / elapsed
                      : 0.0;
    result.avgLatencyMs = stats.latencyMs.mean();
    result.p99LatencyMs = stats.latencyMs.percentile(99.0);
    result.deviceUtilization = device.kernelUtilization();
    result.memoryUtilization =
        elapsed > 0.0
            ? static_cast<double>(dstats.kernelMemoryBytes) /
                  (variant.device.memBandwidthGBs *
                   variant.device.memoryEfficiency * 1e9 * elapsed)
            : 0.0;
    result.copyUtilization =
        elapsed > 0.0
            ? std::max(dstats.h2dBusySeconds, dstats.d2hBusySeconds) /
                  elapsed
            : 0.0;
    result.hostBackendUtilization =
        (!cfg.backendOnDevice && elapsed > 0.0)
            ? static_cast<double>(stats.backendRequests) /
                  cfg.hostBackendReqsPerSec / elapsed
            : 0.0;
    result.simdEfficiency =
        stats.processIssueSlots > 0.0
            ? stats.processLaneInstructions /
                  (stats.processIssueSlots *
                   variant.server.warpModel.warpWidth)
            : 0.0;
    result.paddedLanes = stats.paddedLanes;
    result.pcieBytesPerRequest =
        result.requests
            ? (dstats.bytesToDevice + dstats.bytesToHost) /
                  result.requests
            : 0;
    result.responseBytesPerRequest =
        result.requests ? static_cast<double>(stats.responseBytes) /
                              static_cast<double>(result.requests)
                        : 0.0;
    if (elapsed > 0.0) {
        result.h2dUtilization = dstats.h2dBusySeconds / elapsed;
        result.d2hUtilization = dstats.d2hBusySeconds / elapsed;
    }
    if (result.requests) {
        result.h2dBytesPerRequest = dstats.bytesToDevice / result.requests;
        result.d2hBytesPerRequest = dstats.bytesToHost / result.requests;
        result.pcieWireBytesPerRequest =
            dstats.pcieWireBytes / result.requests;
    }
    if (dstats.copyBusySeconds > 0.0)
        result.overlapFraction =
            dstats.overlapSeconds / dstats.copyBusySeconds;

    const TitanPowerModel &pm = variant.power;
    const double activity =
        pm.computeWeight * result.deviceUtilization +
        (1.0 - pm.computeWeight) * std::min(1.0, result.memoryUtilization);
    result.dynamicWatts =
        pm.devicePeakWatts *
            (pm.deviceActiveFloor +
             (1.0 - pm.deviceActiveFloor) * activity) +
        pm.pcieWatts * std::min(1.0, result.copyUtilization) +
        pm.hostBackendWatts * std::min(1.0, result.hostBackendUtilization);
    if (result.dynamicWatts > 0.0) {
        result.reqsPerJouleDynamic =
            result.throughput / result.dynamicWatts;
        result.reqsPerJouleWall =
            result.throughput / (pm.idleWatts + result.dynamicWatts);
    }
    return result;
}

TitanWorkloadResult
evaluateTitan(const TitanVariant &variant,
              const IsolatedRunOptions &options)
{
    TitanWorkloadResult result;
    result.name = variant.name;
    result.idleWatts = variant.power.idleWatts;

    WeightedHarmonicMean throughput_whm, wall_whm, dynamic_whm;
    double latency_sum = 0.0;
    double dynamic_sum = 0.0;
    double mix_sum = 0.0;

    // The per-type isolated runs are fully self-contained simulations
    // (own event queue, device, database, server), so they execute
    // concurrently on the sim pool, each writing only its index's slot.
    // The tracer and histogram sinks of the *global* obs context are
    // DES-thread-only, so when observability is recording the runs stay
    // serial — the merged result below is identical either way because
    // the aggregation always happens here, in type order.
    std::vector<TypeRunResult> runs(specweb::kNumRequestTypes);
    auto run_one = [&variant, &options, &runs](size_t i) {
        runs[i] = runIsolatedType(variant, specweb::typeTable()[i].type,
                                  options);
    };
    if (obs::global().enabled()) {
        for (size_t i = 0; i < specweb::kNumRequestTypes; ++i)
            run_one(i);
    } else {
        util::simPool().parallelFor(specweb::kNumRequestTypes, run_one);
    }

    for (size_t i = 0; i < specweb::kNumRequestTypes; ++i) {
        const specweb::RequestTypeInfo &info = specweb::typeTable()[i];
        TypeRunResult &run = runs[i];
        const double weight = info.mixPercent;
        throughput_whm.add(weight, run.throughput);
        wall_whm.add(weight, run.reqsPerJouleWall);
        dynamic_whm.add(weight, run.reqsPerJouleDynamic);
        latency_sum += weight * run.avgLatencyMs;
        dynamic_sum += weight * run.dynamicWatts;
        mix_sum += weight;
        result.perType[i] = run;
    }

    result.throughput = throughput_whm.value();
    result.avgLatencyMs = latency_sum / mix_sum;
    result.dynamicWatts = dynamic_sum / mix_sum;
    result.wallWatts = result.idleWatts + result.dynamicWatts;
    result.reqsPerJouleWall = wall_whm.value();
    result.reqsPerJouleDynamic = dynamic_whm.value();
    return result;
}

double
pcieThroughputBound(const TitanVariant &variant, specweb::RequestType type)
{
    if (!variant.server.networkOverPcie)
        return 1.0 / 0.0;
    const specweb::RequestTypeInfo &info = specweb::typeInfo(type);
    const double backend_stages = info.backendRequests;
    // The two DMA directions run concurrently; the bound is set by the
    // busier one (device→host carries the response buffers).
    const double h2d_bytes =
        variant.server.requestSlotBytes +
        backend_stages * backend::kResponseSlotBytes;
    const double d2h_bytes = backend_stages * backend::kRequestSlotBytes +
                             info.rhythmBufferKb * 1024.0;
    const double per_request = std::max(h2d_bytes, d2h_bytes);
    return variant.device.pcieBandwidthGBs * 1e9 / per_request;
}

} // namespace rhythm::platform
