/**
 * @file
 * Logging and error-reporting primitives for the Rhythm library.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (aborts), fatal() for unrecoverable user/configuration errors (exits),
 * warn()/inform() for diagnostics that do not stop execution.
 */

#ifndef RHYTHM_UTIL_LOGGING_HH
#define RHYTHM_UTIL_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace rhythm {

/** Severity levels for log messages. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Global log configuration. Verbosity below the threshold is suppressed.
 * The default threshold is Warn so that library code stays quiet in tests
 * and benchmarks unless explicitly enabled.
 */
class Logger
{
  public:
    /** Returns the process-wide logger instance. */
    static Logger &instance();

    /** Sets the minimum level that will be emitted. */
    void setThreshold(LogLevel level) { threshold_ = level; }

    /** Returns the current emission threshold. */
    LogLevel threshold() const { return threshold_; }

    /** Emits a message at the given level to stderr. */
    void emit(LogLevel level, std::string_view msg);

  private:
    Logger() = default;

    LogLevel threshold_ = LogLevel::Warn;
};

namespace detail {

/** Composes a message from streamable parts. */
template <typename... Args>
std::string
composeMessage(const Args &...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace detail

/** Logs an informational message. */
template <typename... Args>
void
inform(const Args &...args)
{
    Logger::instance().emit(LogLevel::Info, detail::composeMessage(args...));
}

/** Logs a warning message. */
template <typename... Args>
void
warn(const Args &...args)
{
    Logger::instance().emit(LogLevel::Warn, detail::composeMessage(args...));
}

/** Logs a debug message. */
template <typename... Args>
void
debug(const Args &...args)
{
    Logger::instance().emit(LogLevel::Debug, detail::composeMessage(args...));
}

/**
 * Aborts the process: something happened that should never happen
 * regardless of user input (an internal bug).
 */
#define RHYTHM_PANIC(...)                                                     \
    ::rhythm::detail::panicImpl(__FILE__, __LINE__,                           \
                                ::rhythm::detail::composeMessage(__VA_ARGS__))

/**
 * Exits the process with an error: the simulation cannot continue due to a
 * user-supplied configuration or argument error.
 */
#define RHYTHM_FATAL(...)                                                     \
    ::rhythm::detail::fatalImpl(__FILE__, __LINE__,                           \
                                ::rhythm::detail::composeMessage(__VA_ARGS__))

/** Checks an invariant; panics with the stringified condition on failure. */
#define RHYTHM_ASSERT(cond, ...)                                              \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::rhythm::detail::panicImpl(                                      \
                __FILE__, __LINE__,                                           \
                ::rhythm::detail::composeMessage("assertion failed: " #cond  \
                                                 " " __VA_ARGS__));           \
        }                                                                     \
    } while (0)

} // namespace rhythm

#endif // RHYTHM_UTIL_LOGGING_HH
