/**
 * @file
 * Static content store: the site's images (logos, navigation art, check
 * images) served by image cohorts.
 *
 * The paper (Section 5.1) supports static images by having the parser
 * group image requests into an image cohort that bypasses the process
 * stage entirely — the stored bytes are shipped straight to the
 * response path. Content is synthetic but deterministic, with realistic
 * sizes (check images ~8-24 KiB).
 */

#ifndef RHYTHM_SPECWEB_STATIC_CONTENT_HH
#define RHYTHM_SPECWEB_STATIC_CONTENT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rhythm::specweb {

/** An immutable store of the site's static assets. */
class StaticContent
{
  public:
    /**
     * Populates the store with the standard asset set: site chrome
     * images plus @p check_images synthetic check scans.
     */
    explicit StaticContent(uint32_t check_images = 64, uint64_t seed = 17);

    /** Returns the asset bytes, or nullptr when the path is unknown. */
    const std::string *lookup(std::string_view path) const;

    /** True if the path names a static asset (by prefix/extension). */
    static bool isStaticPath(std::string_view path);

    /** Paths of all stored assets (for workload generation). */
    const std::vector<std::string> &paths() const { return paths_; }

    /** Total stored bytes. */
    uint64_t totalBytes() const { return totalBytes_; }

    /**
     * Builds the complete HTTP response for an asset (header + bytes).
     * @pre lookup(path) != nullptr.
     */
    std::string buildResponse(std::string_view path) const;

  private:
    void add(std::string path, std::string bytes);

    std::unordered_map<std::string, std::string> assets_;
    std::vector<std::string> paths_;
    uint64_t totalBytes_ = 0;
};

} // namespace rhythm::specweb

#endif // RHYTHM_SPECWEB_STATIC_CONTENT_HH
