file(REMOVE_RECURSE
  "librhythm_chat.a"
)
