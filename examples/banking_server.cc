/**
 * @file
 * Banking server demo: a closed-loop SPECWeb Banking run on Rhythm.
 *
 * Simulated clients follow real session lifecycles — log in, browse a
 * few Table 2-distributed pages using the cookie from the login
 * response, and log out — while the Rhythm pipeline batches everything
 * into cohorts on the simulated device. Every response is validated
 * with the SPECWeb-style validator.
 *
 * Usage: banking_server [clients] [pages-per-client] [cohort-size]
 */

#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>

#include "backend/bankdb.hh"
#include "des/event_queue.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "simt/device.hh"
#include "specweb/workload.hh"
#include "util/strings.hh"

namespace {

using namespace rhythm;

/** One simulated client's session-lifecycle state machine. */
struct Client
{
    enum class Phase { LoggingIn, Browsing, LoggingOut, Done };
    Phase phase = Phase::LoggingIn;
    uint64_t user = 0;
    uint64_t sessionId = 0;
    int pagesLeft = 0;
    int validated = 0;
    int failed = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const int num_clients = argc > 1 ? std::atoi(argv[1]) : 64;
    const int pages_each = argc > 2 ? std::atoi(argv[2]) : 6;
    const uint32_t cohort_size =
        argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 64;

    des::EventQueue queue;
    simt::Device device(queue, simt::DeviceConfig{});
    backend::BankDb db(static_cast<uint64_t>(num_clients) + 10, 5);

    core::RhythmConfig config;
    config.cohortSize = cohort_size;
    config.cohortContexts = 8;
    config.cohortTimeout = des::kMillisecond;
    config.backendOnDevice = true; // Titan B style
    config.networkOverPcie = false;
    core::BankingService service(db);
    core::RhythmServer server(queue, device, service, config);

    specweb::WorkloadGenerator gen(db, 99);
    std::map<uint64_t, Client> clients;
    std::map<uint64_t, specweb::RequestType> outstanding;
    uint64_t next_request_id = 1;

    // Issues the next request in a client's lifecycle.
    std::function<void(uint64_t)> issue = [&](uint64_t client_id) {
        Client &c = clients[client_id];
        specweb::RequestType type;
        switch (c.phase) {
          case Client::Phase::LoggingIn:
            type = specweb::RequestType::Login;
            break;
          case Client::Phase::LoggingOut:
            type = specweb::RequestType::Logout;
            break;
          case Client::Phase::Browsing:
            do {
                type = gen.sampleType();
            } while (type == specweb::RequestType::Login ||
                     type == specweb::RequestType::Logout);
            break;
          default:
            return;
        }
        specweb::GeneratedRequest req =
            gen.generate(type, c.user, c.sessionId);
        const uint64_t rid = next_request_id++;
        // Encode the owning client in the high bits of the request id.
        if (!server.injectRequest(req.raw, client_id << 32 | rid)) {
            // Reader full: a closed-loop client must not lose its
            // in-flight page or its lifecycle wedges, so back off and
            // reissue.
            queue.scheduleAfter(des::kMillisecond,
                                [&issue, client_id] {
                                    issue(client_id);
                                });
            return;
        }
        outstanding[rid] = type;
    };

    server.setResponseCallback([&](uint64_t tag,
                                   std::string_view response,
                                   des::Time) {
        const uint64_t client_id = tag >> 32;
        const uint64_t rid = tag & 0xffffffffu;
        Client &c = clients[client_id];
        const specweb::RequestType type = outstanding[rid];
        outstanding.erase(rid);

        auto v = specweb::validateResponse(type, response);
        v.ok ? ++c.validated : ++c.failed;

        switch (c.phase) {
          case Client::Phase::LoggingIn:
            c.sessionId = specweb::extractSessionId(response);
            c.phase = c.sessionId ? Client::Phase::Browsing
                                  : Client::Phase::Done;
            break;
          case Client::Phase::Browsing:
            if (--c.pagesLeft <= 0)
                c.phase = Client::Phase::LoggingOut;
            break;
          case Client::Phase::LoggingOut:
            c.phase = Client::Phase::Done;
            break;
          default:
            break;
        }
        if (c.phase != Client::Phase::Done)
            issue(client_id);
    });

    for (int i = 0; i < num_clients; ++i) {
        const uint64_t id = static_cast<uint64_t>(i) + 1;
        clients[id] =
            Client{Client::Phase::LoggingIn,
                   1 + static_cast<uint64_t>(i), 0, pages_each, 0, 0};
        issue(id);
    }
    queue.run();

    int validated = 0, failed = 0, done = 0;
    for (const auto &[id, c] : clients) {
        validated += c.validated;
        failed += c.failed;
        done += c.phase == Client::Phase::Done;
    }
    const core::RhythmStats &stats = server.stats();
    std::cout << "clients finished:        " << done << "/" << num_clients
              << "\nresponses validated:     " << validated
              << "\nresponses failed:        " << failed
              << "\ncohorts launched:        " << stats.cohortsLaunched
              << "\ncohort timeouts:         " << stats.cohortTimeouts
              << "\nsimulated time:          "
              << formatDouble(des::toMillis(queue.now()), 2) << " ms"
              << "\nthroughput:              "
              << humanCount(static_cast<double>(stats.responsesCompleted) /
                            des::toSeconds(queue.now()))
              << "reqs/s\nmean / p99 latency:      "
              << formatDouble(stats.latencyMs.mean(), 2) << " / "
              << formatDouble(stats.latencyMs.percentile(99), 2)
              << " ms\ndevice utilization:      "
              << formatDouble(device.kernelUtilization(), 2) << "\n";
    return failed == 0 && done == num_clients ? 0 : 1;
}
