/**
 * @file
 * Warp-level lockstep execution of thread traces.
 *
 * This is the heart of the SIMT substrate: given the per-thread traces of
 * up to warpWidth requests, simulateWarp() merges them in lockstep the way
 * SIMT hardware would — threads positioned at the same basic block execute
 * together under one instruction fetch, divergent subsets serialize, and
 * every warp-level memory access is decomposed into 128-byte DRAM
 * transactions by the coalescer. Identical traces therefore yield linear
 * speedup (the paper's Figure 2 observation) and divergent traces degrade
 * smoothly toward serial execution.
 */

#ifndef RHYTHM_SIMT_WARP_HH
#define RHYTHM_SIMT_WARP_HH

#include <cstdint>
#include <span>

#include "simt/trace.hh"

namespace rhythm::simt {

/** Aggregate execution statistics for one warp (or a sum over warps). */
struct WarpStats
{
    /** Warp-instruction issue slots consumed (serialized execution cost). */
    uint64_t issueSlots = 0;
    /** Sum of all lanes' dynamic instructions (useful work). */
    uint64_t laneInstructions = 0;
    /** Merged basic-block execution steps. */
    uint64_t steps = 0;
    /** Sum of per-lane trace lengths (block executions). */
    uint64_t laneBlockExecs = 0;
    /** Sum over steps of the number of lanes active in that step. */
    uint64_t activeLaneSteps = 0;
    /** 128-byte DRAM transactions issued by the coalescer. */
    uint64_t globalTransactions = 0;
    /** Useful global-memory bytes (sum of count × width). */
    uint64_t globalBytes = 0;
    /** Shared-memory accesses (element granularity). */
    uint64_t sharedAccesses = 0;
    /**
     * Extra issue slots consumed replaying shared-memory bank
     * conflicts (32 4-byte banks, same-address broadcast is free).
     */
    uint64_t sharedReplaySlots = 0;
    /** Constant-memory accesses (element granularity). */
    uint64_t constantAccesses = 0;

    /**
     * Field-wise equality. All fields are integers, so equality is
     * exact — the parallel engine's equivalence tests rely on this.
     */
    bool operator==(const WarpStats &) const = default;

    /** Accumulates another stats record into this one. */
    void merge(const WarpStats &other);

    /**
     * SIMD efficiency: useful lane instructions over issued slot-lanes.
     * 1.0 means every issue slot had all @p warp_width lanes doing useful
     * work; 1/warp_width means fully serialized execution.
     */
    double simdEfficiency(int warp_width) const;

    /** DRAM bytes actually moved (transactions × segment size). */
    uint64_t movedBytes(uint32_t segment_bytes = 128) const;

    /** Fraction of moved DRAM bytes that were useful (0 when none). */
    double coalescingEfficiency(uint32_t segment_bytes = 128) const;
};

/** Tuning knobs for the warp model. */
struct WarpModel
{
    int warpWidth = 32;
    uint32_t segmentBytes = 128;
    /**
     * Lookahead window (trace entries) used to detect reconvergence:
     * a front block that reappears in another lane's next @c
     * reconvergenceWindow entries is deferred so the lanes can rejoin,
     * approximating stack-based reconvergence on structured control
     * flow.
     */
    uint32_t reconvergenceWindow = 512;
};

/**
 * Executes one warp of thread traces in lockstep.
 *
 * Scheduling policy: at each step the scheduler selects, among the basic
 * blocks at the front of each unfinished lane, the block shared by the
 * most lanes (ties broken by smallest block id) and executes it for that
 * subset; this models stack-based reconvergence closely for structured
 * control flow and is deterministic.
 *
 * @param lanes Traces of the warp's threads; at most model.warpWidth,
 *        fewer for a partial warp. Null entries are permitted and denote
 *        inactive lanes.
 * @param model Warp model parameters.
 */
WarpStats simulateWarp(std::span<const ThreadTrace *const> lanes,
                       const WarpModel &model = WarpModel{});

/**
 * Block-schedule-only variant of simulateWarp(): runs the identical
 * lockstep scheduler but skips memory-op coalescing, so only the
 * control-flow fields (issueSlots, laneInstructions, steps,
 * laneBlockExecs, activeLaneSteps) are produced; all memory counters
 * stay zero. Because the scheduler never consults memOps, those five
 * fields are bit-equal to simulateWarp()'s on the same lanes — which
 * is what lets the online similarity fingerprint (src/analysis) stay
 * off the coalescer's cost on the dispatch path.
 */
WarpStats mergeBlockSchedule(std::span<const ThreadTrace *const> lanes,
                             const WarpModel &model = WarpModel{});

/**
 * Counts the 128-byte segments touched by one warp-level element access.
 *
 * Exposed for unit testing of the coalescer.
 *
 * @param addrs Per-active-lane byte addresses.
 * @param width Access width in bytes.
 * @param segment_bytes Transaction segment size.
 */
uint32_t coalesceTransactions(std::span<const uint64_t> addrs, uint16_t width,
                              uint32_t segment_bytes);

/**
 * Computes the replay count of one warp-level shared-memory access:
 * the worst bank's number of *distinct* addresses minus one (identical
 * addresses broadcast for free). 32 banks, 4-byte interleave.
 *
 * Exposed for unit testing of the bank-conflict model.
 */
uint32_t sharedBankReplays(std::span<const uint64_t> addrs);

} // namespace rhythm::simt

#endif // RHYTHM_SIMT_WARP_HH
