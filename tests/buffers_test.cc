/**
 * @file
 * Tests for the cohort buffer layout transforms (paper Section 4.3.2):
 * the transpose/untranspose round-trip on lane traces and the analytic
 * coalescing win of the 4-byte interleaved layout.
 */

#include <gtest/gtest.h>

#include <vector>

#include "rhythm/buffers.hh"
#include "simt/warp.hh"

namespace rhythm::core {
namespace {

using simt::MemOp;
using simt::MemSpace;
using simt::RecordingTracer;
using simt::ThreadTrace;
using simt::WarpModel;
using simt::WarpStats;

constexpr uint64_t kRegionBase = 0x6000'0000;
constexpr uint32_t kSlotBytes = 128;
constexpr uint32_t kCohort = 32;

void
expectSameOps(const ThreadTrace &a, const ThreadTrace &b)
{
    ASSERT_EQ(a.memOps.size(), b.memOps.size());
    for (size_t i = 0; i < a.memOps.size(); ++i) {
        const MemOp &x = a.memOps[i];
        const MemOp &y = b.memOps[i];
        EXPECT_EQ(x.addr, y.addr) << "op " << i;
        EXPECT_EQ(x.count, y.count) << "op " << i;
        EXPECT_EQ(x.stride, y.stride) << "op " << i;
        EXPECT_EQ(x.width, y.width) << "op " << i;
        EXPECT_EQ(x.space, y.space) << "op " << i;
        EXPECT_EQ(x.isStore, y.isStore) << "op " << i;
    }
}

TEST(RegionTranspose, UntransposeInvertsTransposeExactly)
{
    const uint32_t lane = 7;
    const uint64_t lane_base =
        kRegionBase + static_cast<uint64_t>(lane) * kSlotBytes;
    ThreadTrace t;
    {
        RecordingTracer rec(t);
        rec.block(1, 50);
        // Stride-4 row-major loads at several offsets within the slot,
        // bulk and single-element alike.
        rec.load(lane_base, 16, 4, 4);
        rec.load(lane_base + 64, 1, 4, 4);
        rec.load(lane_base + 100, 5, 4, 4);
        // Must survive untouched: a store inside the slot, a load
        // outside the region, and a load in another region entirely.
        rec.store(lane_base + 32, 4, 4, 4);
        rec.load(kRegionBase + static_cast<uint64_t>(kSlotBytes) * kCohort,
                 8, 4, 4);
        rec.load(0x7000'0000, 2, 4, 4);
    }
    const ThreadTrace original = t;

    transposeRegionLoads(t, kRegionBase, lane, kSlotBytes, kCohort);
    // The transpose must actually move the in-slot loads...
    EXPECT_NE(t.memOps[0].addr, original.memOps[0].addr);
    EXPECT_EQ(t.memOps[0].stride, kCohort * 4);
    // ...while leaving stores and out-of-region loads alone.
    EXPECT_EQ(t.memOps[3].addr, original.memOps[3].addr);
    EXPECT_EQ(t.memOps[4].addr, original.memOps[4].addr);
    EXPECT_EQ(t.memOps[5].addr, original.memOps[5].addr);

    untransposeRegionLoads(t, kRegionBase, lane, kSlotBytes, kCohort);
    expectSameOps(t, original);
}

TEST(RegionTranspose, UntransposeSkipsOtherLanesElements)
{
    // A transposed region interleaves all lanes; untransposing lane 3
    // must not move lane 5's elements even though they are in range.
    ThreadTrace t3, t5;
    {
        RecordingTracer rec(t3);
        rec.block(1, 10);
        rec.load(kRegionBase + 3 * kSlotBytes, 4, 4, 4);
    }
    {
        RecordingTracer rec(t5);
        rec.block(1, 10);
        rec.load(kRegionBase + 5 * kSlotBytes, 4, 4, 4);
    }
    transposeRegionLoads(t3, kRegionBase, 3, kSlotBytes, kCohort);
    transposeRegionLoads(t5, kRegionBase, 5, kSlotBytes, kCohort);
    const ThreadTrace t5_transposed = t5;

    untransposeRegionLoads(t3, kRegionBase, 3, kSlotBytes, kCohort);
    untransposeRegionLoads(t5, kRegionBase, 3, kSlotBytes, kCohort);
    EXPECT_EQ(t3.memOps[0].addr, kRegionBase + 3 * kSlotBytes);
    expectSameOps(t5, t5_transposed); // untouched: wrong lane
}

/** A warp of row-major readers: lane l reads its whole 128 B slot. */
std::vector<ThreadTrace>
rowMajorWarp()
{
    std::vector<ThreadTrace> traces(kCohort);
    for (uint32_t l = 0; l < kCohort; ++l) {
        RecordingTracer rec(traces[l]);
        rec.block(1, 100);
        rec.load(kRegionBase + static_cast<uint64_t>(l) * kSlotBytes,
                 kSlotBytes / 4, 4, 4);
    }
    return traces;
}

WarpStats
simulate(const std::vector<ThreadTrace> &traces)
{
    std::vector<const ThreadTrace *> lanes;
    for (const auto &t : traces)
        lanes.push_back(&t);
    return simt::simulateWarp(lanes, WarpModel{});
}

TEST(RegionTranspose, CoalescingMatchesAnalyticExpectation)
{
    // Row-major: each element group scatters 32 lanes across 32
    // distinct 128 B segments -> 32 words/lane * 32 transactions = 1024?
    // No: the 32 lanes' element-i addresses are l*128 + i*4, one
    // segment per lane, so every one of the 32 element groups costs 32
    // transactions: 32 * 32 = 1024 for a 128 B slot of 32 words.
    auto row = rowMajorWarp();
    const WarpStats uncoalesced = simulate(row);
    const uint32_t words = kSlotBytes / 4;
    EXPECT_EQ(uncoalesced.globalTransactions,
              static_cast<uint64_t>(words) * kCohort);

    // Transposed 4-byte interleave: element group i occupies one
    // aligned 128 B segment (32 lanes * 4 B), one transaction each.
    auto transposed = rowMajorWarp();
    for (uint32_t l = 0; l < kCohort; ++l)
        transposeRegionLoads(transposed[l], kRegionBase, l, kSlotBytes,
                             kCohort);
    const WarpStats coalesced = simulate(transposed);
    EXPECT_EQ(coalesced.globalTransactions, words);

    // The ratio is the full warp width: the Section 4.3.2 argument for
    // transposing request buffers before the parser kernel runs.
    EXPECT_EQ(uncoalesced.globalTransactions / coalesced.globalTransactions,
              kCohort);
    // Same bytes, same instructions -- layout only changes transactions.
    EXPECT_EQ(uncoalesced.globalBytes, coalesced.globalBytes);
    EXPECT_EQ(uncoalesced.issueSlots, coalesced.issueSlots);
}

} // namespace
} // namespace rhythm::core
