# Empty dependencies file for sec62_scaling.
# This may be replaced when dependencies are built.
