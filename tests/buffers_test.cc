/**
 * @file
 * Tests for the cohort buffer layout transforms (paper Section 4.3.2):
 * the transpose/untranspose round-trip on lane traces and the analytic
 * coalescing win of the 4-byte interleaved layout.
 */

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "rhythm/buffers.hh"
#include "simt/warp.hh"

namespace rhythm::core {
namespace {

using simt::MemOp;
using simt::MemSpace;
using simt::RecordingTracer;
using simt::ThreadTrace;
using simt::WarpModel;
using simt::WarpStats;

constexpr uint64_t kRegionBase = 0x6000'0000;
constexpr uint32_t kSlotBytes = 128;
constexpr uint32_t kCohort = 32;

void
expectSameOps(const ThreadTrace &a, const ThreadTrace &b)
{
    ASSERT_EQ(a.memOps.size(), b.memOps.size());
    for (size_t i = 0; i < a.memOps.size(); ++i) {
        const MemOp &x = a.memOps[i];
        const MemOp &y = b.memOps[i];
        EXPECT_EQ(x.addr, y.addr) << "op " << i;
        EXPECT_EQ(x.count, y.count) << "op " << i;
        EXPECT_EQ(x.stride, y.stride) << "op " << i;
        EXPECT_EQ(x.width, y.width) << "op " << i;
        EXPECT_EQ(x.space, y.space) << "op " << i;
        EXPECT_EQ(x.isStore, y.isStore) << "op " << i;
    }
}

TEST(RegionTranspose, UntransposeInvertsTransposeExactly)
{
    const uint32_t lane = 7;
    const uint64_t lane_base =
        kRegionBase + static_cast<uint64_t>(lane) * kSlotBytes;
    ThreadTrace t;
    {
        RecordingTracer rec(t);
        rec.block(1, 50);
        // Stride-4 row-major loads at several offsets within the slot,
        // bulk and single-element alike.
        rec.load(lane_base, 16, 4, 4);
        rec.load(lane_base + 64, 1, 4, 4);
        rec.load(lane_base + 100, 5, 4, 4);
        // Must survive untouched: a store inside the slot, a load
        // outside the region, and a load in another region entirely.
        rec.store(lane_base + 32, 4, 4, 4);
        rec.load(kRegionBase + static_cast<uint64_t>(kSlotBytes) * kCohort,
                 8, 4, 4);
        rec.load(0x7000'0000, 2, 4, 4);
    }
    const ThreadTrace original = t;

    transposeRegionLoads(t, kRegionBase, lane, kSlotBytes, kCohort);
    // The transpose must actually move the in-slot loads...
    EXPECT_NE(t.memOps[0].addr, original.memOps[0].addr);
    EXPECT_EQ(t.memOps[0].stride, kCohort * 4);
    // ...while leaving stores and out-of-region loads alone.
    EXPECT_EQ(t.memOps[3].addr, original.memOps[3].addr);
    EXPECT_EQ(t.memOps[4].addr, original.memOps[4].addr);
    EXPECT_EQ(t.memOps[5].addr, original.memOps[5].addr);

    untransposeRegionLoads(t, kRegionBase, lane, kSlotBytes, kCohort);
    expectSameOps(t, original);
}

TEST(RegionTranspose, UntransposeSkipsOtherLanesElements)
{
    // A transposed region interleaves all lanes; untransposing lane 3
    // must not move lane 5's elements even though they are in range.
    ThreadTrace t3, t5;
    {
        RecordingTracer rec(t3);
        rec.block(1, 10);
        rec.load(kRegionBase + 3 * kSlotBytes, 4, 4, 4);
    }
    {
        RecordingTracer rec(t5);
        rec.block(1, 10);
        rec.load(kRegionBase + 5 * kSlotBytes, 4, 4, 4);
    }
    transposeRegionLoads(t3, kRegionBase, 3, kSlotBytes, kCohort);
    transposeRegionLoads(t5, kRegionBase, 5, kSlotBytes, kCohort);
    const ThreadTrace t5_transposed = t5;

    untransposeRegionLoads(t3, kRegionBase, 3, kSlotBytes, kCohort);
    untransposeRegionLoads(t5, kRegionBase, 3, kSlotBytes, kCohort);
    EXPECT_EQ(t3.memOps[0].addr, kRegionBase + 3 * kSlotBytes);
    expectSameOps(t5, t5_transposed); // untouched: wrong lane
}

/** A warp of row-major readers: lane l reads its whole 128 B slot. */
std::vector<ThreadTrace>
rowMajorWarp()
{
    std::vector<ThreadTrace> traces(kCohort);
    for (uint32_t l = 0; l < kCohort; ++l) {
        RecordingTracer rec(traces[l]);
        rec.block(1, 100);
        rec.load(kRegionBase + static_cast<uint64_t>(l) * kSlotBytes,
                 kSlotBytes / 4, 4, 4);
    }
    return traces;
}

WarpStats
simulate(const std::vector<ThreadTrace> &traces)
{
    std::vector<const ThreadTrace *> lanes;
    for (const auto &t : traces)
        lanes.push_back(&t);
    return simt::simulateWarp(lanes, WarpModel{});
}

TEST(RegionTranspose, CoalescingMatchesAnalyticExpectation)
{
    // Row-major: each element group scatters 32 lanes across 32
    // distinct 128 B segments -> 32 words/lane * 32 transactions = 1024?
    // No: the 32 lanes' element-i addresses are l*128 + i*4, one
    // segment per lane, so every one of the 32 element groups costs 32
    // transactions: 32 * 32 = 1024 for a 128 B slot of 32 words.
    auto row = rowMajorWarp();
    const WarpStats uncoalesced = simulate(row);
    const uint32_t words = kSlotBytes / 4;
    EXPECT_EQ(uncoalesced.globalTransactions,
              static_cast<uint64_t>(words) * kCohort);

    // Transposed 4-byte interleave: element group i occupies one
    // aligned 128 B segment (32 lanes * 4 B), one transaction each.
    auto transposed = rowMajorWarp();
    for (uint32_t l = 0; l < kCohort; ++l)
        transposeRegionLoads(transposed[l], kRegionBase, l, kSlotBytes,
                             kCohort);
    const WarpStats coalesced = simulate(transposed);
    EXPECT_EQ(coalesced.globalTransactions, words);

    // The ratio is the full warp width: the Section 4.3.2 argument for
    // transposing request buffers before the parser kernel runs.
    EXPECT_EQ(uncoalesced.globalTransactions / coalesced.globalTransactions,
              kCohort);
    // Same bytes, same instructions -- layout only changes transactions.
    EXPECT_EQ(uncoalesced.globalBytes, coalesced.globalBytes);
    EXPECT_EQ(uncoalesced.issueSlots, coalesced.issueSlots);
}

TEST(RegionTranspose, ExactTileEdgeLanesAndOffsetsRoundTrip)
{
    // Edge lanes (0 and kCohort-1) at edge offsets (first word, last
    // word, and an unaligned tail byte) — the corners of the transpose
    // tile where an off-by-one in the address math would land the
    // element in a neighboring lane's column or the next element row.
    const uint32_t last = kCohort - 1;
    EXPECT_EQ(transposedRegionAddr(kRegionBase, 0, 0, kCohort),
              kRegionBase);
    EXPECT_EQ(transposedRegionAddr(kRegionBase, last, 0, kCohort),
              kRegionBase + static_cast<uint64_t>(last) * 4);
    // Last word of the slot: row (kSlotBytes/4 - 1), column `lane`.
    EXPECT_EQ(transposedRegionAddr(kRegionBase, last, kSlotBytes - 4,
                                   kCohort),
              kRegionBase +
                  (static_cast<uint64_t>(kSlotBytes) / 4 - 1) *
                      (kCohort * 4ull) +
                  static_cast<uint64_t>(last) * 4);
    // Unaligned offset keeps its byte position within the element.
    EXPECT_EQ(transposedRegionAddr(kRegionBase, 3, 9, kCohort),
              kRegionBase + 2 * (kCohort * 4ull) + 3 * 4 + 1);

    for (uint32_t lane : {0u, last}) {
        const uint64_t lane_base =
            kRegionBase + static_cast<uint64_t>(lane) * kSlotBytes;
        ThreadTrace t;
        {
            RecordingTracer rec(t);
            rec.block(1, 10);
            rec.load(lane_base, 1, 4, 4);
            rec.load(lane_base + kSlotBytes - 4, 1, 4, 4);
            rec.load(lane_base, kSlotBytes / 4, 4, 4);
        }
        const ThreadTrace original = t;
        transposeRegionLoads(t, kRegionBase, lane, kSlotBytes, kCohort);
        untransposeRegionLoads(t, kRegionBase, lane, kSlotBytes,
                               kCohort);
        expectSameOps(t, original);
    }
}

TEST(TransposingRecorder, MatchesPostPassTransposeBitForBit)
{
    // The one-pass recorder must produce exactly the trace that
    // recording row-major and then running the post-pass rewrite
    // produces — the parser path switched to the recorder, and the
    // template-cache equivalence argument rests on this identity.
    const uint32_t lane = 13;
    const uint64_t lane_base =
        kRegionBase + static_cast<uint64_t>(lane) * kSlotBytes;
    auto record = [&](simt::RecordingTracer &rec) {
        rec.block(7, 42);
        rec.load(lane_base, 16, 4, 4);        // full-slot scan
        rec.load(lane_base + 60, 3, 4, 4);    // interior
        rec.load(lane_base + kSlotBytes - 4, 1, 4, 4); // last word
        rec.store(lane_base + 16, 2, 4, 4);   // store: never remapped
        rec.load(0x7000'0000, 4, 4, 4);       // other region
        rec.load(kRegionBase +
                     static_cast<uint64_t>(kCohort) * kSlotBytes,
                 2, 4, 4);                    // just past the region
        rec.block(8, 5);
    };

    ThreadTrace post;
    {
        RecordingTracer rec(post);
        record(rec);
    }
    transposeRegionLoads(post, kRegionBase, lane, kSlotBytes, kCohort);

    ThreadTrace direct;
    {
        TransposingRecorder rec(direct, kRegionBase, lane, kSlotBytes,
                                kCohort);
        record(rec);
    }

    expectSameOps(direct, post);
    ASSERT_EQ(direct.blocks.size(), post.blocks.size());
    for (size_t i = 0; i < direct.blocks.size(); ++i) {
        EXPECT_EQ(direct.blocks[i].blockId, post.blocks[i].blockId);
        EXPECT_EQ(direct.blocks[i].instructions,
                  post.blocks[i].instructions);
        EXPECT_EQ(direct.blocks[i].memBegin, post.blocks[i].memBegin);
        EXPECT_EQ(direct.blocks[i].memCount, post.blocks[i].memCount);
    }
}

TEST(CohortBufferZeroCopy, SpillPreservesContentOnSlotOverflow)
{
    CohortBufferConfig cfg;
    cfg.cohortSize = 4;
    cfg.laneBytes = 64;
    cfg.layout = BufferLayout::RowMajor;
    cfg.padToWarpMax = false;
    CohortBuffer buf(cfg);

    simt::ThreadTrace t;
    simt::RecordingTracer rec(t);
    auto &w = buf.writer(1, rec);
    const std::string long_text(100, 'x'); // 100 > 64: must spill
    w.appendStatic(1, "head:");
    w.appendDynamic(1, long_text);
    w.appendStatic(1, ":tail");

    EXPECT_TRUE(buf.spilled(1));
    EXPECT_EQ(buf.content(1), "head:" + long_text + ":tail");
    EXPECT_FALSE(buf.spilled(0));
    EXPECT_EQ(buf.content(0), "");

    // Patching a reservation works in the spilled representation too.
    const size_t off = w.reserve(1, 4);
    w.appendStatic(1, "!");
    w.patch(off, "42");
    const std::string_view c = buf.content(1);
    EXPECT_EQ(c.substr(off, 5), "42  !");
}

TEST(CohortBufferZeroCopy, PatchNarrowerThanReservationKeepsSpaces)
{
    // The Content-Length back-patch (Section 4.3.2): the reservation is
    // fixed-width, the patched value is often narrower, and the width
    // of the value can change between cohorts reusing the buffer. The
    // unpatched remainder must stay whitespace either way.
    CohortBufferConfig cfg;
    cfg.cohortSize = 2;
    cfg.laneBytes = 256;
    cfg.layout = BufferLayout::Transposed;
    CohortBuffer buf(cfg);

    simt::ThreadTrace t;
    simt::RecordingTracer rec(t);
    auto &w = buf.writer(0, rec);
    // Odd-length prefix: the reservation starts mid-word, so the
    // space fill and the patch both cross a 4-byte element boundary
    // of the transposed layout.
    w.appendStatic(1, "Len: ");
    const size_t off = w.reserve(1, 10);
    EXPECT_EQ(off, 5u);
    w.appendStatic(1, "\r\n");
    EXPECT_EQ(buf.content(0), "Len:           \r\n");

    w.patch(off, "7");
    EXPECT_EQ(buf.content(0), "Len: 7         \r\n");
    // Re-patch with the full width (a 10-digit length).
    w.patch(off, "1234567890");
    EXPECT_EQ(buf.content(0), "Len: 1234567890\r\n");
}

TEST(CohortBufferZeroCopy, ResetRecyclesSlotsAndBumpsEpoch)
{
    CohortBufferConfig cfg;
    cfg.cohortSize = 2;
    cfg.laneBytes = 128;
    CohortBuffer buf(cfg);
    const uint64_t epoch0 = buf.arenaEpoch();

    simt::ThreadTrace t;
    simt::RecordingTracer rec(t);
    buf.writer(0, rec).appendStatic(1, "first cohort content");
    EXPECT_EQ(buf.content(0), "first cohort content");

    buf.reset();
    EXPECT_EQ(buf.arenaEpoch(), epoch0 + 1);
    EXPECT_EQ(buf.content(0), "");

    simt::ThreadTrace t2;
    simt::RecordingTracer rec2(t2);
    buf.writer(0, rec2).appendStatic(1, "second");
    EXPECT_EQ(buf.content(0), "second");
    EXPECT_FALSE(buf.overflowed());
}

} // namespace
} // namespace rhythm::core
