/**
 * @file
 * Shared helpers for the benchmark harness: paper reference values and
 * uniform printing. Every bench binary regenerates one table or figure
 * of the paper and prints measured rows next to the paper's reference
 * values so the shape comparison is immediate.
 */

#ifndef RHYTHM_BENCH_COMMON_HH
#define RHYTHM_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "util/strings.hh"
#include "util/table.hh"

namespace rhythm::bench {

/** Paper Table 3 reference values for one platform row. */
struct PaperTable3Row
{
    const char *name;
    double idleWatts;
    double wallWatts;
    double dynamicWatts;
    double latencyMs;
    double throughputK; //!< KReqs/s
    double rpjWall;
    double rpjDynamic;
};

/** The paper's Table 3 (SPECWeb Banking experimental results). */
inline constexpr PaperTable3Row kPaperTable3[] = {
    {"Core i5 1 worker", 47, 67, 20, 0.016, 75, 972, 3283},
    {"Core i5 4 workers", 47, 98, 51, 0.016, 282, 2447, 4712},
    {"Core i7 4 workers", 45, 147, 102, 0.014, 331, 1901, 2735},
    {"Core i7 8 workers", 45, 156, 111, 0.014, 377, 2042, 2873},
    {"ARM A9 1 worker", 2, 3.4, 1.4, 0.176, 8, 1672, 4061},
    {"ARM A9 2 workers", 2, 4.5, 2.5, 0.176, 16, 2683, 4830},
    {"Titan A", 74, 226, 152, 86, 398, 1469, 2193},
    {"Titan B", 74, 306, 232, 24, 1535, 3329, 4410},
    {"Titan C", 74, 285, 211, 10, 3082, 9070, 12264},
};

/** Prints a bench banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "\n=================================================="
                 "====================\n"
              << title << "\n"
              << "Reproduces: " << paper_ref << "\n"
              << "=================================================="
                 "====================\n";
}

/** Formats a double with given precision (shorthand). */
inline std::string
fmt(double v, int precision = 2)
{
    return formatDouble(v, precision);
}

/** Formats "measured (paper ref)" in one cell. */
inline std::string
withRef(double measured, double reference, int precision = 2)
{
    return formatDouble(measured, precision) + " (" +
           formatDouble(reference, precision) + ")";
}

} // namespace rhythm::bench

#endif // RHYTHM_BENCH_COMMON_HH
