/**
 * @file
 * CPU platform models: Core i5, Core i7 and ARM Cortex A9 baselines
 * (paper Table 1/Table 3).
 *
 * Power figures (idle/wall/dynamic) are the paper's Kill-A-Watt
 * measurements, used as calibration constants. The effective IPC of each
 * (platform, workers) row is fitted so that the paper's Table 2
 * instruction counts reproduce the paper's measured throughput; it
 * absorbs the gap between Pin-traced instruction counts and the lean C
 * implementation the authors timed, plus turbo/SMT effects. What the
 * model *predicts* is how throughput, latency and efficiency respond to
 * our measured workload — the Table 3 shape.
 */

#ifndef RHYTHM_PLATFORM_CPU_HH
#define RHYTHM_PLATFORM_CPU_HH

#include <string>
#include <vector>

namespace rhythm::platform {

/** One CPU platform operating point (a Table 3 row). */
struct CpuPlatform
{
    std::string name;
    double clockGhz = 3.4;
    int workers = 1;
    /** Fitted effective instructions/cycle per worker. */
    double effectiveIpc = 4.0;
    /** Throughput scaling efficiency across workers (1.0 = linear). */
    double scalingEfficiency = 1.0;
    /** Measured wall power at idle (W). */
    double idleWatts = 0.0;
    /** Measured wall power under load (W). */
    double wallWatts = 0.0;

    /** Measured dynamic (load − idle) power (W). */
    double dynamicWatts() const { return wallWatts - idleWatts; }

    /** Instructions retired per second across all workers. */
    double
    instructionsPerSecond() const
    {
        return effectiveIpc * clockGhz * 1e9 * workers *
               scalingEfficiency;
    }
};

/** Derived metrics for a CPU platform on a given workload. */
struct CpuResult
{
    std::string name;
    double throughput = 0.0;      //!< requests/second
    double latencyMs = 0.0;       //!< single-request service time
    double idleWatts = 0.0;
    double wallWatts = 0.0;
    double dynamicWatts = 0.0;
    double reqsPerJouleWall = 0.0;
    double reqsPerJouleDynamic = 0.0;
};

/**
 * Evaluates a CPU platform on a workload.
 * @param insts_per_request Mix-weighted mean dynamic instructions per
 *        request (measured by the harness on the host server).
 */
CpuResult evaluateCpu(const CpuPlatform &platform,
                      double insts_per_request);

/** The six CPU operating points of Table 3, in table order. */
std::vector<CpuPlatform> standardCpuPlatforms();

/** Single-worker variants used by the Section 6.2 scaling study. */
CpuPlatform armA9OneWorker();
CpuPlatform corei5OneWorker();

/** Section 6.2: cores needed to match a target throughput. */
struct ScalingResult
{
    std::string coreName;
    double coresNeeded = 0.0;       //!< rounded up
    double scaledPowerWatts = 0.0;  //!< cores × per-core dynamic watts
    double titanPowerWatts = 0.0;
    double headroomWatts = 0.0;     //!< titan − scaled (for uncore)
    double headroomPercent = 0.0;   //!< headroom / titan
};

/**
 * Computes the Section 6.2 comparison: how many replicated cores match
 * @p target_throughput, and how much power headroom remains relative to
 * the Titan platform's dynamic power.
 *
 * @param core_throughput Single-core (1 worker) requests/second.
 * @param per_core_watts Assumed dynamic power per replicated core
 *        (paper: 1 W ARM, 10 W i5).
 */
ScalingResult scaleToMatch(const std::string &core_name,
                           double target_throughput,
                           double core_throughput, double per_core_watts,
                           double titan_dynamic_watts);

} // namespace rhythm::platform

#endif // RHYTHM_PLATFORM_CPU_HH
