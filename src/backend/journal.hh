/**
 * @file
 * Write-ahead command journal for the recoverable backend.
 *
 * The journal is the durability primitive of the crash-recovery layer
 * (DESIGN §6g): every mutating backend operation and every session
 * mutation is appended as one length-prefixed, checksummed record
 * BEFORE its response is released (log-before-respond). A crash then
 * loses at most the single record being written; replaying the journal
 * on top of the last checkpoint reconstructs the exact pre-crash state.
 *
 * Record wire format (ASCII framing, binary-safe payload):
 *
 *     J|<kind>|<token>|<len>|<payload>|<sum16hex>\n
 *
 * where <kind> is one byte ('B' backend op, 'C' session create,
 * 'D' session destroy), <token> is the decimal idempotency token,
 * <len> is the decimal payload byte count (the payload may contain any
 * byte, including '|' and '\n' — framing never scans it), and
 * <sum16hex> is the 64-bit checksum of everything from <kind> through
 * <payload> as 16 hex digits. The checksum pairs the repo's two
 * structurally independent streaming hashers (util::Fnv1a64 and
 * util::Mix64), the same construction the warp profile cache trusts
 * for content equality.
 *
 * Torn writes: a crash mid-append leaves a prefix of the final record
 * on disk. scan() detects this — any record that fails to parse or
 * checksum at the tail is reported as torn and dropped; the client's
 * retry (same idempotency token) re-executes the lost operation, so
 * the end-to-end effect is still exactly-once.
 */

#ifndef RHYTHM_BACKEND_JOURNAL_HH
#define RHYTHM_BACKEND_JOURNAL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rhythm::backend {

/** One journal entry before framing / after parsing. */
struct JournalRecord
{
    /** 'B' = backend op, 'C' = session create, 'D' = session destroy. */
    char kind = 'B';
    /** Idempotency token ('B') or session id ('C'/'D'). */
    uint64_t token = 0;
    /**
     * 'B': wire request, '\x1f', wire response.
     * 'C': decimal user id. 'D': empty.
     */
    std::string payload;
};

/** Checksum used by the record framing (exposed for tests). */
uint64_t journalChecksum(std::string_view bytes);

/**
 * The in-memory journal "device". Append is the only mutation the
 * serving path performs; clear() models checkpoint truncation and
 * tearLastRecord() models the partial write a crash leaves behind.
 */
class Journal
{
  public:
    /** Appends one framed record. */
    void append(const JournalRecord &record);

    /**
     * Simulates a torn final write: keeps only the first half of the
     * last appended record's bytes. No-op on an empty journal.
     */
    void tearLastRecord();

    /** Records appended since the last clear(). */
    uint64_t records() const { return records_; }

    /** Journal size in bytes. */
    uint64_t bytes() const { return data_.size(); }

    /** Checkpoint truncation. */
    void clear();

    /** Raw journal bytes (what scan() parses). */
    const std::string &data() const { return data_; }

    /** Replaces the raw bytes (recovery drops a torn tail; tests build
     *  corrupt journals directly). @p records is the parsed count of
     *  the new image. */
    void setData(std::string data, uint64_t records = 0);

    /** Result of parsing a journal image. */
    struct ScanResult
    {
        std::vector<JournalRecord> records;
        /** True when the tail failed to parse/checksum (dropped). */
        bool torn = false;
        /** Bytes of the dropped tail. */
        uint64_t tornBytes = 0;
    };

    /**
     * Parses a journal image into records. Parsing stops at the first
     * record that is incomplete or fails its checksum; everything from
     * that point on is reported as the torn tail (after an
     * undetectable boundary nothing downstream can be trusted).
     */
    static ScanResult scan(std::string_view data);

  private:
    std::string data_;
    uint64_t records_ = 0;
    size_t lastRecordOffset_ = 0;
};

} // namespace rhythm::backend

#endif // RHYTHM_BACKEND_JOURNAL_HH
