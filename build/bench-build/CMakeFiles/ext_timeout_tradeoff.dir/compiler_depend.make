# Empty compiler generated dependencies file for ext_timeout_tradeoff.
# This may be replaced when dependencies are built.
