
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/similarity.cc" "src/analysis/CMakeFiles/rhythm_analysis.dir/similarity.cc.o" "gcc" "src/analysis/CMakeFiles/rhythm_analysis.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/rhythm_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/rhythm_host.dir/DependInfo.cmake"
  "/root/repo/build/src/specweb/CMakeFiles/rhythm_specweb.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/rhythm_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/rhythm_http.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/rhythm_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rhythm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
