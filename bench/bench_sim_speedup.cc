/**
 * @file
 * Host-side speedup of the warp profile cache. Not a paper figure: this
 * bench measures the *simulator's* wall-clock, not simulated time. It
 * runs the fig8-shaped banking steady state (Titan B, account summary —
 * the dominant Table 2 type — with the cycling session pool of the
 * isolation methodology) four ways: profile cache off/on at 1 and 8
 * sim threads. The cached runs must produce byte-identical simulated
 * outputs (asserted on the DES order hash, clock, event and response
 * counts and the latency sum) while re-simulating only the warps whose
 * normalized content was never seen — the session pool cycles after two
 * cohorts, so every later launch is served from the cache.
 *
 * Deterministic cache accounting (hits/misses/evictions and the
 * identical-output flags) goes in "metrics" and is gate-compared
 * exactly; wall-clock milliseconds and the speedup ratios go in the
 * machine-dependent "host" section, which tools/check_bench.py gates
 * with the separate --host-tolerance band.
 */

#include <chrono>
#include <iostream>
#include <optional>
#include <string>

#include "backend/bankdb.hh"
#include "bench/common.hh"
#include "des/event_queue.hh"
#include "platform/titan.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "simt/device.hh"
#include "simt/profile_cache.hh"
#include "specweb/workload.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace {

using namespace rhythm;

constexpr uint64_t kUsers = 2000;
constexpr uint64_t kSeed = 42;
constexpr uint32_t kLaneSample = 128;
constexpr size_t kCacheEntries = 4096;

struct RunResult
{
    double hostMs = 0.0;
    //! Simulated-output fingerprint: must match with the cache on/off.
    des::Time clock = 0;
    uint64_t dispatched = 0;
    uint64_t orderHash = 0;
    uint64_t responses = 0;
    uint64_t engineWarps = 0;
    double latencySumMs = 0.0;
    //! Cache accounting (zero for cache-off runs).
    simt::ProfileCache::Stats cache;
    size_t cacheSize = 0;
};

/** True when the simulated outputs of two runs are bit-identical. */
bool
identical(const RunResult &a, const RunResult &b)
{
    return a.clock == b.clock && a.dispatched == b.dispatched &&
           a.orderHash == b.orderHash && a.responses == b.responses &&
           a.engineWarps == b.engineWarps &&
           a.latencySumMs == b.latencySumMs;
}

RunResult
runOnce(bool cache_on, unsigned threads, uint32_t cohorts)
{
    util::setSimThreads(threads);

    platform::TitanVariant variant = platform::titanB();
    core::RhythmConfig cfg = variant.server;
    cfg.laneSample = kLaneSample;
    if (cache_on)
        cfg.traceTemplateCacheEntries = kCacheEntries;
    const uint64_t total =
        static_cast<uint64_t>(cohorts) * cfg.cohortSize;

    // The input corpus is identical either way and not what the cache
    // accelerates, so it is generated outside the timed section; the
    // timed section is the simulator itself.
    backend::BankDb db(kUsers, kSeed);
    specweb::WorkloadGenerator gen(db, kSeed * 977 + 13);
    des::EventQueue queue;
    simt::ProfileCache cache(kCacheEntries);
    simt::Device device(queue, variant.device);
    if (cache_on)
        device.engine().setProfileCache(&cache);
    core::BankingService service(db);
    core::RhythmServer server(queue, device, service, cfg);
    auto sessions = server.sessions().populate(
        std::min<uint64_t>(total, 8192), kUsers);
    std::vector<std::string> requests;
    requests.reserve(total);
    for (uint64_t i = 0; i < total; ++i) {
        const auto &[sid, user] = sessions[i % sessions.size()];
        requests.push_back(
            gen.generate(specweb::RequestType::AccountSummary, user, sid)
                .raw);
    }

    const auto start = std::chrono::steady_clock::now();
    uint64_t issued = 0;
    server.start([&]() -> std::optional<std::string> {
        if (issued >= total)
            return std::nullopt;
        return std::move(requests[issued++]);
    });
    queue.run();
    const auto stop = std::chrono::steady_clock::now();

    RunResult r;
    r.hostMs =
        std::chrono::duration<double, std::milli>(stop - start).count();
    r.clock = queue.now();
    r.dispatched = queue.dispatched();
    r.orderHash = queue.orderHash();
    r.responses = server.stats().responsesCompleted;
    r.engineWarps = device.engine().warps();
    r.latencySumMs = server.stats().latencyMs.mean() *
                     static_cast<double>(server.stats().latencyMs.count());
    r.cache = cache.stats();
    r.cacheSize = cache.size();
    util::setSimThreads(1);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("sim_speedup", argc, argv);
    bench::banner("Simulator speedup: warp profile cache",
                  "host-side optimization (no paper counterpart)");

    uint32_t cohorts = 24;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.rfind("--cohorts=", 0) == 0)
            cohorts = static_cast<uint32_t>(
                std::atoi(std::string(arg.substr(10)).c_str()));
    }

    const RunResult off1 = runOnce(false, 1, cohorts);
    const RunResult on1 = runOnce(true, 1, cohorts);
    const RunResult off8 = runOnce(false, 8, cohorts);
    const RunResult on8 = runOnce(true, 8, cohorts);

    const bool all_identical = identical(off1, on1) &&
                               identical(off1, off8) &&
                               identical(off1, on8);
    const double speedup1 = on1.hostMs > 0 ? off1.hostMs / on1.hostMs : 0;
    const double speedup8 = on8.hostMs > 0 ? off8.hostMs / on8.hostMs : 0;

    TableWriter t({"configuration", "host ms", "speedup vs cache-off",
                   "warps simulated", "warps served from cache"});
    const auto row = [&](const char *name, const RunResult &r,
                         double speedup, bool cached) {
        const uint64_t simulated = cached ? r.cache.misses : r.engineWarps;
        const uint64_t served =
            cached ? r.cache.hits + r.cache.intraHits : 0;
        t.addRow({name, formatDouble(r.hostMs, 1),
                  speedup > 0 ? formatDouble(speedup, 2) + "x" : "-",
                  withCommas(simulated), withCommas(served)});
    };
    row("cache off, 1 thread", off1, 0, false);
    row("cache on,  1 thread", on1, speedup1, true);
    row("cache off, 8 threads", off8, 0, false);
    row("cache on,  8 threads", on8, speedup8, true);
    t.printAscii(std::cout);
    std::cout << "outputs byte-identical across all four runs: "
              << (all_identical ? "yes" : "NO — BUG") << "\n"
              << "cache: " << withCommas(on1.cache.hits)
              << " cross-launch hits, "
              << withCommas(on1.cache.intraHits) << " intra-launch, "
              << withCommas(on1.cache.misses) << " misses, "
              << withCommas(on1.cache.evictions) << " evictions, "
              << bench::fmt(static_cast<double>(on1.cache.bytesSaved) /
                                (1024.0 * 1024.0),
                            1)
              << " MiB of traces not re-simulated\n";

    report.config("cohorts", static_cast<double>(cohorts));
    report.config("lane_sample", static_cast<double>(kLaneSample));
    report.config("users", static_cast<double>(kUsers));
    report.config("cache_entries", static_cast<double>(kCacheEntries));
    // Deterministic: exact-compared by the perf gate.
    report.metric("identical_outputs", all_identical ? 1.0 : 0.0);
    report.metric("responses", static_cast<double>(off1.responses));
    report.metric("warps_total",
                  static_cast<double>(off1.engineWarps));
    report.metric("cache.hits", static_cast<double>(on1.cache.hits));
    report.metric("cache.intra_hits",
                  static_cast<double>(on1.cache.intraHits));
    report.metric("cache.misses",
                  static_cast<double>(on1.cache.misses));
    report.metric("cache.insertions",
                  static_cast<double>(on1.cache.insertions));
    report.metric("cache.evictions",
                  static_cast<double>(on1.cache.evictions));
    // Machine-dependent: gated by the separate --host-tolerance band.
    report.hostStat("off_1t_ms", off1.hostMs);
    report.hostStat("on_1t_ms", on1.hostMs);
    report.hostStat("off_8t_ms", off8.hostMs);
    report.hostStat("on_8t_ms", on8.hostMs);
    report.hostStat("speedup_1t", speedup1);
    report.hostStat("speedup_8t", speedup8);
    if (!report.write())
        return 1;
    return all_identical ? 0 : 1;
}
