#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace rhythm {

void
Summary::add(double value)
{
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
Summary::merge(const Summary &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta *
                           (static_cast<double>(count_) *
                            static_cast<double>(other.count_)) /
                           total;
    mean_ = (mean_ * static_cast<double>(count_) +
             other.mean_ * static_cast<double>(other.count_)) /
            total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
Summary::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

void
Histogram::add(double value)
{
    samples_.push_back(value);
    sorted_ = false;
}

double
Histogram::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
Histogram::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    RHYTHM_ASSERT(p >= 0.0 && p <= 100.0);
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<size_t>(rank);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void
Histogram::clear()
{
    samples_.clear();
    sorted_ = true;
}

WindowedPercentile::WindowedPercentile(size_t window) : window_(window)
{
    RHYTHM_ASSERT(window_ > 0);
    ring_.reserve(window_);
}

void
WindowedPercentile::add(double value)
{
    if (ring_.size() < window_) {
        ring_.push_back(value);
    } else {
        ring_[next_] = value;
        next_ = (next_ + 1) % window_;
    }
    ++total_;
    cacheValid_ = false;
}

double
WindowedPercentile::percentile(double p) const
{
    if (ring_.empty())
        return 0.0;
    RHYTHM_ASSERT(p >= 0.0 && p <= 100.0);
    if (cacheValid_ && cachedP_ == p)
        return cachedValue_;
    scratch_ = ring_;
    const double rank =
        (p / 100.0) * static_cast<double>(scratch_.size() - 1);
    const auto nth = static_cast<size_t>(rank + 0.5);
    std::nth_element(scratch_.begin(),
                     scratch_.begin() + static_cast<long>(nth),
                     scratch_.end());
    cachedP_ = p;
    cachedValue_ = scratch_[nth];
    cacheValid_ = true;
    return cachedValue_;
}

Ewma::Ewma(double alpha) : alpha_(alpha)
{
    RHYTHM_ASSERT(alpha > 0.0 && alpha <= 1.0);
}

void
Ewma::add(double sample)
{
    if (count_ == 0)
        value_ = sample;
    else
        value_ += alpha_ * (sample - value_);
    ++count_;
}

void
WeightedHarmonicMean::add(double weight, double value)
{
    RHYTHM_ASSERT(weight > 0.0 && value > 0.0);
    weightSum_ += weight;
    weightedReciprocals_ += weight / value;
}

double
WeightedHarmonicMean::value() const
{
    if (weightedReciprocals_ == 0.0)
        return 0.0;
    return weightSum_ / weightedReciprocals_;
}

} // namespace rhythm
