/**
 * @file
 * Extension experiment (paper Section 8): the Search workload on
 * Rhythm. Runs each Search page type in isolation on a Titan-B-style
 * platform — same pipeline, same device, different Service — and
 * reports throughput, latency and SIMD efficiency per type plus the
 * mix-weighted workload aggregate. Demonstrates the claim that Rhythm
 * generalizes beyond the Banking workload.
 */

#include <iostream>

#include "bench/common.hh"
#include "des/event_queue.hh"
#include "rhythm/server.hh"
#include "search/service.hh"
#include "util/stats.hh"

namespace {

using namespace rhythm;

struct RunResult
{
    double throughput;
    double latencyMs;
    double simdEff;
    double utilization;
};

RunResult
runIsolated(search::InvertedIndex &index, search::PageType type,
            uint32_t cohorts, const bench::FaultFlags &faults,
            const bench::OverlapFlags &overlap)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    faults.apply(dcfg);
    overlap.apply(dcfg);
    simt::Device device(queue, dcfg);
    search::SearchService service(index);

    core::RhythmConfig cfg;
    cfg.cohortSize = 4096;
    cfg.cohortContexts = 8;
    cfg.cohortTimeout = 2 * des::kMillisecond;
    cfg.backendOnDevice = true; // Titan B
    cfg.networkOverPcie = false;
    cfg.laneSample = 128;
    faults.apply(cfg);
    overlap.apply(cfg);
    core::RhythmServer server(queue, device, service, cfg);
    std::optional<fault::FaultPlan> plan;
    faults.arm(server, device, queue, plan);

    search::QueryGenerator gen(index.corpus(), 11);
    const uint64_t total = static_cast<uint64_t>(cohorts) * cfg.cohortSize;
    uint64_t issued = 0;
    server.start([&]() -> std::optional<std::string> {
        if (issued >= total)
            return std::nullopt;
        ++issued;
        return gen.generate(type).raw;
    });
    queue.run();

    const core::RhythmStats &stats = server.stats();
    RunResult r;
    const double elapsed = des::toSeconds(queue.now());
    r.throughput = static_cast<double>(stats.responsesCompleted) / elapsed;
    r.latencyMs = stats.latencyMs.mean();
    r.simdEff = stats.processIssueSlots > 0
                    ? stats.processLaneInstructions /
                          (stats.processIssueSlots * 32.0)
                    : 0.0;
    r.utilization = device.kernelUtilization();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter report("ext_search_workload", argc, argv);
    bench::banner("Extension: the Search workload on Rhythm (Titan B)",
                  "Section 8 future work (Search/Email/Chat on Rhythm)");

    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.recordConfig(report);
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    overlap.recordConfig(report);

    std::cout << "Building corpus and inverted index...\n";
    search::Corpus corpus(4000, 4096, 7);
    search::InvertedIndex index(corpus);

    TableWriter table({"page type", "mix %", "KReqs/s", "latency ms",
                       "SIMD eff", "device util"});
    WeightedHarmonicMean whm;
    for (uint32_t t = 0; t < search::kNumPageTypes; ++t) {
        const search::PageTypeInfo &info = search::pageTable()[t];
        RunResult r = runIsolated(
            index, static_cast<search::PageType>(t), 8, faults, overlap);
        whm.add(info.mixPercent, r.throughput);
        const std::string key = bench::slug(info.name);
        report.metric(key + ".throughput", r.throughput);
        report.metric(key + ".simd_efficiency", r.simdEff);
        table.addRow({std::string(info.name),
                      bench::fmt(info.mixPercent, 0),
                      bench::fmt(r.throughput / 1e3, 0),
                      bench::fmt(r.latencyMs, 2), bench::fmt(r.simdEff, 2),
                      bench::fmt(r.utilization, 2)});
    }
    table.printAscii(std::cout);
    std::cout << "Mix-weighted workload throughput: "
              << bench::fmt(whm.value() / 1e3, 0)
              << " KReqs/s (no paper reference — this experiment extends "
                 "the paper).\nObservations to check: same-type search "
                 "cohorts keep high SIMD efficiency; the\nresults page "
                 "(posting-list scans + ranking) is the heaviest type, "
                 "as in production\nsearch front-ends.\n";
    report.metric("mix_weighted_throughput", whm.value());
    if (!report.write())
        return 1;
    return 0;
}
