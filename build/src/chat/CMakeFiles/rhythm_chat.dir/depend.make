# Empty dependencies file for rhythm_chat.
# This may be replaced when dependencies are built.
