# Empty dependencies file for sec64_hyperq.
# This may be replaced when dependencies are built.
