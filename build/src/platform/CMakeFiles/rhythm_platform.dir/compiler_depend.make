# Empty compiler generated dependencies file for rhythm_platform.
# This may be replaced when dependencies are built.
