#include "analysis/similarity.hh"

#include <algorithm>

#include "backend/bankdb.hh"
#include "host/server.hh"
#include "simt/warp.hh"
#include "specweb/workload.hh"
#include "util/logging.hh"

namespace rhythm::analysis {

namespace {

/** Builds the Figure 2 metric from a lockstep merge's scheduler fields. */
SimilarityResult
similarityFromStats(const simt::WarpStats &ws, size_t trace_count)
{
    SimilarityResult result;
    result.traceCount = trace_count;
    result.sumBlocks = ws.laneBlockExecs;
    result.mergedBlocks = ws.steps;
    if (ws.steps > 0)
        result.speedup = static_cast<double>(ws.laneBlockExecs) /
                         static_cast<double>(ws.steps);
    result.normalizedSpeedup =
        result.speedup / static_cast<double>(trace_count);
    return result;
}

/** The Figure 2 widened warp model: all traces in one "warp". */
simt::WarpModel
widenedModel(size_t trace_count)
{
    simt::WarpModel model;
    model.warpWidth = std::max<int>(32, static_cast<int>(trace_count));
    return model;
}

} // namespace

SimilarityResult
measureSimilarity(const std::vector<const simt::ThreadTrace *> &traces)
{
    if (traces.empty())
        return SimilarityResult{};

    // Merge with the SIMT lockstep scheduler, widened so all traces
    // occupy one "warp" (the paper's idealized SIMD hardware).
    simt::WarpStats ws = simt::simulateWarp(
        std::span<const simt::ThreadTrace *const>(traces.data(),
                                                  traces.size()),
        widenedModel(traces.size()));
    return similarityFromStats(ws, traces.size());
}

SimilarityResult
measureSimilarityFast(const std::vector<const simt::ThreadTrace *> &traces)
{
    if (traces.empty())
        return SimilarityResult{};

    simt::WarpStats ws = simt::mergeBlockSchedule(
        std::span<const simt::ThreadTrace *const>(traces.data(),
                                                  traces.size()),
        widenedModel(traces.size()));
    return similarityFromStats(ws, traces.size());
}

std::vector<simt::ThreadTrace>
captureRequestTraces(specweb::RequestType type, int count, uint64_t users,
                     uint64_t seed)
{
    backend::BankDb db(users, seed);
    specweb::MapSessionProvider sessions;
    host::HostServer server(db, sessions);
    specweb::WorkloadGenerator gen(db, seed * 131 + 7);
    simt::NullTracer null;

    std::vector<simt::ThreadTrace> traces(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        const uint64_t user = gen.sampleUser();
        const uint64_t sid = type == specweb::RequestType::Login
                                 ? 0
                                 : sessions.create(user, null);
        specweb::GeneratedRequest req = gen.generate(type, user, sid);
        // Traces are merged per request *form* (the paper merges traces
        // that follow the same top-level flow): bill_pay_status_output
        // has two forms — execute-payment and list-history — so pin the
        // dominant history form.
        while (type == specweb::RequestType::BillPayStatusOutput &&
               req.raw.find("payee=") != std::string::npos)
            req = gen.generate(type, user, sid);
        simt::RecordingTracer rec(traces[static_cast<size_t>(i)]);
        server.serve(req.raw, rec);
    }
    return traces;
}

} // namespace rhythm::analysis
