/**
 * @file
 * Unit tests for the bank database, wire protocol and backend service.
 */

#include <gtest/gtest.h>

#include "backend/bankdb.hh"
#include "backend/protocol.hh"
#include "backend/service.hh"
#include "simt/trace.hh"

namespace rhythm::backend {
namespace {

simt::NullTracer gNull;

class BankDbTest : public ::testing::Test
{
  protected:
    BankDb db_{100, 7};
};

TEST_F(BankDbTest, PopulationIsDeterministic)
{
    BankDb other(100, 7);
    EXPECT_EQ(db_.profile(42).address, other.profile(42).address);
    EXPECT_EQ(db_.account(BankDb::checkingId(42))->balanceCents,
              other.account(BankDb::checkingId(42))->balanceCents);
}

TEST_F(BankDbTest, UserValidity)
{
    EXPECT_TRUE(db_.validUser(1));
    EXPECT_TRUE(db_.validUser(100));
    EXPECT_FALSE(db_.validUser(0));
    EXPECT_FALSE(db_.validUser(101));
}

TEST_F(BankDbTest, Authentication)
{
    EXPECT_TRUE(db_.authenticate(5, "pwd5"));
    EXPECT_FALSE(db_.authenticate(5, "pwd6"));
    EXPECT_FALSE(db_.authenticate(0, "pwd0"));
    EXPECT_FALSE(db_.authenticate(999, "x"));
}

TEST_F(BankDbTest, EveryUserHasTwoAccounts)
{
    for (uint64_t uid = 1; uid <= 100; ++uid) {
        auto accts = db_.accounts(uid);
        ASSERT_EQ(accts.size(), 2u);
        EXPECT_TRUE(accts[0]->isChecking);
        EXPECT_FALSE(accts[1]->isChecking);
        EXPECT_GT(accts[0]->balanceCents, 0);
        EXPECT_GT(accts[1]->balanceCents, 0);
    }
}

TEST_F(BankDbTest, AccountLookup)
{
    EXPECT_NE(db_.account(BankDb::checkingId(3)), nullptr);
    EXPECT_NE(db_.account(BankDb::savingsId(3)), nullptr);
    EXPECT_EQ(db_.account(BankDb::checkingId(3))->userId, 3u);
    EXPECT_EQ(db_.account(999999), nullptr);
    EXPECT_EQ(db_.account(39), nullptr); // user 3, invalid suffix
}

TEST_F(BankDbTest, TransactionsNewestFirstAndBounded)
{
    auto txs = db_.transactions(BankDb::checkingId(1), 5);
    EXPECT_LE(txs.size(), 5u);
    for (size_t i = 1; i < txs.size(); ++i)
        EXPECT_GE(txs[i - 1]->date, txs[i]->date);
}

TEST_F(BankDbTest, TransferMovesFunds)
{
    const int64_t before_c =
        db_.account(BankDb::checkingId(9))->balanceCents;
    const int64_t before_s = db_.account(BankDb::savingsId(9))->balanceCents;
    const uint64_t tx =
        db_.transfer(9, BankDb::checkingId(9), BankDb::savingsId(9), 10000);
    EXPECT_NE(tx, 0u);
    EXPECT_EQ(db_.account(BankDb::checkingId(9))->balanceCents,
              before_c - 10000);
    EXPECT_EQ(db_.account(BankDb::savingsId(9))->balanceCents,
              before_s + 10000);
}

TEST_F(BankDbTest, TransferRejectsInvalid)
{
    // Insufficient funds.
    EXPECT_EQ(db_.transfer(9, BankDb::checkingId(9), BankDb::savingsId(9),
                           INT64_MAX / 2),
              0u);
    // Same account.
    EXPECT_EQ(db_.transfer(9, BankDb::checkingId(9), BankDb::checkingId(9),
                           100),
              0u);
    // Foreign account.
    EXPECT_EQ(db_.transfer(9, BankDb::checkingId(8), BankDb::savingsId(9),
                           100),
              0u);
    // Non-positive amount.
    EXPECT_EQ(db_.transfer(9, BankDb::checkingId(9), BankDb::savingsId(9),
                           0),
              0u);
}

TEST_F(BankDbTest, PayBillDebitsChecking)
{
    auto payees = db_.payees(4);
    ASSERT_FALSE(payees.empty());
    const int64_t before = db_.account(BankDb::checkingId(4))->balanceCents;
    const uint64_t pid = db_.payBill(4, payees[0]->payeeId, 2500, 18100);
    EXPECT_NE(pid, 0u);
    EXPECT_EQ(db_.account(BankDb::checkingId(4))->balanceCents,
              before - 2500);
    auto payments = db_.billPayments(4, 18100, 18100);
    bool found = false;
    for (const BillPayment *bp : payments)
        found |= bp->paymentId == pid;
    EXPECT_TRUE(found);
}

TEST_F(BankDbTest, PayBillRejectsUnknownPayee)
{
    EXPECT_EQ(db_.payBill(4, 999999999, 100, 18100), 0u);
    EXPECT_EQ(db_.payBill(4, db_.payees(4)[0]->payeeId, -5, 18100), 0u);
}

TEST_F(BankDbTest, AddPayeePersists)
{
    const size_t before = db_.payees(6).size();
    const uint64_t id = db_.addPayee(6, "Acme Power", "1 Grid Way", 12345);
    EXPECT_NE(id, 0u);
    auto payees = db_.payees(6);
    EXPECT_EQ(payees.size(), before + 1);
    EXPECT_EQ(payees.back()->name, "Acme Power");
}

TEST_F(BankDbTest, ProfileUpdatePartial)
{
    const std::string old_email = db_.profile(2).email;
    db_.updateProfile(2, "9 New Rd", "", "555-0000");
    EXPECT_EQ(db_.profile(2).address, "9 New Rd");
    EXPECT_EQ(db_.profile(2).email, old_email);
    EXPECT_EQ(db_.profile(2).phone, "555-0000");
}

TEST_F(BankDbTest, CheckOrderLifecycle)
{
    const uint64_t id = db_.orderCheck(3, 2, 50);
    ASSERT_NE(id, 0u);
    const CheckOrder *order = db_.checkOrder(id);
    ASSERT_NE(order, nullptr);
    EXPECT_FALSE(order->placed);
    EXPECT_TRUE(db_.placeCheckOrder(3, id));
    EXPECT_TRUE(db_.checkOrder(id)->placed);
    EXPECT_FALSE(db_.placeCheckOrder(3, 999999));
}

TEST(Protocol, OpNamesRoundTrip)
{
    for (int i = 0; i <= static_cast<int>(Op::Summary); ++i) {
        const Op op = static_cast<Op>(i);
        Op parsed;
        ASSERT_TRUE(parseOp(opName(op), parsed));
        EXPECT_EQ(parsed, op);
    }
    Op dummy;
    EXPECT_FALSE(parseOp("NOPE", dummy));
}

TEST(Protocol, RequestSerializeParseRoundTrip)
{
    BackendRequest req;
    req.op = Op::PayBill;
    req.userId = 42;
    req.args = {"7", "2500", "18100"};
    const std::string wire = req.serialize();
    EXPECT_EQ(wire, "PAYBILL|42|7|2500|18100");
    BackendRequest parsed;
    ASSERT_TRUE(BackendRequest::parse(wire, parsed));
    EXPECT_EQ(parsed.op, Op::PayBill);
    EXPECT_EQ(parsed.userId, 42u);
    EXPECT_EQ(parsed.args, req.args);
}

TEST(Protocol, ParseRejectsMalformed)
{
    BackendRequest req;
    EXPECT_FALSE(BackendRequest::parse("", req));
    EXPECT_FALSE(BackendRequest::parse("NOPE|1", req));
    EXPECT_FALSE(BackendRequest::parse("AUTH|abc", req));
}

TEST(Protocol, ResponseHelpers)
{
    const std::string okr = response::ok("a,b;c,d;");
    EXPECT_TRUE(response::isOk(okr));
    EXPECT_EQ(response::payload(okr), "a,b;c,d;");
    auto recs = response::records(response::payload(okr));
    ASSERT_EQ(recs.size(), 2u);
    auto f = response::fields(recs[0]);
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[0], "a");

    const std::string err = response::error("nope");
    EXPECT_FALSE(response::isOk(err));
    EXPECT_EQ(response::payload(err), "");
}

class ServiceTest : public ::testing::Test
{
  protected:
    BankDb db_{50, 3};
    BackendService svc_{db_};

    std::string
    run(Op op, uint64_t user, std::vector<std::string> args = {})
    {
        BackendRequest req;
        req.op = op;
        req.userId = user;
        req.args = std::move(args);
        return svc_.execute(req.serialize(), gNull);
    }
};

TEST_F(ServiceTest, AuthenticateOkAndFail)
{
    EXPECT_TRUE(response::isOk(run(Op::Authenticate, 10, {"pwd10"})));
    EXPECT_FALSE(response::isOk(run(Op::Authenticate, 10, {"wrong"})));
    EXPECT_FALSE(response::isOk(run(Op::Authenticate, 0, {"pwd0"})));
}

TEST_F(ServiceTest, GetAccountsReturnsTwoRecords)
{
    const std::string resp = run(Op::GetAccounts, 10);
    ASSERT_TRUE(response::isOk(resp));
    auto recs = response::records(response::payload(resp));
    ASSERT_EQ(recs.size(), 2u);
    auto f0 = response::fields(recs[0]);
    ASSERT_EQ(f0.size(), 3u);
    EXPECT_EQ(f0[1], "checking");
}

TEST_F(ServiceTest, GetTransactionsRespectsMax)
{
    const std::string resp =
        run(Op::GetTransactions, 10,
            {std::to_string(BankDb::checkingId(10)), "3"});
    ASSERT_TRUE(response::isOk(resp));
    EXPECT_LE(response::records(response::payload(resp)).size(), 3u);
}

TEST_F(ServiceTest, EndToEndBillPayFlow)
{
    // List payees, pay the first one, then see it in payments.
    const std::string payees = run(Op::GetPayees, 5);
    ASSERT_TRUE(response::isOk(payees));
    auto recs = response::records(response::payload(payees));
    ASSERT_FALSE(recs.empty());
    const std::string payee_id(response::fields(recs[0])[0]);

    const std::string pay =
        run(Op::PayBill, 5, {payee_id, "1234", "18200"});
    ASSERT_TRUE(response::isOk(pay));

    const std::string payments =
        run(Op::GetPayments, 5, {"18200", "18200"});
    ASSERT_TRUE(response::isOk(payments));
    EXPECT_FALSE(response::records(response::payload(payments)).empty());
}

TEST_F(ServiceTest, TransferViaWire)
{
    const std::string resp = run(
        Op::Transfer, 8,
        {std::to_string(BankDb::checkingId(8)),
         std::to_string(BankDb::savingsId(8)), "500"});
    EXPECT_TRUE(response::isOk(resp));
    const std::string bad = run(
        Op::Transfer, 8,
        {std::to_string(BankDb::checkingId(8)),
         std::to_string(BankDb::savingsId(8)), "999999999999"});
    EXPECT_FALSE(response::isOk(bad));
}

TEST_F(ServiceTest, ProfileRoundTrip)
{
    ASSERT_TRUE(response::isOk(
        run(Op::UpdateProfile, 3, {"1 Elm St", "[email protected]", ""})));
    const std::string prof = run(Op::GetProfile, 3);
    ASSERT_TRUE(response::isOk(prof));
    auto f = response::fields(
        response::records(response::payload(prof))[0]);
    ASSERT_EQ(f.size(), 4u);
    EXPECT_EQ(f[1], "1 Elm St");
    EXPECT_EQ(f[2], "[email protected]");
}

TEST_F(ServiceTest, CheckOrderViaWire)
{
    const std::string order = run(Op::OrderCheck, 2, {"1", "100"});
    ASSERT_TRUE(response::isOk(order));
    const std::string order_id(
        response::fields(response::records(response::payload(order))[0])[0]);
    EXPECT_TRUE(response::isOk(run(Op::PlaceCheckOrder, 2, {order_id})));
    EXPECT_FALSE(response::isOk(run(Op::PlaceCheckOrder, 2, {"999999"})));
}

TEST_F(ServiceTest, MalformedRequestIsError)
{
    EXPECT_FALSE(response::isOk(svc_.execute("garbage", gNull)));
    EXPECT_FALSE(response::isOk(svc_.execute("", gNull)));
}

TEST_F(ServiceTest, InstructionAccountingIsNonTrivial)
{
    simt::CountingTracer ct;
    BackendRequest req;
    req.op = Op::GetTransactions;
    req.userId = 10;
    req.args = {std::to_string(BankDb::checkingId(10)), "10"};
    svc_.execute(req.serialize(), ct);
    EXPECT_GT(ct.instructions(), 500u);
}

TEST_F(ServiceTest, ResponsesFitTheirSlots)
{
    for (uint64_t uid = 1; uid <= 50; ++uid) {
        for (Op op : {Op::GetAccounts, Op::GetPayees, Op::GetProfile}) {
            const std::string resp = run(op, uid);
            EXPECT_LE(resp.size(), kResponseSlotBytes);
        }
        const std::string txs =
            run(Op::GetTransactions, uid,
                {std::to_string(BankDb::checkingId(uid)), "20"});
        EXPECT_LE(txs.size(), kResponseSlotBytes);
    }
}

TEST_F(ServiceTest, RequestsServedCounter)
{
    const uint64_t before = svc_.requestsServed();
    run(Op::GetProfile, 1);
    run(Op::GetProfile, 2);
    EXPECT_EQ(svc_.requestsServed(), before + 2);
}

} // namespace
} // namespace rhythm::backend
