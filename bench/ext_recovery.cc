/**
 * @file
 * Extension experiment: recovery equivalence under chaos.
 *
 * The crash-recovery stack (write-ahead journal + checkpoints, the
 * DES-clock watchdog with hedged cohort re-execution, and PCIe frame
 * CRC with bounded retransmit) claims exactly-once semantics: any
 * seeded schedule of backend crashes, torn journal tails, kernel hangs
 * and PCIe corruption must leave the final backend state — bank
 * database and session array — and every delivered response byte
 * identical to the fault-free run.
 *
 * This harness sweeps such schedules and checks the claim directly:
 * each faulty run's BankDb/SessionArray digests and per-client
 * response checksums are compared against the clean run with the same
 * resilience configuration. It also measures the overhead band of the
 * resilience machinery itself (faults off, recovery+watchdog+CRC on
 * vs everything off), which tools/check_bench.py gates.
 */

#include <cstring>
#include <iostream>
#include <map>
#include <memory>

#include "backend/bankdb.hh"
#include "backend/journal.hh"
#include "backend/recovery.hh"
#include "bench/common.hh"
#include "fault/device_injector.hh"
#include "fault/plan.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "specweb/workload.hh"
#include "util/thread_pool.hh"

namespace {

using namespace rhythm;

struct ChaosOutcome
{
    uint64_t completed = 0;
    uint64_t errors = 0;
    uint64_t crashes = 0;
    uint64_t tornRecords = 0;
    uint64_t kernelHangs = 0;
    uint64_t hedgeWins = 0;
    uint64_t crcErrors = 0;
    uint64_t faults = 0;
    uint64_t dbDigest = 0;
    uint64_t sessionDigest = 0;
    /** Per-client checksum of the delivered response bytes. */
    std::map<uint64_t, uint64_t> responseSums;
    des::Time lastDelivery = 0;
    double goodputKrps = 0.0;
    double p99Ms = 0.0;
    bool drained = false;
    bool conserved = false;
};

/**
 * One serving run on the Titan-A-shaped configuration (host backend,
 * network over PCIe — the config where all three fault domains are
 * live). @p resilience arms the full stack: journal+checkpoint
 * backend, 50 ms watchdog, PCIe frame CRC.
 */
ChaosOutcome
runOnce(const fault::FaultConfig &fcfg, bool resilience,
        uint32_t cohorts)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    dcfg.pcieCrcEnabled = resilience;
    simt::Device device(queue, dcfg);
    backend::BankDb db(2000, 5);
    core::BankingService service(db);

    core::RhythmConfig cfg;
    cfg.cohortSize = 1024;
    cfg.cohortContexts = 8;
    cfg.backendOnDevice = false; // Titan A: backend traffic over PCIe
    cfg.networkOverPcie = true;
    // Every lane executes for real: lane sampling is a simulation
    // fidelity knob that extrapolates stats from a prefix of lanes and
    // leaves the rest without response bytes — useless for a harness
    // whose whole claim is byte equivalence. Full execution also pins
    // the set of applied mutations when faults shift cohort
    // boundaries.
    cfg.laneSample = 0;
    cfg.backendRetryBudget = 4;
    // Above the pipeline's natural cohort latency: the watchdog must
    // only fire for injected hangs, not healthy stragglers.
    if (resilience)
        cfg.watchdogTimeout = 250 * des::kMillisecond;
    core::RhythmServer server(queue, device, service, cfg);

    ChaosOutcome out;
    server.setResponseCallback(
        [&out, &queue](uint64_t client, std::string_view response,
                       des::Time) {
            out.responseSums[client] = backend::journalChecksum(response);
            out.lastDelivery = queue.now();
        });

    fault::FaultPlan plan(fcfg);
    const bool armed = !fcfg.allQuiet();
    if (armed) {
        server.setFaultPlan(&plan);
        fault::installDeviceFaults(device, plan, queue);
    }

    specweb::WorkloadGenerator gen(db, 31);
    auto sessions = server.sessions().populate(8192, 2000);
    std::unique_ptr<backend::RecoverableBackend> recovery;
    if (resilience) {
        recovery = std::make_unique<backend::RecoverableBackend>(
            service.backendService(), db);
        if (armed)
            recovery->setFaultPlan(&plan,
                                   [&queue]() { return queue.now(); });
        core::attachSessionRecovery(*recovery, server.sessions());
        service.setRecovery(recovery.get());
    }

    // Alternate a read-heavy and a mutating type so the journal, the
    // memo and the hedge replay path all carry real traffic. Reads and
    // writes target disjoint user populations: per-type dispatch is
    // FIFO, so the mutation order (and with it every transfer response
    // and the final database state) is pinned regardless of fault
    // timing — but a read racing a write to the same account would see
    // whichever interleaving the perturbed schedule produced. That is
    // a scheduling property, not a recovery property; the chaos claim
    // is about what the resilience stack controls.
    std::vector<std::pair<uint64_t, uint64_t>> readers, writers;
    for (const auto &s : sessions)
        (s.second % 2 ? writers : readers).push_back(s);
    const uint64_t total = static_cast<uint64_t>(cohorts) * cfg.cohortSize;
    uint64_t issued = 0;
    server.start([&]() -> std::optional<std::string> {
        if (issued >= total)
            return std::nullopt;
        const auto &pool = issued % 2 ? writers : readers;
        const auto &[sid, user] = pool[(issued / 2) % pool.size()];
        const specweb::RequestType type =
            issued % 2 ? specweb::RequestType::PostTransfer
                       : specweb::RequestType::AccountSummary;
        specweb::GeneratedRequest req = gen.generate(type, user, sid);
        ++issued;
        return std::move(req.raw);
    });

    // Hang watchdog for the harness itself: injected hangs are finite,
    // so a bounded dispatch cap distinguishes "slow" from "wedged"
    // without wall-clock timers.
    const uint64_t max_events = 50'000'000;
    while (queue.pending() && queue.dispatched() < max_events)
        queue.step();

    const core::RhythmStats &stats = server.stats();
    out.completed = stats.responsesCompleted;
    out.errors = stats.errorResponses;
    out.kernelHangs = stats.kernelHangs;
    out.hedgeWins = stats.hedgeWins;
    out.faults = stats.faultsInjected + plan.totalInjected();
    if (recovery) {
        out.crashes = recovery->stats().crashes;
        out.tornRecords = recovery->stats().tornRecords;
    }
    out.crcErrors = device.stats().pcieCrcErrors;
    out.dbDigest = db.digest();
    out.sessionDigest = server.sessions().digest();
    // Goodput over the client-visible window (first request to last
    // delivered response): a cancelled straggler draining its injected
    // stall after the final delivery is not the clients' problem.
    out.goodputKrps =
        out.lastDelivery > 0
            ? static_cast<double>(stats.responsesCompleted) /
                  des::toSeconds(out.lastDelivery) / 1e3
            : 0.0;
    out.p99Ms = stats.latencyMs.percentile(99.0);
    out.drained = !queue.pending();
    out.conserved = stats.requestsAccepted ==
                    stats.responsesCompleted + stats.errorResponses +
                        stats.requestsShed;
    return out;
}

/** True when @p faulty ended in the same observable state as @p clean. */
bool
equivalent(const ChaosOutcome &clean, const ChaosOutcome &faulty)
{
    return faulty.dbDigest == clean.dbDigest &&
           faulty.sessionDigest == clean.sessionDigest &&
           faulty.responseSums == clean.responseSums &&
           faulty.completed == clean.completed &&
           faulty.errors == clean.errors;
}

/** Names the diverging component when equivalence fails. */
void
debugDiff(const ChaosOutcome &clean, const ChaosOutcome &faulty)
{
    uint64_t nDiff = 0, lo = 0, hi = 0;
    for (const auto &[client, sum] : faulty.responseSums) {
        auto it = clean.responseSums.find(client);
        if (it == clean.responseSums.end() || it->second == sum)
            continue;
        ++nDiff;
        if (lo == 0)
            lo = client;
        hi = client;
    }
    std::cerr << "  mismatch: db="
              << (faulty.dbDigest == clean.dbDigest ? "equal" : "DIFFERS")
              << " sessions="
              << (faulty.sessionDigest == clean.sessionDigest ? "equal"
                                                              : "DIFFERS")
              << " completed " << clean.completed << "->"
              << faulty.completed << " errors " << clean.errors << "->"
              << faulty.errors << "; " << nDiff
              << " differing responses in clients [" << lo << ", " << hi
              << "]\n";
}

struct Schedule
{
    const char *name;
    double crash, torn, hang, corrupt;
};

fault::FaultConfig
scheduleConfig(const Schedule &s, uint64_t seed)
{
    fault::FaultConfig fcfg;
    fcfg.seed = seed;
    fcfg.at(fault::Site::BackendCrash).probability = s.crash;
    fcfg.at(fault::Site::JournalTorn).probability = s.torn;
    fcfg.at(fault::Site::KernelHang).probability = s.hang;
    fcfg.at(fault::Site::PcieCorrupt).probability = s.corrupt;
    return fcfg;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter report("ext_recovery", argc, argv);
    // --quick: the mixed schedule at one seed (CI's per-push mode);
    // the full sweep × 3 seeds stays the local/nightly default.
    // --sim-threads=N exercises the equivalence claim under the
    // parallel execution engine.
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--quick")
            quick = true;
        else if (arg.rfind("--sim-threads=", 0) == 0)
            util::setSimThreads(static_cast<unsigned>(
                std::atoi(arg.data() + std::strlen("--sim-threads="))));
    }

    bench::banner("Extension: recovery equivalence under chaos",
                  "robustness extension (not a paper figure)");

    const Schedule mixed = {"mixed", 0.005, 0.5, 0.3, 0.02};
    const Schedule schedules[] = {
        {"crash", 0.01, 0.0, 0.0, 0.0},
        {"crash_torn", 0.01, 0.5, 0.0, 0.0},
        {"hang", 0.0, 0.0, 0.15, 0.0},
        {"corrupt", 0.0, 0.0, 0.0, 0.05},
        mixed,
    };
    const uint32_t cohorts = quick ? 6 : 12;

    // Fault-schedule metadata for the --json schema (check_bench
    // requires these keys for ext_recovery): the acceptance schedule
    // expressed in the shared --fault-* vocabulary.
    bench::FaultFlags meta;
    meta.config = scheduleConfig(mixed, 1);
    meta.watchdogTimeout = 250 * des::kMillisecond;
    meta.pcieCrc = true;
    meta.recovery = true;
    meta.anyGiven = true;
    meta.recordConfig(report);
    report.config("quick", quick ? 1.0 : 0.0);
    report.config("cohorts", cohorts);

    // ---- Resilience overhead band (faults off) -----------------------
    fault::FaultConfig quiet;
    const ChaosOutcome plain = runOnce(quiet, false, cohorts);
    const ChaosOutcome clean = runOnce(quiet, true, cohorts);
    const double overhead_ratio =
        clean.goodputKrps / plain.goodputKrps;
    const bool transparent = equivalent(plain, clean);
    std::cout << "\nFault-free: " << bench::fmt(plain.goodputKrps, 0)
              << " KReqs/s bare, " << bench::fmt(clean.goodputKrps, 0)
              << " KReqs/s with journal+watchdog+CRC ("
              << bench::fmt(overhead_ratio * 100.0, 1)
              << "% of bare; state+responses identical: "
              << (transparent ? "yes" : "NO") << ")\n\n";
    report.metric("baseline.goodput_krps", plain.goodputKrps);
    report.metric("overhead.goodput_ratio", overhead_ratio);
    report.metric("overhead.transparent", transparent ? 1.0 : 0.0);
    report.metric("resilient.goodput_krps", clean.goodputKrps);
    report.metric("resilient.p99_ms", clean.p99Ms);

    bool pass = transparent && plain.drained && clean.drained;

    // ---- Equivalence sweep -------------------------------------------
    TableWriter table({"schedule", "faults", "crashes", "torn", "hangs",
                       "hedge wins", "crc errs", "goodput %",
                       "equivalent"});
    const std::vector<uint64_t> seeds =
        quick ? std::vector<uint64_t>{1} : std::vector<uint64_t>{1, 2, 3};
    for (const Schedule &s : schedules) {
        if (quick && std::string_view(s.name) != "mixed")
            continue;
        for (uint64_t seed : seeds) {
            const ChaosOutcome r =
                runOnce(scheduleConfig(s, seed), true, cohorts);
            const bool ok =
                equivalent(clean, r) && r.drained && r.conserved;
            if (!ok)
                debugDiff(clean, r);
            pass = pass && ok;
            table.addRow({std::string(s.name) + " seed " +
                              std::to_string(seed),
                          withCommas(r.faults), withCommas(r.crashes),
                          withCommas(r.tornRecords),
                          withCommas(r.kernelHangs),
                          withCommas(r.hedgeWins),
                          withCommas(r.crcErrors),
                          bench::fmt(100.0 * r.goodputKrps /
                                         clean.goodputKrps,
                                     1),
                          ok ? "yes" : "NO"});
            if (seed == 1) {
                const std::string key = std::string("schedule_") + s.name;
                report.metric(key + ".equivalent", ok ? 1.0 : 0.0);
                report.metric(key + ".goodput_krps", r.goodputKrps);
                report.metric(key + ".faults",
                              static_cast<double>(r.faults));
            }
        }
    }
    table.printAscii(std::cout);

    // Determinism: the same schedule and seed must reproduce the exact
    // same digests and fault counts run-to-run.
    const ChaosOutcome a = runOnce(scheduleConfig(mixed, 1), true, cohorts);
    const ChaosOutcome b = runOnce(scheduleConfig(mixed, 1), true, cohorts);
    const bool deterministic =
        a.dbDigest == b.dbDigest && a.sessionDigest == b.sessionDigest &&
        a.responseSums == b.responseSums && a.faults == b.faults &&
        a.crashes == b.crashes;
    pass = pass && deterministic;
    std::cout << "Repeat run identical: " << (deterministic ? "yes" : "NO")
              << "\n";

    std::cout << "\nVerdict: " << (pass ? "PASS" : "FAIL")
              << " (every schedule byte-equivalent to fault-free, "
                 "drained, conserved, deterministic)\n";
    report.metric("acceptance_pass", pass ? 1.0 : 0.0);
    if (!report.write())
        return 1;
    return pass ? 0 : 1;
}
