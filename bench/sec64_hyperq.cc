/**
 * @file
 * Section 6.4 "HyperQ": the same Rhythm workload on a device with a
 * single hardware work queue (GTX690-style — commands from all streams
 * serialize in enqueue order, creating false dependencies between
 * process kernels) vs the Titan's 32 HyperQ queues. The paper found the
 * single queue "limiting throughput" and HyperQ essential to exploiting
 * Rhythm's concurrency.
 */

#include <iostream>

#include "bench/common.hh"
#include "platform/titan.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("sec64_hyperq", argc, argv);
    bench::banner("Section 6.4: HyperQ ablation",
                  "Section 6.4 (single work queue vs 32 HyperQ queues)");

    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.recordConfig(report);
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    overlap.recordConfig(report);

    TableWriter table({"hardware queues", "KReqs/s", "avg latency ms",
                       "device util"});
    for (int queues : {1, 2, 4, 8, 16, 32}) {
        platform::TitanVariant b = platform::titanB();
        b.device.hardwareQueues = queues;
        b.server.cohortSize = 1024; // small cohorts stress concurrency
        platform::IsolatedRunOptions opts;
        opts.cohorts = 24;
        opts.users = 2000;
        opts.laneSample = 128;
        faults.apply(opts);
        overlap.apply(opts);
        platform::TypeRunResult r = platform::runIsolatedType(
            b, specweb::RequestType::CheckDetailHtml, opts);
        table.addRow({std::to_string(queues),
                      bench::fmt(r.throughput / 1e3, 0),
                      bench::fmt(r.avgLatencyMs, 2),
                      bench::fmt(r.deviceUtilization, 2)});
        const std::string key = "queues_" + std::to_string(queues);
        report.metric(key + ".throughput", r.throughput);
        report.metric(key + ".device_utilization", r.deviceUtilization);
    }
    table.printAscii(std::cout);
    std::cout << "Expected shape (paper): a single queue (GTX690) "
                 "serializes kernels from\ndifferent cohorts and limits "
                 "throughput and utilization; HyperQ (32 queues)\nlets "
                 "inflight cohorts overlap and saturate the device.\n";
    if (!report.write())
        return 1;
    return 0;
}
