/**
 * @file
 * Unit tests for the Rhythm core data structures: session array, cohort
 * buffers (layout/padding), and the cohort FSM/pool.
 */

#include <gtest/gtest.h>

#include <set>

#include "rhythm/buffers.hh"
#include "rhythm/cohort.hh"
#include "rhythm/session_array.hh"
#include "simt/kernel.hh"

namespace rhythm::core {
namespace {

simt::NullTracer gNull;

TEST(SessionArray, CreateLookupDestroy)
{
    SessionArray sa(64, 4);
    const uint64_t sid = sa.create(42, gNull);
    ASSERT_NE(sid, 0u);
    EXPECT_EQ(sa.lookup(sid, gNull), 42u);
    EXPECT_EQ(sa.liveSessions(), 1u);
    EXPECT_TRUE(sa.destroy(sid, gNull));
    EXPECT_EQ(sa.lookup(sid, gNull), 0u);
    EXPECT_EQ(sa.liveSessions(), 0u);
    EXPECT_FALSE(sa.destroy(sid, gNull));
}

TEST(SessionArray, InvalidIdsRejected)
{
    SessionArray sa(16, 2);
    EXPECT_EQ(sa.lookup(0, gNull), 0u);
    EXPECT_EQ(sa.lookup(sa.capacity() + 1, gNull), 0u);
    EXPECT_FALSE(sa.destroy(0, gNull));
}

TEST(SessionArray, SessionIdsAreUnique)
{
    SessionArray sa(64, 16);
    std::set<uint64_t> sids;
    for (uint64_t u = 1; u <= 256; ++u) {
        const uint64_t sid = sa.create(u, gNull);
        ASSERT_NE(sid, 0u);
        EXPECT_TRUE(sids.insert(sid).second) << "duplicate sid " << sid;
    }
    EXPECT_EQ(sa.liveSessions(), 256u);
}

TEST(SessionArray, BucketFullReturnsZero)
{
    // One bucket, depth 3: the 4th user hashing there must fail.
    SessionArray sa(1, 3);
    EXPECT_NE(sa.create(1, gNull), 0u);
    EXPECT_NE(sa.create(2, gNull), 0u);
    EXPECT_NE(sa.create(3, gNull), 0u);
    EXPECT_EQ(sa.create(4, gNull), 0u);
    EXPECT_GE(sa.collisions(), 2u);
}

TEST(SessionArray, FootprintMatchesPaperFigure)
{
    // Paper Section 6.3: 16M sessions at 40 B each = 640 MB; 64M-slot
    // array = 2.5 GB.
    SessionArray sa(4096, 16384); // 64M nodes
    EXPECT_EQ(sa.capacity(), 64ull << 20);
    EXPECT_EQ(sa.footprintBytes(), (64ull << 20) * 40);
}

TEST(SessionArray, PopulateCreatesWorkingSessions)
{
    SessionArray sa(256, 16);
    auto sessions = sa.populate(500, 1000);
    EXPECT_EQ(sessions.size(), 500u);
    EXPECT_EQ(sa.liveSessions(), 500u);
    for (const auto &[sid, user] : sessions)
        EXPECT_EQ(sa.lookup(sid, gNull), user);
}

TEST(SessionArray, InstrumentationRecordsDeviceAccesses)
{
    SessionArray sa(32, 4, 0x2000'0000);
    simt::ThreadTrace trace;
    simt::RecordingTracer rec(trace);
    const uint64_t sid = sa.create(7, rec);
    sa.lookup(sid, rec);
    ASSERT_FALSE(trace.memOps.empty());
    for (const auto &op : trace.memOps) {
        EXPECT_GE(op.addr, 0x2000'0000u);
        EXPECT_LT(op.addr, 0x2000'0000u + sa.footprintBytes());
    }
}

// ---------------------------------------------------------------------
// CohortBuffer
// ---------------------------------------------------------------------

CohortBufferConfig
bufConfig(uint32_t lanes, BufferLayout layout, bool pad)
{
    CohortBufferConfig cfg;
    cfg.cohortSize = lanes;
    cfg.laneBytes = 4096;
    cfg.layout = layout;
    cfg.padToWarpMax = pad;
    return cfg;
}

TEST(CohortBuffer, ContentAccumulatesPerLane)
{
    CohortBuffer buf(bufConfig(4, BufferLayout::Transposed, false));
    buf.writer(0, gNull).appendStatic(1, "hello ");
    buf.writer(0, gNull).appendDynamic(2, "world");
    buf.writer(1, gNull).appendStatic(1, "other");
    EXPECT_EQ(buf.content(0), "hello world");
    EXPECT_EQ(buf.content(1), "other");
    EXPECT_EQ(buf.contentSize(0), 11u);
    EXPECT_EQ(buf.contentSize(2), 0u);
}

TEST(CohortBuffer, ReservePatch)
{
    CohortBuffer buf(bufConfig(1, BufferLayout::RowMajor, false));
    auto &w = buf.writer(0, gNull);
    w.appendStatic(1, "CL: ");
    const size_t off = w.reserve(1, 6);
    w.appendStatic(1, "|");
    w.patch(off, "42");
    EXPECT_EQ(buf.content(0), "CL: 42    |");
}

TEST(CohortBuffer, TransposedStoresCoalesce)
{
    // 32 lanes append identical 256-byte chunks; transposed layout must
    // produce fully coalesced stores.
    const std::string chunk(256, 'x');
    CohortBuffer buf(bufConfig(32, BufferLayout::Transposed, true));
    std::vector<simt::ThreadTrace> traces(32);
    for (uint32_t l = 0; l < 32; ++l) {
        simt::RecordingTracer rec(traces[l]);
        buf.writer(l, rec).appendStatic(7, chunk);
    }
    buf.finalizeStores(traces);
    std::vector<const simt::ThreadTrace *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(&t);
    simt::KernelProfile kp =
        simt::KernelProfile::fromTraces(ptrs, simt::WarpModel{}, "t");
    // Store traffic: 32 lanes × 256 B = 8 KiB useful; stores coalesce
    // perfectly so moved ≈ useful (constant-memory source reads are
    // free).
    const auto &ws = kp.totals;
    EXPECT_GT(ws.globalBytes, 8000u);
    EXPECT_GT(ws.coalescingEfficiency(), 0.99);
}

TEST(CohortBuffer, RowMajorStoresDoNotCoalesce)
{
    const std::string chunk(256, 'x');
    CohortBuffer buf(bufConfig(32, BufferLayout::RowMajor, false));
    std::vector<simt::ThreadTrace> traces(32);
    for (uint32_t l = 0; l < 32; ++l) {
        simt::RecordingTracer rec(traces[l]);
        buf.writer(l, rec).appendStatic(7, chunk);
    }
    buf.finalizeStores(traces);
    std::vector<const simt::ThreadTrace *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(&t);
    simt::KernelProfile kp =
        simt::KernelProfile::fromTraces(ptrs, simt::WarpModel{}, "t");
    EXPECT_LT(kp.totals.coalescingEfficiency(), 0.05);
}

TEST(CohortBuffer, PaddingEqualizesAndAligns)
{
    // Lanes append different-length dynamic strings; with padding the
    // stored lengths equalize to the warp max and addresses stay
    // aligned (coalesced); padding bytes are reported.
    CohortBuffer padded(bufConfig(32, BufferLayout::Transposed, true));
    CohortBuffer bare(bufConfig(32, BufferLayout::Transposed, false));
    std::vector<simt::ThreadTrace> tp(32), tb(32);
    for (uint32_t l = 0; l < 32; ++l) {
        const std::string text(64 + l * 3, 'a');
        {
            simt::RecordingTracer rec(tp[l]);
            padded.writer(l, rec).appendDynamic(3, text);
            padded.writer(l, rec).appendStatic(4, "tail");
        }
        {
            simt::RecordingTracer rec(tb[l]);
            bare.writer(l, rec).appendDynamic(3, text);
            bare.writer(l, rec).appendStatic(4, "tail");
        }
    }
    padded.finalizeStores(tp);
    bare.finalizeStores(tb);
    EXPECT_GT(padded.paddingBytes(), 0u);
    EXPECT_EQ(bare.paddingBytes(), 0u);
    // All padded lanes have equal padded sizes; bare lanes differ.
    for (uint32_t l = 1; l < 32; ++l)
        EXPECT_EQ(padded.paddedSize(l), padded.paddedSize(0));
    EXPECT_NE(bare.paddedSize(1), bare.paddedSize(0));

    auto profile = [](std::vector<simt::ThreadTrace> &traces) {
        std::vector<const simt::ThreadTrace *> ptrs;
        for (auto &t : traces)
            ptrs.push_back(&t);
        return simt::KernelProfile::fromTraces(ptrs, simt::WarpModel{},
                                               "t");
    };
    // Padded stores coalesce better than unpadded ones.
    EXPECT_GT(profile(tp).totals.coalescingEfficiency(),
              profile(tb).totals.coalescingEfficiency());
}

TEST(CohortBuffer, UtilizationAndOverflow)
{
    CohortBuffer buf(bufConfig(2, BufferLayout::Transposed, false));
    buf.writer(0, gNull).appendStatic(1, std::string(2048, 'x'));
    std::vector<simt::ThreadTrace> traces(2);
    buf.finalizeStores(traces);
    EXPECT_NEAR(buf.bufferUtilization(), 0.5, 1e-9); // 2048 of 4096
    EXPECT_FALSE(buf.overflowed());

    CohortBuffer big(bufConfig(1, BufferLayout::RowMajor, false));
    big.writer(0, gNull).appendStatic(1, std::string(5000, 'x'));
    std::vector<simt::ThreadTrace> t2(1);
    big.finalizeStores(t2);
    EXPECT_TRUE(big.overflowed());
}

TEST(CohortBuffer, ResetClearsState)
{
    CohortBuffer buf(bufConfig(2, BufferLayout::Transposed, true));
    buf.writer(0, gNull).appendStatic(1, "abc");
    std::vector<simt::ThreadTrace> traces(2);
    buf.finalizeStores(traces);
    buf.reset();
    EXPECT_EQ(buf.contentSize(0), 0u);
    EXPECT_EQ(buf.paddingBytes(), 0u);
    EXPECT_FALSE(buf.overflowed());
}

// ---------------------------------------------------------------------
// Cohort FSM / pool
// ---------------------------------------------------------------------

CohortEntry
entryAt(des::Time arrival)
{
    CohortEntry e;
    e.arrival = arrival;
    return e;
}

TEST(CohortContext, FsmHappyPath)
{
    CohortContext ctx(3);
    EXPECT_EQ(ctx.id(), 3u);
    EXPECT_EQ(ctx.state(), CohortState::Free);
    ctx.allocate(0u, 2);
    EXPECT_EQ(ctx.state(), CohortState::PartiallyFull);
    EXPECT_FALSE(ctx.add(entryAt(100)));
    EXPECT_EQ(ctx.firstArrival(), 100u);
    EXPECT_TRUE(ctx.add(entryAt(200)));
    EXPECT_EQ(ctx.state(), CohortState::Full);
    EXPECT_EQ(ctx.firstArrival(), 100u);
    ctx.markBusy();
    EXPECT_EQ(ctx.state(), CohortState::Busy);
    ctx.release();
    EXPECT_EQ(ctx.state(), CohortState::Free);
    EXPECT_TRUE(ctx.entries().empty());
}

TEST(CohortContext, PartialLaunchAllowed)
{
    CohortContext ctx(0);
    ctx.allocate(1u, 8);
    ctx.add(entryAt(5));
    ctx.markBusy(); // timeout launch of a partial cohort
    EXPECT_EQ(ctx.state(), CohortState::Busy);
    EXPECT_EQ(ctx.entries().size(), 1u);
}

TEST(CohortPool, AcquireReusesPartialOfSameType)
{
    CohortPool pool(4, 16);
    CohortContext *a = pool.acquireFor(0u);
    ASSERT_NE(a, nullptr);
    a->add(entryAt(1));
    CohortContext *b = pool.acquireFor(0u);
    EXPECT_EQ(a, b);
    CohortContext *c = pool.acquireFor(1u);
    EXPECT_NE(c, nullptr);
    EXPECT_NE(a, c);
    EXPECT_EQ(pool.countInState(CohortState::PartiallyFull), 2u);
}

TEST(CohortPool, ExhaustionReturnsNullAndCountsStall)
{
    CohortPool pool(2, 4);
    CohortContext *a = pool.acquireFor(0u);
    a->add(entryAt(1));
    CohortContext *b = pool.acquireFor(1u);
    b->add(entryAt(2));
    EXPECT_EQ(pool.acquireFor(2u), nullptr);
    EXPECT_EQ(pool.stalls(), 1u);
    // Releasing one frees capacity again.
    a->markBusy();
    a->release();
    EXPECT_NE(pool.acquireFor(2u), nullptr);
}

TEST(CohortPool, ForEachFormingSkipsFreeAndBusy)
{
    CohortPool pool(3, 4);
    CohortContext *a = pool.acquireFor(0u);
    a->add(entryAt(1));
    CohortContext *b = pool.acquireFor(1u);
    b->add(entryAt(1));
    b->markBusy();
    int visited = 0;
    pool.forEachForming([&](CohortContext &ctx) {
        ++visited;
        EXPECT_EQ(&ctx, a);
    });
    EXPECT_EQ(visited, 1);
}

TEST(CohortState, Names)
{
    EXPECT_EQ(cohortStateName(CohortState::Free), "Free");
    EXPECT_EQ(cohortStateName(CohortState::PartiallyFull),
              "PartiallyFull");
    EXPECT_EQ(cohortStateName(CohortState::Full), "Full");
    EXPECT_EQ(cohortStateName(CohortState::Busy), "Busy");
}

// Address-math property: in both layouts, distinct (lane, offset) pairs
// map to distinct device addresses (no aliasing), exercised through the
// store traffic the layouts emit.
class BufferAddressProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BufferAddressProperty, StoreAddressesNeverAlias)
{
    const BufferLayout layout = GetParam() == 0 ? BufferLayout::RowMajor
                                                : BufferLayout::Transposed;
    CohortBufferConfig cfg;
    cfg.cohortSize = 8;
    cfg.laneBytes = 256;
    cfg.layout = layout;
    cfg.padToWarpMax = false;
    CohortBuffer buf(cfg);

    std::vector<simt::ThreadTrace> traces(8);
    for (uint32_t l = 0; l < 8; ++l) {
        simt::RecordingTracer rec(traces[l]);
        // Distinct content lengths per lane.
        buf.writer(l, rec).appendStatic(1, std::string(32 + l * 8, 'x'));
        buf.writer(l, rec).appendStatic(2, std::string(16, 'y'));
    }
    buf.finalizeStores(traces);

    // Expand every bulk store into element addresses; they must be
    // unique across the cohort.
    std::set<uint64_t> seen;
    for (uint32_t l = 0; l < 8; ++l) {
        for (const simt::MemOp &op : traces[l].memOps) {
            // Traces also carry the generation-time source reads; the
            // layout property concerns the global stores.
            if (!op.isStore || op.space != simt::MemSpace::Global)
                continue;
            for (uint32_t i = 0; i < op.count; ++i) {
                const uint64_t addr = op.addr + i * op.stride;
                EXPECT_TRUE(seen.insert(addr).second)
                    << "aliased address " << addr;
                EXPECT_GE(addr, cfg.deviceBase);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Layouts, BufferAddressProperty,
                         ::testing::Values(0, 1));

} // namespace
} // namespace rhythm::core
