/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself: warp
 * lockstep merge, the memory coalescer, HTTP parsing and trace
 * recording. These measure *host* wall-clock cost (how fast the
 * simulator simulates), not simulated performance — useful when tuning
 * the simulator or sizing experiment budgets.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "bench/common.hh"

#include "backend/bankdb.hh"
#include "host/server.hh"
#include "http/parser.hh"
#include "simt/kernel.hh"
#include "specweb/workload.hh"

namespace {

using namespace rhythm;

/** Warp merge over 32 identical ~200-block traces (the common case). */
void
BM_WarpMergeUniform(benchmark::State &state)
{
    simt::ThreadTrace trace;
    simt::RecordingTracer rec(trace);
    for (uint32_t b = 0; b < 200; ++b) {
        rec.block(b % 40, 20);
        rec.store(0x1000 + b * 512, 32, 128, 4);
    }
    std::vector<const simt::ThreadTrace *> lanes(32, &trace);
    for (auto _ : state) {
        simt::WarpStats ws = simt::simulateWarp(
            std::span<const simt::ThreadTrace *const>(lanes.data(), 32));
        benchmark::DoNotOptimize(ws.issueSlots);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_WarpMergeUniform);

/** Warp merge over divergent traces (distinct block id streams). */
void
BM_WarpMergeDivergent(benchmark::State &state)
{
    std::vector<simt::ThreadTrace> traces(32);
    for (uint32_t l = 0; l < 32; ++l) {
        simt::RecordingTracer rec(traces[l]);
        for (uint32_t b = 0; b < 100; ++b)
            rec.block(1000 * (l % 8) + b, 10);
    }
    std::vector<const simt::ThreadTrace *> lanes;
    for (auto &t : traces)
        lanes.push_back(&t);
    for (auto _ : state) {
        simt::WarpStats ws = simt::simulateWarp(
            std::span<const simt::ThreadTrace *const>(lanes.data(), 32));
        benchmark::DoNotOptimize(ws.issueSlots);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_WarpMergeDivergent);

/** The 128-byte coalescer on a full warp access. */
void
BM_Coalescer(benchmark::State &state)
{
    std::vector<uint64_t> addrs;
    for (int l = 0; l < 32; ++l)
        addrs.push_back(static_cast<uint64_t>(l) * 4096);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simt::coalesceTransactions(addrs, 4, 128));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Coalescer);

/** HTTP request parsing (host fast path, null tracer). */
void
BM_HttpParse(benchmark::State &state)
{
    simt::NullTracer null;
    const std::string raw =
        "GET /bank/account_summary.php?acct=101&max=20 HTTP/1.1\r\n"
        "Host: bank.example.com\r\n"
        "Cookie: lang=en; session=987654321\r\n"
        "Accept: text/html\r\n\r\n";
    for (auto _ : state) {
        http::Request req;
        benchmark::DoNotOptimize(
            http::parseRequest(raw, 0, null, req));
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(raw.size()));
}
BENCHMARK(BM_HttpParse);

/** End-to-end host serving of one Banking request (null tracer). */
void
BM_HostServe(benchmark::State &state)
{
    backend::BankDb db(200, 3);
    specweb::MapSessionProvider sessions;
    host::HostServer server(db, sessions);
    specweb::WorkloadGenerator gen(db, 7);
    simt::NullTracer null;
    const uint64_t sid = sessions.create(5, null);
    const specweb::GeneratedRequest req =
        gen.generate(specweb::RequestType::AccountSummary, 5, sid);
    for (auto _ : state) {
        benchmark::DoNotOptimize(server.serve(req.raw, null));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostServe);

/** Same request with full trace recording (the simulation path). */
void
BM_HostServeRecorded(benchmark::State &state)
{
    backend::BankDb db(200, 3);
    specweb::MapSessionProvider sessions;
    host::HostServer server(db, sessions);
    specweb::WorkloadGenerator gen(db, 7);
    simt::NullTracer null;
    const uint64_t sid = sessions.create(5, null);
    const specweb::GeneratedRequest req =
        gen.generate(specweb::RequestType::AccountSummary, 5, sid);
    for (auto _ : state) {
        simt::ThreadTrace trace;
        simt::RecordingTracer rec(trace);
        benchmark::DoNotOptimize(server.serve(req.raw, rec));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostServeRecorded);

} // namespace

// Like BENCHMARK_MAIN(), but translates the repo-wide `--json=<path>`
// convention into google-benchmark's native JSON reporter flags so every
// bench binary shares one machine-readable interface.
int
main(int argc, char **argv)
{
    // Honor the repo-wide --sim-threads flag (every other bench gets
    // it via the Reporter constructor), then strip it so
    // google-benchmark does not reject an unknown argument.
    rhythm::bench::applySimThreads(argc, argv);
    std::vector<std::string> args;
    args.reserve(static_cast<size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::string_view(argv[i]).rfind("--sim-threads=", 0) == 0)
            continue;
        args.emplace_back(argv[i]);
    }
    bool json = false;
    for (auto &arg : args) {
        if (arg.rfind("--json=", 0) == 0) {
            arg = "--benchmark_out=" + arg.substr(7);
            json = true;
        }
    }
    if (json)
        args.push_back("--benchmark_out_format=json");
    std::vector<char *> cargs;
    for (auto &arg : args)
        cargs.push_back(arg.data());
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
