/**
 * @file
 * Similarity study: the paper's Section 2.3 experiment as a CLI tool.
 *
 * Captures dynamic basic-block traces for independent requests of each
 * Banking type, merges them in SIMT lockstep, and reports the potential
 * data-parallel speedup — plus a contrast experiment merging traces of
 * *different* types to show why cohorts group by type.
 *
 * Usage: similarity_study [traces-per-type]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/similarity.hh"
#include "util/strings.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    const int traces = argc > 1 ? std::atoi(argv[1]) : 5;

    std::cout << "Merging " << traces
              << " independent same-type request traces per Banking "
                 "page\n(the paper's Figure 2 methodology).\n\n";

    TableWriter table({"request type", "sum blocks", "merged",
                       "speedup", "normalized"});
    for (size_t i = 0; i < specweb::kNumRequestTypes; ++i) {
        const auto &info = specweb::typeTable()[i];
        auto captured =
            analysis::captureRequestTraces(info.type, traces, 1000, 33);
        std::vector<const simt::ThreadTrace *> lanes;
        for (auto &t : captured)
            lanes.push_back(&t);
        auto r = analysis::measureSimilarity(lanes);
        table.addRow({std::string(info.name),
                      std::to_string(r.sumBlocks),
                      std::to_string(r.mergedBlocks),
                      formatDouble(r.speedup, 2),
                      formatDouble(r.normalizedSpeedup, 3)});
    }
    table.printAscii(std::cout);

    // Contrast: merge one trace of each type — little shared control
    // flow beyond the chrome, so the speedup collapses. This is why the
    // Rhythm parser sorts requests into per-type cohorts.
    std::cout << "\nContrast: merging one trace of EACH type "
                 "(mixed cohort):\n";
    std::vector<simt::ThreadTrace> mixed;
    for (size_t i = 0; i < specweb::kNumRequestTypes; ++i) {
        auto captured = analysis::captureRequestTraces(
            specweb::typeTable()[i].type, 1, 1000, 71);
        mixed.push_back(std::move(captured[0]));
    }
    std::vector<const simt::ThreadTrace *> lanes;
    for (auto &t : mixed)
        lanes.push_back(&t);
    auto r = analysis::measureSimilarity(lanes);
    std::cout << "  " << r.traceCount << " mixed traces: speedup "
              << formatDouble(r.speedup, 2) << " of ideal "
              << r.traceCount << " (normalized "
              << formatDouble(r.normalizedSpeedup, 3) << ")\n"
              << "Same-type cohorts are the win; mixed cohorts "
                 "serialize on divergent handler code.\n";
    return 0;
}
