file(REMOVE_RECURSE
  "CMakeFiles/rhythm_server_test.dir/rhythm_server_test.cc.o"
  "CMakeFiles/rhythm_server_test.dir/rhythm_server_test.cc.o.d"
  "rhythm_server_test"
  "rhythm_server_test.pdb"
  "rhythm_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
