file(REMOVE_RECURSE
  "../bench/ext_timeout_tradeoff"
  "../bench/ext_timeout_tradeoff.pdb"
  "CMakeFiles/ext_timeout_tradeoff.dir/ext_timeout_tradeoff.cc.o"
  "CMakeFiles/ext_timeout_tradeoff.dir/ext_timeout_tradeoff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_timeout_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
