#include "simt/engine.hh"

#include <algorithm>
#include <span>
#include <utility>

#include "obs/obs.hh"
#include "util/logging.hh"

namespace rhythm::simt {
namespace {

/** One warp's slice of a launch's trace array. */
struct WarpWork
{
    const ThreadTrace *const *lanes = nullptr;
    size_t laneCount = 0;
    const WarpModel *model = nullptr;
};

} // namespace

Engine::Engine(int num_sms, util::ThreadPool *pool)
    : numSms_(num_sms), pool_(pool)
{
    RHYTHM_ASSERT(numSms_ >= 1);
    sms_.resize(static_cast<size_t>(numSms_));
}

util::ThreadPool &
Engine::pool() const
{
    return pool_ ? *pool_ : util::simPool();
}

KernelProfile
Engine::profile(const std::vector<const ThreadTrace *> &traces,
                const WarpModel &model, std::string name)
{
    Launch launch;
    launch.traces = &traces;
    launch.model = &model;
    launch.name = std::move(name);
    std::vector<KernelProfile> profiles = profileMany({std::move(launch)});
    return std::move(profiles.front());
}

std::vector<KernelProfile>
Engine::profileMany(const std::vector<Launch> &launches)
{
    // Flatten every warp of every launch into one index space so the
    // pool load-balances across launch boundaries.
    std::vector<WarpWork> work;
    std::vector<size_t> warpBase(launches.size() + 1, 0);
    for (size_t li = 0; li < launches.size(); ++li) {
        const Launch &l = launches[li];
        RHYTHM_ASSERT(l.traces != nullptr && l.model != nullptr);
        const auto &traces = *l.traces;
        const size_t width = static_cast<size_t>(l.model->warpWidth);
        RHYTHM_ASSERT(width >= 1);
        for (size_t base = 0; base < traces.size(); base += width) {
            work.push_back(WarpWork{traces.data() + base,
                                    std::min(width, traces.size() - base),
                                    l.model});
        }
        warpBase[li + 1] = work.size();
    }

    // Fork: each warp writes only its own slot. Which worker simulates
    // which warp is irrelevant — the slots are merged canonically below.
    std::vector<WarpStats> slots(work.size());
    pool().parallelFor(work.size(), [&work, &slots](size_t i) {
        const WarpWork &w = work[i];
        slots[i] = simulateWarp(
            std::span<const ThreadTrace *const>(w.lanes, w.laneCount),
            *w.model);
        // Cross-thread metric emission; the obs counter sinks are
        // atomic, and the total is thread-count-invariant.
        OBS_COUNTER_ADD("engine.warps_simulated", 1);
    });

    // Join done; merge on the calling thread in canonical order:
    // launch index, then warp index within the launch.
    std::vector<KernelProfile> profiles;
    profiles.reserve(launches.size());
    for (size_t li = 0; li < launches.size(); ++li) {
        const size_t begin = warpBase[li];
        const size_t end = warpBase[li + 1];
        const std::span<const WarpStats> launchStats(slots.data() + begin,
                                                     end - begin);
        profiles.push_back(KernelProfile::fromWarpStats(
            launchStats, launches[li].traces->size(), launches[li].name));
        // Per-SM accounting: warp w of a launch runs on SM (w % numSms).
        for (size_t w = 0; w < launchStats.size(); ++w) {
            SmCounters &sm = sms_[w % static_cast<size_t>(numSms_)];
            ++sm.warps;
            sm.stats.merge(launchStats[w]);
        }
        const size_t touched =
            std::min(launchStats.size(), static_cast<size_t>(numSms_));
        for (size_t s = 0; s < touched; ++s)
            ++sms_[s].launches;
        ++launches_;
        warps_ += launchStats.size();
    }
    return profiles;
}

void
Engine::resetCounters()
{
    std::fill(sms_.begin(), sms_.end(), SmCounters{});
    launches_ = 0;
    warps_ = 0;
}

} // namespace rhythm::simt
