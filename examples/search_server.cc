/**
 * @file
 * Search-on-Rhythm demo: the paper's Section 8 direction ("exploring
 * other workloads like Search ... and deploying them using Rhythm")
 * made concrete. A synthetic Zipfian corpus is indexed, and mixed
 * search traffic (home, results, document, suggest pages) is served by
 * the same cohort pipeline that runs the Banking workload — only the
 * Service implementation differs.
 *
 * Usage: search_server [documents] [queries] [cohort-size]
 */

#include <array>
#include <cstdlib>
#include <iostream>

#include "des/event_queue.hh"
#include "rhythm/server.hh"
#include "search/service.hh"
#include "util/strings.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    const uint32_t docs =
        argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 2000;
    const int queries = argc > 2 ? std::atoi(argv[2]) : 512;
    const uint32_t cohort =
        argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 64;

    std::cout << "Indexing " << docs << " documents... ";
    search::Corpus corpus(docs, 4096, 7);
    search::InvertedIndex index(corpus);
    std::cout << index.totalPostings() << " postings.\n";

    des::EventQueue queue;
    simt::Device device(queue, simt::DeviceConfig{});
    search::SearchService service(index);

    core::RhythmConfig config;
    config.cohortSize = cohort;
    config.cohortContexts = 8;
    config.cohortTimeout = des::kMillisecond;
    config.backendOnDevice = true; // Titan B style SoC
    config.networkOverPcie = false;
    core::RhythmServer server(queue, device, service, config);

    search::QueryGenerator gen(corpus, 99);
    std::array<int, search::kNumPageTypes> sent{}, valid{};
    std::vector<search::PageType> types;

    server.setResponseCallback([&](uint64_t client,
                                   std::string_view response,
                                   des::Time) {
        // Pull-mode client ids are assigned sequentially from 1.
        const search::PageType type = types[client - 1];
        valid[static_cast<uint32_t>(type)] +=
            search::validateSearchResponse(type, response);
    });

    int issued = 0;
    server.start([&]() -> std::optional<std::string> {
        if (issued >= queries)
            return std::nullopt;
        ++issued;
        search::GeneratedQuery q = gen.next();
        types.push_back(q.type);
        ++sent[static_cast<uint32_t>(q.type)];
        return std::move(q.raw);
    });
    queue.run();

    TableWriter table({"page type", "requests", "validated"});
    for (uint32_t t = 0; t < search::kNumPageTypes; ++t) {
        table.addRow({std::string(search::pageTable()[t].name),
                      std::to_string(sent[t]), std::to_string(valid[t])});
    }
    table.printAscii(std::cout);

    const core::RhythmStats &stats = server.stats();
    std::cout << "cohorts launched:   " << stats.cohortsLaunched
              << "\nsimulated time:     "
              << formatDouble(des::toMillis(queue.now()), 2)
              << " ms\nthroughput:         "
              << humanCount(static_cast<double>(stats.responsesCompleted) /
                            des::toSeconds(queue.now()))
              << "reqs/s\nmean latency:       "
              << formatDouble(stats.latencyMs.mean(), 2)
              << " ms\ndevice utilization: "
              << formatDouble(device.kernelUtilization(), 2) << "\n";
    return 0;
}
