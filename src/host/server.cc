#include "host/server.hh"

#include "http/parser.hh"
#include "specweb/quickpay.hh"

namespace rhythm::host {

HostServer::HostServer(backend::BankDb &db,
                       specweb::SessionProvider &sessions,
                       const specweb::StaticContent *static_content)
    : backend_(db), sessions_(sessions), staticContent_(static_content)
{
}

std::string
HostServer::serve(std::string_view raw_request, simt::TraceRecorder &rec)
{
    return serveDetailed(raw_request, rec).response;
}

HostServer::Result
HostServer::serveDetailed(std::string_view raw_request,
                          simt::TraceRecorder &rec)
{
    ++served_;
    Result result;

    http::Request request;
    if (!http::parseRequest(raw_request, 0, rec, request)) {
        result.failed = true;
        result.response =
            "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n";
        return result;
    }

    if (staticContent_ &&
        specweb::StaticContent::isStaticPath(request.path) &&
        staticContent_->lookup(request.path)) {
        result.recognized = true;
        result.response = staticContent_->buildResponse(request.path);
        return result;
    }
    if (request.path == specweb::kQuickPayPath) {
        result.recognized = true;
        result.response =
            specweb::serveQuickPay(request, backend_, sessions_, rec);
        result.failed =
            result.response.find("page:error") != std::string::npos;
        return result;
    }

    specweb::RequestType type;
    if (!specweb::typeFromPath(request.path, type)) {
        result.failed = true;
        result.response =
            "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        return result;
    }
    result.recognized = true;
    result.type = type;

    specweb::StringResponseWriter writer(rec);
    specweb::HandlerContext ctx;
    ctx.request = &request;
    ctx.rec = &rec;
    ctx.out = &writer;
    ctx.sessions = &sessions_;

    const int stages = specweb::BankingApp::numStages(type);
    for (int stage = 0; stage < stages && !ctx.failed; ++stage) {
        app_.runStage(type, stage, ctx);
        if (ctx.failed)
            break;
        if (stage < stages - 1) {
            // Backend as a direct function call (paper Section 5.3).
            ctx.backendResponse = backend_.execute(ctx.backendRequest, rec);
            ctx.backendRequest.clear();
        }
    }

    result.failed = ctx.failed;
    result.response = writer.str();
    return result;
}

} // namespace rhythm::host
