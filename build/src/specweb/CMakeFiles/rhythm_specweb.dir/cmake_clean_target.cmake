file(REMOVE_RECURSE
  "librhythm_specweb.a"
)
