file(REMOVE_RECURSE
  "../bench/ext_future_accelerator"
  "../bench/ext_future_accelerator.pdb"
  "CMakeFiles/ext_future_accelerator.dir/ext_future_accelerator.cc.o"
  "CMakeFiles/ext_future_accelerator.dir/ext_future_accelerator.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_future_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
