#include "simt/kernel.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhythm::simt {

KernelProfile
KernelProfile::fromTraces(const std::vector<const ThreadTrace *> &traces,
                          const WarpModel &model, std::string name)
{
    std::vector<WarpStats> warp_stats;
    const size_t width = static_cast<size_t>(model.warpWidth);
    warp_stats.reserve((traces.size() + width - 1) / width);
    for (size_t base = 0; base < traces.size(); base += width) {
        const size_t lanes = std::min(width, traces.size() - base);
        warp_stats.push_back(simulateWarp(
            std::span<const ThreadTrace *const>(traces.data() + base, lanes),
            model));
    }
    return fromWarpStats(warp_stats, traces.size(), std::move(name));
}

KernelProfile
KernelProfile::fromWarpStats(std::span<const WarpStats> warp_stats,
                             uint64_t threads, std::string name)
{
    KernelProfile profile;
    profile.name = std::move(name);
    profile.threads = threads;
    profile.warps = warp_stats.size();
    for (const WarpStats &ws : warp_stats)
        profile.totals.merge(ws);
    return profile;
}

KernelProfile
KernelProfile::streaming(uint64_t threads, uint64_t bytes_moved,
                         uint32_t insts_per_thread, const WarpModel &model,
                         std::string name)
{
    KernelProfile profile;
    profile.name = std::move(name);
    profile.threads = threads;
    profile.warps = (threads + model.warpWidth - 1) / model.warpWidth;
    profile.totals.issueSlots = profile.warps * insts_per_thread;
    profile.totals.laneInstructions = threads * insts_per_thread;
    profile.totals.steps = profile.warps;
    profile.totals.laneBlockExecs = threads;
    profile.totals.activeLaneSteps = threads;
    profile.totals.globalBytes = bytes_moved;
    profile.totals.globalTransactions =
        (bytes_moved + model.segmentBytes - 1) / model.segmentBytes;
    return profile;
}

KernelCost
computeKernelCost(const KernelProfile &profile, const DeviceConfig &config)
{
    KernelCost cost;
    // Shared-memory bank-conflict replays occupy issue slots too.
    const double compute_seconds =
        (static_cast<double>(profile.totals.issueSlots) *
             config.instructionExpansion +
         static_cast<double>(profile.totals.sharedReplaySlots)) /
        config.issueSlotsPerSecond();
    const double memory_seconds =
        static_cast<double>(profile.totals.movedBytes()) /
        (config.memBandwidthGBs * config.memoryEfficiency * 1e9);
    cost.deviceSeconds = std::max(compute_seconds, memory_seconds);
    cost.memoryBound = memory_seconds > compute_seconds;
    cost.memoryBytes = profile.totals.movedBytes();
    const double saturating = config.saturatingWarps();
    RHYTHM_ASSERT(saturating > 0);
    cost.maxShare = std::min(
        1.0, static_cast<double>(profile.warps) / saturating);
    if (profile.warps == 0)
        cost.maxShare = 0.0;
    cost.name = profile.name;
    cost.warps = profile.warps;
    cost.simdEfficiency = profile.simdEfficiency(config.warpWidth);
    cost.globalTransactions = profile.totals.globalTransactions;
    return cost;
}

} // namespace rhythm::simt
