file(REMOVE_RECURSE
  "CMakeFiles/rhythm_des.dir/event_queue.cc.o"
  "CMakeFiles/rhythm_des.dir/event_queue.cc.o.d"
  "librhythm_des.a"
  "librhythm_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
