# Empty compiler generated dependencies file for similarity_study.
# This may be replaced when dependencies are built.
