#include "chat/store.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhythm::chat {
namespace {

const char *kOpeners[] = {"honestly", "by the way", "also", "ok so",
                          "update:", "fwiw", "quick question:",
                          "reminder:", "heads up:", "today"};
const char *kSubjects[] = {"the deploy", "the meeting", "lunch",
                           "the build", "that ticket", "the demo",
                           "the review", "the schedule", "the server",
                           "the release"};
const char *kVerbs[] = {"is ready", "slipped an hour", "looks good",
                        "needs another pass", "got cancelled",
                        "just landed", "is blocked on me",
                        "went out fine", "is flaky again",
                        "moved to friday"};
const char *kClosers[] = {"", " :)", ", will follow up", ", see thread",
                          " — details in the doc", ", ping me",
                          " (finally)", ", thanks all"};

} // namespace

std::string
RoomStore::synthesizeText(Rng &rng)
{
    std::string out = kOpeners[rng.nextBounded(10)];
    out += ' ';
    out += kSubjects[rng.nextBounded(10)];
    out += ' ';
    out += kVerbs[rng.nextBounded(10)];
    out += kClosers[rng.nextBounded(8)];
    return out;
}

RoomStore::RoomStore(uint32_t rooms, uint32_t seed_messages, uint64_t seed)
    : rooms_(rooms), store_(rooms)
{
    RHYTHM_ASSERT(rooms > 0);
    Rng rng(seed);
    for (uint32_t r = 1; r <= rooms; ++r) {
        for (uint32_t m = 0; m < seed_messages; ++m)
            post(r, 1 + rng.nextBounded(500), synthesizeText(rng));
    }
}

uint64_t
RoomStore::latestSeq(uint32_t room) const
{
    if (!validRoom(room))
        return 0;
    const Room &r = store_[room - 1];
    return r.nextSeq - 1;
}

uint64_t
RoomStore::post(uint32_t room, uint64_t user, std::string text)
{
    if (!validRoom(room) || text.empty())
        return 0;
    Room &r = store_[room - 1];
    Message msg;
    msg.seq = r.nextSeq++;
    msg.userId = user;
    msg.text = std::move(text);
    r.ring.push_back(std::move(msg));
    if (r.ring.size() > kRingCapacity)
        r.ring.erase(r.ring.begin());
    ++totalPosted_;
    return r.ring.back().seq;
}

std::vector<const Message *>
RoomStore::history(uint32_t room, size_t max) const
{
    std::vector<const Message *> out;
    if (!validRoom(room))
        return out;
    const Room &r = store_[room - 1];
    const size_t take = std::min(max, r.ring.size());
    for (size_t i = r.ring.size() - take; i < r.ring.size(); ++i)
        out.push_back(&r.ring[i]);
    return out;
}

std::vector<const Message *>
RoomStore::since(uint32_t room, uint64_t since_seq) const
{
    std::vector<const Message *> out;
    if (!validRoom(room))
        return out;
    for (const Message &msg : store_[room - 1].ring) {
        if (msg.seq > since_seq)
            out.push_back(&msg);
    }
    return out;
}

} // namespace rhythm::chat
