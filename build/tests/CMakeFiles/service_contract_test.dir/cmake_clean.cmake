file(REMOVE_RECURSE
  "CMakeFiles/service_contract_test.dir/service_contract_test.cc.o"
  "CMakeFiles/service_contract_test.dir/service_contract_test.cc.o.d"
  "service_contract_test"
  "service_contract_test.pdb"
  "service_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
