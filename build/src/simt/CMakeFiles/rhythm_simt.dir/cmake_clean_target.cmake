file(REMOVE_RECURSE
  "librhythm_simt.a"
)
