#include "specweb/context.hh"

#include "util/logging.hh"

namespace rhythm::specweb {

StringResponseWriter::StringResponseWriter(simt::TraceRecorder &rec,
                                           uint32_t insts_per_byte)
    : rec_(rec), instsPerByte_(insts_per_byte)
{
}

void
StringResponseWriter::charge(uint32_t block_id, size_t bytes, bool dynamic)
{
    const uint32_t insts =
        16 + static_cast<uint32_t>(bytes) * instsPerByte_;
    rec_.block(block_id, insts);
    const uint32_t words = static_cast<uint32_t>((bytes + 3) / 4);
    if (words == 0)
        return;
    // Source read: static content comes from constant memory, dynamic
    // content from global memory (backend buffers / heap).
    rec_.load(0x4000'0000 + out_.size(), words, 4, 4,
              dynamic ? simt::MemSpace::Global : simt::MemSpace::Constant);
    // Destination write: contiguous in the host string; device writers
    // override this with the cohort buffer layout.
    rec_.store(0x8000'0000 + out_.size(), words, 4, 4);
}

void
StringResponseWriter::appendStatic(uint32_t block_id, std::string_view text)
{
    charge(block_id, text.size(), false);
    out_.append(text);
}

void
StringResponseWriter::appendDynamic(uint32_t block_id, std::string_view text)
{
    charge(block_id, text.size(), true);
    out_.append(text);
}

size_t
StringResponseWriter::reserve(uint32_t block_id, size_t width)
{
    const size_t offset = out_.size();
    charge(block_id, width, false);
    out_.append(width, ' ');
    return offset;
}

void
StringResponseWriter::patch(size_t offset, std::string_view text)
{
    RHYTHM_ASSERT(offset + text.size() <= out_.size(),
                  "patch outside reservation");
    out_.replace(offset, text.size(), text);
}

uint64_t
MapSessionProvider::create(uint64_t user_id, simt::TraceRecorder &rec)
{
    rec.block(4900, 120); // session insert
    const uint64_t sid = nextId_++;
    sessions_[sid] = user_id;
    return sid;
}

uint64_t
MapSessionProvider::lookup(uint64_t session_id, simt::TraceRecorder &rec)
{
    rec.block(4901, 80); // session lookup
    auto it = sessions_.find(session_id);
    return it == sessions_.end() ? 0 : it->second;
}

bool
MapSessionProvider::destroy(uint64_t session_id, simt::TraceRecorder &rec)
{
    rec.block(4902, 90); // session erase
    return sessions_.erase(session_id) > 0;
}

} // namespace rhythm::specweb
