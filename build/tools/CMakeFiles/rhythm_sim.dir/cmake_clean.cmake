file(REMOVE_RECURSE
  "CMakeFiles/rhythm_sim.dir/rhythm_sim.cc.o"
  "CMakeFiles/rhythm_sim.dir/rhythm_sim.cc.o.d"
  "rhythm_sim"
  "rhythm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
