file(REMOVE_RECURSE
  "CMakeFiles/similarity_study.dir/similarity_study.cc.o"
  "CMakeFiles/similarity_study.dir/similarity_study.cc.o.d"
  "similarity_study"
  "similarity_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
