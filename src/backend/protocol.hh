/**
 * @file
 * Backend wire protocol.
 *
 * The Rhythm pipeline talks to the backend in fixed-size slots: 1 KiB
 * request records and 4 KiB response records (the allocation the paper
 * uses, Section 5.1). The byte sizes matter because Titan A moves these
 * records across the PCIe link (Figure 9); the protocol is therefore a
 * real serialized format, not an in-memory shortcut.
 *
 * Encoding: '|'-separated fields; list payloads use ';' between records
 * and ',' between record fields. All values are ASCII.
 */

#ifndef RHYTHM_BACKEND_PROTOCOL_HH
#define RHYTHM_BACKEND_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rhythm::backend {

/** Backend operations required by the 14 Banking request types. */
enum class Op : uint8_t {
    Authenticate,     //!< user, password → profile summary
    GetAccounts,      //!< user → accounts with balances
    GetTransactions,  //!< account, max → recent transactions
    GetPayees,        //!< user → registered payees
    AddPayee,         //!< user, name, address, external → payee id
    PayBill,          //!< user, payee, cents, date → payment id
    GetPayments,      //!< user, from, to → bill payments
    UpdateProfile,    //!< user, address, email, phone → ok
    GetProfile,       //!< user → full profile
    GetCheckDetail,   //!< tx id → transaction + check info
    OrderCheck,       //!< user, style, quantity → order id
    PlaceCheckOrder,  //!< user, order id → ok
    Transfer,         //!< user, from, to, cents → tx id
    Summary,          //!< user → accounts + recent checking transactions
    /** Cross-shard two-phase transfer (DESIGN.md 6k). Phase 1 debits
     *  the payer on the payer's home shard; phase 2 credits the payee
     *  on the payee's home shard. Both are journaled mutations, so a
     *  coordinator retry after a crash between the phases dedups
     *  through the recovery memo instead of double-spending. */
    XferOut,          //!< user, peer, cents → tx id (debit leg)
    XferIn,           //!< user, peer, cents → tx id (credit leg)
};

/** Returns the wire keyword for an operation. */
std::string_view opName(Op op);

/** Parses a wire keyword. @return false if unknown. */
bool parseOp(std::string_view name, Op &out);

/** Fixed slot size reserved per backend request (paper Section 5.1). */
inline constexpr size_t kRequestSlotBytes = 1024;
/** Fixed slot size reserved per backend response. */
inline constexpr size_t kResponseSlotBytes = 4096;

/** A backend request before serialization. */
struct BackendRequest
{
    Op op = Op::GetProfile;
    uint64_t userId = 0;
    std::vector<std::string> args;

    /** Serializes to the wire format (must fit kRequestSlotBytes). */
    std::string serialize() const;

    /** Parses the wire format. @return false on malformed input. */
    static bool parse(std::string_view text, BackendRequest &out);
};

/** Helpers for composing/inspecting backend responses. */
namespace response {

/** Builds an "OK|payload" response. */
std::string ok(std::string_view payload);

/** Builds an "ERR|reason" response. */
std::string error(std::string_view reason);

/** True if the response indicates success. */
bool isOk(std::string_view text);

/** Reason carried by transient-unavailability errors (fault injection,
 *  brownouts). Callers may retry exactly these; other ERR responses are
 *  semantic failures that retrying cannot fix. */
inline constexpr std::string_view kUnavailableReason = "unavailable";

/** True for the transient "ERR|unavailable" response (retryable). */
bool isUnavailable(std::string_view text);

/** Returns the payload of an OK response ("" otherwise). */
std::string_view payload(std::string_view text);

/** Splits a list payload into records (';'-separated, empties dropped). */
std::vector<std::string_view> records(std::string_view payload);

/** Splits a record into fields (','-separated, empties kept). */
std::vector<std::string_view> fields(std::string_view record);

} // namespace response
} // namespace rhythm::backend

#endif // RHYTHM_BACKEND_PROTOCOL_HH
