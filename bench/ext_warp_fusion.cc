/**
 * @file
 * Extension experiment: sub-warp packing and cross-type cohort fusion
 * (DESIGN.md §6j).
 *
 * Drives the mixed Banking workload on Titan B with seeded open-loop
 * arrivals and deliberately small cohorts under a tight formation
 * timeout, so launches are dominated by partially-filled cohorts — the
 * regime where warp-width padding craters SIMD efficiency. Two
 * operating points:
 *
 *   low    steady Poisson well under capacity
 *   flash  the low rate with a flash-crowd burst riding on top (the
 *          §6i flash shape: many types time out simultaneously with
 *          fractional-warp tails)
 *
 * Each point runs twice: --fusion=off (every partial cohort pads its
 * tail warp to the warp width) and --fusion=on (similarity-compatible
 * partial cohorts of different request types share tail warps, with
 * same-type lanes placed contiguously). Both arms use the adaptive
 * formation policy and byte-identical arrival schedules; the delivered
 * responses are byte-identical on or off (the §6j determinism
 * contract, gated separately in CI) — only warp occupancy and timing
 * move.
 *
 * Acceptance gate (at the flash point): fusion must deliver >= 1.15x
 * the process SIMD efficiency of the unfused run, OR >= 1.10x the
 * on-time goodput. check_bench.py enforces the same conditions (plus
 * an absolute SIMD-efficiency floor) against the committed baseline.
 */

#include <iostream>

#include "backend/bankdb.hh"
#include "bench/common.hh"
#include "net/arrival.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "specweb/workload.hh"

namespace {

using namespace rhythm;

constexpr double kDefaultDeadlineMs = 8.0;
constexpr double kInteractiveDeadlineMs = 3.0;
constexpr double kFormationTimeoutMs = 1.0;
constexpr uint32_t kCohortSize = 128;
constexpr uint32_t kLaneSample = 128;
constexpr uint32_t kContexts = 32;

/** Interactive money-movement types carrying the tight deadline. */
constexpr specweb::RequestType kInteractive[] = {
    specweb::RequestType::Transfer,
    specweb::RequestType::PostTransfer,
    specweb::RequestType::PostPayee,
};

struct RunResult
{
    double simdEfficiency = 0.0; //!< process-stage SIMD efficiency
    double goodput = 0.0;        //!< on-time responses per second
    double throughput = 0.0;     //!< completed responses per second
    double p99Ms = 0.0;
    uint64_t cohortsLaunched = 0;
    uint64_t fusedLaunches = 0;
    uint64_t fusedCohorts = 0;
    uint64_t savedWarps = 0;
    uint64_t paddedLanes = 0;
};

RunResult
runPoint(const net::ArrivalConfig &acfg, bool fusion, uint64_t requests,
         const bench::FaultFlags &faults,
         const bench::FusionFlags &fusion_flags)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    faults.apply(dcfg);
    simt::Device device(queue, dcfg);
    backend::BankDb db(2000, 5);
    core::BankingService service(db);

    core::RhythmConfig cfg;
    cfg.cohortSize = kCohortSize;
    cfg.cohortContexts = kContexts;
    cfg.cohortTimeout = des::fromSeconds(kFormationTimeoutMs / 1e3);
    cfg.backendOnDevice = true; // Titan B
    cfg.networkOverPcie = false;
    cfg.laneSample = kLaneSample;
    faults.apply(cfg);
    // Identical deadlines and formation policy in both arms; only the
    // fusion bit (and its knobs) differs.
    cfg.typeDeadlines.assign(service.numTypes(), 0);
    for (specweb::RequestType t : kInteractive)
        cfg.typeDeadlines[specweb::typeIndex(t)] =
            des::fromSeconds(kInteractiveDeadlineMs / 1e3);
    cfg.defaultDeadline = des::fromSeconds(kDefaultDeadlineMs / 1e3);
    cfg.adaptiveBatching = true;
    cfg.fusionEnabled = fusion;
    if (fusion) {
        if (fusion_flags.threshold > 0)
            cfg.fusionSimilarityThreshold = fusion_flags.threshold;
        if (fusion_flags.maxCohorts > 0)
            cfg.fusionMaxCohorts = fusion_flags.maxCohorts;
        if (fusion_flags.alpha > 0)
            cfg.fingerprint.alpha = fusion_flags.alpha;
        if (fusion_flags.lanes > 0)
            cfg.fingerprint.sampleLanes = fusion_flags.lanes;
    }
    core::RhythmServer server(queue, device, service, cfg);
    std::optional<fault::FaultPlan> plan;
    faults.arm(server, device, queue, plan);

    specweb::WorkloadGenerator gen(db, 31);
    auto sessions = server.sessions().populate(8192, 2000);

    // Open-loop mixed-type arrivals: both arms construct the same
    // generator and ArrivalProcess seeds, so they see byte-identical
    // request and arrival-time streams.
    net::ArrivalProcess arrivals(acfg);
    uint64_t issued = 0;
    std::function<void()> arrive = [&]() {
        if (issued >= requests)
            return;
        specweb::RequestType type;
        do {
            type = gen.sampleType();
        } while (type == specweb::RequestType::Login ||
                 type == specweb::RequestType::Logout);
        const auto &[sid, user] = sessions[issued % sessions.size()];
        specweb::GeneratedRequest req = gen.generate(type, user, sid);
        server.injectRequest(std::move(req.raw), issued + 1);
        ++issued;
        if (issued < requests)
            queue.scheduleAfter(arrivals.nextGap(), arrive);
    };
    queue.scheduleAfter(arrivals.nextGap(), arrive);
    queue.run();

    const core::RhythmStats &stats = server.stats();
    const double elapsed = des::toSeconds(queue.now());
    RunResult r;
    r.simdEfficiency =
        stats.processIssueSlots > 0
            ? stats.processLaneInstructions /
                  (stats.processIssueSlots * cfg.warpModel.warpWidth)
            : 0.0;
    r.goodput = elapsed > 0
                    ? static_cast<double>(stats.typedDeadlineHits) /
                          elapsed
                    : 0.0;
    r.throughput =
        elapsed > 0 ? static_cast<double>(stats.responsesCompleted) /
                          elapsed
                    : 0.0;
    r.p99Ms = stats.latencyMs.percentile(99.0);
    r.cohortsLaunched = stats.cohortsLaunched;
    r.fusedLaunches = stats.fusedLaunches;
    r.fusedCohorts = stats.fusedCohorts;
    r.savedWarps = stats.fusionSavedWarps;
    r.paddedLanes = stats.paddedLanes;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter report("ext_warp_fusion", argc, argv);
    bench::banner(
        "Extension: sub-warp packing / cross-type cohort fusion",
        "DESIGN.md 6j (>=1.15x SIMD efficiency or >=1.10x goodput at "
        "flash)");

    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--quick")
            quick = true;

    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.recordConfig(report);
    const bench::ArrivalFlags arrival =
        bench::ArrivalFlags::parse(argc, argv);
    const bench::FusionFlags fusion = bench::FusionFlags::parse(argc, argv);

    // Operating points: the §6i flash shape at a rate where cohorts of
    // most types are partial when the 1 ms formation timeout fires.
    const double base_rate =
        arrival.anyGiven && arrival.config.rate > 0 &&
                arrival.config.rate != 200e3
            ? arrival.config.rate
            : 150e3;
    const uint64_t seed = arrival.config.seed;
    const double flash_mult =
        arrival.config.flashMultiplier > 0 &&
                arrival.config.flashMultiplier != 8.0
            ? arrival.config.flashMultiplier
            : 8.0;
    const uint64_t n_low = quick ? 3000 : 10000;
    const uint64_t n_flash = quick ? 5000 : 20000;

    net::ArrivalConfig low;
    low.kind = net::ArrivalKind::Poisson;
    low.rate = base_rate;
    low.seed = seed;
    net::ArrivalConfig flash = low;
    flash.kind = net::ArrivalKind::Flash;
    flash.flashStartSec = 0.05;
    flash.flashDurationSec = 0.1;
    flash.flashMultiplier = flash_mult;

    // check_bench.py requires these keys: the sweep under test must be
    // reproducible from the document alone.
    report.config("arrival_rate", base_rate);
    report.config("arrival_seed", static_cast<double>(seed));
    report.config("flash_mult", flash_mult);
    report.config("cohort_size", static_cast<double>(kCohortSize));
    report.config("timeout_ms", kFormationTimeoutMs);
    report.config("fusion_threshold", fusion.threshold > 0
                                          ? fusion.threshold
                                          : 0.5);
    report.config("quick", quick ? 1.0 : 0.0);

    struct Point
    {
        const char *key;
        const char *label;
        const net::ArrivalConfig *cfg;
        uint64_t requests;
    };
    const Point points[] = {
        {"low", "LOW (steady Poisson)", &low, n_low},
        {"flash", "FLASH (burst on low)", &flash, n_flash},
    };

    TableWriter table({"point", "fusion", "SIMD eff", "on-time K/s",
                       "KReqs/s", "p99 ms", "launches", "fused",
                       "warps saved", "padded lanes"});
    double flash_simd_ratio = 0.0;
    double flash_goodput_ratio = 0.0;
    for (const Point &p : points) {
        const RunResult off =
            runPoint(*p.cfg, false, p.requests, faults, fusion);
        const RunResult on =
            runPoint(*p.cfg, true, p.requests, faults, fusion);
        const double simd_ratio =
            off.simdEfficiency > 0 ? on.simdEfficiency / off.simdEfficiency
                                   : 0.0;
        const double goodput_ratio =
            off.goodput > 0 ? on.goodput / off.goodput : 0.0;
        if (std::string_view(p.key) == "flash") {
            flash_simd_ratio = simd_ratio;
            flash_goodput_ratio = goodput_ratio;
        }
        for (const auto &[mode, r] :
             {std::pair<const char *, const RunResult &>{"off", off},
              {"on", on}}) {
            table.addRow({p.key, mode, bench::fmt(r.simdEfficiency, 3),
                          bench::fmt(r.goodput / 1e3, 1),
                          bench::fmt(r.throughput / 1e3, 1),
                          bench::fmt(r.p99Ms, 2),
                          withCommas(r.cohortsLaunched),
                          withCommas(r.fusedCohorts),
                          withCommas(r.savedWarps),
                          withCommas(r.paddedLanes)});
            const std::string key =
                std::string(p.key) + "." + mode + ".";
            report.metric(key + "simd_efficiency", r.simdEfficiency);
            report.metric(key + "goodput", r.goodput);
            report.metric(key + "throughput", r.throughput);
            report.metric(key + "p99_ms", r.p99Ms);
            report.metric(key + "padded_lanes",
                          static_cast<double>(r.paddedLanes));
        }
        report.metric(std::string(p.key) + ".simd_ratio", simd_ratio);
        report.metric(std::string(p.key) + ".goodput_ratio",
                      goodput_ratio);
        report.metric(std::string(p.key) + ".fused_launches",
                      static_cast<double>(on.fusedLaunches));
        report.metric(std::string(p.key) + ".fused_cohorts",
                      static_cast<double>(on.fusedCohorts));
        report.metric(std::string(p.key) + ".saved_warps",
                      static_cast<double>(on.savedWarps));
    }
    table.printAscii(std::cout);

    const bool pass =
        flash_simd_ratio >= 1.15 || flash_goodput_ratio >= 1.10;
    std::cout << "\nFlash point: SIMD efficiency ratio "
              << bench::fmt(flash_simd_ratio, 2)
              << "x, on-time goodput ratio "
              << bench::fmt(flash_goodput_ratio, 2)
              << "x\nGate: >=1.15x SIMD efficiency or >=1.10x on-time "
                 "goodput\nVerdict: "
              << (pass ? "PASS" : "FAIL") << "\n";
    report.metric("flash_simd_ratio", flash_simd_ratio);
    report.metric("flash_goodput_ratio", flash_goodput_ratio);
    report.metric("acceptance_pass", pass ? 1.0 : 0.0);
    if (!report.write())
        return 1;
    return pass ? 0 : 1;
}
