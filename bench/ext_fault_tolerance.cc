/**
 * @file
 * Extension experiment: fault tolerance and graceful degradation.
 *
 * The paper's evaluation assumes a healthy backend and a healthy PCIe
 * link. This experiment injects deterministic backend failures at a
 * swept rate and measures how cohort-level retries recover goodput:
 * with no retry budget every failed backend call turns into a 503 on
 * one lane, while a modest budget absorbs transient failures at a small
 * latency cost. The run also exercises the degradation machinery under
 * three fault seeds to demonstrate that recovery is reproducible and
 * that a 1% backend failure rate costs less than 5% goodput.
 */

#include <iostream>

#include "backend/bankdb.hh"
#include "bench/common.hh"
#include "fault/plan.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "specweb/workload.hh"

namespace {

using namespace rhythm;

struct RunResult
{
    uint64_t completed = 0;
    uint64_t errors = 0;
    uint64_t retries = 0;
    uint64_t failedLanes = 0;
    uint64_t faults = 0;
    double goodputKrps = 0.0;
    double p99Ms = 0.0;
    bool drained = false;
    bool conserved = false;
};

RunResult
runOnce(double fail_prob, uint32_t retry_budget, uint64_t fault_seed)
{
    des::EventQueue queue;
    simt::Device device(queue, simt::DeviceConfig{});
    backend::BankDb db(2000, 5);
    core::BankingService service(db);

    core::RhythmConfig cfg;
    cfg.cohortSize = 1024;
    cfg.cohortContexts = 8;
    cfg.backendOnDevice = true; // Titan B
    cfg.networkOverPcie = false;
    cfg.laneSample = 64;
    cfg.backendRetryBudget = retry_budget;
    core::RhythmServer server(queue, device, service, cfg);

    fault::FaultConfig fcfg;
    fcfg.seed = fault_seed;
    fcfg.at(fault::Site::BackendFail).probability = fail_prob;
    fault::FaultPlan plan(fcfg);
    if (fail_prob > 0.0)
        server.setFaultPlan(&plan);

    specweb::WorkloadGenerator gen(db, 31);
    auto sessions = server.sessions().populate(8192, 2000);
    const uint64_t total = 20ull * cfg.cohortSize;
    uint64_t issued = 0;
    server.start([&]() -> std::optional<std::string> {
        if (issued >= total)
            return std::nullopt;
        const auto &[sid, user] = sessions[issued % sessions.size()];
        specweb::GeneratedRequest req = gen.generate(
            specweb::RequestType::AccountSummary, user, sid);
        ++issued;
        return std::move(req.raw);
    });

    // Watchdog: a hung simulation either stops draining or spins on
    // same-time events; stepping with a dispatch cap catches both
    // without wall-clock timers (which would break determinism).
    const uint64_t max_events = 50'000'000;
    while (queue.pending() && queue.dispatched() < max_events)
        queue.step();

    const core::RhythmStats &stats = server.stats();
    RunResult r;
    r.completed = stats.responsesCompleted;
    r.errors = stats.errorResponses;
    r.retries = stats.backendRetries;
    r.failedLanes = stats.backendFailedLanes;
    r.faults = stats.faultsInjected;
    r.goodputKrps = static_cast<double>(stats.responsesCompleted) /
                    des::toSeconds(queue.now()) / 1e3;
    r.p99Ms = stats.latencyMs.percentile(99.0);
    r.drained = !queue.pending();
    r.conserved = stats.requestsAccepted ==
                  stats.responsesCompleted + stats.errorResponses +
                      stats.requestsShed;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter report("ext_fault_tolerance", argc, argv);
    // --quick: single-seed acceptance and no sweep table — the mode CI's
    // build-and-test job runs on every push (the full 3x3 sweep plus
    // 3-seed acceptance stays the local/nightly default).
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--quick")
            quick = true;
    }

    bench::banner("Extension: fault tolerance vs retry budget",
                  "robustness extension (not a paper figure)");

    const RunResult baseline = runOnce(0.0, 0, 1);
    std::cout << "\nFault-free baseline: "
              << bench::fmt(baseline.goodputKrps, 0) << " KReqs/s, p99 "
              << bench::fmt(baseline.p99Ms, 2) << " ms\n\n";
    report.config("quick", quick ? 1.0 : 0.0);
    report.metric("baseline.goodput_krps", baseline.goodputKrps);
    report.metric("baseline.p99_ms", baseline.p99Ms);

    if (!quick) {
        TableWriter table({"backend fail rate", "retry budget", "KReqs/s",
                           "goodput vs clean", "p99 ms", "retries",
                           "503 lanes"});
        for (double rate : {0.001, 0.01, 0.05}) {
            for (uint32_t budget : {0u, 4u, 16u}) {
                const RunResult r = runOnce(rate, budget, 1);
                table.addRow(
                    {bench::fmt(rate * 100, 1) + "%", withCommas(budget),
                     bench::fmt(r.goodputKrps, 0),
                     bench::fmt(100.0 * r.goodputKrps /
                                    baseline.goodputKrps,
                                1) +
                         "%",
                     bench::fmt(r.p99Ms, 2), withCommas(r.retries),
                     withCommas(r.failedLanes)});
                const std::string key =
                    "rate_" + bench::fmt(rate * 100, 1) + ".budget_" +
                    std::to_string(budget);
                report.metric(key + ".goodput_krps", r.goodputKrps);
            }
        }
        table.printAscii(std::cout);
    }

    // Acceptance: 1% backend failure with a 16-retry budget keeps
    // goodput within 5% of the fault-free baseline, for three distinct
    // fault seeds (one in --quick mode), with the event queue fully
    // drained (no hangs) and the request conservation invariant intact.
    const std::vector<uint64_t> seeds =
        quick ? std::vector<uint64_t>{1} : std::vector<uint64_t>{1, 2, 3};
    std::cout << "\nAcceptance (1% failure, budget 16, "
              << seeds.size() << (seeds.size() == 1 ? " seed" : " seeds")
              << "):\n";
    bool pass = true;
    for (uint64_t seed : seeds) {
        const RunResult r = runOnce(0.01, 16, seed);
        const double ratio = r.goodputKrps / baseline.goodputKrps;
        const bool ok =
            ratio >= 0.95 && r.drained && r.conserved;
        pass = pass && ok;
        std::cout << "  seed " << seed << ": goodput "
                  << bench::fmt(100.0 * ratio, 1) << "% of clean, "
                  << withCommas(r.faults) << " faults, "
                  << withCommas(r.retries) << " retries, drained="
                  << (r.drained ? "yes" : "no") << ", conserved="
                  << (r.conserved ? "yes" : "no") << " -> "
                  << (ok ? "ok" : "FAIL") << "\n";
    }

    // Determinism: the same seed and plan must reproduce identical
    // counters run-to-run.
    const RunResult a = runOnce(0.01, 16, 1);
    const RunResult b = runOnce(0.01, 16, 1);
    const bool deterministic =
        a.completed == b.completed && a.errors == b.errors &&
        a.retries == b.retries && a.failedLanes == b.failedLanes &&
        a.faults == b.faults;
    pass = pass && deterministic;
    std::cout << "  repeat run identical: "
              << (deterministic ? "yes" : "NO") << "\n";

    std::cout << "\nVerdict: " << (pass ? "PASS" : "FAIL")
              << " (goodput >= 95% of fault-free at 1% backend failure, "
                 "no hangs, deterministic)\n";
    report.metric("faulty.goodput_krps", a.goodputKrps);
    report.metric("faulty.p99_ms", a.p99Ms);
    report.metric("acceptance_pass", pass ? 1.0 : 0.0);
    if (!report.write())
        return 1;
    return pass ? 0 : 1;
}
