file(REMOVE_RECURSE
  "librhythm_analysis.a"
)
