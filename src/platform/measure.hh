/**
 * @file
 * Workload measurement: reproduces the paper's Table 2 columns by
 * running the standalone host server under a counting tracer.
 */

#ifndef RHYTHM_PLATFORM_MEASURE_HH
#define RHYTHM_PLATFORM_MEASURE_HH

#include <array>
#include <cstdint>

#include "specweb/types.hh"

namespace rhythm::platform {

/** Measured characteristics of one request type (a Table 2 row). */
struct TypeMeasurement
{
    specweb::RequestType type = specweb::RequestType::Login;
    /** Mean dynamic instructions per request (measured). */
    double instructionsPerRequest = 0.0;
    /** Mean response size in bytes (measured). */
    double responseBytes = 0.0;
    /** Requests sampled. */
    uint64_t samples = 0;
    /** Fraction of sampled responses that passed validation. */
    double validationRate = 0.0;
};

/** Full-workload measurement. */
struct WorkloadMeasurement
{
    std::array<TypeMeasurement, specweb::kNumRequestTypes> perType{};
    /** Mix-weighted mean instructions per request. */
    double mixWeightedInstructions = 0.0;
    /** Mix-weighted mean response bytes. */
    double mixWeightedResponseBytes = 0.0;
};

/**
 * Measures every request type on the host server.
 * @param samples_per_type Random requests measured per type.
 * @param users Bank database size.
 * @param seed Deterministic seed.
 */
WorkloadMeasurement measureWorkload(uint64_t samples_per_type = 100,
                                    uint64_t users = 2000,
                                    uint64_t seed = 7);

} // namespace rhythm::platform

#endif // RHYTHM_PLATFORM_MEASURE_HH
