/**
 * @file
 * Statistics collection: counters, streaming summaries and histograms.
 *
 * These are the measurement primitives used by the simulator, the server
 * pipeline and the benchmark harness (mean/percentile latency, throughput
 * and energy accounting).
 */

#ifndef RHYTHM_UTIL_STATS_HH
#define RHYTHM_UTIL_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rhythm {

/**
 * Streaming scalar summary: count, sum, min, max, mean and variance
 * (Welford's online algorithm).
 */
class Summary
{
  public:
    /** Records one sample. */
    void add(double value);

    /** Merges another summary into this one. */
    void merge(const Summary &other);

    /** Number of samples recorded. */
    uint64_t count() const { return count_; }

    /** Sum of all samples (0 when empty). */
    double sum() const { return sum_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Minimum sample (+inf when empty). */
    double min() const { return min_; }

    /** Maximum sample (-inf when empty). */
    double max() const { return max_; }

    /** Population variance (0 for fewer than two samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 1.0 / 0.0;
    double max_ = -1.0 / 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * An exact-percentile histogram that retains all samples.
 *
 * Intended for offline experiment analysis where sample counts are in the
 * millions at most; percentile queries sort lazily and cache the order.
 */
class Histogram
{
  public:
    /** Records one sample. */
    void add(double value);

    /** Number of samples recorded. */
    uint64_t count() const { return samples_.size(); }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /**
     * Returns the given percentile via nearest-rank interpolation.
     * @param p Percentile in [0, 100]. Returns 0 when empty.
     */
    double percentile(double p) const;

    /** Convenience: the 50th percentile. */
    double median() const { return percentile(50.0); }

    /** Removes all samples. */
    void clear();

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * A fixed-window percentile tracker over the most recent samples.
 *
 * The load shedder needs "observed p99 latency right now", not the
 * whole-run percentile a Histogram gives: after a brownout clears, old
 * slow samples must age out so the server exits degraded mode. Keeps a
 * ring of the last `window` samples; percentile queries select over the
 * ring (O(window)) with the result cached until the next add.
 */
class WindowedPercentile
{
  public:
    /** @param window Samples retained; must be positive. */
    explicit WindowedPercentile(size_t window = 512);

    /** Records one sample, evicting the oldest beyond the window. */
    void add(double value);

    /** Samples ever recorded (not capped by the window). */
    uint64_t totalCount() const { return total_; }

    /** Samples currently in the window. */
    size_t windowCount() const { return ring_.size(); }

    /**
     * Returns the given percentile over the current window via
     * nearest-rank selection. @param p Percentile in [0, 100].
     * Returns 0 when the window is empty.
     */
    double percentile(double p) const;

  private:
    size_t window_;
    std::vector<double> ring_;
    size_t next_ = 0;
    uint64_t total_ = 0;
    mutable bool cacheValid_ = false;
    mutable double cachedP_ = -1.0;
    mutable double cachedValue_ = 0.0;
    mutable std::vector<double> scratch_;
};

/**
 * An exponentially weighted moving average.
 *
 * The adaptive cohort batcher (DESIGN.md Section 6i) models the
 * launch+PCIe+kernel cost of a cohort as an EWMA of recent pipeline
 * times; the smoothing keeps the slack test responsive to load shifts
 * without chasing single-cohort noise.
 */
class Ewma
{
  public:
    /** @param alpha Smoothing factor in (0, 1]; 1 = last sample only. */
    explicit Ewma(double alpha = 0.25);

    /** Records one sample (the first sample seeds the average). */
    void add(double sample);

    /** True before any sample was recorded. */
    bool empty() const { return count_ == 0; }

    /** Samples recorded. */
    uint64_t count() const { return count_; }

    /** Current average (0 when empty). */
    double value() const { return value_; }

  private:
    double alpha_;
    double value_ = 0.0;
    uint64_t count_ = 0;
};

/**
 * A weighted-harmonic-mean accumulator.
 *
 * The paper combines per-request-type efficiencies into a workload
 * efficiency using a weighted harmonic mean (Section 5.3.1); this class
 * implements that combination rule.
 */
class WeightedHarmonicMean
{
  public:
    /**
     * Adds one component.
     * @param weight Relative weight (e.g. request-mix fraction); > 0.
     * @param value Component value (e.g. requests/Joule); > 0.
     */
    void add(double weight, double value);

    /** The weighted harmonic mean, or 0 when no components were added. */
    double value() const;

  private:
    double weightSum_ = 0.0;
    double weightedReciprocals_ = 0.0;
};

} // namespace rhythm

#endif // RHYTHM_UTIL_STATS_HH
