/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue owns simulated time. Components schedule callbacks
 * at absolute or relative times; run() dispatches them in (time, sequence)
 * order, so events scheduled for the same instant fire in FIFO order,
 * which keeps every experiment deterministic.
 */

#ifndef RHYTHM_DES_EVENT_QUEUE_HH
#define RHYTHM_DES_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "des/time.hh"

namespace rhythm::des {

/** Opaque handle identifying a scheduled event (for cancellation). */
struct EventId
{
    Time when = 0;
    uint64_t sequence = 0;

    bool operator==(const EventId &) const = default;
};

/**
 * The simulation event queue and clock.
 *
 * Not thread safe by design: the Rhythm server is single threaded (one of
 * the paper's explicit design points) and the whole simulation runs on one
 * host thread.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedules a callback at an absolute simulated time.
     * @param when Absolute time; must be >= now().
     * @return Handle usable with cancel().
     */
    EventId scheduleAt(Time when, Callback cb);

    /** Schedules a callback @p delay after the current time. */
    EventId scheduleAfter(Time delay, Callback cb);

    /**
     * Cancels a pending event.
     * @return true if the event was pending and has been removed.
     */
    bool cancel(const EventId &id);

    /** Number of pending events. */
    size_t pending() const { return events_.size(); }

    /**
     * Events dispatched over the queue's lifetime. Useful as a cheap
     * progress watchdog: a simulation that stops making progress stops
     * advancing this counter even when pending() stays non-zero.
     */
    uint64_t dispatched() const { return dispatched_; }

    /**
     * High-water mark of pending() over the queue's lifetime — a
     * classic DES health metric (a queue whose depth keeps growing is
     * a simulation leaking events). Exported by the observability
     * layer.
     */
    size_t maxPending() const { return maxPending_; }

    /**
     * Order-audit fingerprint: an FNV-1a hash folded over the
     * (when, sequence) key of every event dispatched so far. Host-side
     * parallelism happens strictly *inside* one event callback (the
     * engine joins its workers before returning), so this hash must be
     * invariant under --sim-threads; the equivalence tests compare it
     * across thread counts to prove the DES schedule — every epoch
     * barrier between events — is untouched by parallel execution.
     */
    uint64_t orderHash() const { return orderHash_; }

    /**
     * Runs until the queue drains or the optional horizon is reached.
     * @param horizon Stop once the next event is strictly beyond this
     *        time (the clock is advanced to the horizon). 0 = no horizon.
     * @return Number of events dispatched.
     */
    uint64_t run(Time horizon = 0);

    /** Dispatches exactly one event if any is pending. @return true if so. */
    bool step();

    /** Requests that run() return after the current event completes. */
    void stop() { stopRequested_ = true; }

  private:
    using Key = std::pair<Time, uint64_t>;

    Time now_ = 0;
    uint64_t nextSequence_ = 0;
    uint64_t dispatched_ = 0;
    uint64_t orderHash_ = 14695981039346656037ull; //!< FNV-1a offset basis.
    size_t maxPending_ = 0;
    bool stopRequested_ = false;
    std::map<Key, Callback> events_;
};

} // namespace rhythm::des

#endif // RHYTHM_DES_EVENT_QUEUE_HH
