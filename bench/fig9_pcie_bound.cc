/**
 * @file
 * Figure 9: PCIe 3.0 limitations on Titan A — achieved throughput vs
 * the analytic PCIe-bandwidth bound for every request type. The paper
 * observes every type achieving 83-95% of its bound, demonstrating the
 * PCIe link is Titan A's bottleneck (the structural hazard that stalls
 * the Rhythm pipeline).
 */

#include <iostream>

#include "bench/common.hh"
#include "platform/titan.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("fig9_pcie_bound", argc, argv);
    bench::banner("Figure 9: Titan A achieved vs PCIe 3.0 bound",
                  "Figure 9 (achieved within 83-95% of bound per type)");

    platform::TitanVariant a = platform::titanA();
    platform::IsolatedRunOptions opts;
    opts.cohorts = 10;
    opts.users = 2000;
    opts.laneSample = 128;
    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.apply(opts);
    faults.recordConfig(report);
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    overlap.apply(opts);
    overlap.recordConfig(report);

    TableWriter table({"request type", "achieved KReqs/s",
                       "PCIe bound KReqs/s", "achieved/bound %",
                       "h2d B/req", "d2h B/req", "h2d util", "d2h util",
                       "overlap"});
    double min_ratio = 1.0, max_ratio = 0.0;
    for (size_t i = 0; i < specweb::kNumRequestTypes; ++i) {
        const auto &info = specweb::typeTable()[i];
        platform::TypeRunResult r =
            platform::runIsolatedType(a, info.type, opts);
        const double bound = platform::pcieThroughputBound(a, info.type);
        const double ratio = r.throughput / bound;
        min_ratio = std::min(min_ratio, ratio);
        max_ratio = std::max(max_ratio, ratio);
        const std::string key = bench::slug(info.name);
        report.metric(key + ".throughput", r.throughput);
        report.metric(key + ".bound_ratio", ratio);
        report.metric(key + ".p99_latency_ms", r.p99LatencyMs);
        // Per-type PCIe utilization and wire-byte breakdown (each DMA
        // direction separately, not just the aggregate).
        report.metric(key + ".pcie_h2d_util", r.h2dUtilization);
        report.metric(key + ".pcie_d2h_util", r.d2hUtilization);
        report.metric(key + ".pcie_h2d_bytes_per_req",
                      static_cast<double>(r.h2dBytesPerRequest));
        report.metric(key + ".pcie_d2h_bytes_per_req",
                      static_cast<double>(r.d2hBytesPerRequest));
        report.metric(key + ".pcie_bytes_per_req",
                      static_cast<double>(r.pcieBytesPerRequest));
        report.metric(key + ".pcie_wire_bytes_per_req",
                      static_cast<double>(r.pcieWireBytesPerRequest));
        report.metric(key + ".overlap_fraction", r.overlapFraction);
        // Per-type warp occupancy (DESIGN.md 6j): how efficiently this
        // type fills its warps, and the idle tail lanes it paid for.
        report.metric(key + ".simd_efficiency", r.simdEfficiency);
        report.metric(key + ".padded_lanes",
                      static_cast<double>(r.paddedLanes));
        table.addRow({std::string(info.name),
                      bench::fmt(r.throughput / 1e3, 1),
                      bench::fmt(bound / 1e3, 1),
                      bench::fmt(ratio * 100.0, 1),
                      std::to_string(r.h2dBytesPerRequest),
                      std::to_string(r.d2hBytesPerRequest),
                      bench::fmt(r.h2dUtilization, 2),
                      bench::fmt(r.d2hUtilization, 2),
                      bench::fmt(r.overlapFraction, 2)});
    }
    table.printAscii(std::cout);
    std::cout << "Achieved/bound range: " << bench::fmt(min_ratio * 100, 1)
              << "% - " << bench::fmt(max_ratio * 100, 1)
              << "% (paper: 83% - 95%).\n"
              << "PCIe 4.0 note (paper Section 6.1.1): doubling link "
                 "bandwidth doubles the bound;\nrerun with "
                 "device.pcieBandwidthGBs = 24 to reproduce that "
                 "projection.\n";
    report.config("cohorts", opts.cohorts);
    report.config("users", opts.users);
    report.config("lane_sample", opts.laneSample);
    if (!report.write())
        return 1;
    return 0;
}
