/**
 * @file
 * SPECWeb2009 Banking request types and their workload metadata.
 *
 * The metadata table reproduces the paper's Table 2: per-type request-mix
 * fractions, the SPECWeb response sizes, the Rhythm (power-of-two) buffer
 * sizes, the number of backend round trips, and the paper's measured
 * dynamic x86 instruction counts (used as calibration reference by
 * bench/table2_workload).
 */

#ifndef RHYTHM_SPECWEB_TYPES_HH
#define RHYTHM_SPECWEB_TYPES_HH

#include <cstdint>
#include <string_view>

namespace rhythm::specweb {

/** The 14 implemented Banking request types (paper Section 5.1). */
enum class RequestType : uint8_t {
    Login,
    AccountSummary,
    AddPayee,
    BillPay,
    BillPayStatusOutput,
    ChangeProfile,
    CheckDetailHtml,
    OrderCheck,
    PlaceCheckOrder,
    PostPayee,
    PostTransfer,
    Profile,
    Transfer,
    Logout,
};

/** Number of request types. */
inline constexpr size_t kNumRequestTypes = 14;

/** Static metadata for one request type (one row of Table 2). */
struct RequestTypeInfo
{
    RequestType type;
    /** Human-readable name as printed in the paper. */
    std::string_view name;
    /** URL path served by this type. */
    std::string_view path;
    /** Paper's measured x86 instructions per request (reference). */
    uint32_t paperInstructions;
    /** SPECWeb response size in KB (reference). */
    double specwebResponseKb;
    /** Rhythm response buffer size in KB (next power of two). */
    uint32_t rhythmBufferKb;
    /** Request-mix fraction in percent (normalized to 100 over 14). */
    double mixPercent;
    /** Number of backend round trips (process stages = this + 1). */
    int backendRequests;
};

/** Returns the metadata row for a type. */
const RequestTypeInfo &typeInfo(RequestType type);

/** Returns the metadata table (kNumRequestTypes entries, enum order). */
const RequestTypeInfo *typeTable();

/**
 * Resolves a URL path to a request type.
 * @return true and sets @p out when the path is a known Banking page.
 */
bool typeFromPath(std::string_view path, RequestType &out);

/** Convenience: index of a type in enum order. */
constexpr size_t
typeIndex(RequestType type)
{
    return static_cast<size_t>(type);
}

} // namespace rhythm::specweb

#endif // RHYTHM_SPECWEB_TYPES_HH
