file(REMOVE_RECURSE
  "CMakeFiles/banking_server.dir/banking_server.cc.o"
  "CMakeFiles/banking_server.dir/banking_server.cc.o.d"
  "banking_server"
  "banking_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banking_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
