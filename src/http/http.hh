/**
 * @file
 * HTTP/1.1 message types shared by the parser, the workload generator and
 * the servers.
 *
 * The wire format is identical whether a request is processed by the host
 * baseline or by a Rhythm cohort on the device; only the execution
 * substrate differs.
 */

#ifndef RHYTHM_HTTP_HTTP_HH
#define RHYTHM_HTTP_HTTP_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rhythm::http {

/** Request methods supported by the Banking workload. */
enum class Method : uint8_t {
    Get,
    Post,
};

/** Returns the canonical name of a method. */
std::string_view methodName(Method method);

/** A parsed HTTP request. */
struct Request
{
    Method method = Method::Get;
    /** URL path without the query string, e.g. "/bank/login.php". */
    std::string path;
    /** Decoded key/value parameters from the query string or POST body. */
    std::vector<std::pair<std::string, std::string>> params;
    /** Raw Cookie header value ("" when absent). */
    std::string cookie;
    /** Session identifier parsed from the "session" cookie (0 = none). */
    uint64_t sessionId = 0;
    /** Value of Content-Length (0 when absent). */
    uint64_t contentLength = 0;
    /** Connection keep-alive (HTTP/1.1 default true). */
    bool keepAlive = true;

    /** Returns the value of a parameter or "" when absent. */
    std::string_view param(std::string_view key) const;

    /** True if the parameter is present. */
    bool hasParam(std::string_view key) const;
};

/** HTTP status codes used by the Banking service. */
enum class Status : uint16_t {
    Ok = 200,
    Found = 302,
    BadRequest = 400,
    NotFound = 404,
    InternalError = 500,
};

/** Returns the reason phrase for a status code. */
std::string_view statusReason(Status status);

/**
 * Host-side HTTP response builder.
 *
 * Buffers the body, then serializes the status line, headers (including a
 * correct Content-Length) and body. The device-side pipeline uses the
 * cohort buffer writer instead (src/rhythm/buffers.hh) which reserves
 * whitespace for Content-Length and back-patches it (Section 4.3.2).
 */
class ResponseBuilder
{
  public:
    explicit ResponseBuilder(Status status = Status::Ok);

    /** Sets the response status. */
    void setStatus(Status status) { status_ = status; }

    /** Adds a response header (Content-Length is added automatically). */
    void addHeader(std::string_view name, std::string_view value);

    /** Appends to the response body. */
    void append(std::string_view text) { body_.append(text); }

    /** Current body size in bytes. */
    size_t bodySize() const { return body_.size(); }

    /** Read-only view of the body so far. */
    std::string_view body() const { return body_; }

    /** Serializes the complete response message. */
    std::string serialize() const;

  private:
    Status status_;
    std::vector<std::pair<std::string, std::string>> headers_;
    std::string body_;
};

/**
 * Builds a raw HTTP request message (client side; used by the workload
 * generator and tests).
 *
 * @param method GET or POST.
 * @param path URL path.
 * @param params Parameters; encoded into the query string for GET and
 *        into a form body for POST.
 * @param cookie Cookie header value ("" omits the header).
 */
std::string buildRequest(
    Method method, std::string_view path,
    const std::vector<std::pair<std::string, std::string>> &params,
    std::string_view cookie = "");

} // namespace rhythm::http

#endif // RHYTHM_HTTP_HTTP_HH
