file(REMOVE_RECURSE
  "CMakeFiles/rhythm_simt.dir/device.cc.o"
  "CMakeFiles/rhythm_simt.dir/device.cc.o.d"
  "CMakeFiles/rhythm_simt.dir/kernel.cc.o"
  "CMakeFiles/rhythm_simt.dir/kernel.cc.o.d"
  "CMakeFiles/rhythm_simt.dir/trace.cc.o"
  "CMakeFiles/rhythm_simt.dir/trace.cc.o.d"
  "CMakeFiles/rhythm_simt.dir/warp.cc.o"
  "CMakeFiles/rhythm_simt.dir/warp.cc.o.d"
  "librhythm_simt.a"
  "librhythm_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
