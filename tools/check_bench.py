#!/usr/bin/env python3
"""Compare bench --json output against checked-in baselines.

Usage:
    check_bench.py [--tolerance 0.10] BASELINE MEASURED [BASELINE MEASURED ...]

Each file is the `{"bench": ..., "config": {...}, "metrics": {...}}`
document emitted by a bench binary's --json flag (see bench/common.hh).
For every metric key in the baseline, the measured value must be within
the tolerance in the metric's "bad" direction:

  - higher-is-better metrics (throughput, efficiency, goodput,
    reqs/Joule, headroom, speedup) fail when measured drops more than
    tolerance below baseline;
  - lower-is-better metrics (latency, p99, *_ms, cores_needed, errors)
    fail when measured rises more than tolerance above baseline;
  - everything else fails on deviation in either direction, since the
    simulator is deterministic and an unexplained shift means behaviour
    changed.

Improvements beyond tolerance are reported as notes (regenerate the
baseline to lock them in) but do not fail the gate. A metric present in
the baseline but missing from the measured run is a failure; new metrics
not yet in the baseline are notes only.

Documents may also carry an optional top-level "host" object
(bench/common.hh Reporter::enableHostStats) with wall-clock and memory
numbers. Unlike "metrics", host values are machine-dependent, so they
are gated with a separate, much wider band (--host-tolerance, default
0.5) using the same direction rules; a host key present on only one
side is a note, never a failure (the section is opt-in and machines
differ).

The ext_recovery document additionally must carry its fault-schedule
metadata (fault_seed, fault_schedule, recovery, watchdog_ms, pcie_crc)
in "config", report acceptance_pass = 1, and keep
overhead.goodput_ratio inside the recovery overhead band — the
resilience stack is allowed to cost a few percent, never tens.

The ext_overlap document must carry the overlap configuration
(overlap, copy_engines, copy_chunk_kb) in "config", report
acceptance_pass = 1, and keep every "*.speedup" metric at or above the
1.2x floor — the transfer/compute overlap claim is an absolute bar,
not merely a no-regression band.

The ext_adaptive_batching document must carry the arrival/deadline
metadata (arrival_rate, arrival_seed, flash_mult, deadline_default_ms,
deadline_ms, timeout_ms) in "config", report acceptance_pass = 1, keep
the flash-point ratios inside one of the two gate arms (>= 1.3x
attainment at >= 0.95x goodput, or >= 1.2x goodput at >= 0.98x
attainment), and keep the adaptive policy's own flash attainment at or
above an absolute 0.85 floor.

Exit code: 0 when every pair passes, 1 otherwise. The simulation is a
deterministic DES, so checked-in baselines are machine-independent;
only the optional host section varies between machines.
"""

import argparse
import json
import sys

HIGHER_BETTER = (
    "throughput",
    "efficiency",
    "goodput",
    "reqs_per_joule",
    "headroom",
    "speedup",
)
LOWER_BETTER = ("latency", "p99", "cores_needed", "error")


def direction(key):
    k = key.lower()
    for pat in HIGHER_BETTER:
        if pat in k:
            return "higher"
    for pat in LOWER_BETTER:
        if pat in k:
            return "lower"
    if k.endswith("_ms") or k.endswith("_watts"):
        return "lower"
    return "both"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    for field in ("bench", "metrics"):
        if field not in doc:
            raise ValueError(f"{path}: missing '{field}' field")
    metrics = doc["metrics"]
    if not isinstance(metrics, dict):
        raise ValueError(
            f"{path}: 'metrics' must be an object, got "
            f"{type(metrics).__name__}"
        )
    for key, value in metrics.items():
        # bool is an int subclass but a true/false metric is a schema
        # error, not a measurement.
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"{path}: metric '{key}' is not a number "
                f"(got {type(value).__name__}: {value!r})"
            )
    host = doc.get("host", {})
    if not isinstance(host, dict):
        raise ValueError(
            f"{path}: 'host' must be an object, got "
            f"{type(host).__name__}"
        )
    for key, value in host.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"{path}: host value '{key}' is not a number "
                f"(got {type(value).__name__}: {value!r})"
            )
    return doc


# The recovery chaos harness (bench/ext_recovery.cc) gets extra schema
# and band checks on top of the generic baseline comparison: its whole
# point is an acceptance verdict plus a bounded overhead, so a document
# that drops the fault-schedule metadata (which run was this, exactly?)
# or drifts outside the overhead band is a gate failure even when every
# baseline-relative delta is within tolerance.
RECOVERY_BENCH = "ext_recovery"
RECOVERY_CONFIG_KEYS = (
    "fault_seed",
    "fault_schedule",
    "recovery",
    "watchdog_ms",
    "pcie_crc",
)
RECOVERY_OVERHEAD_BAND = (0.90, 1.02)


def validate_recovery(doc, path):
    """ext_recovery-specific checks; returns failure messages."""
    failures = []
    config = doc.get("config", {})
    for key in RECOVERY_CONFIG_KEYS:
        if key not in config:
            failures.append(
                f"{RECOVERY_BENCH}: {path} missing fault-schedule "
                f"metadata '{key}' in config — the run is not "
                "reproducible without it"
            )
    metrics = doc["metrics"]
    ratio = metrics.get("overhead.goodput_ratio")
    if ratio is None:
        failures.append(
            f"{RECOVERY_BENCH}: {path} missing metric "
            "'overhead.goodput_ratio'"
        )
    else:
        lo, hi = RECOVERY_OVERHEAD_BAND
        if not lo <= ratio <= hi:
            failures.append(
                f"{RECOVERY_BENCH}: overhead.goodput_ratio {ratio:g} "
                f"outside the recovery overhead band [{lo:g}, {hi:g}]"
            )
    if metrics.get("acceptance_pass") != 1:
        failures.append(
            f"{RECOVERY_BENCH}: {path} acceptance_pass is "
            f"{metrics.get('acceptance_pass')!r}, expected 1 — a chaos "
            "schedule was not byte-equivalent to fault-free"
        )
    return failures


# The transfer/compute overlap bench (bench/ext_overlap.cc) claims an
# absolute speedup, not just parity with a baseline: copy-engine
# overlap must lift the PCIe-bound types >=1.2x at unchanged link
# bandwidth, and the document must say which overlap configuration
# produced the number.
OVERLAP_BENCH = "ext_overlap"
OVERLAP_CONFIG_KEYS = ("overlap", "copy_engines", "copy_chunk_kb")
OVERLAP_MIN_SPEEDUP = 1.2


def validate_overlap(doc, path):
    """ext_overlap-specific checks; returns failure messages."""
    failures = []
    config = doc.get("config", {})
    for key in OVERLAP_CONFIG_KEYS:
        if key not in config:
            failures.append(
                f"{OVERLAP_BENCH}: {path} missing overlap configuration "
                f"'{key}' in config — the speedup is meaningless without "
                "the engine/chunk settings that produced it"
            )
    metrics = doc["metrics"]
    speedups = {
        key: value
        for key, value in metrics.items()
        if key.endswith(".speedup")
    }
    if not speedups:
        failures.append(
            f"{OVERLAP_BENCH}: {path} has no '*.speedup' metrics — the "
            "overlap gate measured nothing"
        )
    for key, value in sorted(speedups.items()):
        if value < OVERLAP_MIN_SPEEDUP:
            failures.append(
                f"{OVERLAP_BENCH}: '{key}' is {value:g}, below the "
                f"{OVERLAP_MIN_SPEEDUP:g}x overlap speedup floor"
            )
    if metrics.get("acceptance_pass") != 1:
        failures.append(
            f"{OVERLAP_BENCH}: {path} acceptance_pass is "
            f"{metrics.get('acceptance_pass')!r}, expected 1 — a gated "
            "type missed its speedup or changed its response bytes"
        )
    return failures


# The adaptive-batching bench (bench/ext_adaptive_batching.cc) carries
# an absolute two-arm acceptance gate at the flash-crowd point, and its
# sweep is only reproducible when the document says which arrival
# schedule and deadline assignment produced it. Mirroring the binary's
# own verdict here means a stale baseline or a hand-edited document
# cannot sneak a failing policy through CI.
ADAPTIVE_BENCH = "ext_adaptive_batching"
ADAPTIVE_CONFIG_KEYS = (
    "arrival_rate",
    "arrival_seed",
    "flash_mult",
    "deadline_default_ms",
    "deadline_ms",
    "timeout_ms",
)
# Two-arm floor, same as the bench binary: attainment arm or goodput arm.
ADAPTIVE_ATT_ARM = (1.3, 0.95)  # (attainment_ratio, goodput_ratio) floors
ADAPTIVE_GOODPUT_ARM = (0.98, 1.2)
# Absolute floor on the adaptive policy's own flash attainment — a run
# where both arms pass only because *fixed* collapsed must still fail.
ADAPTIVE_MIN_ATTAINMENT = 0.85


def validate_adaptive(doc, path):
    """ext_adaptive_batching-specific checks; returns failure messages."""
    failures = []
    config = doc.get("config", {})
    for key in ADAPTIVE_CONFIG_KEYS:
        if key not in config:
            failures.append(
                f"{ADAPTIVE_BENCH}: {path} missing arrival/deadline "
                f"metadata '{key}' in config — the sweep is not "
                "reproducible without it"
            )
    metrics = doc["metrics"]
    att = metrics.get("flash_attainment_ratio")
    goodput = metrics.get("flash_goodput_ratio")
    for key, value in (("flash_attainment_ratio", att),
                       ("flash_goodput_ratio", goodput)):
        if value is None:
            failures.append(
                f"{ADAPTIVE_BENCH}: {path} missing metric '{key}'"
            )
    if att is not None and goodput is not None:
        att_arm = (att >= ADAPTIVE_ATT_ARM[0]
                   and goodput >= ADAPTIVE_ATT_ARM[1])
        goodput_arm = (att >= ADAPTIVE_GOODPUT_ARM[0]
                       and goodput >= ADAPTIVE_GOODPUT_ARM[1])
        if not (att_arm or goodput_arm):
            failures.append(
                f"{ADAPTIVE_BENCH}: flash ratios (attainment {att:g}, "
                f"goodput {goodput:g}) satisfy neither gate arm "
                f"(>= {ADAPTIVE_ATT_ARM[0]:g}x attainment at "
                f">= {ADAPTIVE_ATT_ARM[1]:g}x goodput, or "
                f">= {ADAPTIVE_GOODPUT_ARM[1]:g}x goodput at "
                f">= {ADAPTIVE_GOODPUT_ARM[0]:g}x attainment)"
            )
    flash_att = metrics.get("flash.adaptive.attainment")
    if flash_att is None:
        failures.append(
            f"{ADAPTIVE_BENCH}: {path} missing metric "
            "'flash.adaptive.attainment'"
        )
    elif flash_att < ADAPTIVE_MIN_ATTAINMENT:
        failures.append(
            f"{ADAPTIVE_BENCH}: flash.adaptive.attainment {flash_att:g} "
            f"below the {ADAPTIVE_MIN_ATTAINMENT:g} absolute floor — "
            "a good ratio against a collapsed fixed run is not a pass"
        )
    if metrics.get("acceptance_pass") != 1:
        failures.append(
            f"{ADAPTIVE_BENCH}: {path} acceptance_pass is "
            f"{metrics.get('acceptance_pass')!r}, expected 1 — the "
            "flash-point gate failed in the measured run"
        )
    return failures


# The warp-fusion bench (bench/ext_warp_fusion.cc) carries an absolute
# acceptance gate at the flash-crowd point: fusing similarity-compatible
# partial cohorts must recover SIMD efficiency (or on-time goodput)
# over padding each cohort's tail warp. As with the adaptive gate, the
# binary's verdict is mirrored here so a stale baseline or hand-edited
# document cannot sneak a regressed packing policy through CI.
FUSION_BENCH = "ext_warp_fusion"
FUSION_CONFIG_KEYS = (
    "arrival_rate",
    "arrival_seed",
    "flash_mult",
    "cohort_size",
    "timeout_ms",
    "fusion_threshold",
)
FUSION_MIN_SIMD_RATIO = 1.15
FUSION_MIN_GOODPUT_RATIO = 1.10
# Absolute floor on the fused run's own flash SIMD efficiency — a good
# ratio against a collapsed unfused run must still fail.
FUSION_MIN_SIMD_EFFICIENCY = 0.30


def validate_fusion(doc, path):
    """ext_warp_fusion-specific checks; returns failure messages."""
    failures = []
    config = doc.get("config", {})
    for key in FUSION_CONFIG_KEYS:
        if key not in config:
            failures.append(
                f"{FUSION_BENCH}: {path} missing arrival/fusion "
                f"metadata '{key}' in config — the sweep is not "
                "reproducible without it"
            )
    metrics = doc["metrics"]
    simd = metrics.get("flash_simd_ratio")
    goodput = metrics.get("flash_goodput_ratio")
    for key, value in (("flash_simd_ratio", simd),
                       ("flash_goodput_ratio", goodput)):
        if value is None:
            failures.append(
                f"{FUSION_BENCH}: {path} missing metric '{key}'"
            )
    if simd is not None and goodput is not None:
        if not (simd >= FUSION_MIN_SIMD_RATIO
                or goodput >= FUSION_MIN_GOODPUT_RATIO):
            failures.append(
                f"{FUSION_BENCH}: flash ratios (SIMD {simd:g}, goodput "
                f"{goodput:g}) satisfy neither gate arm "
                f"(>= {FUSION_MIN_SIMD_RATIO:g}x SIMD efficiency or "
                f">= {FUSION_MIN_GOODPUT_RATIO:g}x on-time goodput)"
            )
    flash_simd = metrics.get("flash.on.simd_efficiency")
    if flash_simd is None:
        failures.append(
            f"{FUSION_BENCH}: {path} missing metric "
            "'flash.on.simd_efficiency'"
        )
    elif flash_simd < FUSION_MIN_SIMD_EFFICIENCY:
        failures.append(
            f"{FUSION_BENCH}: flash.on.simd_efficiency {flash_simd:g} "
            f"below the {FUSION_MIN_SIMD_EFFICIENCY:g} absolute floor — "
            "a good ratio against a collapsed unfused run is not a pass"
        )
    if metrics.get("acceptance_pass") != 1:
        failures.append(
            f"{FUSION_BENCH}: {path} acceptance_pass is "
            f"{metrics.get('acceptance_pass')!r}, expected 1 — the "
            "flash-point gate failed in the measured run"
        )
    return failures


# ---------------------------------------------------------------------
# ext_sharding acceptance gate (DESIGN.md 6k): the sharded fleet must
# deliver >= 1.8x single-device goodput at 2 devices and >= 3.2x at 4
# on the saturated mixed banking profile, and the single-device arm
# must itself clear an absolute goodput floor — a fleet that scales a
# collapsed baseline is not a pass. The binary's verdict is mirrored
# here so a stale baseline or hand-edited document cannot sneak a
# regressed scale-out path through CI.
SHARDING_BENCH = "ext_sharding"
SHARDING_CONFIG_KEYS = (
    "devices",
    "balance",
    "shard_seed",
    "arrival_rate",
    "arrival_seed",
    "window_ms",
    "cohort_size",
)
SHARDING_MIN_SPEEDUP_D2 = 1.8
SHARDING_MIN_SPEEDUP_D4 = 3.2
# --quick's shorter window halves the warm-up, so its absolute floor
# scales down with it (the ratio gates stay identical in both modes).
SHARDING_MIN_D1_GOODPUT = 800e3
SHARDING_MIN_D1_GOODPUT_QUICK = 300e3


def validate_sharding(doc, path):
    """ext_sharding-specific checks; returns failure messages."""
    failures = []
    config = doc.get("config", {})
    for key in SHARDING_CONFIG_KEYS:
        if key not in config:
            failures.append(
                f"{SHARDING_BENCH}: {path} missing sharding metadata "
                f"'{key}' in config — the sweep is not reproducible "
                "without it"
            )
    metrics = doc["metrics"]
    d2 = metrics.get("sharding.speedup_d2")
    d4 = metrics.get("sharding.speedup_d4")
    d1 = metrics.get("sharding.d1.goodput")
    for key, value in (("sharding.speedup_d2", d2),
                       ("sharding.speedup_d4", d4),
                       ("sharding.d1.goodput", d1)):
        if value is None:
            failures.append(
                f"{SHARDING_BENCH}: {path} missing metric '{key}'"
            )
    if d2 is not None and d2 < SHARDING_MIN_SPEEDUP_D2:
        failures.append(
            f"{SHARDING_BENCH}: 2-device speedup {d2:g}x below the "
            f"{SHARDING_MIN_SPEEDUP_D2:g}x gate"
        )
    if d4 is not None and d4 < SHARDING_MIN_SPEEDUP_D4:
        failures.append(
            f"{SHARDING_BENCH}: 4-device speedup {d4:g}x below the "
            f"{SHARDING_MIN_SPEEDUP_D4:g}x gate"
        )
    floor = (SHARDING_MIN_D1_GOODPUT_QUICK
             if config.get("quick") == 1 else SHARDING_MIN_D1_GOODPUT)
    if d1 is not None and d1 < floor:
        failures.append(
            f"{SHARDING_BENCH}: single-device goodput {d1:g} req/s "
            f"below the {floor:g} absolute floor — "
            "good ratios against a collapsed baseline are not a pass"
        )
    if metrics.get("acceptance_pass") != 1:
        failures.append(
            f"{SHARDING_BENCH}: {path} acceptance_pass is "
            f"{metrics.get('acceptance_pass')!r}, expected 1 — the "
            "scale-out gate failed in the measured run"
        )
    return failures


def compare_section(bench, base, meas, tolerance, label, missing_fails):
    """Compares one key→number section; returns (failures, notes)."""
    failures = []
    notes = []
    for key, expect in base.items():
        if key not in meas:
            msg = f"{bench}: {label} '{key}' missing from measured run"
            (failures if missing_fails else notes).append(msg)
            continue
        got = meas[key]
        if expect == 0:
            if got != 0:
                notes.append(
                    f"{bench}: '{key}' baseline is 0, measured {got:g} "
                    "(not compared)"
                )
            continue
        rel = (got - expect) / abs(expect)
        dirn = direction(key)
        worse = (
            rel < -tolerance
            if dirn == "higher"
            else rel > tolerance
            if dirn == "lower"
            else abs(rel) > tolerance
        )
        better = (
            rel > tolerance
            if dirn == "higher"
            else rel < -tolerance
            if dirn == "lower"
            else False
        )
        if worse:
            failures.append(
                f"{bench}: {label} '{key}' regressed {rel:+.1%} "
                f"(baseline {expect:g}, measured {got:g}, "
                f"{dirn}-is-better, tolerance {tolerance:.0%})"
            )
        elif better:
            notes.append(
                f"{bench}: {label} '{key}' improved {rel:+.1%} "
                f"(baseline {expect:g}, measured {got:g}) — consider "
                "regenerating the baseline"
            )

    for key in meas:
        if key not in base:
            notes.append(f"{bench}: new {label} '{key}' not in baseline")
    return failures, notes


def compare(base_doc, meas_doc, tolerance, host_tolerance, base_path,
            meas_path):
    """Returns (failures, notes) message lists for one baseline pair."""
    if base_doc["bench"] != meas_doc["bench"]:
        return [
            f"bench name mismatch: baseline {base_path} is "
            f"'{base_doc['bench']}', measured {meas_path} is "
            f"'{meas_doc['bench']}'"
        ], []

    bench = base_doc["bench"]
    failures, notes = compare_section(
        bench,
        base_doc["metrics"],
        meas_doc["metrics"],
        tolerance,
        "metric",
        missing_fails=True,
    )
    # Host numbers (wall-clock, RSS) are machine-dependent: compared
    # with the wider band, and a key present on only one side is never
    # a failure.
    host_failures, host_notes = compare_section(
        bench,
        base_doc.get("host", {}),
        meas_doc.get("host", {}),
        host_tolerance,
        "host value",
        missing_fails=False,
    )
    return failures + host_failures, notes + host_notes


def main():
    parser = argparse.ArgumentParser(
        description="Perf-regression gate over bench --json documents."
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed relative change in the bad direction (default 0.10)",
    )
    parser.add_argument(
        "--host-tolerance",
        type=float,
        default=0.5,
        help="allowed relative change for machine-dependent host "
        "values — wall-clock, RSS (default 0.5)",
    )
    parser.add_argument(
        "files",
        nargs="+",
        metavar="BASELINE MEASURED",
        help="alternating baseline/measured JSON paths",
    )
    args = parser.parse_args()
    if len(args.files) % 2 != 0:
        parser.error("expected an even number of files (baseline measured ...)")

    all_failures = []
    checked = 0
    for i in range(0, len(args.files), 2):
        base_path, meas_path = args.files[i], args.files[i + 1]
        try:
            base_doc = load(base_path)
            meas_doc = load(meas_path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            msg = f"cannot load pair: {e}"
            print(f"FAIL: {msg}")
            all_failures.append(msg)
            continue
        failures, notes = compare(
            base_doc,
            meas_doc,
            args.tolerance,
            args.host_tolerance,
            base_path,
            meas_path,
        )
        if meas_doc["bench"] == RECOVERY_BENCH:
            failures.extend(validate_recovery(meas_doc, meas_path))
        if meas_doc["bench"] == OVERLAP_BENCH:
            failures.extend(validate_overlap(meas_doc, meas_path))
        if meas_doc["bench"] == ADAPTIVE_BENCH:
            failures.extend(validate_adaptive(meas_doc, meas_path))
        if meas_doc["bench"] == FUSION_BENCH:
            failures.extend(validate_fusion(meas_doc, meas_path))
        if meas_doc["bench"] == SHARDING_BENCH:
            failures.extend(validate_sharding(meas_doc, meas_path))
        checked += len(base_doc["metrics"])
        for msg in notes:
            print(f"note: {msg}")
        for msg in failures:
            print(f"FAIL: {msg}")
        all_failures.extend(failures)

    if all_failures:
        print(f"\nperf gate: {len(all_failures)} regression(s) across "
              f"{checked} baseline metric(s)")
        return 1
    if checked == 0:
        # A gate that compared nothing must not report success: an empty
        # baseline (or one whose metrics were all skipped) means the CI
        # step is miswired, not that performance is fine.
        print("FAIL: perf gate checked 0 baseline metrics — empty or "
              "miswired baseline")
        return 1
    print(f"perf gate: OK ({checked} baseline metric(s) within "
          f"{args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
