file(REMOVE_RECURSE
  "CMakeFiles/simt_warp_test.dir/simt_warp_test.cc.o"
  "CMakeFiles/simt_warp_test.dir/simt_warp_test.cc.o.d"
  "simt_warp_test"
  "simt_warp_test.pdb"
  "simt_warp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_warp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
