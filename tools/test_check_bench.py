#!/usr/bin/env python3
"""Unit tests for check_bench.py, the perf-regression gate.

Run directly (python3 test_check_bench.py) or via ctest, which registers
this file as the `check_bench_py` test. The gate script is exercised
end-to-end through its CLI so exit codes and messages — the contract CI
depends on — are what is asserted.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench.py")


def doc(bench="fig8", metrics=None, **extra):
    d = {"bench": bench, "config": {}, "metrics": metrics or {}}
    d.update(extra)
    return d


class GateHarness(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)
        self._n = 0

    def write(self, document):
        self._n += 1
        path = os.path.join(self.dir.name, f"doc{self._n}.json")
        with open(path, "w") as f:
            json.dump(document, f)
        return path

    def gate(self, *docs, tolerance=None, host_tolerance=None):
        """Runs the gate on alternating baseline/measured documents."""
        argv = [sys.executable, SCRIPT]
        if tolerance is not None:
            argv += ["--tolerance", str(tolerance)]
        if host_tolerance is not None:
            argv += ["--host-tolerance", str(host_tolerance)]
        argv += [self.write(d) for d in docs]
        proc = subprocess.run(argv, capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


class PassFailTest(GateHarness):
    def test_identical_metrics_pass(self):
        base = doc(metrics={"throughput": 100.0, "p99_latency_ms": 4.0})
        code, out = self.gate(base, base)
        self.assertEqual(code, 0)
        self.assertIn("perf gate: OK (2 baseline metric", out)

    def test_missing_baseline_key_fails_clearly(self):
        # The contract this repo's CI leans on: a metric present in the
        # baseline but absent from the candidate is a hard failure that
        # names the metric, never a silent pass.
        base = doc(metrics={"throughput": 100.0, "simd_efficiency": 0.8})
        meas = doc(metrics={"throughput": 100.0})
        code, out = self.gate(base, meas)
        self.assertEqual(code, 1)
        self.assertIn("'simd_efficiency' missing from measured run", out)

    def test_regression_in_bad_direction_fails(self):
        base = doc(metrics={"throughput": 100.0})
        meas = doc(metrics={"throughput": 80.0})
        code, out = self.gate(base, meas, tolerance=0.10)
        self.assertEqual(code, 1)
        self.assertIn("regressed", out)

    def test_improvement_is_note_not_failure(self):
        base = doc(metrics={"throughput": 100.0})
        meas = doc(metrics={"throughput": 150.0})
        code, out = self.gate(base, meas, tolerance=0.10)
        self.assertEqual(code, 0)
        self.assertIn("improved", out)

    def test_lower_is_better_direction(self):
        base = doc(metrics={"p99_latency_ms": 4.0})
        worse = doc(metrics={"p99_latency_ms": 6.0})
        code, _ = self.gate(base, worse, tolerance=0.10)
        self.assertEqual(code, 1)
        better = doc(metrics={"p99_latency_ms": 3.0})
        code, _ = self.gate(base, better, tolerance=0.10)
        self.assertEqual(code, 0)

    def test_neutral_metric_fails_either_direction(self):
        base = doc(metrics={"cohorts": 10.0})
        code, _ = self.gate(base, doc(metrics={"cohorts": 13.0}),
                            tolerance=0.10)
        self.assertEqual(code, 1)
        code, _ = self.gate(base, doc(metrics={"cohorts": 7.0}),
                            tolerance=0.10)
        self.assertEqual(code, 1)

    def test_new_measured_metric_is_note_only(self):
        base = doc(metrics={"throughput": 100.0})
        meas = doc(metrics={"throughput": 100.0, "sm.00.warps": 42})
        code, out = self.gate(base, meas)
        self.assertEqual(code, 0)
        self.assertIn("new metric 'sm.00.warps' not in baseline", out)

    def test_bench_name_mismatch_fails(self):
        code, out = self.gate(doc(bench="fig8", metrics={"x": 1.0}),
                              doc(bench="fig9", metrics={"x": 1.0}))
        self.assertEqual(code, 1)
        self.assertIn("bench name mismatch", out)


class HostSectionTest(GateHarness):
    """The machine-dependent "host" object gets its own, wider band."""

    def test_host_within_wide_band_passes(self):
        base = doc(metrics={"throughput": 100.0},
                   host={"off_1t_ms": 100.0, "speedup_1t": 2.0})
        meas = doc(metrics={"throughput": 100.0},
                   host={"off_1t_ms": 140.0, "speedup_1t": 1.8})
        code, out = self.gate(base, meas,
                              tolerance=0.10, host_tolerance=0.5)
        self.assertEqual(code, 0, out)

    def test_host_regression_beyond_band_fails(self):
        # host_ms is lower-is-better; a 4x wall-clock blowup must trip
        # even the wide band.
        base = doc(metrics={"throughput": 100.0},
                   host={"on_1t_ms": 100.0})
        meas = doc(metrics={"throughput": 100.0},
                   host={"on_1t_ms": 400.0})
        code, out = self.gate(base, meas,
                              tolerance=0.10, host_tolerance=0.5)
        self.assertEqual(code, 1)
        self.assertIn("host value 'on_1t_ms' regressed", out)

    def test_host_band_is_independent_of_metric_tolerance(self):
        # 30% slower wall-clock: outside the 10% metric tolerance but
        # inside the 50% host band — must pass.
        base = doc(metrics={"throughput": 100.0},
                   host={"host_ms": 100.0})
        meas = doc(metrics={"throughput": 100.0},
                   host={"host_ms": 130.0})
        code, out = self.gate(base, meas,
                              tolerance=0.10, host_tolerance=0.5)
        self.assertEqual(code, 0, out)

    def test_host_speedup_drop_beyond_band_fails(self):
        base = doc(metrics={"throughput": 100.0},
                   host={"speedup_1t": 2.0})
        meas = doc(metrics={"throughput": 100.0},
                   host={"speedup_1t": 0.9})
        code, out = self.gate(base, meas, host_tolerance=0.5)
        self.assertEqual(code, 1)
        self.assertIn("speedup_1t", out)

    def test_host_key_on_one_side_is_note_not_failure(self):
        # The section is opt-in: baselines recorded before a bench grew
        # host stats (or vice versa) must not fail the gate.
        base = doc(metrics={"throughput": 100.0},
                   host={"peak_rss_kb": 1000.0, "old_key_ms": 5.0})
        meas = doc(metrics={"throughput": 100.0},
                   host={"peak_rss_kb": 1000.0, "new_key_ms": 5.0})
        code, out = self.gate(base, meas)
        self.assertEqual(code, 0, out)
        self.assertIn("host value 'old_key_ms' missing", out)
        self.assertIn("new host value 'new_key_ms' not in baseline", out)

    def test_document_without_host_section_still_compares(self):
        base = doc(metrics={"throughput": 100.0},
                   host={"host_ms": 50.0})
        meas = doc(metrics={"throughput": 100.0})
        code, out = self.gate(base, meas)
        self.assertEqual(code, 0, out)

    def test_non_numeric_host_value_rejected(self):
        base = doc(metrics={"throughput": 100.0}, host={"host_ms": "slow"})
        code, out = self.gate(base, base)
        self.assertEqual(code, 1)
        self.assertIn("host value 'host_ms' is not a number", out)
        self.assertNotIn("Traceback", out)


class SchemaValidationTest(GateHarness):
    def test_empty_baseline_metrics_fail_the_gate(self):
        # A gate that compared nothing must not say OK.
        code, out = self.gate(doc(metrics={}), doc(metrics={}))
        self.assertEqual(code, 1)
        self.assertIn("checked 0 baseline metrics", out)

    def test_non_numeric_metric_is_clean_failure_not_traceback(self):
        base = doc(metrics={"throughput": "fast"})
        meas = doc(metrics={"throughput": 100.0})
        code, out = self.gate(base, meas)
        self.assertEqual(code, 1)
        self.assertIn("metric 'throughput' is not a number", out)
        self.assertNotIn("Traceback", out)

    def test_boolean_metric_rejected(self):
        code, out = self.gate(doc(metrics={"ok": True}),
                              doc(metrics={"ok": True}))
        self.assertEqual(code, 1)
        self.assertIn("not a number", out)

    def test_metrics_must_be_object(self):
        code, out = self.gate(doc(metrics=None) | {"metrics": [1, 2]},
                              doc(metrics={"x": 1.0}))
        self.assertEqual(code, 1)
        self.assertIn("'metrics' must be an object", out)
        self.assertNotIn("Traceback", out)

    def test_missing_fields_fail(self):
        code, out = self.gate({"metrics": {"x": 1.0}},
                              doc(metrics={"x": 1.0}))
        self.assertEqual(code, 1)
        self.assertIn("missing 'bench' field", out)

    def test_odd_file_count_is_usage_error(self):
        path = self.write(doc(metrics={"x": 1.0}))
        proc = subprocess.run(
            [sys.executable, SCRIPT, path], capture_output=True, text=True)
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("even number of files", proc.stderr)

    def test_zero_baseline_value_is_skipped_but_counted(self):
        # Zero baselines cannot take a relative delta; they are noted,
        # and as long as other metrics were compared the gate passes.
        base = doc(metrics={"errors": 0, "throughput": 100.0})
        meas = doc(metrics={"errors": 3, "throughput": 100.0})
        code, out = self.gate(base, meas)
        self.assertEqual(code, 0)
        self.assertIn("baseline is 0", out)


def recovery_doc(**overrides):
    """A minimal valid ext_recovery --json document."""
    d = {
        "bench": "ext_recovery",
        "config": {
            "fault_seed": 1,
            "fault_schedule": "crash=0.005;torn=0.5",
            "recovery": 1,
            "watchdog_ms": 250,
            "pcie_crc": 1,
        },
        "metrics": {
            "overhead.goodput_ratio": 0.998,
            "acceptance_pass": 1,
            "resilient.goodput_krps": 300.0,
        },
    }
    d.update(overrides)
    return d


class RecoveryGateTest(GateHarness):
    """ext_recovery-specific schema and overhead-band checks."""

    def test_valid_recovery_document_passes(self):
        base = recovery_doc()
        code, out = self.gate(base, base)
        self.assertEqual(code, 0)

    def test_missing_fault_metadata_fails(self):
        base = recovery_doc()
        meas = recovery_doc()
        meas["config"] = {k: v for k, v in meas["config"].items()
                          if k != "fault_schedule"}
        code, out = self.gate(base, meas)
        self.assertEqual(code, 1)
        self.assertIn("missing fault-schedule metadata 'fault_schedule'",
                      out)

    def test_every_metadata_key_is_required(self):
        for key in ("fault_seed", "recovery", "watchdog_ms", "pcie_crc"):
            meas = recovery_doc()
            meas["config"] = {k: v for k, v in meas["config"].items()
                              if k != key}
            code, out = self.gate(recovery_doc(), meas)
            self.assertEqual(code, 1, key)
            self.assertIn(f"'{key}'", out)

    def test_overhead_outside_band_fails(self):
        meas = recovery_doc()
        meas["metrics"] = dict(meas["metrics"],
                               **{"overhead.goodput_ratio": 0.7})
        # Baseline uses the same (bad) value so the generic relative
        # comparison passes — only the absolute band catches it.
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 1)
        self.assertIn("outside the recovery overhead band", out)

    def test_failed_acceptance_fails_gate(self):
        meas = recovery_doc()
        meas["metrics"] = dict(meas["metrics"], acceptance_pass=0)
        code, out = self.gate(recovery_doc(), meas)
        self.assertEqual(code, 1)
        self.assertIn("acceptance_pass", out)

    def test_metadata_not_required_for_other_benches(self):
        # The schema requirement is scoped to ext_recovery: ordinary
        # benches carry no fault metadata and must keep passing.
        base = doc(metrics={"throughput": 100.0})
        code, out = self.gate(base, base)
        self.assertEqual(code, 0)


def overlap_doc(**overrides):
    """A minimal valid ext_overlap --json document."""
    d = {
        "bench": "ext_overlap",
        "config": {
            "overlap": 1,
            "copy_engines": 4,
            "copy_chunk_kb": 256,
        },
        "metrics": {
            "post_payee.speedup": 1.84,
            "logout.speedup": 1.40,
            "min_speedup": 1.40,
            "acceptance_pass": 1,
        },
    }
    d.update(overrides)
    return d


class OverlapGateTest(GateHarness):
    """ext_overlap-specific schema and speedup-floor checks."""

    def test_valid_overlap_document_passes(self):
        base = overlap_doc()
        code, out = self.gate(base, base)
        self.assertEqual(code, 0, out)

    def test_missing_overlap_config_fails(self):
        for key in ("overlap", "copy_engines", "copy_chunk_kb"):
            meas = overlap_doc()
            meas["config"] = {k: v for k, v in meas["config"].items()
                              if k != key}
            code, out = self.gate(overlap_doc(), meas)
            self.assertEqual(code, 1, key)
            self.assertIn(f"missing overlap configuration '{key}'", out)

    def test_speedup_below_floor_fails(self):
        meas = overlap_doc()
        meas["metrics"] = dict(meas["metrics"],
                               **{"logout.speedup": 1.1})
        # Baseline carries the same (bad) value so the generic relative
        # comparison passes — only the absolute floor catches it.
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 1)
        self.assertIn("below the 1.2x overlap speedup floor", out)

    def test_document_without_speedups_fails(self):
        meas = overlap_doc()
        meas["metrics"] = {"acceptance_pass": 1, "min_speedup": 1.4}
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 1)
        self.assertIn("no '*.speedup' metrics", out)

    def test_failed_acceptance_fails_gate(self):
        meas = overlap_doc()
        meas["metrics"] = dict(meas["metrics"], acceptance_pass=0)
        code, out = self.gate(overlap_doc(), meas)
        self.assertEqual(code, 1)
        self.assertIn("acceptance_pass", out)

    def test_speedup_floor_not_applied_to_other_benches(self):
        # A generic bench may carry a sub-1.2 "speedup" metric (e.g.
        # host-side simulator speedups); the absolute floor is scoped
        # to ext_overlap.
        base = doc(metrics={"sim.speedup": 1.05})
        code, out = self.gate(base, base)
        self.assertEqual(code, 0, out)


def adaptive_doc(**overrides):
    """A minimal valid ext_adaptive_batching --json document."""
    d = {
        "bench": "ext_adaptive_batching",
        "config": {
            "arrival_rate": 60000.0,
            "arrival_seed": 1,
            "flash_mult": 8.0,
            "deadline_default_ms": 8.0,
            "deadline_ms": "transfer=3;post_transfer=3;post_payee=3",
            "timeout_ms": 4.0,
        },
        "metrics": {
            "flash.fixed.attainment": 0.70,
            "flash.adaptive.attainment": 0.94,
            "flash_attainment_ratio": 1.34,
            "flash_goodput_ratio": 1.40,
            "acceptance_pass": 1,
        },
    }
    d.update(overrides)
    return d


class AdaptiveGateTest(GateHarness):
    """ext_adaptive_batching-specific schema and gate-arm checks."""

    def test_valid_adaptive_document_passes(self):
        base = adaptive_doc()
        code, out = self.gate(base, base)
        self.assertEqual(code, 0, out)

    def test_every_arrival_metadata_key_is_required(self):
        for key in ("arrival_rate", "arrival_seed", "flash_mult",
                    "deadline_default_ms", "deadline_ms", "timeout_ms"):
            meas = adaptive_doc()
            meas["config"] = {k: v for k, v in meas["config"].items()
                              if k != key}
            code, out = self.gate(adaptive_doc(), meas)
            self.assertEqual(code, 1, key)
            self.assertIn(f"missing arrival/deadline metadata '{key}'",
                          out)

    def test_neither_gate_arm_satisfied_fails(self):
        # 1.1x attainment at 1.1x goodput misses both arms (needs
        # 1.3x@0.95x or 1.2x@0.98x). Baseline carries the same values
        # so only the absolute gate catches it.
        meas = adaptive_doc()
        meas["metrics"] = dict(meas["metrics"],
                               flash_attainment_ratio=1.1,
                               flash_goodput_ratio=1.1)
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 1)
        self.assertIn("satisfy neither gate arm", out)

    def test_goodput_arm_alone_passes(self):
        # 1.0x attainment at 1.25x goodput is a legitimate second-arm
        # pass (throughput win at equal attainment).
        meas = adaptive_doc()
        meas["metrics"] = dict(meas["metrics"],
                               flash_attainment_ratio=1.0,
                               flash_goodput_ratio=1.25)
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 0, out)

    def test_attainment_below_absolute_floor_fails(self):
        # Great ratios against a collapsed fixed run must not pass:
        # the adaptive policy's own attainment has a 0.85 floor.
        meas = adaptive_doc()
        meas["metrics"] = dict(meas["metrics"],
                               **{"flash.adaptive.attainment": 0.60,
                                  "flash.fixed.attainment": 0.40})
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 1)
        self.assertIn("below the 0.85 absolute floor", out)

    def test_missing_ratio_metric_fails(self):
        meas = adaptive_doc()
        meas["metrics"] = {k: v for k, v in meas["metrics"].items()
                           if k != "flash_attainment_ratio"}
        # Drop the key from the baseline too so the generic missing-
        # metric check can't be what fails the gate.
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 1)
        self.assertIn("missing metric 'flash_attainment_ratio'", out)

    def test_failed_acceptance_fails_gate(self):
        meas = adaptive_doc()
        meas["metrics"] = dict(meas["metrics"], acceptance_pass=0)
        code, out = self.gate(adaptive_doc(), meas)
        self.assertEqual(code, 1)
        self.assertIn("acceptance_pass", out)

    def test_malformed_ratio_is_clean_failure_not_traceback(self):
        meas = adaptive_doc()
        meas["metrics"] = dict(meas["metrics"],
                               flash_attainment_ratio="high")
        code, out = self.gate(adaptive_doc(), meas)
        self.assertEqual(code, 1)
        self.assertNotIn("Traceback", out)
        self.assertIn("not a number", out)

    def test_gate_arms_not_applied_to_other_benches(self):
        base = doc(metrics={"flash_attainment_ratio": 0.5})
        code, out = self.gate(base, base)
        self.assertEqual(code, 0, out)


def fusion_doc(**overrides):
    """A minimal valid ext_warp_fusion --json document."""
    d = {
        "bench": "ext_warp_fusion",
        "config": {
            "arrival_rate": 150000.0,
            "arrival_seed": 1,
            "flash_mult": 8.0,
            "cohort_size": 128,
            "timeout_ms": 1.0,
            "fusion_threshold": 0.5,
        },
        "metrics": {
            "flash.off.simd_efficiency": 0.28,
            "flash.on.simd_efficiency": 0.39,
            "flash_simd_ratio": 1.39,
            "flash_goodput_ratio": 0.95,
            "acceptance_pass": 1,
        },
    }
    d.update(overrides)
    return d


class FusionGateTest(GateHarness):
    """ext_warp_fusion-specific schema and gate-arm checks."""

    def test_valid_fusion_document_passes(self):
        base = fusion_doc()
        code, out = self.gate(base, base)
        self.assertEqual(code, 0, out)

    def test_every_fusion_metadata_key_is_required(self):
        for key in ("arrival_rate", "arrival_seed", "flash_mult",
                    "cohort_size", "timeout_ms", "fusion_threshold"):
            meas = fusion_doc()
            meas["config"] = {k: v for k, v in meas["config"].items()
                              if k != key}
            code, out = self.gate(fusion_doc(), meas)
            self.assertEqual(code, 1, key)
            self.assertIn(f"missing arrival/fusion metadata '{key}'",
                          out)

    def test_neither_gate_arm_satisfied_fails(self):
        # 1.1x SIMD at 1.05x goodput misses both arms (needs 1.15x
        # SIMD or 1.10x goodput). Baseline carries the same values so
        # only the absolute gate catches it.
        meas = fusion_doc()
        meas["metrics"] = dict(meas["metrics"],
                               flash_simd_ratio=1.1,
                               flash_goodput_ratio=1.05)
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 1)
        self.assertIn("satisfy neither gate arm", out)

    def test_goodput_arm_alone_passes(self):
        # 1.0x SIMD efficiency at 1.2x goodput is a legitimate
        # second-arm pass.
        meas = fusion_doc()
        meas["metrics"] = dict(meas["metrics"],
                               flash_simd_ratio=1.0,
                               flash_goodput_ratio=1.2)
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 0, out)

    def test_simd_below_absolute_floor_fails(self):
        # Great ratios against a collapsed unfused run must not pass:
        # the fused run's own SIMD efficiency has a 0.30 floor.
        meas = fusion_doc()
        meas["metrics"] = dict(meas["metrics"],
                               **{"flash.on.simd_efficiency": 0.20,
                                  "flash.off.simd_efficiency": 0.10})
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 1)
        self.assertIn("below the 0.3 absolute floor", out)

    def test_missing_ratio_metric_fails(self):
        meas = fusion_doc()
        meas["metrics"] = {k: v for k, v in meas["metrics"].items()
                           if k != "flash_simd_ratio"}
        # Drop the key from the baseline too so the generic missing-
        # metric check can't be what fails the gate.
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 1)
        self.assertIn("missing metric 'flash_simd_ratio'", out)

    def test_failed_acceptance_fails_gate(self):
        meas = fusion_doc()
        meas["metrics"] = dict(meas["metrics"], acceptance_pass=0)
        code, out = self.gate(fusion_doc(), meas)
        self.assertEqual(code, 1)
        self.assertIn("acceptance_pass", out)

    def test_gate_arms_not_applied_to_other_benches(self):
        base = doc(metrics={"flash_simd_ratio": 0.5})
        code, out = self.gate(base, base)
        self.assertEqual(code, 0, out)


def sharding_doc(**overrides):
    """A minimal valid ext_sharding --json document."""
    d = {
        "bench": "ext_sharding",
        "config": {
            "devices": 4.0,
            "balance": "hash",
            "shard_seed": 5.947e18,
            "arrival_rate": 16e6,
            "arrival_seed": 1,
            "window_ms": 14.0,
            "cohort_size": 512,
            "quick": 0,
        },
        "metrics": {
            "sharding.d1.goodput": 946e3,
            "sharding.speedup_d2": 2.10,
            "sharding.speedup_d4": 3.27,
            "acceptance_pass": 1,
        },
    }
    d.update(overrides)
    return d


class ShardingGateTest(GateHarness):
    """ext_sharding-specific schema and scale-out gate checks."""

    def test_valid_sharding_document_passes(self):
        base = sharding_doc()
        code, out = self.gate(base, base)
        self.assertEqual(code, 0, out)

    def test_every_sharding_metadata_key_is_required(self):
        for key in ("devices", "balance", "shard_seed", "arrival_rate",
                    "arrival_seed", "window_ms", "cohort_size"):
            meas = sharding_doc()
            meas["config"] = {k: v for k, v in meas["config"].items()
                              if k != key}
            code, out = self.gate(sharding_doc(), meas)
            self.assertEqual(code, 1, key)
            self.assertIn(f"missing sharding metadata '{key}'", out)

    def test_speedup_below_ratio_gate_fails(self):
        meas = sharding_doc()
        meas["metrics"] = dict(meas["metrics"],
                               **{"sharding.speedup_d4": 2.9})
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 1)
        self.assertIn("below the 3.2x gate", out)

    def test_collapsed_single_device_baseline_fails(self):
        # Great ratios against a collapsed single-device arm must not
        # pass: the d1 goodput has an absolute floor.
        meas = sharding_doc()
        meas["metrics"] = dict(meas["metrics"],
                               **{"sharding.d1.goodput": 100e3,
                                  "sharding.speedup_d2": 5.0,
                                  "sharding.speedup_d4": 9.0})
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 1)
        self.assertIn("below the 800000 absolute floor", out)

    def test_quick_mode_scales_the_floor_down(self):
        # --quick halves the warm-up window; 554K is a quick pass but
        # would fail the full-mode floor.
        meas = sharding_doc()
        meas["config"] = dict(meas["config"], quick=1)
        meas["metrics"] = dict(meas["metrics"],
                               **{"sharding.d1.goodput": 554e3})
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 0, out)

    def test_missing_ratio_metric_fails(self):
        meas = sharding_doc()
        meas["metrics"] = {k: v for k, v in meas["metrics"].items()
                           if k != "sharding.speedup_d2"}
        code, out = self.gate(meas, meas)
        self.assertEqual(code, 1)
        self.assertIn("missing metric 'sharding.speedup_d2'", out)

    def test_failed_acceptance_fails_gate(self):
        meas = sharding_doc()
        meas["metrics"] = dict(meas["metrics"], acceptance_pass=0)
        code, out = self.gate(sharding_doc(), meas)
        self.assertEqual(code, 1)
        self.assertIn("acceptance_pass", out)

    def test_gate_not_applied_to_other_benches(self):
        base = doc(metrics={"sharding.speedup_d4": 0.5})
        code, out = self.gate(base, base)
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
