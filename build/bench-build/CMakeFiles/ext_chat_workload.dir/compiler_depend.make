# Empty compiler generated dependencies file for ext_chat_workload.
# This may be replaced when dependencies are built.
