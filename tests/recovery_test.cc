/**
 * @file
 * Tests for the crash-recovery layer and the straggler watchdog:
 * journal framing/torn-tail detection, checkpoint+replay state
 * equivalence, idempotency-token deduplication, session-array replay,
 * watchdog-hedged cohorts (first-completion wins) and the interaction
 * of retry-budget exhaustion with hedging (no double-spend).
 */

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "backend/bankdb.hh"
#include "backend/journal.hh"
#include "backend/protocol.hh"
#include "backend/recovery.hh"
#include "backend/service.hh"
#include "fault/plan.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "rhythm/session_array.hh"
#include "specweb/workload.hh"

namespace rhythm {
namespace {

namespace bp = backend;

// ---- Journal unit tests -----------------------------------------------

TEST(Journal, RoundTripPreservesRecords)
{
    bp::Journal journal;
    // Payloads exercise every framing hazard: the field separator, the
    // record terminator and the request/response separator byte.
    const bp::JournalRecord records[] = {
        {'B', 17, "XFER|1|2|300\x1fOK|55"},
        {'C', 0x1234'5678'9abcull, "42"},
        {'D', 7, ""},
        {'B', 0, std::string("ragged|\n|tail\n", 14)},
    };
    for (const auto &rec : records)
        journal.append(rec);
    EXPECT_EQ(journal.records(), 4u);

    const bp::Journal::ScanResult scanned =
        bp::Journal::scan(journal.data());
    EXPECT_FALSE(scanned.torn);
    ASSERT_EQ(scanned.records.size(), 4u);
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(scanned.records[i].kind, records[i].kind);
        EXPECT_EQ(scanned.records[i].token, records[i].token);
        EXPECT_EQ(scanned.records[i].payload, records[i].payload);
    }
}

TEST(Journal, TornFinalRecordIsDetectedAndDropped)
{
    bp::Journal journal;
    journal.append({'B', 1, "first"});
    journal.append({'B', 2, "second"});
    journal.append({'B', 3, "the record a crash interrupts"});
    journal.tearLastRecord();

    const bp::Journal::ScanResult scanned =
        bp::Journal::scan(journal.data());
    EXPECT_TRUE(scanned.torn);
    EXPECT_GT(scanned.tornBytes, 0u);
    ASSERT_EQ(scanned.records.size(), 2u);
    EXPECT_EQ(scanned.records[0].token, 1u);
    EXPECT_EQ(scanned.records[1].token, 2u);
}

TEST(Journal, CorruptChecksumStopsScanAtBoundary)
{
    bp::Journal journal;
    journal.append({'B', 1, "good"});
    journal.append({'B', 2, "flipped"});
    journal.append({'B', 3, "unreachable"});

    // Flip one payload byte of the middle record; nothing after an
    // undetectable boundary can be trusted, so the scan must stop
    // there even though record 3 is intact on the wire.
    std::string image = journal.data();
    const size_t pos = image.find("flipped");
    ASSERT_NE(pos, std::string::npos);
    image[pos] ^= 0x01;

    const bp::Journal::ScanResult scanned = bp::Journal::scan(image);
    EXPECT_TRUE(scanned.torn);
    ASSERT_EQ(scanned.records.size(), 1u);
    EXPECT_EQ(scanned.records[0].token, 1u);
}

// ---- RecoverableBackend unit tests ------------------------------------

std::string
addPayeeRequest(uint64_t user, const std::string &name)
{
    bp::BackendRequest req;
    req.op = bp::Op::AddPayee;
    req.userId = user;
    req.args = {name, "1 Main St", "900042"};
    return req.serialize();
}

std::string
summaryRequest(uint64_t user)
{
    bp::BackendRequest req;
    req.op = bp::Op::Summary;
    req.userId = user;
    return req.serialize();
}

struct BackendRig
{
    explicit BackendRig(bp::RecoveryConfig config = {})
        : db(20, 3), service(db), recovery(service, db, config)
    {
    }

    std::string
    run(const std::string &request, uint64_t token)
    {
        simt::NullTracer null;
        return recovery.execute(request, token, null);
    }

    backend::BankDb db;
    backend::BackendService service;
    backend::RecoverableBackend recovery;
};

TEST(Recovery, MemoDeduplicatesSameToken)
{
    // A duplicate delivery (hedge replay, client retry) of a mutating
    // op must return the recorded response without touching the db.
    BackendRig rig;
    BackendRig reference;

    const std::string req = addPayeeRequest(5, "Alice");
    const std::string first = rig.run(req, 100);
    const std::string second = rig.run(req, 100);
    EXPECT_EQ(first, second);
    EXPECT_EQ(rig.recovery.stats().memoHits, 1u);

    const std::string once = reference.run(req, 100);
    EXPECT_EQ(first, once);
    EXPECT_EQ(rig.db.digest(), reference.db.digest());
}

TEST(Recovery, ReadsPassThroughUnjournaled)
{
    BackendRig rig;
    const std::string a = rig.run(summaryRequest(3), 1);
    const std::string b = rig.run(summaryRequest(3), 2);
    EXPECT_EQ(a, b);
    EXPECT_EQ(rig.recovery.stats().journaledRecords, 0u);
    EXPECT_EQ(rig.recovery.journal().records(), 0u);
}

TEST(Recovery, CrashRecoveryRebuildsIdenticalState)
{
    BackendRig rig;
    for (uint64_t i = 0; i < 12; ++i)
        rig.run(addPayeeRequest(1 + i % 5, "payee" + std::to_string(i)),
                1000 + i);
    const uint64_t before = rig.db.digest();

    rig.recovery.crashAndRecover(/*torn=*/false);

    EXPECT_EQ(rig.db.digest(), before);
    EXPECT_EQ(rig.recovery.stats().replayedRecords, 12u);
    EXPECT_EQ(rig.recovery.stats().replayMismatches, 0u);
    EXPECT_EQ(rig.recovery.stats().tornRecords, 0u);

    // The rebuilt memo still deduplicates pre-crash tokens.
    rig.run(addPayeeRequest(1, "payee0"), 1000);
    EXPECT_EQ(rig.recovery.stats().memoHits, 1u);
    EXPECT_EQ(rig.db.digest(), before);
}

TEST(Recovery, TornFinalRecordIsLostThenReexecutedByRetry)
{
    // A crash that tears the final journal record loses exactly that
    // operation; the client retry with the same idempotency token
    // re-executes it, converging on the fault-free state.
    BackendRig rig;
    BackendRig reference;
    for (uint64_t i = 0; i < 6; ++i) {
        const std::string req =
            addPayeeRequest(1 + i % 5, "p" + std::to_string(i));
        rig.run(req, 50 + i);
        if (i < 5)
            reference.run(req, 50 + i);
    }

    rig.recovery.crashAndRecover(/*torn=*/true);
    EXPECT_EQ(rig.recovery.stats().tornRecords, 1u);
    EXPECT_EQ(rig.recovery.stats().replayedRecords, 5u);
    // Only the torn op's effect is gone.
    EXPECT_EQ(rig.db.digest(), reference.db.digest());

    // The retry finds no memo entry and applies the op exactly once.
    const std::string retried = rig.run(addPayeeRequest(1, "p5"), 55);
    const std::string fresh = reference.run(addPayeeRequest(1, "p5"), 55);
    EXPECT_EQ(retried, fresh);
    EXPECT_EQ(rig.db.digest(), reference.db.digest());
}

TEST(Recovery, CheckpointBoundsReplay)
{
    bp::RecoveryConfig config;
    config.checkpointInterval = 4;
    BackendRig rig(config);
    for (uint64_t i = 0; i < 10; ++i)
        rig.run(addPayeeRequest(1 + i % 5, "c" + std::to_string(i)),
                200 + i);
    EXPECT_GE(rig.recovery.stats().checkpoints, 2u);
    EXPECT_LT(rig.recovery.journal().records(), 4u);

    const uint64_t before = rig.db.digest();
    rig.recovery.crashAndRecover(/*torn=*/false);
    EXPECT_EQ(rig.db.digest(), before);
    // Replay only covers the journal since the last checkpoint.
    EXPECT_LT(rig.recovery.stats().replayedRecords, 4u);
    EXPECT_EQ(rig.recovery.stats().replayMismatches, 0u);
}

TEST(Recovery, ScheduledInFlightCrashReturnsRecordedResponse)
{
    // A crash drawn by the fault plan mid-operation (after apply+log,
    // before the response escapes) must be invisible to the client:
    // same responses, same final state as the fault-free run.
    fault::FaultConfig fcfg;
    fault::FaultPlan plan(fcfg);
    plan.scheduleFault(fault::Site::BackendCrash, 2);

    BackendRig rig;
    BackendRig reference;
    rig.recovery.setFaultPlan(&plan);

    for (uint64_t i = 0; i < 6; ++i) {
        const std::string req =
            addPayeeRequest(1 + i % 5, "s" + std::to_string(i));
        EXPECT_EQ(rig.run(req, 300 + i), reference.run(req, 300 + i))
            << "operation " << i;
    }
    EXPECT_EQ(rig.recovery.stats().crashes, 1u);
    EXPECT_EQ(rig.recovery.stats().replayMismatches, 0u);
    EXPECT_EQ(rig.db.digest(), reference.db.digest());
}

// ---- Session-array crash domain ---------------------------------------

TEST(Recovery, SessionMutationsReplayToIdenticalArray)
{
    backend::BankDb db(20, 3);
    backend::BackendService service(db);
    backend::RecoverableBackend recovery(service, db);
    core::SessionArray sessions(64, 8);
    simt::NullTracer null;

    // Pre-populated sessions belong to the baseline checkpoint.
    sessions.populate(16, 20);
    core::attachSessionRecovery(recovery, sessions);

    std::vector<uint64_t> created;
    for (uint64_t user = 1; user <= 10; ++user)
        created.push_back(sessions.create(user, null));
    EXPECT_TRUE(sessions.destroy(created[3], null));
    EXPECT_TRUE(sessions.destroy(created[7], null));
    const uint64_t before = sessions.digest();
    EXPECT_EQ(recovery.stats().journaledRecords, 12u);

    recovery.crashAndRecover(/*torn=*/false);

    EXPECT_EQ(sessions.digest(), before);
    EXPECT_EQ(recovery.stats().replayMismatches, 0u);
    // Replayed creates reproduced the original ids, so lookups work.
    EXPECT_EQ(sessions.lookup(created[0], null), 1u);
    EXPECT_EQ(sessions.lookup(created[3], null), 0u);
}

// ---- Server-level watchdog / hedging tests ----------------------------

struct WatchdogRig
{
    WatchdogRig(core::RhythmConfig cfg, fault::FaultConfig fcfg,
                bool with_recovery)
        : db(200, 11), device(queue, simt::DeviceConfig{}), service(db),
          server(queue, device, service, cfg), plan(fcfg), gen(db, 77)
    {
        server.setFaultPlan(&plan);
        server.setResponseCallback(
            [this](uint64_t client, std::string_view response,
                   des::Time) {
                responses.emplace(client, std::string(response));
            });
        if (with_recovery) {
            recovery = std::make_unique<backend::RecoverableBackend>(
                service.backendService(), db);
            recovery->setFaultPlan(&plan,
                                   [this]() { return queue.now(); });
            core::attachSessionRecovery(*recovery, server.sessions());
            service.setRecovery(recovery.get());
        }
    }

    static core::RhythmConfig
    smallConfig()
    {
        core::RhythmConfig cfg;
        cfg.cohortSize = 32;
        cfg.cohortContexts = 4;
        cfg.cohortTimeout = des::kMillisecond;
        cfg.backendOnDevice = true;
        cfg.networkOverPcie = false;
        return cfg;
    }

    /// Feeds @p n requests of @p type through the pull-mode reader.
    void
    feed(uint64_t n, specweb::RequestType type)
    {
        simt::NullTracer null;
        sessions.clear();
        for (uint64_t i = 0; i < n; ++i) {
            const uint64_t user = 1 + i % 150;
            sessions.push_back(server.sessions().create(user, null));
        }
        uint64_t issued = 0;
        server.start([this, n, type,
                      &issued]() -> std::optional<std::string> {
            if (issued >= n)
                return std::nullopt;
            const uint64_t user = 1 + issued % 150;
            auto req = gen.generate(type, user, sessions[issued]);
            ++issued;
            return std::move(req.raw);
        });
        queue.run();
    }

    des::EventQueue queue;
    backend::BankDb db;
    simt::Device device;
    core::BankingService service;
    core::RhythmServer server;
    fault::FaultPlan plan;
    specweb::WorkloadGenerator gen;
    std::unique_ptr<backend::RecoverableBackend> recovery;
    std::vector<uint64_t> sessions;
    std::map<uint64_t, std::string> responses;
};

void
expectConserved(const core::RhythmStats &st)
{
    EXPECT_EQ(st.requestsAccepted, st.responsesCompleted +
                                       st.errorResponses +
                                       st.requestsShed);
}

TEST(Watchdog, HedgeRecoversHungCohort)
{
    // The first cohort hangs for 8x the watchdog timeout; the hedge
    // re-execution on the spare stream must win and deliver every
    // response, with the straggler canonically cancelled.
    core::RhythmConfig cfg = WatchdogRig::smallConfig();
    cfg.watchdogTimeout = 5 * des::kMillisecond;
    fault::FaultConfig fcfg; // all probabilities zero
    WatchdogRig rig(cfg, fcfg, /*with_recovery=*/false);
    rig.plan.scheduleFault(fault::Site::KernelHang, 0);

    rig.feed(64, specweb::RequestType::AccountSummary);

    const core::RhythmStats &st = rig.server.stats();
    EXPECT_EQ(st.kernelHangs, 1u);
    EXPECT_GE(st.watchdogFires, 1u);
    EXPECT_GE(st.hedgeWins, 1u);
    EXPECT_EQ(st.hedgeWins + st.hedgeCancelled, 2 * st.watchdogFires);
    EXPECT_EQ(st.responsesCompleted, 64u);
    expectConserved(st);
    EXPECT_TRUE(rig.server.drained());
    EXPECT_EQ(rig.responses.size(), 64u);
}

TEST(Watchdog, WatchdogWithoutHangsNeverFires)
{
    // A generous watchdog must be pure bookkeeping on healthy cohorts:
    // identical responses and database state to a watchdog-less run.
    fault::FaultConfig quiet;
    core::RhythmConfig base = WatchdogRig::smallConfig();
    WatchdogRig plain(base, quiet, /*with_recovery=*/false);
    plain.feed(64, specweb::RequestType::PostTransfer);

    core::RhythmConfig watched = base;
    watched.watchdogTimeout = des::kSecond;
    WatchdogRig rig(watched, quiet, /*with_recovery=*/false);
    rig.feed(64, specweb::RequestType::PostTransfer);

    EXPECT_EQ(rig.server.stats().watchdogFires, 0u);
    EXPECT_EQ(rig.server.stats().hedgeWins, 0u);
    EXPECT_EQ(rig.responses, plain.responses);
    EXPECT_EQ(rig.db.digest(), plain.db.digest());
}

TEST(Watchdog, HedgedMutationsAreExactlyOnce)
{
    // A hung cohort of transfers is hedged; the hedge replays its
    // backend calls through the idempotency memo, so every transfer
    // posts exactly once — byte-identical responses and database state
    // to the fault-free run.
    fault::FaultConfig quiet;
    core::RhythmConfig base = WatchdogRig::smallConfig();
    WatchdogRig clean(base, quiet, /*with_recovery=*/true);
    clean.feed(64, specweb::RequestType::PostTransfer);

    core::RhythmConfig cfg = base;
    cfg.watchdogTimeout = 5 * des::kMillisecond;
    fault::FaultConfig fcfg;
    WatchdogRig rig(cfg, fcfg, /*with_recovery=*/true);
    rig.plan.scheduleFault(fault::Site::KernelHang, 0);
    rig.feed(64, specweb::RequestType::PostTransfer);

    const core::RhythmStats &st = rig.server.stats();
    EXPECT_EQ(st.kernelHangs, 1u);
    EXPECT_GE(st.hedgeWins, 1u);
    EXPECT_GT(st.hedgeReplayedCalls, 0u);
    EXPECT_EQ(st.hedgeReplayMismatches, 0u);
    EXPECT_GT(rig.recovery->stats().memoHits, 0u);
    EXPECT_EQ(st.responsesCompleted, 64u);
    expectConserved(st);

    EXPECT_EQ(rig.responses, clean.responses);
    EXPECT_EQ(rig.db.digest(), clean.db.digest());
    EXPECT_EQ(rig.server.sessions().digest(),
              clean.server.sessions().digest());
}

TEST(Watchdog, RetryExhaustionPlusHedgingDoesNotDoubleSpend)
{
    // One lane exhausts its retry budget (503) while the same cohort
    // hangs and is hedged. The hedge must not re-charge the budget or
    // re-execute the failed lane: state and responses match a run with
    // the same backend-failure schedule but no hang.
    core::RhythmConfig base = WatchdogRig::smallConfig();
    base.backendRetryBudget = 1;
    fault::FaultConfig quiet;

    WatchdogRig reference(base, quiet, /*with_recovery=*/true);
    // Ordinal 7 fails the initial call, ordinal 8 its only retry.
    reference.plan.scheduleFault(fault::Site::BackendFail, 7);
    reference.plan.scheduleFault(fault::Site::BackendFail, 8);
    reference.feed(64, specweb::RequestType::PostTransfer);

    core::RhythmConfig cfg = base;
    cfg.watchdogTimeout = 5 * des::kMillisecond;
    WatchdogRig rig(cfg, quiet, /*with_recovery=*/true);
    rig.plan.scheduleFault(fault::Site::BackendFail, 7);
    rig.plan.scheduleFault(fault::Site::BackendFail, 8);
    rig.plan.scheduleFault(fault::Site::KernelHang, 0);
    rig.feed(64, specweb::RequestType::PostTransfer);

    for (const WatchdogRig *r : {&reference, &rig}) {
        const core::RhythmStats &st = r->server.stats();
        EXPECT_EQ(st.backendRetries, 1u);
        EXPECT_EQ(st.errorResponses, 1u);
        EXPECT_EQ(st.responsesCompleted, 63u);
        expectConserved(st);
    }
    EXPECT_GE(rig.server.stats().hedgeWins, 1u);
    // The hedge replay consults the memo, never the retry budget: the
    // budget was charged exactly once across both executions.
    EXPECT_EQ(rig.responses, reference.responses);
    EXPECT_EQ(rig.db.digest(), reference.db.digest());
}

TEST(Watchdog, CrashDuringHedgedCohortStaysExactlyOnce)
{
    // The full stack at once: a kernel hang triggers hedging while a
    // backend crash (with a torn final record) interrupts the same
    // run's journal. The recovered state must still match fault-free.
    fault::FaultConfig quiet;
    core::RhythmConfig base = WatchdogRig::smallConfig();
    WatchdogRig clean(base, quiet, /*with_recovery=*/true);
    clean.feed(64, specweb::RequestType::PostTransfer);

    core::RhythmConfig cfg = base;
    cfg.watchdogTimeout = 5 * des::kMillisecond;
    WatchdogRig rig(cfg, quiet, /*with_recovery=*/true);
    rig.plan.scheduleFault(fault::Site::KernelHang, 0);
    rig.plan.scheduleFault(fault::Site::BackendCrash, 10);
    rig.plan.scheduleFault(fault::Site::JournalTorn, 0);
    rig.feed(64, specweb::RequestType::PostTransfer);

    EXPECT_EQ(rig.recovery->stats().crashes, 1u);
    EXPECT_EQ(rig.recovery->stats().tornRecords, 1u);
    EXPECT_EQ(rig.recovery->stats().replayMismatches, 0u);
    EXPECT_EQ(rig.server.stats().responsesCompleted, 64u);
    expectConserved(rig.server.stats());

    EXPECT_EQ(rig.responses, clean.responses);
    EXPECT_EQ(rig.db.digest(), clean.db.digest());
    EXPECT_EQ(rig.server.sessions().digest(),
              clean.server.sessions().digest());
}

} // namespace
} // namespace rhythm
