/**
 * @file
 * Extension experiment: deadline-aware adaptive cohort formation under
 * bursty open-loop traffic (DESIGN.md §6i).
 *
 * Drives the mixed Banking workload (the fig9 request mix, logins and
 * logouts isolated out as in rhythm_sim's mixed mode) on Titan B with
 * seeded open-loop arrivals from src/net, and compares the fixed
 * formation policy (cohortSize/cohortTimeout only — today's pipeline)
 * against the adaptive policy (slack-based early dispatch, priority
 * preemption, deadline-aware admission) at three operating points:
 *
 *   low    steady Poisson well under capacity
 *   high   steady Poisson near capacity
 *   flash  the low rate with a flash-crowd burst riding on top
 *
 * Both policies see byte-identical arrival schedules (same generator
 * and arrival seeds) and identical per-type deadlines: interactive
 * money-movement types (transfer, post transfer, post payee) get a
 * tight deadline, everything else the default. Fixed mode tracks the
 * same deadline attainment without any scheduling change, so the
 * comparison is apples to apples.
 *
 * Attainment is the on-time fraction of requests that received a real
 * response; admission sheds and reader drops are excluded from it but
 * count fully against on-time goodput (hits per second), so a policy
 * cannot shed its way to a high score — the two metrics are gated as
 * a pair.
 *
 * Acceptance gate (at the flash point): adaptive must deliver >= 1.3x
 * the p99-deadline attainment of fixed at no worse than 5% on-time
 * goodput, OR >= 1.2x the on-time goodput at no worse than 2%
 * attainment. check_bench.py enforces the same conditions against the
 * committed baseline.
 */

#include <iostream>

#include "backend/bankdb.hh"
#include "bench/common.hh"
#include "net/arrival.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "specweb/workload.hh"

namespace {

using namespace rhythm;

constexpr double kDefaultDeadlineMs = 8.0;
constexpr double kInteractiveDeadlineMs = 3.0;
constexpr double kFixedTimeoutMs = 4.0;

/** Interactive money-movement types carrying the tight deadline. */
constexpr specweb::RequestType kInteractive[] = {
    specweb::RequestType::Transfer,
    specweb::RequestType::PostTransfer,
    specweb::RequestType::PostPayee,
};

struct RunResult
{
    double attainment = 0.0;  //!< on-time fraction of completed reqs
    double goodput = 0.0;     //!< on-time responses per second
    double throughput = 0.0;  //!< completed responses per second
    double p99Ms = 0.0;
    uint64_t earlyDispatches = 0;
    uint64_t preemptions = 0;
    uint64_t admissionSheds = 0;
    uint64_t drops = 0;
};

RunResult
runPoint(const net::ArrivalConfig &acfg, bool adaptive,
         uint64_t requests, const bench::FaultFlags &faults,
         const bench::BatchingFlags &batching)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    faults.apply(dcfg);
    simt::Device device(queue, dcfg);
    backend::BankDb db(2000, 5);
    core::BankingService service(db);

    core::RhythmConfig cfg;
    cfg.cohortSize = 1024;
    cfg.cohortContexts = 8;
    cfg.cohortTimeout = des::fromSeconds(kFixedTimeoutMs / 1e3);
    cfg.backendOnDevice = true; // Titan B
    cfg.networkOverPcie = false;
    cfg.laneSample = 64;
    faults.apply(cfg);
    // Identical deadlines in both modes (fixed tracks attainment
    // without scheduling changes); only the policy bit differs.
    cfg.typeDeadlines.assign(service.numTypes(), 0);
    for (specweb::RequestType t : kInteractive)
        cfg.typeDeadlines[specweb::typeIndex(t)] =
            des::fromSeconds(kInteractiveDeadlineMs / 1e3);
    cfg.defaultDeadline = des::fromSeconds(kDefaultDeadlineMs / 1e3);
    cfg.adaptiveBatching = adaptive;
    if (adaptive) {
        // Command-line overrides tune the adaptive arm only.
        if (batching.slackSafety > 0)
            cfg.slackSafety = batching.slackSafety;
        if (batching.scanUs > 0)
            cfg.adaptiveScanInterval =
                des::fromSeconds(batching.scanUs / 1e6);
        if (batching.admission >= 0)
            cfg.adaptiveAdmission = batching.admission != 0;
    }
    core::RhythmServer server(queue, device, service, cfg);
    std::optional<fault::FaultPlan> plan;
    faults.arm(server, device, queue, plan);

    specweb::WorkloadGenerator gen(db, 31);
    auto sessions = server.sessions().populate(8192, 2000);

    // Open-loop mixed-type arrivals: both policy arms construct the
    // same generator and ArrivalProcess seeds, so they see
    // byte-identical request and arrival-time streams.
    net::ArrivalProcess arrivals(acfg);
    uint64_t issued = 0;
    uint64_t dropped = 0;
    std::function<void()> arrive = [&]() {
        if (issued >= requests)
            return;
        specweb::RequestType type;
        do {
            type = gen.sampleType();
        } while (type == specweb::RequestType::Login ||
                 type == specweb::RequestType::Logout);
        const auto &[sid, user] = sessions[issued % sessions.size()];
        specweb::GeneratedRequest req = gen.generate(type, user, sid);
        // Open loop: a full reader drops the arrival — the client
        // never sees a response, so the drop counts against
        // attainment below.
        if (!server.injectRequest(std::move(req.raw), issued + 1))
            ++dropped;
        ++issued;
        if (issued < requests)
            queue.scheduleAfter(arrivals.nextGap(), arrive);
    };
    queue.scheduleAfter(arrivals.nextGap(), arrive);
    queue.run();

    const core::RhythmStats &stats = server.stats();
    const double elapsed = des::toSeconds(queue.now());
    // Attainment is measured over requests that received a real
    // response: server-side misses minus admission sheds (shedRequest
    // books every 503 as a deadline miss) plus open-loop reader drops.
    // Shed/dropped requests are excluded from attainment but NOT from
    // goodput — the gate's goodput floor is what makes "shed your way
    // to 100% attainment" impossible: every shed is a response that
    // can never count as on-time work.
    const uint64_t completed_misses =
        stats.typedDeadlineMisses - stats.requestsShed;
    const uint64_t answered =
        stats.typedDeadlineHits + completed_misses;
    RunResult r;
    r.attainment =
        answered ? static_cast<double>(stats.typedDeadlineHits) /
                       static_cast<double>(answered)
                 : 0.0;
    r.goodput = elapsed > 0
                    ? static_cast<double>(stats.typedDeadlineHits) /
                          elapsed
                    : 0.0;
    r.throughput =
        elapsed > 0 ? static_cast<double>(stats.responsesCompleted) /
                          elapsed
                    : 0.0;
    r.p99Ms = stats.latencyMs.percentile(99.0);
    r.earlyDispatches = stats.adaptiveEarlyDispatches;
    r.preemptions = stats.adaptivePreemptions;
    r.admissionSheds = stats.adaptiveAdmissionSheds;
    r.drops = dropped;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter report("ext_adaptive_batching", argc, argv);
    bench::banner(
        "Extension: deadline-aware adaptive cohort formation",
        "DESIGN.md 6i (>=1.3x attainment or >=1.2x goodput at flash)");

    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--quick")
            quick = true;

    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.recordConfig(report);
    const bench::BatchingFlags batching =
        bench::BatchingFlags::parse(argc, argv);
    const bench::ArrivalFlags arrival =
        bench::ArrivalFlags::parse(argc, argv);

    // Operating points. The base rate/seed may be overridden by the
    // shared arrival flags; the flash burst rides on the low rate.
    const double base_rate =
        arrival.anyGiven && arrival.config.rate > 0 &&
                arrival.config.rate != 200e3
            ? arrival.config.rate
            : 60e3;
    const uint64_t seed = arrival.config.seed;
    const double flash_mult =
        arrival.config.flashMultiplier > 0 &&
                arrival.config.flashMultiplier != 8.0
            ? arrival.config.flashMultiplier
            : 8.0;
    const uint64_t n_low = quick ? 8000 : 30000;
    const uint64_t n_high = quick ? 12000 : 40000;
    const uint64_t n_flash = quick ? 12000 : 40000;

    net::ArrivalConfig low;
    low.kind = net::ArrivalKind::Poisson;
    low.rate = base_rate;
    low.seed = seed;
    net::ArrivalConfig high = low;
    high.rate = base_rate * 2.5;
    net::ArrivalConfig flash = low;
    flash.kind = net::ArrivalKind::Flash;
    flash.flashStartSec = 0.05;
    flash.flashDurationSec = 0.1;
    flash.flashMultiplier = flash_mult;

    // check_bench.py requires these keys: the sweep under test must be
    // reproducible from the document alone.
    report.config("arrival_rate", base_rate);
    report.config("arrival_seed", static_cast<double>(seed));
    report.config("flash_mult", flash_mult);
    report.config("deadline_default_ms", kDefaultDeadlineMs);
    report.config("deadline_ms",
                  std::string("transfer=") +
                      bench::fmt(kInteractiveDeadlineMs, 0) +
                      ";post_transfer=" +
                      bench::fmt(kInteractiveDeadlineMs, 0) +
                      ";post_payee=" +
                      bench::fmt(kInteractiveDeadlineMs, 0));
    report.config("timeout_ms", kFixedTimeoutMs);
    report.config("quick", quick ? 1.0 : 0.0);

    struct Point
    {
        const char *key;
        const char *label;
        const net::ArrivalConfig *cfg;
        uint64_t requests;
    };
    const Point points[] = {
        {"low", "LOW (steady Poisson)", &low, n_low},
        {"high", "HIGH (steady Poisson)", &high, n_high},
        {"flash", "FLASH (burst on low)", &flash, n_flash},
    };

    TableWriter table({"point", "policy", "attainment", "on-time K/s",
                       "KReqs/s", "p99 ms", "early", "preempt",
                       "adm shed", "drops"});
    double flash_att_ratio = 0.0;
    double flash_goodput_ratio = 0.0;
    for (const Point &p : points) {
        const RunResult fixed =
            runPoint(*p.cfg, false, p.requests, faults, batching);
        const RunResult adaptive =
            runPoint(*p.cfg, true, p.requests, faults, batching);
        const double att_ratio =
            fixed.attainment > 0 ? adaptive.attainment / fixed.attainment
                                 : 0.0;
        const double goodput_ratio =
            fixed.goodput > 0 ? adaptive.goodput / fixed.goodput : 0.0;
        if (std::string_view(p.key) == "flash") {
            flash_att_ratio = att_ratio;
            flash_goodput_ratio = goodput_ratio;
        }
        for (const auto &[mode, r] :
             {std::pair<const char *, const RunResult &>{"fixed", fixed},
              {"adaptive", adaptive}}) {
            table.addRow({p.key, mode, bench::fmt(r.attainment, 3),
                          bench::fmt(r.goodput / 1e3, 1),
                          bench::fmt(r.throughput / 1e3, 1),
                          bench::fmt(r.p99Ms, 2),
                          withCommas(r.earlyDispatches),
                          withCommas(r.preemptions),
                          withCommas(r.admissionSheds),
                          withCommas(r.drops)});
            const std::string key =
                std::string(p.key) + "." + mode + ".";
            report.metric(key + "attainment", r.attainment);
            report.metric(key + "goodput", r.goodput);
            report.metric(key + "throughput", r.throughput);
            report.metric(key + "p99_ms", r.p99Ms);
        }
        report.metric(std::string(p.key) + ".attainment_ratio",
                      att_ratio);
        report.metric(std::string(p.key) + ".goodput_ratio",
                      goodput_ratio);
        report.metric(std::string(p.key) + ".early_dispatches",
                      static_cast<double>(adaptive.earlyDispatches));
        report.metric(std::string(p.key) + ".preemptions",
                      static_cast<double>(adaptive.preemptions));
        report.metric(std::string(p.key) + ".admission_sheds",
                      static_cast<double>(adaptive.admissionSheds));
    }
    table.printAscii(std::cout);

    const bool pass =
        (flash_att_ratio >= 1.3 && flash_goodput_ratio >= 0.95) ||
        (flash_goodput_ratio >= 1.2 && flash_att_ratio >= 0.98);
    std::cout << "\nFlash point: attainment ratio "
              << bench::fmt(flash_att_ratio, 2) << "x, on-time goodput "
              << "ratio " << bench::fmt(flash_goodput_ratio, 2)
              << "x\nGate: >=1.3x attainment at >=0.95x goodput, or "
                 ">=1.2x goodput at >=0.98x attainment\nVerdict: "
              << (pass ? "PASS" : "FAIL") << "\n";
    report.metric("flash_attainment_ratio", flash_att_ratio);
    report.metric("flash_goodput_ratio", flash_goodput_ratio);
    report.metric("acceptance_pass", pass ? 1.0 : 0.0);
    if (!report.write())
        return 1;
    return pass ? 0 : 1;
}
