/**
 * @file
 * The metrics registry: counters, gauges and fixed-bucket histograms.
 *
 * Design constraints (ISSUE 2, thread-safety extended for ISSUE 3):
 *  - The DES core stays single threaded, but the parallel execution
 *    engine (src/simt/engine.*) emits counters from pool workers, so
 *    counters and gauges are atomics (relaxed — they are commutative
 *    sums/last-writes whose totals are thread-count-invariant) and the
 *    registry's name lookup is mutex-guarded. Handles stay valid for
 *    the registry's lifetime — registration never erases a metric;
 *    reset() zeroes values in place, so hot paths fetch a handle once.
 *  - Histograms and the tracer remain DES-thread-only: ordered flush is
 *    guaranteed because flatten()/writeJson() iterate the std::map in
 *    name order after all workers have joined (the engine's parallel
 *    regions are barriers).
 *  - Fixed-bucket histograms keep O(buckets) memory regardless of
 *    sample count (unlike util/stats.hh's exact Histogram, which
 *    retains every sample for offline analysis). Percentiles are
 *    estimated by linear interpolation inside the owning bucket and
 *    clamped to the observed min/max.
 */

#ifndef RHYTHM_OBS_METRICS_HH
#define RHYTHM_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hh"

namespace rhythm::obs {

/**
 * Metric-name prefixes excluded from baseline-gated outputs. Each
 * family exists only when an off-by-default feature is on (profile
 * cache, crash recovery, watchdog hedging, PCIe frame CRC, cohort
 * fusion), and the outputs the equivalence/bench gates byte-compare
 * must be identical whether the feature ran or not.
 */
inline constexpr std::string_view kBaselineExcludedPrefixes[] = {
    "profile_cache.",
    "recovery.",
    "watchdog.",
    "pcie.crc.",
    "warp.fusion.",
};

/**
 * True for metric names in a per-device fleet namespace ("dev<N>."
 * where <N> is a device index, e.g. "dev0.engine.tasks"). The device
 * count is unbounded, so these cannot be enumerated in
 * kBaselineExcludedPrefixes; the multi-prefix flatten() treats them as
 * baseline-excluded structurally. A bare "dev" prefix test would be
 * wrong — it would also match metrics like "device.utilization" — so
 * the check requires the digits and the dot.
 */
bool isDeviceNamespaced(std::string_view name);

/** A monotonically increasing counter (thread-safe). */
class Counter
{
  public:
    void add(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** A last-value gauge (thread-safe). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * A fixed-bucket histogram with percentile estimation.
 *
 * Buckets are defined by strictly increasing upper bounds; an implicit
 * overflow bucket catches samples beyond the last bound. Suitable for
 * latency distributions where ~2x-resolution percentiles are enough
 * and memory must not grow with the run length.
 */
class FixedHistogram
{
  public:
    /** @param bounds Strictly increasing bucket upper bounds. */
    explicit FixedHistogram(std::vector<double> bounds);

    /** Exponentially spaced bounds: first, first*factor, ... (count). */
    static std::vector<double> exponentialBounds(double first,
                                                 double factor,
                                                 size_t count);

    /** Default latency bounds: 1 us .. ~134 s in powers of two (ms). */
    static const std::vector<double> &defaultLatencyBoundsMs();

    void add(double value);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Estimates the given percentile (p in [0,100]) by nearest-rank
     * bucket selection with linear interpolation inside the bucket,
     * clamped to the observed min/max. Returns 0 when empty.
     */
    double percentile(double p) const;

    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    /** Bucket upper bounds (excluding the implicit overflow bucket). */
    const std::vector<double> &bounds() const { return bounds_; }

    /** Per-bucket counts; size() == bounds().size() + 1 (overflow). */
    const std::vector<uint64_t> &bucketCounts() const { return counts_; }

    /** Zeroes all counts; keeps the bucket layout. */
    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<uint64_t> counts_;
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Name → metric registry.
 *
 * Lookup creates on first use. Returned references remain valid until
 * the registry is destroyed (metrics are never erased), so callers on
 * hot paths fetch a handle once and update through it. Lookup is
 * mutex-guarded (pool workers may register concurrently); counter and
 * gauge updates through the returned handles are atomic. Histogram
 * updates and flatten()/writeJson()/reset() must stay on the DES
 * thread, outside any parallel region.
 */
class MetricsRegistry
{
  public:
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);

    /**
     * Returns the named histogram, creating it with @p bounds (or the
     * default latency bounds when empty) on first use. Later calls
     * ignore @p bounds.
     */
    FixedHistogram &histogram(std::string_view name,
                              std::vector<double> bounds = {});

    /** True if a metric of the given name exists (any kind). */
    bool has(std::string_view name) const;

    /** Zeroes every metric's value; registrations survive. */
    void reset();

    /**
     * Dumps all metrics as one JSON object:
     *     {"counters": {...}, "gauges": {...},
     *      "histograms": {name: {count,sum,min,max,p50,p95,p99}}}
     */
    void writeJson(JsonWriter &w) const;

    /**
     * Flattens metrics into (key, value) pairs: counters and gauges by
     * name; histograms as name.count/name.p50/name.p95/name.p99/
     * name.mean/name.max. Used by the bench reporter.
     *
     * @param exclude_prefix When non-empty, metrics whose name starts
     *        with this prefix are omitted. Used to keep cache
     *        meta-metrics (e.g. "profile_cache.") out of outputs that
     *        must be byte-identical with the cache on or off.
     */
    std::vector<std::pair<std::string, double>>
    flatten(std::string_view exclude_prefix = {}) const;

    /**
     * Multi-prefix variant: omits metrics whose name starts with ANY
     * of @p exclude_prefixes (pass kBaselineExcludedPrefixes for the
     * canonical baseline-gated set).
     */
    std::vector<std::pair<std::string, double>>
    flatten(std::span<const std::string_view> exclude_prefixes) const;

  private:
    mutable std::mutex mutex_; //!< Guards the three name maps.
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<FixedHistogram>, std::less<>>
        histograms_;
};

} // namespace rhythm::obs

#endif // RHYTHM_OBS_METRICS_HH
