/**
 * @file
 * Property tests for the open-loop traffic generators (src/net,
 * DESIGN.md Section 6i). Four families of properties:
 *
 *  - Seeded determinism: the same ArrivalConfig always reproduces the
 *    identical arrival stream and schedule; different seeds diverge.
 *  - Empirical rate: a long sample's mean rate lands within a tolerance
 *    band of the configured mean (Poisson exactly; diurnal/flash
 *    against their analytic envelope averages).
 *  - Envelope shape: the diurnal rate curve is monotone trough→peak→
 *    trough within each half-period; the flash envelope is exactly
 *    base rate outside the window and multiplied inside.
 *  - Gap positivity: no generated gap is ever zero or negative, under
 *    a fuzz sweep of seeds, rates and shapes — the DES driving loop
 *    would livelock on a zero gap.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "net/arrival.hh"

namespace {

using namespace rhythm;

net::ArrivalConfig
poissonConfig(double rate, uint64_t seed)
{
    net::ArrivalConfig cfg;
    cfg.kind = net::ArrivalKind::Poisson;
    cfg.rate = rate;
    cfg.seed = seed;
    return cfg;
}

// ---- seeded determinism ------------------------------------------------

TEST(NetArrival, SameSeedSameStream)
{
    for (net::ArrivalKind kind :
         {net::ArrivalKind::Poisson, net::ArrivalKind::Diurnal,
          net::ArrivalKind::Flash}) {
        net::ArrivalConfig cfg = poissonConfig(120e3, 7);
        cfg.kind = kind;
        net::ArrivalProcess a(cfg);
        net::ArrivalProcess b(cfg);
        for (int i = 0; i < 5000; ++i)
            ASSERT_EQ(a.nextGap(), b.nextGap())
                << "kind " << net::arrivalKindName(kind) << " arrival "
                << i;
    }
}

TEST(NetArrival, DifferentSeedsDiverge)
{
    net::ArrivalProcess a(poissonConfig(120e3, 1));
    net::ArrivalProcess b(poissonConfig(120e3, 2));
    bool diverged = false;
    for (int i = 0; i < 100 && !diverged; ++i)
        diverged = a.nextGap() != b.nextGap();
    EXPECT_TRUE(diverged);
}

TEST(NetArrival, ScheduleIsReplayable)
{
    net::ArrivalConfig cfg = poissonConfig(200e3, 11);
    cfg.kind = net::ArrivalKind::Flash;
    const std::vector<double> weights = {0.5, 0.3, 0.15, 0.05};
    const auto s1 = net::buildSchedule(cfg, weights, 4000);
    const auto s2 = net::buildSchedule(cfg, weights, 4000);
    ASSERT_EQ(s1.size(), s2.size());
    ASSERT_EQ(s1.size(), 4000u);
    for (size_t i = 0; i < s1.size(); ++i) {
        ASSERT_EQ(s1[i].at, s2[i].at) << "entry " << i;
        ASSERT_EQ(s1[i].type, s2[i].type) << "entry " << i;
    }
}

TEST(NetArrival, ScheduleTimesStrictlyIncreaseAndTypesInRange)
{
    const std::vector<double> weights = {1.0, 2.0, 1.0};
    const auto sched =
        net::buildSchedule(poissonConfig(150e3, 3), weights, 3000);
    for (size_t i = 0; i < sched.size(); ++i) {
        if (i > 0)
            ASSERT_GT(sched[i].at, sched[i - 1].at) << "entry " << i;
        ASSERT_LT(sched[i].type, weights.size()) << "entry " << i;
    }
}

TEST(NetArrival, ScheduleTypeFrequenciesTrackWeights)
{
    const std::vector<double> weights = {0.6, 0.3, 0.1};
    const uint64_t n = 30000;
    const auto sched =
        net::buildSchedule(poissonConfig(150e3, 5), weights, n);
    std::vector<uint64_t> counts(weights.size(), 0);
    for (const net::ScheduleEntry &e : sched)
        ++counts[e.type];
    for (size_t t = 0; t < weights.size(); ++t) {
        const double got = static_cast<double>(counts[t]) / n;
        EXPECT_NEAR(got, weights[t], 0.02) << "type " << t;
    }
}

// ---- empirical rate ----------------------------------------------------

/** Mean empirical rate over @p n arrivals. */
double
empiricalRate(net::ArrivalProcess &p, uint64_t n)
{
    double last = 0.0;
    for (uint64_t i = 0; i < n; ++i)
        last = p.nextArrivalSeconds();
    return static_cast<double>(n) / last;
}

TEST(NetArrival, PoissonEmpiricalRateWithinTolerance)
{
    for (double rate : {30e3, 150e3, 400e3}) {
        net::ArrivalProcess p(poissonConfig(rate, 17));
        const double got = empiricalRate(p, 40000);
        // 40k samples: the sample mean's sigma is rate/sqrt(40k), so a
        // 3% band is > 5 sigma — deterministic seeds keep this stable.
        EXPECT_NEAR(got / rate, 1.0, 0.03) << "rate " << rate;
    }
}

TEST(NetArrival, DiurnalEmpiricalRateMatchesEnvelopeAverage)
{
    net::ArrivalConfig cfg = poissonConfig(200e3, 23);
    cfg.kind = net::ArrivalKind::Diurnal;
    cfg.diurnalTroughFraction = 0.25;
    net::ArrivalProcess p(cfg);
    // Raised cosine between trough and peak: the long-run average is
    // the midpoint of the two rates.
    const double expected = cfg.rate * (1.0 + cfg.diurnalTroughFraction) / 2.0;
    const double got = empiricalRate(p, 40000);
    EXPECT_NEAR(got / expected, 1.0, 0.04);
}

TEST(NetArrival, FlashEmpiricalRateOutsideAndInsideWindow)
{
    net::ArrivalConfig cfg = poissonConfig(100e3, 29);
    cfg.kind = net::ArrivalKind::Flash;
    cfg.flashStartSec = 0.10;
    cfg.flashDurationSec = 0.05;
    cfg.flashMultiplier = 6.0;
    net::ArrivalProcess p(cfg);
    uint64_t before = 0, inside = 0;
    double t = 0.0;
    while (t < cfg.flashStartSec + cfg.flashDurationSec) {
        t = p.nextArrivalSeconds();
        if (t < cfg.flashStartSec)
            ++before;
        else if (t < cfg.flashStartSec + cfg.flashDurationSec)
            ++inside;
    }
    const double base_rate =
        static_cast<double>(before) / cfg.flashStartSec;
    const double flash_rate =
        static_cast<double>(inside) / cfg.flashDurationSec;
    EXPECT_NEAR(base_rate / cfg.rate, 1.0, 0.06);
    EXPECT_NEAR(flash_rate / (cfg.rate * cfg.flashMultiplier), 1.0,
                0.06);
}

// ---- envelope shape ----------------------------------------------------

TEST(NetArrival, DiurnalEnvelopeMonotoneWithinHalfPeriods)
{
    net::ArrivalConfig cfg = poissonConfig(200e3, 1);
    cfg.kind = net::ArrivalKind::Diurnal;
    cfg.diurnalPeriodSec = 0.2;
    cfg.diurnalTroughFraction = 0.25;
    net::ArrivalProcess p(cfg);
    const double half = cfg.diurnalPeriodSec / 2.0;
    // Rising half: trough -> peak, monotone non-decreasing.
    double prev = p.rateAt(0.0);
    EXPECT_NEAR(prev, cfg.rate * cfg.diurnalTroughFraction,
                cfg.rate * 1e-9);
    for (int i = 1; i <= 100; ++i) {
        const double r = p.rateAt(half * i / 100.0);
        ASSERT_GE(r, prev - 1e-9) << "rising sample " << i;
        prev = r;
    }
    EXPECT_NEAR(prev, cfg.rate, cfg.rate * 1e-9);
    // Falling half: peak -> trough, monotone non-increasing.
    for (int i = 1; i <= 100; ++i) {
        const double r = p.rateAt(half + half * i / 100.0);
        ASSERT_LE(r, prev + 1e-9) << "falling sample " << i;
        prev = r;
    }
    // Periodicity: one full period later the curve repeats.
    EXPECT_NEAR(p.rateAt(0.03), p.rateAt(0.03 + cfg.diurnalPeriodSec),
                cfg.rate * 1e-9);
    // The envelope never exceeds the thinning bound.
    for (int i = 0; i <= 200; ++i)
        ASSERT_LE(p.rateAt(cfg.diurnalPeriodSec * i / 200.0),
                  p.peakRate() + 1e-9);
}

TEST(NetArrival, FlashEnvelopeStepsExactlyAtWindow)
{
    net::ArrivalConfig cfg = poissonConfig(80e3, 1);
    cfg.kind = net::ArrivalKind::Flash;
    cfg.flashStartSec = 0.05;
    cfg.flashDurationSec = 0.02;
    cfg.flashMultiplier = 8.0;
    net::ArrivalProcess p(cfg);
    EXPECT_DOUBLE_EQ(p.rateAt(0.0), cfg.rate);
    EXPECT_DOUBLE_EQ(p.rateAt(0.049999), cfg.rate);
    EXPECT_DOUBLE_EQ(p.rateAt(0.05), cfg.rate * 8.0);
    EXPECT_DOUBLE_EQ(p.rateAt(0.069999), cfg.rate * 8.0);
    EXPECT_DOUBLE_EQ(p.rateAt(0.07), cfg.rate);
    EXPECT_DOUBLE_EQ(p.peakRate(), cfg.rate * 8.0);
}

TEST(NetArrival, PoissonEnvelopeIsFlat)
{
    net::ArrivalProcess p(poissonConfig(120e3, 1));
    for (double t : {0.0, 0.01, 0.5, 3.0})
        EXPECT_DOUBLE_EQ(p.rateAt(t), 120e3);
    EXPECT_DOUBLE_EQ(p.peakRate(), 120e3);
}

// ---- gap positivity (fuzz) ---------------------------------------------

TEST(NetArrival, FuzzNoZeroOrNegativeGaps)
{
    // Sweep seeds x kinds x extreme rates; every gap must be >= 1 ps
    // and arrival seconds strictly increasing. Extremely high rates
    // force sub-ps raw gaps, exercising the clamp.
    for (uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        for (double rate : {1e3, 500e3, 5e9}) {
            for (net::ArrivalKind kind :
                 {net::ArrivalKind::Poisson, net::ArrivalKind::Diurnal,
                  net::ArrivalKind::Flash}) {
                net::ArrivalConfig cfg = poissonConfig(rate, seed);
                cfg.kind = kind;
                cfg.flashMultiplier = 16.0;
                net::ArrivalProcess p(cfg);
                for (int i = 0; i < 2000; ++i)
                    ASSERT_GE(p.nextGap(), des::Time(1))
                        << net::arrivalKindName(kind) << " seed " << seed
                        << " rate " << rate << " arrival " << i;
            }
        }
    }
}

TEST(NetArrival, ArrivalSecondsStrictlyIncrease)
{
    for (net::ArrivalKind kind :
         {net::ArrivalKind::Poisson, net::ArrivalKind::Diurnal,
          net::ArrivalKind::Flash}) {
        net::ArrivalConfig cfg = poissonConfig(300e3, 9);
        cfg.kind = kind;
        net::ArrivalProcess p(cfg);
        double prev = 0.0;
        for (int i = 0; i < 5000; ++i) {
            const double t = p.nextArrivalSeconds();
            ASSERT_GT(t, prev)
                << net::arrivalKindName(kind) << " arrival " << i;
            prev = t;
        }
    }
}

// ---- name round-trips --------------------------------------------------

TEST(NetArrival, KindNamesRoundTrip)
{
    for (net::ArrivalKind kind :
         {net::ArrivalKind::Closed, net::ArrivalKind::Poisson,
          net::ArrivalKind::Diurnal, net::ArrivalKind::Flash}) {
        const auto parsed =
            net::parseArrivalKind(net::arrivalKindName(kind));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_FALSE(net::parseArrivalKind("bursty").has_value());
    EXPECT_FALSE(net::parseArrivalKind("").has_value());
}

} // namespace
