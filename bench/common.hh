/**
 * @file
 * Shared helpers for the benchmark harness: paper reference values and
 * uniform printing. Every bench binary regenerates one table or figure
 * of the paper and prints measured rows next to the paper's reference
 * values so the shape comparison is immediate.
 */

#ifndef RHYTHM_BENCH_COMMON_HH
#define RHYTHM_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "des/time.hh"
#include "fault/device_injector.hh"
#include "fault/plan.hh"
#include "net/arrival.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "platform/titan.hh"
#include "rhythm/fleet.hh"
#include "rhythm/server.hh"
#include "simt/device.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace rhythm::bench {

/**
 * Applies a `--sim-threads=N` argument (host-side parallelism of the
 * simulator's execution engine; default 1 = serial) to the global sim
 * pool. Called by the Reporter constructor, so every bench accepts the
 * flag; rhythm_sim parses it through its own Flags machinery. N only
 * changes wall-clock time — all simulated outputs are byte-identical
 * by the engine's determinism contract, which is why the value is
 * deliberately NOT recorded in the --json config section.
 */
inline void
applySimThreads(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.rfind("--sim-threads=", 0) == 0) {
            const int n = std::atoi(std::string(arg.substr(14)).c_str());
            util::setSimThreads(n > 0 ? static_cast<unsigned>(n) : 1);
        }
    }
}

/** Paper Table 3 reference values for one platform row. */
struct PaperTable3Row
{
    const char *name;
    double idleWatts;
    double wallWatts;
    double dynamicWatts;
    double latencyMs;
    double throughputK; //!< KReqs/s
    double rpjWall;
    double rpjDynamic;
};

/** The paper's Table 3 (SPECWeb Banking experimental results). */
inline constexpr PaperTable3Row kPaperTable3[] = {
    {"Core i5 1 worker", 47, 67, 20, 0.016, 75, 972, 3283},
    {"Core i5 4 workers", 47, 98, 51, 0.016, 282, 2447, 4712},
    {"Core i7 4 workers", 45, 147, 102, 0.014, 331, 1901, 2735},
    {"Core i7 8 workers", 45, 156, 111, 0.014, 377, 2042, 2873},
    {"ARM A9 1 worker", 2, 3.4, 1.4, 0.176, 8, 1672, 4061},
    {"ARM A9 2 workers", 2, 4.5, 2.5, 0.176, 16, 2683, 4830},
    {"Titan A", 74, 226, 152, 86, 398, 1469, 2193},
    {"Titan B", 74, 306, 232, 24, 1535, 3329, 4410},
    {"Titan C", 74, 285, 211, 10, 3082, 9070, 12264},
};

/** Prints a bench banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "\n=================================================="
                 "====================\n"
              << title << "\n"
              << "Reproduces: " << paper_ref << "\n"
              << "=================================================="
                 "====================\n";
}

/** Formats a double with given precision (shorthand). */
inline std::string
fmt(double v, int precision = 2)
{
    return formatDouble(v, precision);
}

/** Formats "measured (paper ref)" in one cell. */
inline std::string
withRef(double measured, double reference, int precision = 2)
{
    return formatDouble(measured, precision) + " (" +
           formatDouble(reference, precision) + ")";
}

/** Lower-cases and underscores a display name into a stable metric key. */
inline std::string
slug(std::string_view name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (c >= 'A' && c <= 'Z')
            out.push_back(static_cast<char>(c - 'A' + 'a'));
        else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
            out.push_back(c);
        else if (c == ' ' || c == '/' || c == '-')
            out.push_back('_');
        // Anything else (punctuation) is dropped.
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out;
}

/** Peak resident set size of this process in KiB (0 if unavailable). */
inline double
peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
        return static_cast<double>(usage.ru_maxrss) / 1024.0;
#else
        return static_cast<double>(usage.ru_maxrss);
#endif
    }
#endif
    return 0.0;
}

/**
 * Machine-readable bench output: every bench binary accepts
 * `--json=<path>` and, when given, emits one JSON document
 *
 *     {"bench": <name>, "config": {...}, "metrics": {...}}
 *
 * with flat dotted metric keys (e.g. "titan_b.throughput"). The schema
 * is shared by all benches and by `rhythm_sim --json`, and is what
 * tools/check_bench.py compares against bench/baselines/ in the CI
 * perf gate — so metric keys are part of a stable interface: renaming
 * one requires regenerating the baselines.
 *
 * Benches that also measure host-side performance opt into a fourth
 * top-level "host" object (enableHostStats): wall-clock since Reporter
 * construction ("host_ms"), peak RSS ("peak_rss_kb") and any values
 * recorded with hostStat(). Host values are machine-dependent, so
 * check_bench.py gates them with a separate, wider tolerance band
 * (--host-tolerance) than the exact deterministic metrics — and the
 * section stays off by default so outputs that CI byte-compares across
 * runs (e.g. rhythm_sim at different --sim-threads) remain identical.
 */
class Reporter
{
  public:
    /** @param bench Stable bench name (matches the binary name). */
    Reporter(std::string bench, int argc, char **argv)
        : bench_(std::move(bench))
    {
        for (int i = 1; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.rfind("--json=", 0) == 0)
                path_ = std::string(arg.substr(7));
        }
        applySimThreads(argc, argv);
    }

    /** True when --json=<path> was passed. */
    bool enabled() const { return !path_.empty(); }

    /** Records a config key (run parameters, not compared by the gate). */
    void config(std::string key, double value)
    {
        config_.push_back({std::move(key), value, {}, false});
    }
    void config(std::string key, std::string value)
    {
        config_.push_back({std::move(key), 0.0, std::move(value), true});
    }

    /** Records one gate-comparable metric. */
    void metric(std::string key, double value)
    {
        metrics_.push_back({std::move(key), value});
    }

    /**
     * Records every metric of a registry (flattened dotted keys),
     * minus any whose name starts with @p exclude_prefix.
     */
    void metricsFrom(const obs::MetricsRegistry &registry,
                     const std::string &prefix = "",
                     std::string_view exclude_prefix = {})
    {
        for (auto &[key, value] : registry.flatten(exclude_prefix))
            metric(prefix + key, value);
    }

    /** Multi-prefix variant (see MetricsRegistry::flatten overload). */
    void metricsFrom(const obs::MetricsRegistry &registry,
                     const std::string &prefix,
                     std::span<const std::string_view> exclude_prefixes)
    {
        for (auto &[key, value] : registry.flatten(exclude_prefixes))
            metric(prefix + key, value);
    }

    /** Turns on the "host" section of the document (see class docs). */
    void enableHostStats() { hostStats_ = true; }

    /** Records one host-section value (implies enableHostStats). */
    void hostStat(std::string key, double value)
    {
        hostStats_ = true;
        host_.push_back({std::move(key), value});
    }

    /**
     * Writes the JSON document; no-op without --json. Returns false
     * (and prints to stderr) when the file cannot be written.
     */
    bool write() const
    {
        if (path_.empty())
            return true;
        std::ofstream out(path_);
        if (!out) {
            std::cerr << "error: cannot write --json file: " << path_
                      << "\n";
            return false;
        }
        obs::JsonWriter w(out);
        w.beginObject();
        w.key("bench");
        w.value(bench_);
        w.key("config");
        w.beginObject();
        for (const auto &entry : config_) {
            w.key(entry.key);
            if (entry.isString)
                w.value(entry.str);
            else
                w.value(entry.num);
        }
        w.endObject();
        w.key("metrics");
        w.beginObject();
        for (const auto &[key, value] : metrics_) {
            w.key(key);
            w.value(value);
        }
        w.endObject();
        if (hostStats_) {
            w.key("host");
            w.beginObject();
            w.key("host_ms");
            w.value(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
            w.key("peak_rss_kb");
            w.value(peakRssKb());
            for (const auto &[key, value] : host_) {
                w.key(key);
                w.value(value);
            }
            w.endObject();
        }
        w.endObject();
        out << "\n";
        return out.good();
    }

  private:
    struct ConfigEntry
    {
        std::string key;
        double num = 0.0;
        std::string str;
        bool isString = false;
    };

    std::string bench_;
    std::string path_;
    std::vector<ConfigEntry> config_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, double>> host_;
    bool hostStats_ = false;
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

/**
 * Shared fault-injection / robustness flag vocabulary for the bench
 * binaries — the same names rhythm_sim accepts, parsed from argv by
 * prefix scan so every bench registers the whole family with one
 * FaultFlags::parse call. Every knob defaults off: a bench invoked
 * without fault flags produces byte-identical output to one that never
 * supported them.
 *
 *   --fault-seed=N          fault plan seed (1)
 *   --backend-fail=P        backend call failure probability
 *   --backend-slow=P        backend brownout probability
 *   --backend-slow-ms=X     mean brownout delay (5.0)
 *   --pcie-corrupt=P        PCIe corruption probability
 *   --pcie-degrade=P        PCIe degradation probability
 *   --pcie-degrade-factor=X degradation slowdown (2.0)
 *   --stall=P               stream stall probability
 *   --stall-ms=X            mean stall duration (1.0)
 *   --disconnect=P          client disconnect probability
 *   --crash=P               backend crash probability (per mutation)
 *   --torn=P                torn journal tail probability (per crash)
 *   --hang=P                kernel hang probability (per cohort)
 *   --hang-ms=X             mean injected hang stall (500)
 *   --watchdog-ms=X         cohort watchdog timeout (0 = off)
 *   --pcie-crc              PCIe frame CRC + bounded retransmit
 *   --recovery              write-ahead-journaled backend
 *   --checkpoint-interval=N journaled mutations per checkpoint (4096)
 *   --retry-budget=N        backend retries per cohort
 *   --backoff-us=X          retry backoff base (50)
 *   --deadline-ms=X         per-request deadline
 *   --shed-backlog=N        shed above this formation backlog
 *   --shed-p99-ms=X         shed above this observed p99
 */
struct FaultFlags
{
    fault::FaultConfig config;
    uint32_t retryBudget = 0;
    des::Time retryBackoff = 50 * des::kMicrosecond;
    des::Time deadline = 0;
    uint32_t shedBacklog = 0;
    des::Time shedP99 = 0;
    des::Time watchdogTimeout = 0;
    bool pcieCrc = false;
    bool recovery = false;
    uint64_t checkpointInterval = 4096;
    bool anyGiven = false; //!< Any flag of the family was present.

    /** Parses the family out of argv (unknown flags are ignored —
     *  benches have their own vocabulary on top). */
    static FaultFlags parse(int argc, char **argv)
    {
        FaultFlags f;
        auto num = [&](std::string_view arg, std::string_view name,
                       double &out) {
            if (!arg.starts_with("--") ||
                arg.substr(2, name.size()) != name ||
                arg.size() <= 2 + name.size() ||
                arg[2 + name.size()] != '=')
                return false;
            out = std::atof(
                std::string(arg.substr(3 + name.size())).c_str());
            f.anyGiven = true;
            return true;
        };
        auto flag = [&](std::string_view arg, std::string_view name) {
            if (arg.substr(2) != name)
                return false;
            f.anyGiven = true;
            return true;
        };
        for (int i = 1; i < argc; ++i) {
            const std::string_view arg = argv[i];
            double v = 0.0;
            if (num(arg, "fault-seed", v))
                f.config.seed = static_cast<uint64_t>(v);
            else if (num(arg, "backend-fail", v))
                f.config.at(fault::Site::BackendFail).probability = v;
            else if (num(arg, "backend-slow-ms", v))
                f.config.at(fault::Site::BackendSlow).meanDelay =
                    des::fromSeconds(v / 1e3);
            else if (num(arg, "backend-slow", v))
                f.config.at(fault::Site::BackendSlow).probability = v;
            else if (num(arg, "pcie-corrupt", v))
                f.config.at(fault::Site::PcieCorrupt).probability = v;
            else if (num(arg, "pcie-degrade-factor", v))
                f.config.at(fault::Site::PcieDegrade).factor = v;
            else if (num(arg, "pcie-degrade", v))
                f.config.at(fault::Site::PcieDegrade).probability = v;
            else if (num(arg, "stall-ms", v))
                f.config.at(fault::Site::StreamStall).meanDelay =
                    des::fromSeconds(v / 1e3);
            else if (num(arg, "stall", v))
                f.config.at(fault::Site::StreamStall).probability = v;
            else if (num(arg, "disconnect", v))
                f.config.at(fault::Site::ClientDisconnect).probability =
                    v;
            else if (num(arg, "crash", v))
                f.config.at(fault::Site::BackendCrash).probability = v;
            else if (num(arg, "torn", v))
                f.config.at(fault::Site::JournalTorn).probability = v;
            else if (num(arg, "hang-ms", v))
                f.config.at(fault::Site::KernelHang).meanDelay =
                    des::fromSeconds(v / 1e3);
            else if (num(arg, "hang", v))
                f.config.at(fault::Site::KernelHang).probability = v;
            else if (num(arg, "watchdog-ms", v))
                f.watchdogTimeout = des::fromSeconds(v / 1e3);
            else if (num(arg, "checkpoint-interval", v))
                f.checkpointInterval = static_cast<uint64_t>(v);
            else if (num(arg, "retry-budget", v))
                f.retryBudget = static_cast<uint32_t>(v);
            else if (num(arg, "backoff-us", v))
                f.retryBackoff = des::fromSeconds(v / 1e6);
            else if (num(arg, "deadline-ms", v))
                f.deadline = des::fromSeconds(v / 1e3);
            else if (num(arg, "shed-backlog", v))
                f.shedBacklog = static_cast<uint32_t>(v);
            else if (num(arg, "shed-p99-ms", v))
                f.shedP99 = des::fromSeconds(v / 1e3);
            else if (arg.starts_with("--") && flag(arg, "pcie-crc"))
                f.pcieCrc = true;
            else if (arg.starts_with("--") && flag(arg, "recovery"))
                f.recovery = true;
        }
        return f;
    }

    /** True when no fault site fires (robustness knobs may still be
     *  set). */
    bool quiet() const { return config.allQuiet(); }

    /** Overlays the robustness knobs onto a server config. */
    void apply(core::RhythmConfig &cfg) const
    {
        if (retryBudget > 0)
            cfg.backendRetryBudget = retryBudget;
        if (retryBackoff != 50 * des::kMicrosecond)
            cfg.retryBackoffBase = retryBackoff;
        if (deadline > 0)
            cfg.requestDeadline = deadline;
        if (shedBacklog > 0)
            cfg.shedBacklogLimit = shedBacklog;
        if (shedP99 > 0)
            cfg.shedLatencySlo = shedP99;
        if (watchdogTimeout > 0)
            cfg.watchdogTimeout = watchdogTimeout;
    }

    /** Overlays the link-model knob onto a device config. */
    void apply(simt::DeviceConfig &cfg) const
    {
        if (pcieCrc)
            cfg.pcieCrcEnabled = true;
    }

    /** Overlays everything onto an isolated-run options block (the
     *  evaluateTitan/runIsolatedType path). */
    void apply(platform::IsolatedRunOptions &opts) const
    {
        opts.faults = config;
        opts.retryBudget = retryBudget;
        opts.watchdogTimeout = watchdogTimeout;
        opts.pcieFrameCrc = pcieCrc;
        opts.recovery = recovery;
        opts.checkpointInterval = checkpointInterval;
    }

    /**
     * Arms a directly-driven server/device pair. @p plan is the
     * caller's storage (declared next to the server so it outlives the
     * run); it is engaged and installed only when the schedule is
     * non-quiet.
     */
    void arm(core::RhythmServer &server, simt::Device &device,
             des::EventQueue &queue,
             std::optional<fault::FaultPlan> &plan) const
    {
        if (quiet())
            return;
        plan.emplace(config);
        server.setFaultPlan(&*plan);
        fault::installDeviceFaults(device, *plan, queue);
    }

    /**
     * Records the fault-schedule metadata in the --json config section
     * (only when any family flag was given, so default outputs stay
     * byte-identical). check_bench.py requires these keys for
     * fault-sweeping benches (ext_recovery).
     */
    void recordConfig(Reporter &rep) const
    {
        if (!anyGiven)
            return;
        rep.config("fault_seed", static_cast<double>(config.seed));
        std::string schedule;
        const auto add = [&](const char *name, fault::Site site) {
            const auto &s = config.at(site);
            if (s.probability <= 0.0)
                return;
            if (!schedule.empty())
                schedule += ";";
            schedule += std::string(name) + "=" +
                        formatDouble(s.probability, 6);
        };
        add("backend-fail", fault::Site::BackendFail);
        add("backend-slow", fault::Site::BackendSlow);
        add("pcie-corrupt", fault::Site::PcieCorrupt);
        add("pcie-degrade", fault::Site::PcieDegrade);
        add("stall", fault::Site::StreamStall);
        add("disconnect", fault::Site::ClientDisconnect);
        add("crash", fault::Site::BackendCrash);
        add("torn", fault::Site::JournalTorn);
        add("hang", fault::Site::KernelHang);
        rep.config("fault_schedule",
                   schedule.empty() ? std::string("quiet") : schedule);
        rep.config("recovery", recovery ? 1.0 : 0.0);
        rep.config("watchdog_ms",
                   des::toSeconds(watchdogTimeout) * 1e3);
        rep.config("pcie_crc", pcieCrc ? 1.0 : 0.0);
    }
};

/**
 * Shared transfer/compute-overlap flag vocabulary for the bench
 * binaries — the same names rhythm_sim accepts (DESIGN.md 6h). Every
 * knob defaults off, so a bench invoked without overlap flags produces
 * byte-identical output to one that never supported them.
 *
 *   --overlap=on|off    pipelined parser/dispatch + scissored transfers
 *                       (on also defaults copy engines/chunking below)
 *   --copy-engines=N    modeled DMA copy engines per direction
 *   --copy-chunk-kb=N   chunk granularity of overlapped transfers
 */
struct OverlapFlags
{
    /** Default engines / chunk size implied by --overlap=on alone. */
    static constexpr int kDefaultEngines = 4;
    static constexpr uint32_t kDefaultChunkBytes = 256 * 1024;

    bool overlap = false;
    int copyEngines = 0;        //!< 0 = mode default.
    uint32_t copyChunkBytes = 0; //!< 0 = mode default.
    bool anyGiven = false;       //!< Any flag of the family was present.

    static OverlapFlags parse(int argc, char **argv)
    {
        OverlapFlags f;
        for (int i = 1; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.rfind("--overlap=", 0) == 0) {
                f.overlap = arg.substr(10) == "on";
                f.anyGiven = true;
            } else if (arg.rfind("--copy-engines=", 0) == 0) {
                f.copyEngines =
                    std::atoi(std::string(arg.substr(15)).c_str());
                f.anyGiven = true;
            } else if (arg.rfind("--copy-chunk-kb=", 0) == 0) {
                f.copyChunkBytes = static_cast<uint32_t>(
                    std::atoi(std::string(arg.substr(16)).c_str()) *
                    1024);
                f.anyGiven = true;
            }
        }
        return f;
    }

    /** Engines actually configured (--overlap=on implies a pool). */
    int effectiveEngines() const
    {
        if (copyEngines > 0)
            return copyEngines;
        return overlap ? kDefaultEngines : 1;
    }

    /** Chunk bytes actually configured (--overlap=on implies chunking). */
    uint32_t effectiveChunkBytes() const
    {
        if (copyChunkBytes > 0)
            return copyChunkBytes;
        return overlap ? kDefaultChunkBytes : 0;
    }

    /** Overlays the copy-engine knobs onto a device config. */
    void apply(simt::DeviceConfig &cfg) const
    {
        if (!anyGiven)
            return;
        cfg.copyEngines = effectiveEngines();
        cfg.copyChunkBytes = effectiveChunkBytes();
    }

    /** Overlays the pipeline knob onto a server config. */
    void apply(core::RhythmConfig &cfg) const
    {
        if (overlap)
            cfg.overlapPipeline = true;
    }

    /** Overlays everything onto an isolated-run options block. */
    void apply(platform::IsolatedRunOptions &opts) const
    {
        if (!anyGiven)
            return;
        opts.overlapPipeline = overlap;
        opts.copyEngines = effectiveEngines();
        opts.copyChunkBytes = effectiveChunkBytes();
    }

    /**
     * Records the overlap configuration in the --json config section
     * (only when any family flag was given). check_bench.py requires
     * these keys for the overlap acceptance bench (ext_overlap).
     */
    void recordConfig(Reporter &rep) const
    {
        if (!anyGiven)
            return;
        rep.config("overlap", overlap ? 1.0 : 0.0);
        rep.config("copy_engines",
                   static_cast<double>(effectiveEngines()));
        rep.config("copy_chunk_kb", effectiveChunkBytes() / 1024.0);
    }
};

/**
 * Shared deadline-aware adaptive-batching flag vocabulary — the same
 * names rhythm_sim accepts (DESIGN.md Section 6i). Every knob defaults
 * off, so a bench invoked without batching flags (or with the explicit
 * default `--batching=fixed` alone) produces byte-identical output to
 * one that never supported them.
 *
 *   --batching=fixed|adaptive  cohort formation policy (fixed)
 *   --deadline-default-ms=X    deadline for types without their own
 *   --deadline-ms-<type>=X     per-type deadline, keyed by the slugged
 *                              type name (e.g. --deadline-ms-transfer=3,
 *                              --deadline-ms-post_payee=3)
 *   --slack-safety=X           cost-estimate safety factor (1.2)
 *   --adaptive-scan-us=X       slack-scan period (200)
 *   --admission=on|off         deadline-aware admission control (on)
 */
struct BatchingFlags
{
    bool adaptive = false;
    double defaultDeadlineMs = 0.0; //!< 0 = server default.
    double slackSafety = 0.0;       //!< 0 = server default.
    double scanUs = 0.0;            //!< 0 = server default.
    int admission = -1;             //!< -1 = server default.
    /** Per-type deadlines as (slugged type name, ms) pairs. */
    std::vector<std::pair<std::string, double>> typeDeadlinesMs;
    bool anyGiven = false; //!< Any flag of the family was present.

    static BatchingFlags parse(int argc, char **argv)
    {
        BatchingFlags f;
        for (int i = 1; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.rfind("--batching=", 0) == 0) {
                const std::string_view mode = arg.substr(11);
                if (mode != "fixed" && mode != "adaptive") {
                    std::cerr << "error: --batching must be fixed or "
                                 "adaptive, got: "
                              << mode << "\n";
                    std::exit(2);
                }
                f.adaptive = mode == "adaptive";
                f.anyGiven = true;
            } else if (arg.rfind("--deadline-default-ms=", 0) == 0) {
                f.defaultDeadlineMs =
                    std::atof(std::string(arg.substr(22)).c_str());
                f.anyGiven = true;
            } else if (arg.rfind("--deadline-ms-", 0) == 0) {
                const std::string_view rest = arg.substr(14);
                const size_t eq = rest.find('=');
                if (eq == std::string_view::npos || eq == 0)
                    continue;
                f.typeDeadlinesMs.emplace_back(
                    std::string(rest.substr(0, eq)),
                    std::atof(
                        std::string(rest.substr(eq + 1)).c_str()));
                f.anyGiven = true;
            } else if (arg.rfind("--slack-safety=", 0) == 0) {
                f.slackSafety =
                    std::atof(std::string(arg.substr(15)).c_str());
                f.anyGiven = true;
            } else if (arg.rfind("--adaptive-scan-us=", 0) == 0) {
                f.scanUs =
                    std::atof(std::string(arg.substr(19)).c_str());
                f.anyGiven = true;
            } else if (arg.rfind("--admission=", 0) == 0) {
                f.admission = arg.substr(12) == "on" ? 1 : 0;
                f.anyGiven = true;
            }
        }
        return f;
    }

    /**
     * Overlays the batching policy onto a server config, resolving
     * per-type deadline slugs against @p service's type names. Exits
     * with an error on a slug no type matches (a silently ignored
     * deadline would invalidate a whole sweep).
     */
    void apply(core::RhythmConfig &cfg,
               const core::Service &service) const
    {
        if (!anyGiven)
            return;
        cfg.adaptiveBatching = adaptive;
        if (defaultDeadlineMs > 0)
            cfg.defaultDeadline = des::fromSeconds(defaultDeadlineMs / 1e3);
        if (slackSafety > 0)
            cfg.slackSafety = slackSafety;
        if (scanUs > 0)
            cfg.adaptiveScanInterval = des::fromSeconds(scanUs / 1e6);
        if (admission >= 0)
            cfg.adaptiveAdmission = admission != 0;
        if (typeDeadlinesMs.empty())
            return;
        cfg.typeDeadlines.assign(service.numTypes(), 0);
        for (const auto &[name, ms] : typeDeadlinesMs) {
            bool found = false;
            for (uint32_t t = 0; t < service.numTypes(); ++t) {
                if (slug(service.typeName(t)) == name) {
                    cfg.typeDeadlines[t] = des::fromSeconds(ms / 1e3);
                    found = true;
                    break;
                }
            }
            if (!found) {
                std::cerr << "error: --deadline-ms-" << name
                          << " matches no request type; known types:";
                for (uint32_t t = 0; t < service.numTypes(); ++t)
                    std::cerr << " " << slug(service.typeName(t));
                std::cerr << "\n";
                std::exit(2);
            }
        }
    }

    /**
     * Records the batching policy in the --json config section (only
     * when any family flag was given). check_bench.py requires these
     * keys for the adaptive acceptance bench (ext_adaptive_batching).
     */
    /** True when every knob still holds its default — an explicit
     *  `--batching=fixed` alone must leave outputs (including the
     *  --json document) byte-identical to a run without the flag. */
    bool allDefault() const
    {
        return !adaptive && typeDeadlinesMs.empty() &&
               defaultDeadlineMs <= 0 && slackSafety <= 0 &&
               scanUs <= 0 && admission < 0;
    }

    void recordConfig(Reporter &rep) const
    {
        if (!anyGiven || allDefault())
            return;
        rep.config("batching",
                   std::string(adaptive ? "adaptive" : "fixed"));
        if (defaultDeadlineMs > 0)
            rep.config("deadline_default_ms", defaultDeadlineMs);
        if (!typeDeadlinesMs.empty()) {
            std::string spec;
            for (const auto &[name, ms] : typeDeadlinesMs) {
                if (!spec.empty())
                    spec += ";";
                spec += name + "=" + formatDouble(ms, 3);
            }
            rep.config("deadline_ms", spec);
        }
        if (slackSafety > 0)
            rep.config("slack_safety", slackSafety);
        if (admission >= 0)
            rep.config("admission", static_cast<double>(admission));
    }
};

/**
 * Shared open-loop arrival flag vocabulary — the same names rhythm_sim
 * accepts (DESIGN.md Section 6i). Default is the historical closed
 * loop, so a bench invoked without arrival flags produces
 * byte-identical output to one that never supported them.
 *
 *   --arrival=closed|poisson|diurnal|flash  arrival process (closed)
 *   --arrival-rate=X        mean arrival rate, requests/s (200000)
 *   --arrival-seed=N        arrival-stream RNG seed (1)
 *   --flash-mult=X          flash-crowd rate multiplier (8)
 *   --flash-start-ms=X      flash onset (50)
 *   --flash-dur-ms=X        flash duration (50)
 *   --diurnal-period-ms=X   diurnal cycle period (200)
 *   --diurnal-trough=F      trough rate as a fraction of peak (0.25)
 */
struct ArrivalFlags
{
    net::ArrivalConfig config;
    bool anyGiven = false; //!< Any flag of the family was present.

    ArrivalFlags() { config.kind = net::ArrivalKind::Closed; }

    static ArrivalFlags parse(int argc, char **argv)
    {
        ArrivalFlags f;
        for (int i = 1; i < argc; ++i) {
            const std::string_view arg = argv[i];
            double v = 0.0;
            auto num = [&](std::string_view name) {
                if (arg.rfind(name, 0) != 0)
                    return false;
                v = std::atof(
                    std::string(arg.substr(name.size())).c_str());
                f.anyGiven = true;
                return true;
            };
            if (arg.rfind("--arrival=", 0) == 0) {
                const auto kind =
                    net::parseArrivalKind(arg.substr(10));
                if (!kind) {
                    std::cerr << "error: --arrival must be closed, "
                                 "poisson, diurnal or flash, got: "
                              << arg.substr(10) << "\n";
                    std::exit(2);
                }
                f.config.kind = *kind;
                f.anyGiven = true;
            } else if (num("--arrival-rate="))
                f.config.rate = v;
            else if (num("--arrival-seed="))
                f.config.seed = static_cast<uint64_t>(v);
            else if (num("--flash-mult="))
                f.config.flashMultiplier = v;
            else if (num("--flash-start-ms="))
                f.config.flashStartSec = v / 1e3;
            else if (num("--flash-dur-ms="))
                f.config.flashDurationSec = v / 1e3;
            else if (num("--diurnal-period-ms="))
                f.config.diurnalPeriodSec = v / 1e3;
            else if (num("--diurnal-trough="))
                f.config.diurnalTroughFraction = v;
        }
        return f;
    }

    /** True when requests arrive open-loop (a generator drives time). */
    bool open() const
    {
        return config.kind != net::ArrivalKind::Closed;
    }

    /**
     * Records the arrival process in the --json config section (only
     * for open-loop runs — an explicit `--arrival=closed` alone must
     * leave the document byte-identical to a run without the flag).
     */
    void recordConfig(Reporter &rep) const
    {
        if (!anyGiven || !open())
            return;
        rep.config("arrival",
                   std::string(net::arrivalKindName(config.kind)));
        rep.config("arrival_rate", config.rate);
        rep.config("arrival_seed", static_cast<double>(config.seed));
        if (config.kind == net::ArrivalKind::Flash) {
            rep.config("flash_mult", config.flashMultiplier);
            rep.config("flash_start_ms", config.flashStartSec * 1e3);
            rep.config("flash_dur_ms", config.flashDurationSec * 1e3);
        }
        if (config.kind == net::ArrivalKind::Diurnal) {
            rep.config("diurnal_period_ms",
                       config.diurnalPeriodSec * 1e3);
            rep.config("diurnal_trough",
                       config.diurnalTroughFraction);
        }
    }
};

/**
 * Shared cross-type cohort-fusion flag vocabulary — the same names
 * rhythm_sim accepts (DESIGN.md Section 6j). Fusion defaults off, so a
 * bench invoked without fusion flags (or with an explicit
 * `--fusion=off` alone) produces byte-identical output to one that
 * never supported them.
 *
 *   --fusion=on|off            pack similarity-compatible partial
 *                              cohorts into shared warps (off)
 *   --fusion-threshold=X       minimum online pair similarity to fuse
 *                              (0.5 — the Figure 2 indifference point)
 *   --fusion-max-cohorts=N     cohorts fusable into one launch (4)
 *   --fingerprint-alpha=X      similarity EWMA smoothing factor (0.25)
 *   --fingerprint-lanes=N      lanes sampled per fingerprint update (32)
 */
struct FusionFlags
{
    bool fusion = false;
    double threshold = 0.0;  //!< 0 = server default.
    uint32_t maxCohorts = 0; //!< 0 = server default.
    double alpha = 0.0;      //!< 0 = server default.
    uint32_t lanes = 0;      //!< 0 = server default.
    bool anyGiven = false;   //!< Any flag of the family was present.

    static FusionFlags parse(int argc, char **argv)
    {
        FusionFlags f;
        for (int i = 1; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.rfind("--fusion=", 0) == 0) {
                const std::string_view mode = arg.substr(9);
                if (mode != "on" && mode != "off") {
                    std::cerr << "error: --fusion must be on or off, "
                                 "got: "
                              << mode << "\n";
                    std::exit(2);
                }
                f.fusion = mode == "on";
                f.anyGiven = true;
            } else if (arg.rfind("--fusion-threshold=", 0) == 0) {
                f.threshold =
                    std::atof(std::string(arg.substr(19)).c_str());
                f.anyGiven = true;
            } else if (arg.rfind("--fusion-max-cohorts=", 0) == 0) {
                f.maxCohorts = static_cast<uint32_t>(
                    std::atoi(std::string(arg.substr(21)).c_str()));
                f.anyGiven = true;
            } else if (arg.rfind("--fingerprint-alpha=", 0) == 0) {
                f.alpha =
                    std::atof(std::string(arg.substr(20)).c_str());
                f.anyGiven = true;
            } else if (arg.rfind("--fingerprint-lanes=", 0) == 0) {
                f.lanes = static_cast<uint32_t>(
                    std::atoi(std::string(arg.substr(20)).c_str()));
                f.anyGiven = true;
            }
        }
        return f;
    }

    /** Overlays the fusion policy onto a server config. */
    void apply(core::RhythmConfig &cfg) const
    {
        if (!anyGiven)
            return;
        cfg.fusionEnabled = fusion;
        if (threshold > 0)
            cfg.fusionSimilarityThreshold = threshold;
        if (maxCohorts > 0)
            cfg.fusionMaxCohorts = maxCohorts;
        if (alpha > 0)
            cfg.fingerprint.alpha = alpha;
        if (lanes > 0)
            cfg.fingerprint.sampleLanes = lanes;
    }

    /**
     * Records the fusion policy in the --json config section (only when
     * fusion is actually on — an explicit `--fusion=off` alone must
     * leave the document byte-identical to a run without the flag).
     * check_bench.py requires these keys for the fusion acceptance
     * bench (ext_warp_fusion).
     */
    void recordConfig(Reporter &rep) const
    {
        if (!anyGiven || !fusion)
            return;
        rep.config("fusion", 1.0);
        rep.config("fusion_threshold", threshold > 0 ? threshold : 0.5);
        rep.config("fusion_max_cohorts",
                   static_cast<double>(maxCohorts > 0 ? maxCohorts : 4));
        rep.config("fingerprint_alpha", alpha > 0 ? alpha : 0.25);
    }
};

/**
 * The multi-device sharding flag family (DESIGN.md 6k), shared by
 * rhythm_sim and the ext_sharding bench:
 *
 *   --devices=N        fleet size (1 = the classic single-device path)
 *   --balance=hash|least
 *                      front-end policy: stable session hash (default)
 *                      or least-outstanding-requests
 *   --shard-seed=N     seed of the user → shard map
 *   --cross-shard=F    fraction of arrivals that additionally start a
 *                      two-phase cross-shard transfer (0 = off)
 */
struct ShardingFlags
{
    uint32_t devices = 1;
    std::string balance = "hash";
    uint64_t shardSeed = core::FleetConfig{}.shardMapSeed;
    double crossShard = 0.0;
    bool anyGiven = false; //!< Any flag of the family was present.

    static ShardingFlags parse(int argc, char **argv)
    {
        ShardingFlags s;
        for (int i = 1; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.rfind("--devices=", 0) == 0) {
                s.devices = static_cast<uint32_t>(
                    std::atoi(std::string(arg.substr(10)).c_str()));
                if (s.devices < 1) {
                    std::cerr << "error: --devices must be >= 1\n";
                    std::exit(2);
                }
                s.anyGiven = true;
            } else if (arg.rfind("--balance=", 0) == 0) {
                s.balance = std::string(arg.substr(10));
                if (s.balance != "hash" && s.balance != "least") {
                    std::cerr << "error: --balance must be hash or "
                                 "least, got: "
                              << s.balance << "\n";
                    std::exit(2);
                }
                s.anyGiven = true;
            } else if (arg.rfind("--shard-seed=", 0) == 0) {
                s.shardSeed = static_cast<uint64_t>(
                    std::atoll(std::string(arg.substr(13)).c_str()));
                s.anyGiven = true;
            } else if (arg.rfind("--cross-shard=", 0) == 0) {
                s.crossShard =
                    std::atof(std::string(arg.substr(14)).c_str());
                if (s.crossShard < 0.0 || s.crossShard > 1.0) {
                    std::cerr
                        << "error: --cross-shard must be in [0, 1]\n";
                    std::exit(2);
                }
                s.anyGiven = true;
            }
        }
        return s;
    }

    bool fleet() const { return devices > 1; }

    /** Builds the fleet config (per-shard config stays RhythmConfig). */
    core::FleetConfig toFleetConfig() const
    {
        core::FleetConfig fc;
        fc.devices = devices;
        fc.balance = balance == "least"
                         ? core::BalanceMode::LeastOutstanding
                         : core::BalanceMode::SessionHash;
        fc.shardMapSeed = shardSeed;
        return fc;
    }

    /**
     * Records the sharding setup in the --json config section (only
     * for actual fleet runs — a `--devices=1` run must leave the
     * document byte-identical to a run without the flag).
     * check_bench.py requires these keys for the sharding acceptance
     * bench (ext_sharding).
     */
    void recordConfig(Reporter &rep) const
    {
        if (!fleet())
            return;
        rep.config("devices", static_cast<double>(devices));
        rep.config("balance", balance);
        rep.config("shard_seed", static_cast<double>(shardSeed));
        if (crossShard > 0)
            rep.config("cross_shard", crossShard);
    }
};

} // namespace rhythm::bench

#endif // RHYTHM_BENCH_COMMON_HH
