# Empty compiler generated dependencies file for backpressure_test.
# This may be replaced when dependencies are built.
