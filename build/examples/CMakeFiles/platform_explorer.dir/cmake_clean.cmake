file(REMOVE_RECURSE
  "CMakeFiles/platform_explorer.dir/platform_explorer.cc.o"
  "CMakeFiles/platform_explorer.dir/platform_explorer.cc.o.d"
  "platform_explorer"
  "platform_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
