# Empty compiler generated dependencies file for ext_search_workload.
# This may be replaced when dependencies are built.
