/**
 * @file
 * Titan platform variants and the evaluation driver (paper Sections 5.3
 * and 6).
 *
 * Titan A/B/C are the paper's progressively idealized GPU server
 * platforms. Each variant pairs a device configuration with a Rhythm
 * server configuration and a power model. The driver runs each request
 * type in isolation (the paper's methodology) on the simulated device
 * and aggregates workload metrics with the Table 2 mix using weighted
 * harmonic means.
 */

#ifndef RHYTHM_PLATFORM_TITAN_HH
#define RHYTHM_PLATFORM_TITAN_HH

#include <array>
#include <string>

#include "fault/plan.hh"
#include "rhythm/server.hh"
#include "simt/kernel.hh"
#include "specweb/types.hh"

namespace rhythm::platform {

/** Power model of a Titan-based server node. */
struct TitanPowerModel
{
    /** Measured system idle power (paper Table 3: 74 W). */
    double idleWatts = 74.0;
    /** Device dynamic power at full utilization. */
    double devicePeakWatts = 225.0;
    /**
     * Fraction of peak the device draws merely by being active (clocks
     * up, polling in-flight stages — the paper notes polling burns
     * power on stalled pipelines, Section 4.1). The rest scales with
     * utilization.
     */
    double deviceActiveFloor = 0.45;
    /** Weight of compute vs DRAM activity in the variable part. */
    double computeWeight = 0.75;
    /** Host-side dynamic power while serving the backend (Titan A). */
    double hostBackendWatts = 55.0;
    /** PCIe/DMA dynamic power at full copy-engine utilization. */
    double pcieWatts = 18.0;
};

/** One Titan platform variant. */
struct TitanVariant
{
    std::string name;
    core::RhythmConfig server;
    simt::DeviceConfig device;
    TitanPowerModel power;
};

/** Titan A: discrete GPU, remote (host) backend, PCIe-bound. */
TitanVariant titanA();
/** Titan B: integrated NIC + device backend (SoC emulation). */
TitanVariant titanB();
/** Titan C: Titan B + response-transpose offload. */
TitanVariant titanC();

/** Result of one isolated request-type run. */
struct TypeRunResult
{
    specweb::RequestType type = specweb::RequestType::Login;
    uint64_t requests = 0;
    double elapsedSeconds = 0.0;
    double throughput = 0.0;   //!< requests/second
    double avgLatencyMs = 0.0;
    double p99LatencyMs = 0.0;
    double deviceUtilization = 0.0;
    double memoryUtilization = 0.0; //!< DRAM bandwidth utilization
    double copyUtilization = 0.0;   //!< busiest PCIe direction
    double hostBackendUtilization = 0.0;
    double simdEfficiency = 0.0;
    /** Idle tail lanes across all process-stage launches (the padding
     *  cohort fusion exists to reclaim; DESIGN.md 6j). */
    uint64_t paddedLanes = 0;
    double dynamicWatts = 0.0;
    double reqsPerJouleDynamic = 0.0;
    double reqsPerJouleWall = 0.0;
    uint64_t pcieBytesPerRequest = 0;
    double responseBytesPerRequest = 0.0;
    // ---- PCIe breakdown (Fig. 9 diagnostics; DESIGN.md 6h) ----------
    double h2dUtilization = 0.0; //!< host→device link occupancy
    double d2hUtilization = 0.0; //!< device→host link occupancy
    uint64_t h2dBytesPerRequest = 0;
    uint64_t d2hBytesPerRequest = 0;
    /** CRC-framed wire bytes per request (0 with the CRC model off). */
    uint64_t pcieWireBytesPerRequest = 0;
    /** Fraction of copy-busy time hidden under kernel execution. */
    double overlapFraction = 0.0;
};

/** Parameters of an isolated run. */
struct IsolatedRunOptions
{
    /** Cohorts to push through (requests = cohorts × cohortSize). */
    uint32_t cohorts = 24;
    /** Bank database size. */
    uint64_t users = 5000;
    /** Lanes executed per cohort (0 = all; see RhythmConfig). */
    uint32_t laneSample = 128;
    uint64_t seed = 42;
    /**
     * Warp profile-cache capacity in entries (0 = off). When set, the
     * run attaches a simt::ProfileCache to the device engine and turns
     * on the parser trace-template cache with the same bound; results
     * are byte-identical either way (the engine's memoization
     * contract), only host wall-clock changes.
     */
    uint32_t profileCacheEntries = 0;

    // ---- Fault / robustness overlay (all off by default, keeping the
    // ---- healthy paper-exact run) ----------------------------------

    /**
     * Fault schedule. When non-quiet, the run arms a fresh
     * FaultPlan(faults) on both the server sites and the device
     * injector, so every isolated type run draws an identical
     * schedule.
     */
    fault::FaultConfig faults;
    /** Overrides RhythmConfig::backendRetryBudget when non-zero. */
    uint32_t retryBudget = 0;
    /** Overrides RhythmConfig::watchdogTimeout when non-zero. */
    des::Time watchdogTimeout = 0;
    /** Turns on the PCIe frame-CRC/retransmit link model. */
    bool pcieFrameCrc = false;
    /**
     * Attaches a write-ahead-journaled RecoverableBackend (with
     * session recovery) so backend mutations apply exactly once across
     * injected crashes and watchdog hedges.
     */
    bool recovery = false;
    /** Journaled mutations per recovery checkpoint. */
    uint64_t checkpointInterval = 4096;

    // ---- Transfer/compute overlap (DESIGN.md 6h) --------------------

    /** Turns on RhythmConfig::overlapPipeline. */
    bool overlapPipeline = false;
    /** Overrides DeviceConfig::copyEngines when > 0. */
    int copyEngines = 0;
    /** Overrides DeviceConfig::copyChunkBytes when > 0. */
    uint32_t copyChunkBytes = 0;
};

/**
 * Runs one request type in isolation on a variant and reports its
 * metrics (the per-type points behind Table 3, Figure 9 and Figure 10).
 */
TypeRunResult runIsolatedType(const TitanVariant &variant,
                              specweb::RequestType type,
                              const IsolatedRunOptions &options);

/** Workload-level aggregation of per-type results (one Table 3 row). */
struct TitanWorkloadResult
{
    std::string name;
    double throughput = 0.0; //!< mix-weighted harmonic mean
    double avgLatencyMs = 0.0;
    double idleWatts = 0.0;
    double wallWatts = 0.0;
    double dynamicWatts = 0.0;
    double reqsPerJouleWall = 0.0;
    double reqsPerJouleDynamic = 0.0;
    std::array<TypeRunResult, specweb::kNumRequestTypes> perType{};
};

/**
 * Runs all 14 request types in isolation and combines them with the
 * Table 2 request mix (weighted harmonic means, Section 5.3.1).
 */
TitanWorkloadResult evaluateTitan(const TitanVariant &variant,
                                  const IsolatedRunOptions &options);

/**
 * Analytic PCIe throughput bound for one request type on a variant
 * (Figure 9): link bandwidth divided by bytes moved per request.
 * @return Bound in requests/second (infinity when nothing crosses PCIe).
 */
double pcieThroughputBound(const TitanVariant &variant,
                           specweb::RequestType type);

} // namespace rhythm::platform

#endif // RHYTHM_PLATFORM_TITAN_HH
