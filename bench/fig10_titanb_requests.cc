/**
 * @file
 * Figure 10: per-request-type throughput-efficiency on Titan B (dynamic
 * power), normalized like Figure 8. The paper's observation: request
 * types whose responses fit their power-of-two Rhythm buffer tightly
 * (login, change profile, transfer) reach 3.5-5x the i7 throughput at
 * 105-120% of the A9's dynamic efficiency, while loose-fit types pay
 * transpose overhead on unused buffer bytes.
 */

#include <iostream>

#include "bench/common.hh"
#include "platform/cpu.hh"
#include "platform/measure.hh"
#include "platform/titan.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("fig10_titanb_requests", argc, argv);
    bench::banner("Figure 10: Titan B per-request throughput-efficiency",
                  "Figure 10 (tight-fit buffers perform best)");

    platform::WorkloadMeasurement wm =
        platform::measureWorkload(60, 2000, 7);
    auto cpus = platform::standardCpuPlatforms();
    const double i7_thr =
        platform::evaluateCpu(cpus[3], wm.mixWeightedInstructions)
            .throughput;
    const double a9_dyn_eff =
        platform::evaluateCpu(cpus[5], wm.mixWeightedInstructions)
            .reqsPerJouleDynamic;

    platform::TitanVariant b = platform::titanB();
    platform::IsolatedRunOptions opts;
    opts.cohorts = 10;
    opts.users = 2000;
    opts.laneSample = 128;
    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.apply(opts);
    faults.recordConfig(report);
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    overlap.apply(opts);
    overlap.recordConfig(report);

    TableWriter table({"request type", "resp KB / buffer KB",
                       "fit %", "norm throughput (vs i7-8w)",
                       "norm dynamic eff (vs A9-2w)", "SIMD eff"});
    for (size_t i = 0; i < specweb::kNumRequestTypes; ++i) {
        const auto &info = specweb::typeTable()[i];
        platform::TypeRunResult r =
            platform::runIsolatedType(b, info.type, opts);
        const double fit =
            info.specwebResponseKb / info.rhythmBufferKb * 100.0;
        const std::string key = bench::slug(info.name);
        report.metric(key + ".norm_throughput", r.throughput / i7_thr);
        report.metric(key + ".norm_dynamic_efficiency",
                      r.reqsPerJouleDynamic / a9_dyn_eff);
        report.metric(key + ".simd_efficiency", r.simdEfficiency);
        table.addRow({std::string(info.name),
                      bench::fmt(info.specwebResponseKb, 0) + " / " +
                          std::to_string(info.rhythmBufferKb),
                      bench::fmt(fit, 0),
                      bench::fmt(r.throughput / i7_thr, 2),
                      bench::fmt(r.reqsPerJouleDynamic / a9_dyn_eff, 2),
                      bench::fmt(r.simdEfficiency, 2)});
    }
    table.printAscii(std::cout);
    std::cout
        << "Paper's observation to verify: tight-fit types (fit% high — "
           "login, change\nprofile, transfer) sit in the desired range; "
           "loose-fit types (fit% low) lose\nthroughput and efficiency "
           "to transposing unused buffer bytes.\n";
    report.config("cohorts", opts.cohorts);
    report.config("users", opts.users);
    if (!report.write())
        return 1;
    return 0;
}
