/**
 * @file
 * Warp-equivalence memoization for the SIMT engine.
 *
 * Cohort scheduling makes warps control-flow-similar (paper Sections
 * 3-4): within one steady-state run the engine re-simulates warps whose
 * 32 lane traces are identical — across stages of repeated cohorts of
 * the same request type, and across whole launches when the workload
 * generator cycles through a bounded session pool. simulateWarp() is a
 * pure function of (lane traces, WarpModel) with integer-valued
 * results, so those results are safely memoizable: this file provides
 * the canonical content fingerprint and the bounded cross-launch LRU
 * cache the engine keys on.
 *
 * Fingerprint normalization. Lane traces of equivalent warps differ
 * only by the device base address of their cohort slot, so a raw
 * content hash would never match across warps. The fingerprint
 * therefore translates every Global-space address by the warp's
 * minimum Global address aligned *down* to WarpModel::segmentBytes.
 * WarpStats is invariant under exactly that translation:
 *
 *  - coalescing divides Global addresses by segmentBytes; shifting all
 *    of them by one common multiple of segmentBytes shifts every
 *    segment index by the same amount, leaving distinct-segment counts
 *    unchanged (alignment *within* a segment is preserved because the
 *    base is aligned down);
 *  - Shared-space addresses are hashed untranslated, so the bank
 *    mapping (addr/4 % 32) is compared exactly;
 *  - Constant accesses are count-only.
 *
 * Equal fingerprints (128 bits, two independent hashes — see
 * util/hash.hh) therefore imply bit-equal WarpStats, which is what
 * lets the engine replicate cached stats verbatim without breaking the
 * determinism contract (DESIGN.md Section 6e).
 */

#ifndef RHYTHM_SIMT_PROFILE_CACHE_HH
#define RHYTHM_SIMT_PROFILE_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <utility>

#include "simt/trace.hh"
#include "simt/warp.hh"

namespace rhythm::simt {

/** 128-bit content key of one warp's simulation inputs. */
struct WarpKey
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool operator==(const WarpKey &) const = default;
};

/** Hash adaptor for unordered containers (the key is already mixed). */
struct WarpKeyHash
{
    size_t operator()(const WarpKey &key) const noexcept
    {
        return static_cast<size_t>(key.hi ^ (key.lo * 0x9e3779b97f4a7c15ull));
    }
};

/**
 * Computes the canonical fingerprint of one warp: all lane traces
 * (Global addresses normalized as described above) plus the warp-model
 * parameters. Null lanes (inactive) are folded in as explicit markers
 * so partial warps cannot alias full ones.
 */
WarpKey warpFingerprint(std::span<const ThreadTrace *const> lanes,
                        const WarpModel &model);

/**
 * Tag-aware fingerprint overload for fused (mixed-type) warps: folds
 * the per-lane tag layout (request-type ids, aligned index-for-index
 * with @p lanes; null lanes carry their tag too) into the key on top
 * of the trace content. An empty @p lane_tags span produces a key
 * byte-identical to the untagged overload, so untagged launches keep
 * their cross-launch cache entries; a non-empty span is folded behind
 * a distinct marker, so a fused warp can never alias an untagged one
 * even when the lane traces coincide.
 */
WarpKey warpFingerprint(std::span<const ThreadTrace *const> lanes,
                        const WarpModel &model,
                        std::span<const uint32_t> lane_tags);

/**
 * Bytes of trace input a simulation of this warp would consume —
 * the bytes-saved accounting unit for cache hits.
 */
uint64_t warpTraceBytes(std::span<const ThreadTrace *const> lanes);

/**
 * Bounded LRU map from WarpKey to WarpStats, shared across launches.
 *
 * Not thread-safe: the engine consults it only on the calling (DES)
 * thread, in canonical warp order, which also makes the LRU state —
 * and therefore hit/miss/eviction counts — independent of
 * --sim-threads.
 */
class ProfileCache
{
  public:
    /** Cache effectiveness counters (all monotonically increasing). */
    struct Stats
    {
        /** Cross-launch lookups served from the cache. */
        uint64_t hits = 0;
        /** Warps actually simulated (equivalence-class representatives
         *  not found in the cache). */
        uint64_t misses = 0;
        /** Intra-launch replications from a class representative. */
        uint64_t intraHits = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
        /** Trace bytes whose re-simulation was avoided. */
        uint64_t bytesSaved = 0;
    };

    /** @param max_entries LRU capacity (>= 1). */
    explicit ProfileCache(size_t max_entries = 4096);

    /**
     * Looks up a key, bumping it to most-recently-used and counting a
     * hit on success. Returns null on miss (no miss is counted here:
     * a missing warp may still be replicated intra-launch; the engine
     * attributes it to misses or intraHits once classified).
     */
    const WarpStats *find(const WarpKey &key);

    /**
     * Inserts (or refreshes) a key, evicting the least-recently-used
     * entry when full.
     */
    void insert(const WarpKey &key, const WarpStats &stats);

    size_t size() const { return map_.size(); }
    size_t capacity() const { return maxEntries_; }

    const Stats &stats() const { return stats_; }
    /** Mutable stats: the engine attributes misses/intra-hits/bytes. */
    Stats &stats() { return stats_; }

    /** Drops all entries (stats are preserved). */
    void clear();

  private:
    using LruList = std::list<std::pair<WarpKey, WarpStats>>;

    size_t maxEntries_;
    LruList lru_; //!< Front = most recently used.
    std::unordered_map<WarpKey, LruList::iterator, WarpKeyHash> map_;
    Stats stats_;
};

} // namespace rhythm::simt

#endif // RHYTHM_SIMT_PROFILE_CACHE_HH
