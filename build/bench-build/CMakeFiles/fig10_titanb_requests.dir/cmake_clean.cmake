file(REMOVE_RECURSE
  "../bench/fig10_titanb_requests"
  "../bench/fig10_titanb_requests.pdb"
  "CMakeFiles/fig10_titanb_requests.dir/fig10_titanb_requests.cc.o"
  "CMakeFiles/fig10_titanb_requests.dir/fig10_titanb_requests.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_titanb_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
