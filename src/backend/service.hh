/**
 * @file
 * The backend service: executes wire-protocol requests against BankDb.
 *
 * This is the component the paper calls "Besim". Where it runs differs by
 * platform (the key Titan A / Titan B distinction):
 *  - CPU baselines call it directly ("backend as a function call", §5.3).
 *  - Titan A runs it on host threads, with request/response records
 *    crossing the PCIe link.
 *  - Titan B/C run it "on the device" (the SoC emulation), so no PCIe
 *    transfer and no backend-buffer transpose is needed.
 *
 * Execution is instrumented so the service's dynamic instructions are
 * part of each request's Table 2 cost on CPU platforms.
 */

#ifndef RHYTHM_BACKEND_SERVICE_HH
#define RHYTHM_BACKEND_SERVICE_HH

#include <string>
#include <string_view>

#include "backend/bankdb.hh"
#include "backend/protocol.hh"
#include "simt/trace.hh"

namespace rhythm::backend {

/** Basic-block identifier base for the backend service. */
inline constexpr uint32_t kBackendBlockBase = 3000;

/**
 * Executes backend requests against a BankDb.
 *
 * Not thread safe; the single-threaded event loop serializes access
 * (matching the paper's lock-free single-thread control design).
 */
class BackendService
{
  public:
    /** Binds the service to a database (not owned). */
    explicit BackendService(BankDb &db) : db_(db) {}

    /**
     * Executes one serialized request.
     * @param request Wire-format request (see protocol.hh).
     * @param rec Trace recorder for instruction accounting.
     * @return Wire-format response ("OK|..." or "ERR|...").
     */
    std::string execute(std::string_view request, simt::TraceRecorder &rec);

    /** Typed convenience overload. */
    std::string execute(const BackendRequest &request,
                        simt::TraceRecorder &rec);

    /** Number of requests executed (for harness accounting). */
    uint64_t requestsServed() const { return requestsServed_; }

  private:
    BankDb &db_;
    uint64_t requestsServed_ = 0;
};

} // namespace rhythm::backend

#endif // RHYTHM_BACKEND_SERVICE_HH
