# Empty compiler generated dependencies file for table2_workload.
# This may be replaced when dependencies are built.
