
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cpu.cc" "src/platform/CMakeFiles/rhythm_platform.dir/cpu.cc.o" "gcc" "src/platform/CMakeFiles/rhythm_platform.dir/cpu.cc.o.d"
  "/root/repo/src/platform/measure.cc" "src/platform/CMakeFiles/rhythm_platform.dir/measure.cc.o" "gcc" "src/platform/CMakeFiles/rhythm_platform.dir/measure.cc.o.d"
  "/root/repo/src/platform/titan.cc" "src/platform/CMakeFiles/rhythm_platform.dir/titan.cc.o" "gcc" "src/platform/CMakeFiles/rhythm_platform.dir/titan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rhythm/CMakeFiles/rhythm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/rhythm_host.dir/DependInfo.cmake"
  "/root/repo/build/src/specweb/CMakeFiles/rhythm_specweb.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/rhythm_http.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/rhythm_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/rhythm_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/rhythm_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rhythm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
