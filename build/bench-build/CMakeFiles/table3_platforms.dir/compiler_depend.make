# Empty compiler generated dependencies file for table3_platforms.
# This may be replaced when dependencies are built.
