#include "specweb/html.hh"

#include <cstdio>

#include "util/logging.hh"
#include "util/strings.hh"

namespace rhythm::specweb::html {
namespace {

constexpr std::string_view kStyles =
    "<style type=\"text/css\">\n"
    "body{font-family:Verdana,Arial,sans-serif;margin:0;background:#f4f6f8;"
    "color:#1a2733;font-size:13px}\n"
    "#masthead{background:#003366;color:#ffffff;padding:12px 24px;"
    "font-size:21px;letter-spacing:1px}\n"
    "#navbar{background:#0a4f8f;padding:6px 24px}\n"
    "#navbar a{color:#dce9f7;margin-right:18px;text-decoration:none;"
    "font-weight:bold}\n"
    "#navbar a:hover{color:#ffffff;text-decoration:underline}\n"
    "#content{margin:18px 24px;background:#ffffff;border:1px solid #c8d4e0;"
    "padding:18px}\n"
    "h2{color:#003366;border-bottom:2px solid #dce4ec;padding-bottom:4px}\n"
    "table.data{border-collapse:collapse;width:100%;margin:10px 0}\n"
    "table.data th{background:#e8eef5;border:1px solid #c8d4e0;"
    "padding:5px 9px;text-align:left}\n"
    "table.data td{border:1px solid #dbe3ec;padding:5px 9px}\n"
    "tr.neg td.amt{color:#a00000}\ntr.pos td.amt{color:#006400}\n"
    ".notice{background:#fdf6e3;border:1px solid #e0d4a8;padding:9px;"
    "margin:10px 0;font-size:11px;color:#5a6234}\n"
    "#footer{margin:14px 24px;font-size:10px;color:#5a6a7a}\n"
    "input,select{border:1px solid #8aa0b8;padding:3px;margin:2px 0}\n"
    ".btn{background:#0a4f8f;color:#fff;border:none;padding:5px 14px;"
    "font-weight:bold}\n"
    "</style>\n";

constexpr std::string_view kFillers[] = {
    "<p class=\"notice\">Deposit products are offered by Rhythm National "
    "Bank, Member FDIC. Deposits are insured up to the maximum amount "
    "permitted by law. Investment products are not FDIC insured, are not "
    "bank guaranteed and may lose value. Please review the account "
    "agreement and fee schedule for complete terms. Annual percentage "
    "yields are accurate as of the date shown and may change after the "
    "account is opened. Fees could reduce the earnings on the account. "
    "A minimum balance may be required to obtain the stated yield.</p>\n",

    "<p class=\"notice\">Online banking sessions are protected with "
    "industry standard transport encryption. For your security, never "
    "share your password or one-time codes with anyone. Rhythm National "
    "Bank will never ask for your full password by telephone or e-mail. "
    "If you suspect unauthorized activity on your account, contact our "
    "fraud department immediately at 1-800-555-0139. You can also review "
    "your recent sign-on history from the profile page at any time to "
    "verify that every session was initiated by you personally.</p>\n",

    "<p class=\"notice\">Bill payments submitted after 4:00 PM Eastern "
    "Time, or on weekends and federal holidays, begin processing on the "
    "next business day. Allow up to five business days for payees that "
    "receive payment by paper check. Electronic payees are typically "
    "credited within two business days. Scheduled payments may be "
    "modified or cancelled until their processing date. A confirmation "
    "number is issued for every accepted payment and can be referenced "
    "from the bill pay status page under your payment history tab.</p>\n",

    "<p class=\"notice\">Funds transferred between your own deposit "
    "accounts are available immediately. Federal regulation may limit "
    "certain withdrawals and transfers from savings accounts to six per "
    "statement cycle; transactions above the limit may incur an excess "
    "activity fee as described in the deposit account agreement. Wire "
    "transfers and external transfers are subject to separate cut-off "
    "times and fees. Balances shown include pending transactions that "
    "have been authorized but have not yet posted to the account.</p>\n",

    "<p class=\"notice\">Check images are retained for seven years and "
    "are admissible as legal copies under the Check Clearing for the "
    "21st Century Act. Ordering replacement checks through online "
    "banking uses the address currently on file for your account; "
    "please verify your profile information before placing an order. "
    "Standard orders arrive in seven to ten business days. Expedited "
    "shipping options are available at checkout for an additional "
    "charge, with delivery in two to three business days.</p>\n",

    "<p class=\"notice\">Rhythm National Bank is an Equal Housing "
    "Lender. Credit products are subject to credit approval. Rates, "
    "terms and conditions are subject to change without notice and may "
    "vary by state of residence. Property insurance is required for all "
    "loans secured by real property, and flood insurance is required "
    "where applicable. Consult your tax advisor regarding the "
    "deductibility of interest. NMLS Institution ID 555013. Lending "
    "services are provided by Rhythm National Bank, N.A.</p>\n",

    "<p class=\"notice\">The information contained in these pages is "
    "provided for your convenience and does not constitute financial "
    "advice. Market data, where shown, is delayed at least fifteen "
    "minutes and is provided by third parties believed to be reliable, "
    "but accuracy is not guaranteed. Account alerts are delivered on a "
    "best-effort basis and may be delayed or prevented by factors "
    "outside our control; do not rely solely on alerts for account "
    "management. Standard message and data rates may apply.</p>\n",

    "<p class=\"notice\">To report a lost or stolen card, call "
    "1-800-555-0145, twenty-four hours a day, seven days a week. For "
    "general account questions our customer care team is available from "
    "7:00 AM to 11:00 PM Eastern Time, every day including most "
    "holidays. Written correspondence should be directed to Rhythm "
    "National Bank, Customer Care, P.O. Box 550139, Springfield. Please "
    "include your name and the last four digits of your account number "
    "on all correspondence, and never send full account numbers.</p>\n",
};

constexpr size_t kNumFillers = sizeof(kFillers) / sizeof(kFillers[0]);

} // namespace

size_t
beginResponse(ResponseWriter &out, std::string_view set_cookie)
{
    out.appendStatic(kBlockHttpHeader,
                     "HTTP/1.1 200 OK\r\n"
                     "Server: Rhythm/1.0\r\n"
                     "Content-Type: text/html; charset=ISO-8859-1\r\n"
                     "Cache-Control: no-store\r\n");
    if (!set_cookie.empty()) {
        out.appendStatic(kBlockHttpHeader, "Set-Cookie: ");
        out.appendDynamic(kBlockHttpHeader, set_cookie);
        out.appendStatic(kBlockHttpHeader, "\r\n");
    }
    out.appendStatic(kBlockHttpHeader, "Content-Length: ");
    const size_t offset = out.reserve(kBlockHttpHeader,
                                      kContentLengthReserve);
    out.appendStatic(kBlockHttpHeader, "\r\n\r\n");
    return offset;
}

size_t
finishResponse(ResponseWriter &out, size_t content_length_offset,
               size_t header_end)
{
    RHYTHM_ASSERT(out.size() >= header_end);
    const size_t body = out.size() - header_end;
    char buf[kContentLengthReserve + 1];
    const int n = std::snprintf(buf, sizeof(buf), "%zu", body);
    RHYTHM_ASSERT(n > 0 &&
                  static_cast<size_t>(n) <= kContentLengthReserve);
    out.patch(content_length_offset, std::string_view(buf,
                                                      static_cast<size_t>(n)));
    return body;
}

void
pageHead(ResponseWriter &out, std::string_view title)
{
    out.appendStatic(kBlockHead,
                     "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
                     "<meta charset=\"ISO-8859-1\">\n<title>");
    out.appendDynamic(kBlockHead, title);
    out.appendStatic(kBlockHead, " - Rhythm National Bank</title>\n");
    out.appendStatic(kBlockHead, kStyles);
    out.appendStatic(kBlockHead, "</head>\n<body>\n");
}

void
pageNav(ResponseWriter &out, std::string_view user_name)
{
    out.appendStatic(kBlockNav,
                     "<div id=\"masthead\">RHYTHM NATIONAL BANK"
                     "<span style=\"float:right;font-size:12px\">");
    if (user_name.empty()) {
        out.appendStatic(kBlockNav, "Welcome, guest");
    } else {
        out.appendStatic(kBlockNav, "Signed in as ");
        out.appendDynamic(kBlockNav, user_name);
    }
    out.appendStatic(
        kBlockNav,
        "</span></div>\n<div id=\"navbar\">"
        "<a href=\"/bank/account_summary.php\">Accounts</a>"
        "<a href=\"/bank/bill_pay.php\">Bill Pay</a>"
        "<a href=\"/bank/transfer.php\">Transfers</a>"
        "<a href=\"/bank/order_check.php\">Checks</a>"
        "<a href=\"/bank/change_profile.php\">Profile</a>"
        "<a href=\"/bank/logout.php\">Sign Off</a>"
        "</div>\n<div id=\"content\">\n");
}

void
pageFooter(ResponseWriter &out)
{
    out.appendStatic(
        kBlockFooter,
        "</div>\n<div id=\"footer\">Rhythm National Bank, N.A. Member "
        "FDIC. Equal Housing Lender. &copy; 2014 Rhythm Bancorp. "
        "<a href=\"#\">Privacy</a> | <a href=\"#\">Security</a> | "
        "<a href=\"#\">Terms of Use</a> | <a href=\"#\">Accessibility</a>"
        "</div>\n</body>\n</html>\n");
}

void
fillerParagraphs(ResponseWriter &out, int count)
{
    for (int i = 0; i < count; ++i)
        out.appendStatic(kBlockFiller,
                         kFillers[static_cast<size_t>(i) % kNumFillers]);
}

void
tableOpen(ResponseWriter &out,
          std::initializer_list<std::string_view> headers)
{
    out.appendStatic(kBlockTable, "<table class=\"data\">\n<tr>");
    for (std::string_view h : headers) {
        out.appendStatic(kBlockTable, "<th>");
        out.appendStatic(kBlockTable, h);
        out.appendStatic(kBlockTable, "</th>");
    }
    out.appendStatic(kBlockTable, "</tr>\n");
}

void
tableClose(ResponseWriter &out)
{
    out.appendStatic(kBlockTable, "</table>\n");
}

std::string
formatCents(int64_t cents)
{
    const bool neg = cents < 0;
    const uint64_t mag = static_cast<uint64_t>(neg ? -cents : cents);
    std::string out = neg ? "-$" : "$";
    out += withCommas(mag / 100);
    char frac[8];
    std::snprintf(frac, sizeof(frac), ".%02u",
                  static_cast<unsigned>(mag % 100));
    out += frac;
    return out;
}

std::string
formatDate(uint32_t day)
{
    // Synthetic calendar: day 0 = 2000-01-01, 30-day months.
    const uint32_t years = day / 360;
    const uint32_t months = (day % 360) / 30;
    const uint32_t dom = day % 30;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04u-%02u-%02u", 2000 + years,
                  months + 1, dom + 1);
    return buf;
}

} // namespace rhythm::specweb::html
