# Empty compiler generated dependencies file for rhythm_core_test.
# This may be replaced when dependencies are built.
