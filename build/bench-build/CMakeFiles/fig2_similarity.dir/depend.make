# Empty dependencies file for fig2_similarity.
# This may be replaced when dependencies are built.
