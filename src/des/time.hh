/**
 * @file
 * Simulated-time representation and unit helpers.
 *
 * Simulated time is an unsigned 64-bit count of picoseconds, giving
 * picosecond resolution (sub-cycle at the Titan's 0.8 GHz clock) and a
 * range of ~213 days — ample for any experiment in this suite.
 */

#ifndef RHYTHM_DES_TIME_HH
#define RHYTHM_DES_TIME_HH

#include <cstdint>

namespace rhythm::des {

/** Simulated time in picoseconds. */
using Time = uint64_t;

/** One picosecond. */
inline constexpr Time kPicosecond = 1;
/** One nanosecond. */
inline constexpr Time kNanosecond = 1000 * kPicosecond;
/** One microsecond. */
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
/** One millisecond. */
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
/** One second. */
inline constexpr Time kSecond = 1000 * kMillisecond;

/** Converts simulated time to (double) seconds. */
constexpr double
toSeconds(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Converts simulated time to (double) milliseconds. */
constexpr double
toMillis(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/** Converts simulated time to (double) microseconds. */
constexpr double
toMicros(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/** Converts (double) seconds to simulated time, rounding to nearest. */
constexpr Time
fromSeconds(double seconds)
{
    return static_cast<Time>(seconds * static_cast<double>(kSecond) + 0.5);
}

} // namespace rhythm::des

#endif // RHYTHM_DES_TIME_HH
