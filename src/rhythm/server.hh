/**
 * @file
 * The Rhythm server: a single-threaded, event-driven, cohort-pipelined
 * web server executing on the simulated SIMT device (paper Sections 3-4).
 *
 * Pipeline: Reader (double-buffered batches) → request-buffer transpose →
 * Parser kernel → Dispatch (host; groups parsed requests into typed
 * cohorts) → Process stages interleaved with Backend access → response
 * transpose → Response. Each typed cohort rides a device stream; multiple
 * cohorts are kept in flight to saturate the device (HyperQ).
 *
 * Platform variants from the paper map onto the configuration:
 *  - Titan A: networkOverPcie=true, backendOnDevice=false — request,
 *    response and backend records cross the PCIe link; backend runs on
 *    host threads.
 *  - Titan B: networkOverPcie=false, backendOnDevice=true — SoC-style
 *    integrated NIC and device backend.
 *  - Titan C: Titan B + offloadResponseTranspose=true — the response
 *    transpose is performed by NIC/memory-controller hardware.
 *
 * Handlers execute for real (the responses are genuine, validatable
 * HTTP), producing per-thread traces that the SIMT model turns into
 * kernel costs. For large cohorts the server can execute a sample of
 * lanes and scale the kernel profiles (laneSample), the standard
 * sampling trade made by architectural simulators.
 */

#ifndef RHYTHM_RHYTHM_SERVER_HH
#define RHYTHM_RHYTHM_SERVER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/fingerprint.hh"
#include "des/event_queue.hh"
#include "fault/plan.hh"
#include "rhythm/buffers.hh"
#include "rhythm/cohort.hh"
#include "rhythm/service.hh"
#include "rhythm/session_array.hh"
#include "simt/device.hh"
#include "specweb/static_content.hh"
#include "util/arena.hh"
#include "util/stats.hh"

namespace rhythm::core {

/** Rhythm server configuration. */
struct RhythmConfig
{
    /** Requests per cohort (paper sweet spot: 4096). */
    uint32_t cohortSize = 4096;
    /** Cohort contexts ≈ cohorts in flight (paper: 8 on the Titan). */
    uint32_t cohortContexts = 8;
    /** Cohort-formation timeout for partial cohorts. */
    des::Time cohortTimeout = 2 * des::kMillisecond;
    /** Run the backend on the device (Titan B/C) vs host (Titan A). */
    bool backendOnDevice = false;
    /** Requests/responses cross the PCIe link (discrete GPU, Titan A). */
    bool networkOverPcie = true;
    /** Transpose cohort buffers for coalesced access (Section 4.3.2). */
    bool transposeBuffers = true;
    /** Warp-max whitespace padding of responses. */
    bool padResponses = true;
    /** Offload the response transpose to NIC/DRAM logic (Titan C). */
    bool offloadResponseTranspose = false;
    /** Host backend service rate (vector-interface KV store, §2.2.3). */
    double hostBackendReqsPerSec = 10e6;
    /** PCIe slot bytes reserved per raw request (paper: 1 KiB). */
    uint32_t requestSlotBytes = 1024;
    /** Execute only this many lanes per cohort and scale profiles
     *  (0 = execute every lane; use powers of the warp width). */
    uint32_t laneSample = 0;
    /** Session array depth (capacity = cohortSize × this). */
    uint32_t sessionNodesPerBucket = 16;
    /**
     * Host instruction rate for fallback execution (quick pay and other
     * requests that do not fit the data-parallel model, Section 3.1).
     */
    double hostFallbackInstsPerSec = 20e9;
    /**
     * Parser trace-template cache capacity in entries (0 = off, the
     * default). When on, the parser records each distinct raw request
     * once at a canonical base address and replays later occurrences
     * by patching the per-request address base — the parser's trace is
     * an affine function of its buffer address, so the replayed trace
     * is byte-identical to a fresh recording (DESIGN.md Section 6e).
     * Purely a host wall-clock optimization; simulated results do not
     * change.
     */
    uint32_t traceTemplateCacheEntries = 0;
    /** Warp model for kernel profiling. */
    simt::WarpModel warpModel;

    // ---- Robustness / graceful degradation (all off by default, so
    // ---- a default config reproduces the paper's figures exactly) --

    /**
     * Per-request completion deadline (0 = none). Late responses are
     * still delivered but counted as deadline misses: the client gave
     * up, so they are lost goodput.
     */
    des::Time requestDeadline = 0;
    /**
     * Backend retry attempts allowed per cohort (0 = a failed backend
     * call 503s its lane immediately). The budget is shared by all
     * lanes of a cohort so a full brownout cannot retry-storm.
     */
    uint32_t backendRetryBudget = 0;
    /** Backoff before the first retry round; doubles every round. */
    des::Time retryBackoffBase = 50 * des::kMicrosecond;
    /**
     * Shed (immediate 503) new requests while the formation backlog —
     * reader batch + dispatch queue + forming cohorts — is at or above
     * this many requests (0 = no backlog shedding).
     */
    uint32_t shedBacklogLimit = 0;
    /**
     * Shed new requests while the windowed p99 latency exceeds this
     * SLO (0 = no latency shedding). Uses the last `sloWindow`
     * completions so the server re-admits once the brownout clears.
     */
    des::Time shedLatencySlo = 0;
    /** Completions considered by the latency shedder. */
    uint32_t sloWindow = 512;
    /**
     * Straggler watchdog (0 = off). A cohort still in flight this long
     * after launch is hedged: its command sequence re-executes on a
     * dedicated hedge stream (any injected kernel hang excised) and the
     * first execution to finish delivers; the loser is cancelled
     * without side effects. When the service reports
     * backendExactlyOnce(), the hedge also re-issues the cohort's
     * backend calls through the idempotency filter so a crash-lost
     * primary cannot strand journaled state.
     */
    des::Time watchdogTimeout = 0;

    // ---- Transfer/compute overlap (off by default, so a default
    // ---- config reproduces the paper's figures exactly) -------------

    /**
     * Pipeline the host stages against device execution (DESIGN.md 6h):
     * two parser batches may be in flight at once (Reader/Parser of
     * cohort k+1 runs under Process of cohort k, each parser chain on
     * its own stream), and Titan A's network transfers are scissored to
     * occupied bytes — the parser upload ships the bytes requests
     * actually occupy in their slots and the response download ships
     * content + padding instead of the full loose-fit buffer. Parsed
     * batches dispatch strictly in batch order through a reorder
     * buffer, so cohort formation, backend mutation order and response
     * bytes are identical to the serial pipeline. Pair with
     * DeviceConfig::copyEngines/copyChunkBytes so the chunked uploads
     * and downloads actually interleave on the link.
     */
    bool overlapPipeline = false;

    // ---- Adaptive deadline-aware batching (off by default, so a
    // ---- default config reproduces the paper's figures exactly) ------

    /**
     * Deadline-aware adaptive cohort formation (DESIGN.md Section 6i).
     * The timeout scan additionally dispatches a forming cohort early
     * when the oldest aboard request's slack against its per-type
     * deadline drops below the modeled pipeline cost (an EWMA of recent
     * launch→response times, scaled by slackSafety). Off: formation is
     * driven purely by cohortSize/cohortTimeout, byte-identical to the
     * fixed pipeline.
     */
    bool adaptiveBatching = false;
    /**
     * Per-type completion deadlines, indexed by service type id
     * (entries of 0, or types beyond the vector, use defaultDeadline).
     * When any deadline is set the server tracks typed deadline
     * hits/misses even in fixed mode, so fixed and adaptive runs report
     * comparable attainment; only adaptiveBatching changes scheduling.
     */
    std::vector<des::Time> typeDeadlines;
    /** Deadline for types without a typeDeadlines entry. */
    des::Time defaultDeadline = 10 * des::kMillisecond;
    /** Safety factor applied to the pipeline-cost estimate. */
    double slackSafety = 1.2;
    /**
     * Adaptive slack-scan period. The timeout scan re-arms at
     * min(cohortTimeout/2, this) so slack is checked often enough for
     * tight deadlines even with a long formation timeout.
     */
    des::Time adaptiveScanInterval = 200 * des::kMicrosecond;
    /**
     * Deadline-aware admission control (consulted only with
     * adaptiveBatching): shed arrivals whose estimated queue-drain time
     * already exceeds the tightest deadline, on top of the backlog/p99
     * shedder.
     */
    bool adaptiveAdmission = true;

    // ---- Sub-warp packing / cross-type cohort fusion (off by
    // ---- default, so a default config reproduces the paper exactly) --

    /**
     * Cross-type cohort fusion (DESIGN.md Section 6j). When several
     * partial cohorts launch at the same scan instant, pack the lanes
     * of similarity-compatible types into one shared kernel-launch
     * sequence instead of padding each cohort's tail warp separately.
     * Lane placement is divergence-aware: each cohort's lanes stay
     * contiguous, so the lockstep scheduler's majority-block selection
     * still amortizes fetches over same-type runs. Delivered response
     * bytes are identical fusion on/off; only the modeled kernel
     * costs, occupancy and SIMD efficiency change.
     */
    bool fusionEnabled = false;
    /**
     * Minimum predicted pair similarity (the Figure 2 normalized-
     * speedup EWMA, see analysis/fingerprint.hh) for two types to
     * share a fused launch. 0.5 is the indifference point: below it a
     * mixed warp serializes more than separate padded warps would
     * waste.
     */
    double fusionSimilarityThreshold = 0.5;
    /** Maximum cohorts packed into one fused launch. */
    uint32_t fusionMaxCohorts = 4;
    /** Online control-flow fingerprint tuning (EWMA alpha, sampling). */
    analysis::FingerprintConfig fingerprint;
};

/**
 * Aggregate server statistics.
 *
 * Conservation invariant: every request the server accepted ownership
 * of is answered exactly once —
 *
 *     requestsAccepted == responsesCompleted + errorResponses
 *                         + requestsShed
 *
 * (responses to disconnected clients are counted as errorResponses:
 * the work happened but no client saw it). Reader-full rejections are
 * NOT accepted; they count in readerDrops and the caller retries.
 */
struct RhythmStats
{
    /** Requests taken from the client, including shed ones. */
    uint64_t requestsAccepted = 0;
    /** Successful responses delivered (errors counted separately). */
    uint64_t responsesCompleted = 0;
    /** Error responses (4xx/5xx) plus undeliverable responses. */
    uint64_t errorResponses = 0;
    uint64_t cohortsLaunched = 0;
    uint64_t cohortTimeouts = 0;
    uint64_t parserBatches = 0;
    /** Requests served on the host CPU (quick pay fallback). */
    uint64_t hostFallbackRequests = 0;
    /** Static image requests served via image cohorts. */
    uint64_t imageRequests = 0;
    /** Image cohorts launched (bypass the process stage). */
    uint64_t imageCohorts = 0;
    uint64_t imageBytes = 0;
    uint64_t backendRequests = 0;
    uint64_t responseBytes = 0;
    uint64_t paddingBytes = 0;
    /** Request latency (arrival → response sent), milliseconds. */
    Histogram latencyMs;
    /** Cohort-formation wait (arrival → cohort launch), milliseconds. */
    Histogram formationMs;
    /** Pipeline execution (cohort launch → response), milliseconds. */
    Histogram pipelineMs;
    /** Aggregate SIMD efficiency of process-stage kernels. */
    double processIssueSlots = 0;
    double processLaneInstructions = 0;

    // ---- Robustness / degradation counters -------------------------
    /** Requests rejected with an immediate 503 by the load shedder. */
    uint64_t requestsShed = 0;
    /** injectRequest refusals (reader double-buffer full). */
    uint64_t readerDrops = 0;
    /** Backend calls re-issued after a transient failure. */
    uint64_t backendRetries = 0;
    /** Lanes answered 503 after the cohort retry budget ran out. */
    uint64_t backendFailedLanes = 0;
    /** Responses delivered later than the request deadline. */
    uint64_t deadlineMisses = 0;
    /** Responses undeliverable because the client disconnected. */
    uint64_t clientDisconnects = 0;
    /** Fault-plan injections observed at server-consulted sites. */
    uint64_t faultsInjected = 0;
    /** Simulated time spent in degraded (shedding) mode. */
    des::Time degradedTime = 0;

    // ---- Watchdog / hedged execution -------------------------------
    /** Injected kernel hangs (fault::Site::KernelHang fires). */
    uint64_t kernelHangs = 0;
    /** Watchdog expirations that launched a hedged re-execution. */
    uint64_t watchdogFires = 0;
    /** Hedged executions that finished first and delivered. */
    uint64_t hedgeWins = 0;
    /** Losing executions cancelled after the winner delivered. */
    uint64_t hedgeCancelled = 0;
    /** Backend calls a hedge re-issued through the idempotency layer. */
    uint64_t hedgeReplayedCalls = 0;
    /** Hedge-replayed calls whose response differed from the primary's
     *  (non-memoized reads racing later mutations; never delivered). */
    uint64_t hedgeReplayMismatches = 0;

    // ---- Adaptive deadline-aware batching --------------------------
    /** Cohorts dispatched early by the slack test (before Full). */
    uint64_t adaptiveEarlyDispatches = 0;
    /** Forming cohorts launched to free a context for a tighter type. */
    uint64_t adaptivePreemptions = 0;
    /** Sheds triggered by deadline-aware admission control. */
    uint64_t adaptiveAdmissionSheds = 0;
    /** Responses delivered within their per-type deadline. */
    uint64_t typedDeadlineHits = 0;
    /** Responses late/failed/shed against their per-type deadline. */
    uint64_t typedDeadlineMisses = 0;

    // ---- Sub-warp packing / cohort fusion (DESIGN.md Section 6j) ---
    /** Fused launches (each covering two or more cohorts). */
    uint64_t fusedLaunches = 0;
    /** Cohorts that rode a fused launch. */
    uint64_t fusedCohorts = 0;
    /** Warps saved by packing versus padding each cohort separately,
     *  summed over pipeline stages. */
    uint64_t fusionSavedWarps = 0;
    /** Inactive tail lanes of process-stage launches (executed-lane
     *  granularity, summed over stages) — the occupancy padding loses. */
    uint64_t paddedLanes = 0;
};

/**
 * The Rhythm server.
 *
 * Drive it either by push (injectRequest + EventQueue::run) or by pull
 * (setSource + start, the paper's idealized pre-generated request
 * stream).
 */
class RhythmServer
{
  public:
    /** Pulls the next raw request; nullopt when the stream is drained. */
    using Source = std::function<std::optional<std::string>()>;
    /**
     * Invoked per completed response (executed lanes carry content).
     * The response is a zero-copy view into the cohort's buffer slot,
     * valid only for the duration of the callback — copy it if it must
     * outlive the call.
     */
    using ResponseCallback = std::function<void(
        uint64_t client_id, std::string_view response,
        des::Time latency)>;

    /**
     * @param queue Event queue (simulated time).
     * @param device The accelerator the cohorts execute on.
     * @param service The application being served (not owned).
     * @param config Pipeline configuration.
     */
    RhythmServer(des::EventQueue &queue, simt::Device &device,
                 Service &service, const RhythmConfig &config);
    ~RhythmServer();

    RhythmServer(const RhythmServer &) = delete;
    RhythmServer &operator=(const RhythmServer &) = delete;

    /** The device session array (pre-populate for isolation runs). */
    SessionArray &sessions() { return *sessions_; }

    /**
     * Registers the static-content store (not owned). Image requests
     * are then grouped into image cohorts that bypass the process stage
     * (Section 5.1); without a store they 404.
     */
    void setStaticContent(const specweb::StaticContent *content);

    /** Registers the per-response callback. */
    void setResponseCallback(ResponseCallback cb);

    /**
     * Installs a fault plan (not owned; nullptr disarms). The server
     * consults it for backend failure/slowdown and client disconnects;
     * device-level sites (PCIe, stream stalls) are installed separately
     * with fault::installDeviceFaults. Do not also arm the backing
     * BackendService, or each backend call is consulted twice.
     */
    void setFaultPlan(fault::FaultPlan *plan);

    /** Installs a pull source and begins pumping requests. */
    void start(Source source);

    /**
     * Pushes one request into the reader.
     *
     * Push-mode contract: `true` means the server took ownership and
     * will answer the request exactly once through the response
     * callback — possibly with an immediate 503 if the load shedder is
     * active. `false` means the reader's double buffer is full (a
     * structural stall, counted in RhythmStats::readerDrops); the
     * request was NOT accepted and the caller must either retry after
     * running the event loop (closed-loop clients) or treat the
     * request as dropped (open-loop clients).
     */
    bool injectRequest(std::string raw, uint64_t client_id);

    /** Launches any partially formed batches/cohorts immediately. */
    void flush();

    /** True when no request is anywhere in the pipeline. */
    bool drained() const;

    /** Statistics so far. */
    const RhythmStats &stats() const { return stats_; }

    /** The configuration. */
    const RhythmConfig &config() const { return config_; }

    /**
     * Device memory footprint of the preallocated pools (Section 6.3):
     * session array + per-context request/response/backend buffers.
     */
    uint64_t memoryFootprintBytes() const;

  private:
    struct RawEntry
    {
        std::string raw;
        uint64_t clientId;
        des::Time arrival;
    };

    struct ReaderBatch
    {
        std::vector<RawEntry> entries;
        des::Time firstArrival = 0;
    };

    void pump();
    /** Backlog of requests waiting for a cohort to launch. */
    uint64_t formationBacklog() const;
    /** Evaluates the load shedder and tracks degraded-mode time. */
    bool sheddingActive();
    /** Sheds one request with an immediate 503. */
    void shedRequest(uint64_t client_id);
    /** Post-acceptance bookkeeping (client-disconnect injection). */
    void noteAccepted(uint64_t client_id);
    void maybeLaunchBatch(bool force);
    void parseBatch(std::unique_ptr<ReaderBatch> batch, uint64_t seq);
    /** Batch-order hand-off: queues out-of-order parse completions and
     *  dispatches in-order ones (the overlap determinism contract). */
    void parsedReady(uint64_t seq, std::vector<CohortEntry> parsed);
    void dispatchParsed(std::vector<CohortEntry> parsed);
    void drainDispatch();
    /** routeEntry outcome: Blocked means the caller keeps the entry. */
    enum class RouteResult : uint8_t { Consumed, Blocked };
    RouteResult routeEntry(CohortEntry &entry);
    bool serveOnHost(CohortEntry &entry);
    void launchImageCohort();
    // Forward decls for the launch-path signatures below; defined with
    // the pipeline-execution block in server.cc.
    struct CohortRun;
    struct HostExecState;
    void launchCohort(CohortContext &ctx);
    /**
     * Launches a set of cohorts collected at one scan instant. With
     * fusion off (or a single cohort) this is a plain launchCohort()
     * loop; with fusion on, similarity-compatible partial cohorts are
     * greedily grouped (collection order, so the grouping is
     * deterministic) and each multi-cohort group launches fused.
     */
    void launchCohortGroup(const std::vector<CohortContext *> &ctxs);
    /** Fusion admission test for adding @p next to @p group: equal
     *  stage counts, a genuine warp saving, pair similarity at or
     *  above the threshold against every member, group-size cap. */
    bool canFuse(const std::vector<CohortContext *> &group,
                 const CohortContext &next) const;
    /** Launches two or more host-executed cohorts as one fused command
     *  sequence (bookkeeping and host execution already done by
     *  launchCohortGroup, in collection order). */
    void launchFusedCohorts(const std::vector<CohortContext *> &group,
                            std::vector<std::shared_ptr<CohortRun>> &runs,
                            std::vector<HostExecState> &states);
    void scheduleTimeoutScan();
    void completeRequest(uint64_t client_id, std::string_view response,
                         des::Time latency, bool failed,
                         uint32_t route_type = CohortEntry::kTypeUnresolved);
    /** Deadline for @p type (kTypeUnresolved → defaultDeadline). */
    des::Time typeDeadline(uint32_t type) const;
    /**
     * Safety-scaled pipeline-cost estimate for a cohort of @p type:
     * the per-type EWMA when seeded, else the aggregate EWMA, else a
     * prior of cohortTimeout (1 ms when the timeout is off).
     */
    des::Time costEstimate(uint32_t type) const;
    /** Admission test: backlog drain time exceeds tightest deadline. */
    bool adaptiveOverloaded() const;
    /** Launches the oldest forming cohort of a slacker type to free a
     *  context for @p type (structural-hazard preemption). */
    void preemptForType(uint32_t type);

    // Pipeline execution (host-side eager run producing stage profiles).
    // CohortRun carries one launch's command sequence and delivery
    // state; HostExecState the host-execution products of one cohort
    // (stage traces + backend bookkeeping) handed from
    // executeCohortHost to command building.
    void executeCohort(CohortContext &ctx, CohortRun &run);
    /** Runs the handler stages on the host: fills the cohort buffer,
     *  responses and failure flags, records stage traces into @p hx. */
    void executeCohortHost(CohortContext &ctx, CohortRun &run,
                           HostExecState &hx);
    /** Profiles @p hx's stage traces and builds @p run's command
     *  sequence (the unfused path; byte-identical to pre-fusion). */
    void buildCohortCommands(CohortRun &run, HostExecState &hx);
    /** Profiles the concatenated lanes of a fused group (same-type
     *  lanes contiguous, per-lane type tags) and builds the shared
     *  command sequence on the leader run. */
    void buildFusedCommands(const std::vector<CohortContext *> &group,
                            std::vector<std::shared_ptr<CohortRun>> &runs,
                            std::vector<HostExecState> &states);
    void enqueueCohortPipeline(CohortContext &ctx,
                               std::shared_ptr<CohortRun> run);
    /** Steps one execution (primary or hedge) of a run on a stream. */
    void startCohortExec(CohortContext &ctx,
                         std::shared_ptr<CohortRun> run, int stream,
                         bool hedge);
    /** First-completion-wins delivery guard for primary and hedge. */
    void execCompleted(CohortContext &ctx,
                       const std::shared_ptr<CohortRun> &run, bool hedge);
    /** Watchdog expiry: launch the hedged re-execution of a run. */
    void hedgeCohort(CohortContext &ctx,
                     const std::shared_ptr<CohortRun> &run);
    /** Consults fault::Site::KernelHang; on fire, prepends a hang
     *  stall to @p run's primary or hedge command sequence. */
    void maybeInjectHang(CohortRun &run, bool hedge);
    void cohortCompleted(CohortContext &ctx,
                         const std::shared_ptr<CohortRun> &run);
    /** Delivers one cohort's responses and releases its context and
     *  buffer (cohortCompleted runs this for the leader, then for
     *  every fused follower). */
    void deliverRun(CohortContext &ctx, CohortRun &run, des::Time now);

    des::EventQueue &queue_;
    simt::Device &device_;
    Service &service_;
    RhythmConfig config_;

    std::unique_ptr<SessionArray> sessions_;
    CohortPool pool_;

    Source source_;
    ResponseCallback responseCb_;

    std::unique_ptr<ReaderBatch> forming_;
    /** Parser batches in flight (limit 1; 2 with overlapPipeline). */
    uint32_t parserInFlight_ = 0;
    /** True when no further parser batch may launch right now. */
    bool parserSaturated() const
    {
        return parserInFlight_ >= (config_.overlapPipeline ? 2u : 1u);
    }
    /** Next parse sequence number to assign / to dispatch. */
    uint64_t parseSeqNext_ = 0;
    uint64_t parseDispatchNext_ = 0;
    /** Parse completions waiting for their turn (batch order). */
    std::map<uint64_t, std::vector<CohortEntry>> parsedReorder_;
    uint64_t inflightRequests_ = 0;
    uint64_t nextClientId_ = 1;
    std::deque<CohortEntry> pendingDispatch_;
    bool drainActive_ = false;
    /**
     * Per-dispatch-pass structural-hazard memo, indexed by type id:
     * set when acquireFor first fails for the type, letting the rest
     * of the pass skip the context scan (see routeEntry).
     */
    std::vector<uint8_t> typeBlocked_;
    std::vector<CohortEntry> pendingImages_;
    const specweb::StaticContent *staticContent_ = nullptr;

    std::vector<int> cohortStreams_; //!< Stream per cohort context.
    /** Hedge stream per context (created only with the watchdog on). */
    std::vector<int> hedgeStreams_;
    int parserStream_ = -1;
    /** Second parser stream (overlapPipeline only; batches alternate
     *  streams so chain k+1 is independent of chain k on the device).
     *  Created after the hedge streams, keeping the default stream-id
     *  layout identical. */
    int parserStream2_ = -1;
    /** Monotonic cohort launch counter; seeds idempotency tokens. */
    uint64_t cohortSeq_ = 0;

    bool timeoutScanScheduled_ = false;

    /** Scrubs recycled per-stage trace vectors (keeps capacities). */
    struct TraceVectorReset
    {
        void operator()(std::vector<simt::ThreadTrace> &traces) const
        {
            for (simt::ThreadTrace &t : traces)
                t.clear();
        }
    };

    /** Scrubs recycled per-lane handler contexts (keeps capacities). */
    struct CtxVectorReset
    {
        void operator()(std::vector<specweb::HandlerContext> &ctxs) const
        {
            for (specweb::HandlerContext &c : ctxs) {
                c.request = nullptr;
                c.rec = nullptr;
                c.out = nullptr;
                c.sessions = nullptr;
                c.backendRequest.clear();
                c.backendResponse.clear();
                c.userId = 0;
                c.createdSessionId = 0;
                c.failed = false;
            }
        }
    };

    /**
     * Recycled per-stage ThreadTrace storage, per-lane handler-context
     * vectors and per-shape cohort buffers. Host-side allocation reuse
     * only: recycled objects are scrubbed before use, so simulated
     * results are unaffected.
     *
     * Cohort buffers are owned by their in-flight CohortRun (responses
     * are zero-copy views into the buffer) and returned to the
     * per-shape free list after delivery; with multiple cohorts in
     * flight each holds a distinct buffer.
     */
    util::ObjectPool<std::vector<simt::ThreadTrace>, TraceVectorReset>
        tracePool_;
    util::ObjectPool<std::vector<specweb::HandlerContext>, CtxVectorReset>
        ctxPool_;
    std::unique_ptr<CohortBuffer>
    acquireBuffer(const CohortBufferConfig &cfg);
    void releaseBuffer(std::unique_ptr<CohortBuffer> buffer);
    std::map<std::pair<uint32_t, uint32_t>,
             std::vector<std::unique_ptr<CohortBuffer>>>
        bufferPool_;
    /**
     * Parser trace templates keyed by the exact raw request, recorded
     * at base address 0 and rebased per lane on replay. Bounded by
     * RhythmConfig::traceTemplateCacheEntries (empty when 0).
     */
    std::unordered_map<std::string, simt::ThreadTrace> parserTemplates_;

    fault::FaultPlan *faultPlan_ = nullptr;
    /** Clients that disconnected while their request was in flight. */
    std::unordered_set<uint64_t> disconnected_;
    WindowedPercentile sloLatencyMs_;
    bool degraded_ = false;
    des::Time degradedSince_ = 0;

    // ---- Adaptive deadline-aware batching (DESIGN.md Section 6i) ---
    /** True when any per-type deadline accounting is active. */
    bool deadlinesTracked_ = false;
    /** Tightest deadline across all types (slack test reference). */
    des::Time minDeadline_ = 0;
    /** Per-type pipeline-time EWMAs, ms (sized when adaptive). */
    std::vector<Ewma> typeCostMs_;
    /** Aggregate pipeline-time EWMA, ms (cold-start fallback). */
    Ewma aggCostMs_;
    /** Inter-launch gap EWMA, ms (measured service-rate numerator's
     *  denominator; fed on every typed cohort launch when adaptive). */
    Ewma launchGapMs_;
    /** Entries-per-launch EWMA (measured service-rate numerator). */
    Ewma launchSizeAvg_;
    /** Timestamp of the previous typed cohort launch (0 = none yet). */
    des::Time lastLaunch_ = 0;

    // ---- Sub-warp packing / cohort fusion (DESIGN.md Section 6j) ---
    /** Online per-type control-flow fingerprints (fusion on only). */
    std::unique_ptr<analysis::FingerprintTracker> fingerprints_;

    RhythmStats stats_;
};

} // namespace rhythm::core

#endif // RHYTHM_RHYTHM_SERVER_HH
