#include "rhythm/cohort.hh"

#include "util/logging.hh"

namespace rhythm::core {

std::string_view
cohortStateName(CohortState state)
{
    switch (state) {
      case CohortState::Free:
        return "Free";
      case CohortState::PartiallyFull:
        return "PartiallyFull";
      case CohortState::Full:
        return "Full";
      case CohortState::Busy:
        return "Busy";
    }
    return "?";
}

void
CohortContext::allocate(uint32_t type, uint32_t capacity)
{
    RHYTHM_ASSERT(state_ == CohortState::Free,
                  "allocate on non-Free cohort");
    RHYTHM_ASSERT(capacity > 0);
    state_ = CohortState::PartiallyFull;
    type_ = type;
    capacity_ = capacity;
    firstArrival_ = 0;
    entries_.clear();
    entries_.reserve(capacity);
}

bool
CohortContext::add(CohortEntry entry)
{
    RHYTHM_ASSERT(state_ == CohortState::PartiallyFull,
                  "add on cohort in state ", cohortStateName(state_));
    RHYTHM_ASSERT(entries_.size() < capacity_, "cohort overfull");
    if (entries_.empty())
        firstArrival_ = entry.arrival;
    entries_.push_back(std::move(entry));
    if (entries_.size() == capacity_) {
        state_ = CohortState::Full;
        return true;
    }
    return false;
}

void
CohortContext::markBusy()
{
    RHYTHM_ASSERT(state_ == CohortState::PartiallyFull ||
                      state_ == CohortState::Full,
                  "markBusy on cohort in state ", cohortStateName(state_));
    RHYTHM_ASSERT(!entries_.empty(), "empty cohort launched");
    state_ = CohortState::Busy;
}

void
CohortContext::release()
{
    RHYTHM_ASSERT(state_ == CohortState::Busy,
                  "release on cohort in state ", cohortStateName(state_));
    state_ = CohortState::Free;
    entries_.clear();
    firstArrival_ = 0;
}

CohortPool::CohortPool(uint32_t contexts, uint32_t capacity)
    : capacity_(capacity)
{
    RHYTHM_ASSERT(contexts > 0 && capacity > 0);
    pool_.reserve(contexts);
    for (uint32_t i = 0; i < contexts; ++i)
        pool_.emplace_back(i);
}

CohortContext *
CohortPool::acquireFor(uint32_t type)
{
    for (CohortContext &ctx : pool_) {
        if (ctx.state() == CohortState::PartiallyFull && ctx.type() == type)
            return &ctx;
    }
    for (CohortContext &ctx : pool_) {
        if (ctx.state() == CohortState::Free) {
            ctx.allocate(type, capacity_);
            return &ctx;
        }
    }
    ++stalls_;
    return nullptr;
}

uint32_t
CohortPool::countInState(CohortState state) const
{
    uint32_t count = 0;
    for (const CohortContext &ctx : pool_)
        count += ctx.state() == state;
    return count;
}

void
CohortPool::forEachForming(const std::function<void(CohortContext &)> &fn)
{
    for (CohortContext &ctx : pool_) {
        if (ctx.state() == CohortState::PartiallyFull ||
            ctx.state() == CohortState::Full)
            fn(ctx);
    }
}

CohortContext *
CohortPool::oldestPartiallyFull(
    const std::function<bool(const CohortContext &)> &eligible)
{
    CohortContext *best = nullptr;
    for (CohortContext &ctx : pool_) {
        if (ctx.state() != CohortState::PartiallyFull ||
            ctx.entries().empty() || !eligible(ctx))
            continue;
        if (!best || ctx.firstArrival() < best->firstArrival())
            best = &ctx;
    }
    return best;
}

} // namespace rhythm::core
