/**
 * @file
 * Extension experiment: multi-device sharded serving (DESIGN.md §6k).
 *
 * Drives the fig8-shaped mixed Banking workload (every type except
 * login/logout, sampled from the SPECweb distribution) at a seeded
 * open-loop Poisson rate far above even four Titans' combined
 * capacity, and serves it from fleets of 1, 2 and 4 devices behind
 * the session-hash front end. Every arm sees the byte-identical
 * arrival-time and request streams; a small cross-shard transfer flow
 * (one coordinator transfer per kCrossEvery arrivals) rides along to
 * keep the two-phase path on the measured profile.
 *
 * With every arm saturated, goodput measures delivered capacity, so
 * the d2/d4 ratios are the scale-out efficiency of the sharded
 * serving path — front-end routing, per-device event streams and the
 * canonical stream merge included. Goodput counts completions inside
 * the steady-state half of a fixed simulated window (the first half
 * warms the per-shard backlogs so cohorts form full), and the run
 * stops at the window end: the residual backlog is deliberately not
 * drained.
 *
 * Acceptance gate: goodput(2 devices) >= 1.8x and goodput(4 devices)
 * >= 3.2x the single-device arm, plus an absolute single-device
 * goodput floor (a fleet that scales a collapsed baseline is not a
 * pass). check_bench.py enforces the same conditions against the
 * committed baseline.
 */

#include <iostream>

#include "backend/bankdb.hh"
#include "bench/common.hh"
#include "net/arrival.hh"
#include "rhythm/fleet.hh"
#include "specweb/workload.hh"

namespace {

using namespace rhythm;

constexpr uint32_t kCohortSize = 512;
constexpr uint32_t kContexts = 16;
constexpr double kTimeoutMs = 0.5;
constexpr uint64_t kUsers = 2000;
constexpr uint64_t kDbSeed = 5;
constexpr uint64_t kGenSeed = 31;
/** One cross-shard coordinator transfer per this many arrivals. */
constexpr uint64_t kCrossEvery = 200;

struct RunResult
{
    double goodput = 0.0; //!< Steady-state completions per second.
    double p99Ms = 0.0;
    uint64_t responses = 0;
    uint64_t readerDrops = 0;
    uint64_t shed = 0;
    uint64_t crossCompleted = 0;
    uint64_t crossRejected = 0;
};

RunResult
runPoint(uint32_t devices, const net::ArrivalConfig &acfg,
         double window_sec, uint64_t shard_seed)
{
    // Steady-state measurement: arrivals span the whole window, the
    // first half warms the per-shard backlogs (full cohorts need a
    // backlog deeper than the cohort size for every type), and
    // completions in the second half count toward goodput. The run
    // stops at the window end instead of draining the backlog.
    const des::Time w_end = des::fromSeconds(window_sec);
    const des::Time w_start = w_end / 2;
    // 5% margin so the Poisson arrival stream outlasts the window.
    const uint64_t requests =
        static_cast<uint64_t>(acfg.rate * window_sec * 1.05);

    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    core::RhythmConfig cfg;
    cfg.cohortSize = kCohortSize;
    cfg.cohortContexts = kContexts;
    cfg.cohortTimeout = des::fromSeconds(kTimeoutMs / 1e3);
    cfg.backendOnDevice = true; // Titan B
    cfg.networkOverPcie = false;

    core::FleetConfig fc;
    fc.devices = devices;
    fc.balance = core::BalanceMode::SessionHash;
    fc.shardMapSeed = shard_seed;
    core::Fleet fleet(queue, dcfg, cfg, fc, kUsers, kDbSeed);
    specweb::StaticContent content(32, kDbSeed);
    fleet.setStaticContent(&content);
    uint64_t in_window = 0;
    fleet.setResponseCallback(
        [&](uint64_t, std::string_view, des::Time t) {
            if (t > w_start && t <= w_end)
                ++in_window;
        });

    // Front-end copy of the database: feeds the request generator
    // only (each shard owns its serving copy).
    backend::BankDb db(kUsers, kDbSeed);
    specweb::WorkloadGenerator gen(db, kGenSeed);

    const uint64_t per_shard =
        std::max<uint64_t>(8192 / devices, 1);
    const auto &pools = fleet.populateSessions(per_shard, kUsers);
    // Round-robin interleave so consecutive arrivals spread across the
    // whole fleet regardless of the shard count.
    std::vector<std::pair<uint64_t, uint64_t>> flat;
    size_t longest = 0;
    for (const auto &p : pools)
        longest = std::max(longest, p.size());
    for (size_t k = 0; k < longest; ++k)
        for (const auto &p : pools)
            if (k < p.size())
                flat.push_back(p[k]);

    net::ArrivalProcess arrivals(acfg);
    uint64_t issued = 0;
    std::function<void()> arrive = [&]() {
        if (issued >= requests)
            return;
        specweb::RequestType type;
        do {
            type = gen.sampleType();
        } while (type == specweb::RequestType::Login ||
                 type == specweb::RequestType::Logout);
        const auto &[sid, user] = flat[issued % flat.size()];
        specweb::GeneratedRequest req = gen.generate(type, user, sid);
        ++issued;
        fleet.injectRequest(std::move(req.raw), issued, user,
                            static_cast<uint32_t>(type));
        if (issued % kCrossEvery == 0)
            fleet.beginCrossShardTransfer(gen.sampleUser(),
                                          gen.sampleUser(), 500);
        if (issued < requests)
            queue.scheduleAfter(arrivals.nextGap(), arrive);
    };
    queue.scheduleAfter(arrivals.nextGap(), arrive);
    queue.run(w_end);

    RunResult r;
    r.responses = fleet.totalResponses();
    r.goodput = static_cast<double>(in_window) /
                des::toSeconds(w_end - w_start);
    r.readerDrops = fleet.totalReaderDrops();
    r.shed = fleet.totalShed();
    r.crossCompleted = fleet.stats().crossCompleted;
    r.crossRejected = fleet.stats().crossRejected;
    // Fleet-wide p99: the conservative headline is the worst shard.
    for (uint32_t i = 0; i < fleet.devices(); ++i)
        r.p99Ms = std::max(
            r.p99Ms, fleet.server(i).stats().latencyMs.percentile(99.0));
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter report("ext_sharding", argc, argv);
    bench::banner("Extension: multi-device sharded serving",
                  "DESIGN.md 6k (>=1.8x goodput at 2 devices, >=3.2x "
                  "at 4)");

    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--quick")
            quick = true;

    const bench::ArrivalFlags arrival =
        bench::ArrivalFlags::parse(argc, argv);
    const bench::ShardingFlags sharding =
        bench::ShardingFlags::parse(argc, argv);

    // Offered rate: one saturated Titan B delivers ~1.2M responses/s
    // on this mix, so 16M/s keeps even the 4-device arm well past
    // saturation (and fills its per-shard backlogs quickly).
    const double rate = arrival.anyGiven && arrival.config.rate > 0 &&
                                arrival.config.rate != 200e3
                            ? arrival.config.rate
                            : 16e6;
    const double window_sec = quick ? 6e-3 : 14e-3;

    net::ArrivalConfig acfg;
    acfg.kind = net::ArrivalKind::Poisson;
    acfg.rate = rate;
    acfg.seed = arrival.config.seed;

    // check_bench.py requires these keys: the sweep under test must be
    // reproducible from the document alone.
    report.config("devices", 4.0);
    report.config("balance", std::string("hash"));
    report.config("shard_seed", static_cast<double>(sharding.shardSeed));
    report.config("arrival_rate", rate);
    report.config("arrival_seed",
                  static_cast<double>(arrival.config.seed));
    report.config("window_ms", window_sec * 1e3);
    report.config("cohort_size", static_cast<double>(kCohortSize));
    report.config("cross_every", static_cast<double>(kCrossEvery));
    report.config("quick", quick ? 1.0 : 0.0);

    TableWriter table({"devices", "goodput K/s", "speedup", "p99 ms",
                       "drops", "cross ok/rej"});
    double goodput[3] = {0, 0, 0};
    const uint32_t arms[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
        const RunResult r =
            runPoint(arms[i], acfg, window_sec, sharding.shardSeed);
        goodput[i] = r.goodput;
        const double speedup =
            goodput[0] > 0 ? r.goodput / goodput[0] : 0.0;
        table.addRow({std::to_string(arms[i]),
                      bench::fmt(r.goodput / 1e3, 1),
                      bench::fmt(speedup, 2), bench::fmt(r.p99Ms, 2),
                      withCommas(r.readerDrops + r.shed),
                      withCommas(r.crossCompleted) + " / " +
                          withCommas(r.crossRejected)});
        const std::string key =
            "sharding.d" + std::to_string(arms[i]) + ".";
        report.metric(key + "goodput", r.goodput);
        report.metric(key + "p99_ms", r.p99Ms);
        report.metric(key + "reader_drops",
                      static_cast<double>(r.readerDrops));
        report.metric(key + "cross_completed",
                      static_cast<double>(r.crossCompleted));
    }
    table.printAscii(std::cout);

    const double speedup_d2 =
        goodput[0] > 0 ? goodput[1] / goodput[0] : 0.0;
    const double speedup_d4 =
        goodput[0] > 0 ? goodput[2] / goodput[0] : 0.0;
    // The absolute floor guards the full acceptance run; --quick's
    // shorter window halves the warm-up, so its floor scales down
    // (the ratio gates stay identical).
    const double floor = quick ? 300e3 : 800e3;
    const bool pass = speedup_d2 >= 1.8 && speedup_d4 >= 3.2 &&
                      goodput[0] >= floor;
    std::cout << "\nScale-out: " << bench::fmt(speedup_d2, 2)
              << "x at 2 devices, " << bench::fmt(speedup_d4, 2)
              << "x at 4 (single-device "
              << bench::fmt(goodput[0] / 1e3, 0)
              << " Kreqs/s)\nGate: >=1.8x at 2, >=3.2x at 4, >="
              << bench::fmt(floor / 1e3, 0)
              << " Kreqs/s single-device floor\nVerdict: "
              << (pass ? "PASS" : "FAIL") << "\n";
    report.metric("sharding.speedup_d2", speedup_d2);
    report.metric("sharding.speedup_d4", speedup_d4);
    report.metric("acceptance_pass", pass ? 1.0 : 0.0);
    if (!report.write())
        return 1;
    return pass ? 0 : 1;
}
