/**
 * @file
 * Recycling object pool for hot-path allocations.
 *
 * The server's cohort pipeline builds and discards large vector-backed
 * structures (per-stage ThreadTrace arrays, cohort buffers) once per
 * cohort; recycling them keeps their heap capacity alive across
 * cohorts instead of re-growing it from zero each time. The pool is
 * a plain free list — it never constructs eagerly and never shrinks
 * below what release() hands back (up to a bound), so it is purely a
 * host-side allocation optimization with no effect on simulated
 * results.
 *
 * Not thread-safe: acquire/release must happen on the owning (DES)
 * thread. Objects handed out may be used inside parallel regions as
 * long as each worker touches a disjoint object.
 */

#ifndef RHYTHM_UTIL_ARENA_HH
#define RHYTHM_UTIL_ARENA_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace rhythm::util {

/**
 * A bounded free list of reusable objects.
 *
 * @tparam T Object type; must be movable and default-constructible.
 * @tparam Reset Functor invoked on release to scrub the object while
 *         preserving its capacity (e.g. clear() on containers).
 */
template <typename T, typename Reset>
class ObjectPool
{
  public:
    explicit ObjectPool(Reset reset = Reset{}, size_t max_free = 64)
        : reset_(std::move(reset)), maxFree_(max_free)
    {
    }

    /** Pops a recycled object, or default-constructs one. */
    T acquire()
    {
        if (free_.empty())
            return T{};
        T obj = std::move(free_.back());
        free_.pop_back();
        return obj;
    }

    /** Scrubs and shelves an object for reuse (dropped when full). */
    void release(T obj)
    {
        if (free_.size() >= maxFree_)
            return; // drop: the pool is at capacity
        reset_(obj);
        free_.push_back(std::move(obj));
    }

    /** Objects currently shelved. */
    size_t freeCount() const { return free_.size(); }

  private:
    std::vector<T> free_;
    Reset reset_;
    size_t maxFree_;
};

} // namespace rhythm::util

#endif // RHYTHM_UTIL_ARENA_HH
