/**
 * @file
 * Per-thread execution traces and the instrumentation interface.
 *
 * Request handlers in this library are written once against TraceRecorder.
 * Run with a NullTracer they serve the host baseline at full speed; run
 * with a CountingTracer they yield dynamic instruction counts (the paper's
 * Table 2 metric); run with a RecordingTracer they yield a ThreadTrace
 * that the SIMT simulator executes in warp lockstep (Section 2.3's
 * merged-trace methodology, made executable).
 */

#ifndef RHYTHM_SIMT_TRACE_HH
#define RHYTHM_SIMT_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rhythm::simt {

/** Address spaces with distinct coalescing/cost behaviour. */
enum class MemSpace : uint8_t {
    Global,   //!< Off-chip DRAM; 128 B coalescing applies.
    Shared,   //!< On-chip scratchpad; no DRAM traffic.
    Constant, //!< Cached, broadcast; free when all lanes read one address.
};

/**
 * A (possibly bulk) memory operation.
 *
 * Represents @c count accesses of @c width bytes starting at @c addr with
 * a per-element byte stride of @c stride. Bulk representation keeps traces
 * compact: one record per buffer append rather than one per byte.
 */
struct MemOp
{
    uint64_t addr = 0;
    uint32_t count = 1;
    uint32_t stride = 0;
    uint16_t width = 4;
    MemSpace space = MemSpace::Global;
    bool isStore = false;
};

/**
 * One dynamic basic-block execution.
 *
 * @c blockId identifies the static code region (stable across threads that
 * follow the same control path); @c instructions is the dynamic
 * instruction weight of this execution (loop-trip dependent weights model
 * data-dependent work such as string copies).
 */
struct BlockExec
{
    uint32_t blockId = 0;
    uint32_t instructions = 0;
    uint32_t memBegin = 0; //!< Index of first MemOp in ThreadTrace::memOps.
    uint32_t memCount = 0; //!< Number of MemOps issued by this execution.
};

/** The complete dynamic trace of one thread (one request). */
struct ThreadTrace
{
    std::vector<BlockExec> blocks;
    std::vector<MemOp> memOps;

    /** Total dynamic instructions across all block executions. */
    uint64_t totalInstructions() const;

    /** Total dynamic basic-block executions. */
    size_t length() const { return blocks.size(); }

    /** Removes all recorded state for reuse. */
    void clear();
};

/**
 * Instrumentation interface implemented by handlers' execution contexts.
 *
 * Calls are coarse (one per basic block / buffer operation), so virtual
 * dispatch cost is negligible relative to the work being modelled.
 */
class TraceRecorder
{
  public:
    virtual ~TraceRecorder() = default;

    /**
     * Records entry to a basic block.
     * @param block_id Stable static identifier of the code region.
     * @param instructions Dynamic instruction weight of this execution.
     */
    virtual void block(uint32_t block_id, uint32_t instructions) = 0;

    /** Records a (bulk) memory access within the current block. */
    virtual void memory(const MemOp &op) = 0;

    /** Convenience: records a bulk load. */
    void
    load(uint64_t addr, uint32_t count, uint32_t stride, uint16_t width,
         MemSpace space = MemSpace::Global)
    {
        memory(MemOp{addr, count, stride, width, space, false});
    }

    /** Convenience: records a bulk store. */
    void
    store(uint64_t addr, uint32_t count, uint32_t stride, uint16_t width,
          MemSpace space = MemSpace::Global)
    {
        memory(MemOp{addr, count, stride, width, space, true});
    }
};

/** Discards everything: host-baseline fast path. */
class NullTracer : public TraceRecorder
{
  public:
    void block(uint32_t, uint32_t) override {}
    void memory(const MemOp &) override {}
};

/** Counts dynamic instructions and memory bytes only. */
class CountingTracer : public TraceRecorder
{
  public:
    void
    block(uint32_t, uint32_t instructions) override
    {
        instructions_ += instructions;
        ++blocks_;
    }

    void
    memory(const MemOp &op) override
    {
        bytes_ += static_cast<uint64_t>(op.count) * op.width;
    }

    /** Total dynamic instructions observed. */
    uint64_t instructions() const { return instructions_; }

    /** Total dynamic block executions observed. */
    uint64_t blocks() const { return blocks_; }

    /** Total bytes touched by memory operations. */
    uint64_t bytes() const { return bytes_; }

    /** Resets all counters. */
    void
    reset()
    {
        instructions_ = 0;
        blocks_ = 0;
        bytes_ = 0;
    }

  private:
    uint64_t instructions_ = 0;
    uint64_t blocks_ = 0;
    uint64_t bytes_ = 0;
};

/** Captures a full ThreadTrace for SIMT simulation. */
class RecordingTracer : public TraceRecorder
{
  public:
    /** Binds the recorder to an output trace (cleared on bind). */
    explicit RecordingTracer(ThreadTrace &out);

    void block(uint32_t block_id, uint32_t instructions) override;
    void memory(const MemOp &op) override;

  private:
    ThreadTrace &trace_;
};

} // namespace rhythm::simt

#endif // RHYTHM_SIMT_TRACE_HH
