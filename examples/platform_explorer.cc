/**
 * @file
 * Platform explorer: sweep future-accelerator design knobs and watch
 * what Rhythm does with them — the paper's closing direction ("design
 * data parallel processors specialized for server workloads").
 *
 * Sweeps SM count, memory bandwidth and PCIe generation on the Titan A
 * and Titan B configurations and prints workload throughput/efficiency
 * for a representative request type.
 *
 * Usage: platform_explorer [request-type-index]
 */

#include <cstdlib>
#include <iostream>

#include "platform/titan.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace {

using namespace rhythm;

platform::TypeRunResult
run(platform::TitanVariant variant, specweb::RequestType type)
{
    platform::IsolatedRunOptions opts;
    opts.cohorts = 8;
    opts.users = 1000;
    opts.laneSample = 128;
    return platform::runIsolatedType(variant, type, opts);
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t type_index =
        argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) % 14 : 1;
    const specweb::RequestType type =
        specweb::typeTable()[type_index].type;
    std::cout << "Exploring platform designs for request type '"
              << specweb::typeInfo(type).name << "'\n";

    {
        std::cout << "\n-- Scaling the SM array (Titan B) --\n";
        TableWriter t({"SMs", "KReqs/s", "device util",
                       "reqs/J dynamic"});
        for (int sms : {7, 14, 28, 56}) {
            platform::TitanVariant v = platform::titanB();
            v.device.numSms = sms;
            // Device power scales with the SM array in this sweep.
            v.power.devicePeakWatts = 225.0 * sms / 14.0;
            auto r = run(v, type);
            t.addRow({std::to_string(sms),
                      formatDouble(r.throughput / 1e3, 0),
                      formatDouble(r.deviceUtilization, 2),
                      formatDouble(r.reqsPerJouleDynamic, 0)});
        }
        t.printAscii(std::cout);
    }

    {
        std::cout << "\n-- Memory bandwidth (Titan B) --\n";
        TableWriter t({"GB/s", "KReqs/s", "device util"});
        for (double bw : {144.0, 288.0, 576.0, 1152.0}) {
            platform::TitanVariant v = platform::titanB();
            v.device.memBandwidthGBs = bw;
            auto r = run(v, type);
            t.addRow({formatDouble(bw, 0),
                      formatDouble(r.throughput / 1e3, 0),
                      formatDouble(r.deviceUtilization, 2)});
        }
        t.printAscii(std::cout);
    }

    {
        std::cout << "\n-- PCIe generation (Titan A; paper 6.1.1) --\n";
        TableWriter t({"PCIe GB/s", "KReqs/s", "copy util",
                       "KReqs/s bound"});
        for (double gbs : {6.0, 12.0, 24.0, 48.0}) {
            platform::TitanVariant v = platform::titanA();
            v.device.pcieBandwidthGBs = gbs;
            auto r = run(v, type);
            t.addRow({formatDouble(gbs, 0),
                      formatDouble(r.throughput / 1e3, 0),
                      formatDouble(r.copyUtilization, 2),
                      formatDouble(
                          platform::pcieThroughputBound(v, type) / 1e3,
                          0)});
        }
        t.printAscii(std::cout);
        std::cout << "Even PCIe 4.0 (24 GB/s) leaves the discrete-GPU "
                     "design link-bound for large\nresponses — the SoC "
                     "integration argument (paper Section 6.1.1).\n";
    }
    return 0;
}
