file(REMOVE_RECURSE
  "CMakeFiles/rhythm_search.dir/corpus.cc.o"
  "CMakeFiles/rhythm_search.dir/corpus.cc.o.d"
  "CMakeFiles/rhythm_search.dir/index.cc.o"
  "CMakeFiles/rhythm_search.dir/index.cc.o.d"
  "CMakeFiles/rhythm_search.dir/service.cc.o"
  "CMakeFiles/rhythm_search.dir/service.cc.o.d"
  "librhythm_search.a"
  "librhythm_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
