#include "backend/protocol.hh"

#include "util/logging.hh"
#include "util/strings.hh"

namespace rhythm::backend {
namespace {

struct OpEntry
{
    Op op;
    std::string_view name;
};

constexpr OpEntry kOps[] = {
    {Op::Authenticate, "AUTH"},
    {Op::GetAccounts, "ACCTS"},
    {Op::GetTransactions, "TXS"},
    {Op::GetPayees, "PAYEES"},
    {Op::AddPayee, "ADDPAYEE"},
    {Op::PayBill, "PAYBILL"},
    {Op::GetPayments, "PAYMENTS"},
    {Op::UpdateProfile, "UPDPROF"},
    {Op::GetProfile, "PROF"},
    {Op::GetCheckDetail, "CHECK"},
    {Op::OrderCheck, "ORDERCHK"},
    {Op::PlaceCheckOrder, "PLACECHK"},
    {Op::Transfer, "XFER"},
    {Op::Summary, "SUMM"},
    {Op::XferOut, "XFEROUT"},
    {Op::XferIn, "XFERIN"},
};

} // namespace

std::string_view
opName(Op op)
{
    for (const auto &entry : kOps) {
        if (entry.op == op)
            return entry.name;
    }
    RHYTHM_PANIC("unknown backend op");
}

bool
parseOp(std::string_view name, Op &out)
{
    for (const auto &entry : kOps) {
        if (entry.name == name) {
            out = entry.op;
            return true;
        }
    }
    return false;
}

std::string
BackendRequest::serialize() const
{
    std::string out;
    out.append(opName(op));
    out.push_back('|');
    out.append(std::to_string(userId));
    for (const std::string &arg : args) {
        out.push_back('|');
        out.append(arg);
    }
    RHYTHM_ASSERT(out.size() <= kRequestSlotBytes,
                  "backend request exceeds its slot");
    return out;
}

bool
BackendRequest::parse(std::string_view text, BackendRequest &out)
{
    auto parts = split(text, '|');
    if (parts.size() < 2)
        return false;
    if (!parseOp(parts[0], out.op))
        return false;
    if (!parseU64(parts[1], out.userId))
        return false;
    out.args.clear();
    for (size_t i = 2; i < parts.size(); ++i)
        out.args.emplace_back(parts[i]);
    return true;
}

namespace response {

std::string
ok(std::string_view payload_text)
{
    std::string out = "OK|";
    out.append(payload_text);
    RHYTHM_ASSERT(out.size() <= kResponseSlotBytes,
                  "backend response exceeds its slot");
    return out;
}

std::string
error(std::string_view reason)
{
    std::string out = "ERR|";
    out.append(reason);
    return out;
}

bool
isOk(std::string_view text)
{
    return startsWith(text, "OK|");
}

bool
isUnavailable(std::string_view text)
{
    return startsWith(text, "ERR|") &&
           text.substr(4) == kUnavailableReason;
}

std::string_view
payload(std::string_view text)
{
    if (!isOk(text))
        return {};
    return text.substr(3);
}

std::vector<std::string_view>
records(std::string_view payload_text)
{
    std::vector<std::string_view> out;
    for (std::string_view rec : split(payload_text, ';')) {
        if (!rec.empty())
            out.push_back(rec);
    }
    return out;
}

std::vector<std::string_view>
fields(std::string_view record)
{
    return split(record, ',');
}

} // namespace response
} // namespace rhythm::backend
