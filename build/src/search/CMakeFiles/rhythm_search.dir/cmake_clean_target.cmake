file(REMOVE_RECURSE
  "librhythm_search.a"
)
