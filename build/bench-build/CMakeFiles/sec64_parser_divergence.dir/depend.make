# Empty dependencies file for sec64_parser_divergence.
# This may be replaced when dependencies are built.
