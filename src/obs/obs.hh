/**
 * @file
 * The observability context and the OBS_* instrumentation macro layer.
 *
 * One process-wide Observability object bundles the metrics registry
 * and the tracer and binds them to a DES clock. It is DISABLED by
 * default: every OBS_* macro compiles to a single branch on one global
 * bool, so the instrumented hot paths (server stages, kernel launches,
 * PCIe transfers) cost nothing measurable when observability is off and
 * the default figure outputs stay byte-identical to the seed.
 *
 * Drivers that want traces/metrics call
 *
 *     obs::global().enable(queue);   // right after creating the queue
 *     ... run the simulation ...
 *     obs::global().tracer().writeChromeTrace(out);
 *     obs::global().metrics().writeJson(w);
 *     obs::global().disable();       // and reset() between runs
 *
 * Defining RHYTHM_OBS_DISABLED at compile time removes the
 * instrumentation entirely (the macros expand to nothing) for builds
 * that want provably-zero overhead.
 */

#ifndef RHYTHM_OBS_OBS_HH
#define RHYTHM_OBS_OBS_HH

#include <atomic>

#include "des/event_queue.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace rhythm::obs {

/** Fixed track ids used by the built-in instrumentation. */
namespace track {
/** Pipeline-stage tracks. */
inline constexpr uint32_t kReader = 1;
inline constexpr uint32_t kParser = 2;
/** Per-cohort-context tracks: kCohortBase + context id. */
inline constexpr uint32_t kCohortBase = 100;
/** Per-hardware-work-queue tracks: kHwqBase + queue index. */
inline constexpr uint32_t kHwqBase = 300;
/** PCIe DMA engine tracks. */
inline constexpr uint32_t kPcieH2D = 500;
inline constexpr uint32_t kPcieD2H = 501;
/** Per-copy-engine tracks (overlapped copy model, DESIGN.md 6h):
 *  kPcieH2DEngineBase + engine index / kPcieD2HEngineBase + index. */
inline constexpr uint32_t kPcieH2DEngineBase = 510;
inline constexpr uint32_t kPcieD2HEngineBase = 550;
/** Instant events: faults, shedding, degradation transitions. */
inline constexpr uint32_t kEvents = 600;
/**
 * Per-device track offset stride for fleet runs: device i's tracks
 * live at (i + 1) * kDeviceStride + base, which the Chrome exporter
 * renders as process "dev<i>" (see trace.hh kTrackPidStride). All
 * base tracks above are < kDeviceStride, so blocks never collide.
 */
inline constexpr uint32_t kDeviceStride = kTrackPidStride;
} // namespace track

/** The process-wide observability context. */
class Observability
{
  public:
    /**
     * True when instrumentation is recording. Readable from engine
     * pool workers (relaxed atomic); enable()/disable() happen on the
     * DES thread outside parallel regions.
     */
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /**
     * Starts recording against @p clock. The clock must outlive the
     * enabled period (disable() before destroying the queue).
     */
    void enable(const des::EventQueue &clock)
    {
        clock_ = &clock;
        enabled_ = true;
        tracer_.setTrackName(track::kReader, "reader");
        tracer_.setTrackName(track::kParser, "parser");
        tracer_.setTrackName(track::kEvents, "events");
    }

    /** Stops recording (data is retained until reset()). */
    void disable()
    {
        enabled_ = false;
        clock_ = nullptr;
    }

    /** Clears trace events and zeroes metric values. */
    void reset()
    {
        tracer_.clear();
        metrics_.reset();
    }

    /** Current simulated time (0 when no clock is bound). */
    des::Time now() const { return clock_ ? clock_->now() : 0; }

    /**
     * Binds a DES event stream to a fleet device. Instrumentation
     * fired while an event on @p stream is being dispatched (or under
     * a StreamScope for that stream) records metrics under a
     * "dev<index>." prefix and trace spans in the device's track
     * block — so N devices' pipelines land in N separate trace
     * processes instead of interleaving into one. Call after
     * enable(), before running; unbound streams (always stream 0)
     * record exactly as a single-device run.
     */
    void bindStreamDevice(des::StreamId stream, uint32_t device_index)
    {
        if (streamPrefix_.size() <= stream) {
            streamPrefix_.resize(stream + 1);
            streamTrackOffset_.resize(stream + 1, 0);
        }
        const std::string dev = "dev" + std::to_string(device_index);
        streamPrefix_[stream] = dev + ".";
        streamTrackOffset_[stream] =
            (device_index + 1) * track::kDeviceStride;
        tracer_.setProcessName(device_index + 1, dev);
    }

    /** Drops all stream→device bindings (between fleet runs). */
    void clearDeviceBindings()
    {
        streamPrefix_.clear();
        streamTrackOffset_.clear();
    }

    /**
     * Maps a base track id into the current stream's device block
     * (identity for unbound streams). Used by the OBS_* span macros.
     */
    uint32_t mapTrack(uint32_t track) const
    {
        const size_t s = currentStreamIndex();
        return s < streamTrackOffset_.size() ? track + streamTrackOffset_[s]
                                             : track;
    }

    /**
     * Device-namespaced registry accessors used by the OBS_* macros:
     * the metric name gains the current stream's "dev<N>." prefix
     * when the stream is bound. Safe from engine pool workers for
     * counters/gauges: the current stream only changes between DES
     * events, and workers are joined inside each event.
     */
    Counter &counter(std::string_view name)
    {
        const std::string_view p = currentPrefix();
        if (p.empty())
            return metrics_.counter(name);
        return metrics_.counter(prefixed(p, name));
    }

    Gauge &gauge(std::string_view name)
    {
        const std::string_view p = currentPrefix();
        if (p.empty())
            return metrics_.gauge(name);
        return metrics_.gauge(prefixed(p, name));
    }

    FixedHistogram &histogram(std::string_view name)
    {
        const std::string_view p = currentPrefix();
        if (p.empty())
            return metrics_.histogram(name);
        return metrics_.histogram(prefixed(p, name));
    }

    MetricsRegistry &metrics() { return metrics_; }
    Tracer &tracer() { return tracer_; }

  private:
    size_t currentStreamIndex() const
    {
        return clock_ ? clock_->currentStream() : 0;
    }

    std::string_view currentPrefix() const
    {
        const size_t s = currentStreamIndex();
        return s < streamPrefix_.size() ? std::string_view(streamPrefix_[s])
                                        : std::string_view{};
    }

    static std::string prefixed(std::string_view prefix,
                                std::string_view name)
    {
        std::string full;
        full.reserve(prefix.size() + name.size());
        full.append(prefix);
        full.append(name);
        return full;
    }

    std::atomic<bool> enabled_{false};
    const des::EventQueue *clock_ = nullptr;
    MetricsRegistry metrics_;
    Tracer tracer_;
    std::vector<std::string> streamPrefix_;     //!< By stream id; "" = unbound.
    std::vector<uint32_t> streamTrackOffset_;   //!< By stream id; 0 = unbound.
};

/**
 * The global observability context. Lifecycle calls (enable/disable/
 * reset) and tracer/histogram use are DES-thread-only; enabled(),
 * counters and gauges are safe from engine pool workers.
 */
Observability &global();

} // namespace rhythm::obs

// ---- Instrumentation macros ------------------------------------------
//
// Every macro is a no-op unless obs::global().enabled(); with
// RHYTHM_OBS_DISABLED they vanish at compile time.

#ifdef RHYTHM_OBS_DISABLED

#define OBS_ENABLED() false
#define OBS_TRACK_NAME(track, name) \
    do {                            \
    } while (0)
#define OBS_SPAN_BEGIN(track, name, cat) \
    do {                                 \
    } while (0)
#define OBS_SPAN_END(track) \
    do {                    \
    } while (0)
#define OBS_SPAN_COMPLETE(track, name, cat, start, end, ...) \
    do {                                                     \
    } while (0)
#define OBS_INSTANT(track, name, cat, ...) \
    do {                                   \
    } while (0)
#define OBS_COUNTER_ADD(name, delta) \
    do {                             \
    } while (0)
#define OBS_GAUGE_SET(name, v) \
    do {                       \
    } while (0)
#define OBS_HIST_ADD(name, v) \
    do {                      \
    } while (0)

#else

#define OBS_ENABLED() (::rhythm::obs::global().enabled())

// Track and metric-name arguments below route through the global
// context's device mapping: when the current DES stream is bound to a
// fleet device, tracks shift into the device's block and metric names
// gain a "dev<N>." prefix. Unbound streams (every single-device run)
// resolve to the raw track/name.

/** Names a trace track (idempotent). */
#define OBS_TRACK_NAME(track, name)                                  \
    do {                                                             \
        if (OBS_ENABLED())                                           \
            ::rhythm::obs::global().tracer().setTrackName(           \
                ::rhythm::obs::global().mapTrack(track), (name));    \
    } while (0)

/** Opens a nested span at the current simulated time. */
#define OBS_SPAN_BEGIN(track, name, cat)                              \
    do {                                                              \
        if (OBS_ENABLED())                                            \
            ::rhythm::obs::global().tracer().begin(                   \
                ::rhythm::obs::global().mapTrack(track), (name),      \
                (cat), ::rhythm::obs::global().now());                \
    } while (0)

/** Closes the innermost span on the track. */
#define OBS_SPAN_END(track)                                         \
    do {                                                            \
        if (OBS_ENABLED())                                          \
            ::rhythm::obs::global().tracer().end(                   \
                ::rhythm::obs::global().mapTrack(track),            \
                ::rhythm::obs::global().now());                     \
    } while (0)

/**
 * Records a span with explicit start/end; trailing arguments are
 * obs::TraceArg annotations.
 */
#define OBS_SPAN_COMPLETE(track, name, cat, start, end, ...)          \
    do {                                                              \
        if (OBS_ENABLED())                                            \
            ::rhythm::obs::global().tracer().complete(                \
                ::rhythm::obs::global().mapTrack(track), (name),      \
                (cat), (start), (end), {__VA_ARGS__});                \
    } while (0)

/** Records an instantaneous event at the current simulated time. */
#define OBS_INSTANT(track, name, cat, ...)                            \
    do {                                                              \
        if (OBS_ENABLED())                                            \
            ::rhythm::obs::global().tracer().instant(                 \
                ::rhythm::obs::global().mapTrack(track), (name),      \
                (cat), ::rhythm::obs::global().now(),                 \
                {__VA_ARGS__});                                       \
    } while (0)

/** Bumps a registry counter. */
#define OBS_COUNTER_ADD(name, delta)                                  \
    do {                                                              \
        if (OBS_ENABLED())                                            \
            ::rhythm::obs::global().counter(name).add(delta);         \
    } while (0)

/** Sets a registry gauge. */
#define OBS_GAUGE_SET(name, v)                                       \
    do {                                                             \
        if (OBS_ENABLED())                                           \
            ::rhythm::obs::global().gauge(name).set(v);              \
    } while (0)

/** Adds a sample to a registry histogram (default latency buckets). */
#define OBS_HIST_ADD(name, v)                                        \
    do {                                                             \
        if (OBS_ENABLED())                                           \
            ::rhythm::obs::global().histogram(name).add(v);          \
    } while (0)

#endif // RHYTHM_OBS_DISABLED

#endif // RHYTHM_OBS_OBS_HH
