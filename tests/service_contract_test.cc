/**
 * @file
 * Service-interface contract tests: every shipped Service (Banking,
 * Search, Chat) must satisfy the same pipeline contract — metadata
 * consistency, end-to-end serving without drops, drain, per-type cohort
 * grouping, and validated (non-error) responses for well-formed
 * traffic. New services can be added to the harness with one factory.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "backend/bankdb.hh"
#include "chat/service.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "search/service.hh"
#include "specweb/workload.hh"

namespace rhythm {
namespace {

simt::NullTracer gNull;

/** A service under test plus its request generator. */
struct Harness
{
    virtual ~Harness() = default;
    virtual core::Service &service() = 0;
    /** Generates a well-formed request; the server must not error it. */
    virtual std::string nextRequest(core::RhythmServer &server) = 0;
    virtual std::string name() const = 0;
};

struct BankingHarness : Harness
{
    BankingHarness() : db(100, 5), svc(db), gen(db, 9) {}

    core::Service &service() override { return svc; }

    std::string
    nextRequest(core::RhythmServer &server) override
    {
        specweb::RequestType type;
        do {
            type = gen.sampleType();
        } while (type == specweb::RequestType::Login ||
                 type == specweb::RequestType::Logout);
        // Reuse a small session pool: the contract fixture's session
        // array (cohortSize buckets) is deliberately tiny.
        if (sessions.empty())
            sessions = server.sessions().populate(16, db.numUsers());
        const auto &[sid, user] = sessions[next_++ % sessions.size()];
        return gen.generate(type, user, sid).raw;
    }

    std::string name() const override { return "banking"; }

    backend::BankDb db;
    core::BankingService svc;
    specweb::WorkloadGenerator gen;
    std::vector<std::pair<uint64_t, uint64_t>> sessions;
    size_t next_ = 0;
};

struct SearchHarness : Harness
{
    SearchHarness() : corpus(300, 2048, 5), index(corpus), svc(index),
                      gen(corpus, 9)
    {
    }

    core::Service &service() override { return svc; }

    std::string
    nextRequest(core::RhythmServer &) override
    {
        return gen.next().raw;
    }

    std::string name() const override { return "search"; }

    search::Corpus corpus;
    search::InvertedIndex index;
    search::SearchService svc;
    search::QueryGenerator gen;
};

struct ChatHarness : Harness
{
    ChatHarness() : store(16, 20, 5), svc(store), gen(store, 9) {}

    core::Service &service() override { return svc; }

    std::string
    nextRequest(core::RhythmServer &) override
    {
        chat::PageType type;
        return gen.next(type);
    }

    std::string name() const override { return "chat"; }

    chat::RoomStore store;
    chat::ChatService svc;
    chat::ChatGenerator gen;
};

using HarnessFactory = std::function<std::unique_ptr<Harness>()>;

class ServiceContract
    : public ::testing::TestWithParam<std::pair<const char *,
                                                HarnessFactory>>
{
};

TEST_P(ServiceContract, MetadataIsConsistent)
{
    auto harness = GetParam().second();
    core::Service &svc = harness->service();
    ASSERT_GT(svc.numTypes(), 0u);
    for (uint32_t t = 0; t < svc.numTypes(); ++t) {
        EXPECT_FALSE(svc.typeName(t).empty()) << t;
        EXPECT_GE(svc.numStages(t), 1) << t;
        const uint32_t buffer = svc.responseBufferBytes(t);
        EXPECT_GT(buffer, 0u) << t;
        EXPECT_EQ(buffer & (buffer - 1), 0u)
            << "buffer not a power of two for type " << t;
    }
    EXPECT_GT(svc.backendRequestSlotBytes(), 0u);
    EXPECT_GT(svc.backendResponseSlotBytes(), 0u);
}

TEST_P(ServiceContract, ServesMixedTrafficWithoutDrops)
{
    auto harness = GetParam().second();

    des::EventQueue queue;
    simt::Device device(queue, simt::DeviceConfig{});
    core::RhythmConfig cfg;
    cfg.cohortSize = 16;
    cfg.cohortContexts = 6;
    cfg.cohortTimeout = des::kMillisecond;
    cfg.backendOnDevice = true;
    cfg.networkOverPcie = false;
    core::RhythmServer server(queue, device, harness->service(), cfg);

    uint64_t answered = 0, errors = 0;
    server.setResponseCallback([&](uint64_t, std::string_view response,
                                   des::Time) {
        ++answered;
        errors += response.find("HTTP/1.1 200") != 0;
    });

    const uint64_t total = 160;
    for (uint64_t i = 0; i < total; ++i) {
        const std::string raw = harness->nextRequest(server);
        while (!server.injectRequest(raw, i))
            queue.run();
    }
    server.flush();
    queue.run();
    queue.run(); // stragglers from flush-created partials

    EXPECT_EQ(answered, total) << harness->name();
    EXPECT_EQ(errors, 0u) << harness->name();
    EXPECT_TRUE(server.drained()) << harness->name();
    EXPECT_EQ(server.stats().errorResponses, 0u) << harness->name();
    EXPECT_GT(server.stats().cohortsLaunched, 0u);
}

TEST_P(ServiceContract, ResolveRejectsForeignPaths)
{
    auto harness = GetParam().second();
    core::Service &svc = harness->service();
    http::Request req;
    req.path = "/definitely/not/a/route.xyz";
    uint32_t type = 0;
    EXPECT_FALSE(svc.resolveType(req, type)) << harness->name();
}

TEST_P(ServiceContract, BackendRejectsGarbage)
{
    auto harness = GetParam().second();
    core::Service &svc = harness->service();
    const std::string resp = svc.executeBackend("totally|bogus", gNull);
    EXPECT_NE(resp.find("ERR"), std::string::npos) << harness->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllServices, ServiceContract,
    ::testing::Values(
        std::make_pair("banking",
                       HarnessFactory([] {
                           return std::unique_ptr<Harness>(
                               new BankingHarness());
                       })),
        std::make_pair("search",
                       HarnessFactory([] {
                           return std::unique_ptr<Harness>(
                               new SearchHarness());
                       })),
        std::make_pair("chat", HarnessFactory([] {
                           return std::unique_ptr<Harness>(
                               new ChatHarness());
                       }))),
    [](const ::testing::TestParamInfo<ServiceContract::ParamType> &info) {
        return std::string(info.param.first);
    });

} // namespace
} // namespace rhythm
