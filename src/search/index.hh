/**
 * @file
 * Inverted index with tf-idf ranking and prefix suggestion — the Search
 * workload's backend data structure.
 */

#ifndef RHYTHM_SEARCH_INDEX_HH
#define RHYTHM_SEARCH_INDEX_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "search/corpus.hh"
#include "simt/trace.hh"

namespace rhythm::search {

/** One posting: a document containing a term. */
struct Posting
{
    uint32_t docId = 0;
    uint32_t termFrequency = 0;
};

/** One ranked search hit. */
struct Hit
{
    uint32_t docId = 0;
    double score = 0.0;
};

/**
 * The inverted index over a corpus.
 *
 * Query evaluation is instrumented (posting-list traversal cost scales
 * with list length) because on CPU baselines it is part of each
 * request's instruction count, and on Titan B/C it runs as the
 * device-resident backend kernel.
 */
class InvertedIndex
{
  public:
    /** Builds the index over @p corpus (referenced, not owned). */
    explicit InvertedIndex(const Corpus &corpus);

    /** Resolves a word string to its id. @return false if unknown. */
    bool wordId(std::string_view word, uint32_t &out) const;

    /** Posting list of a term (empty for unknown ids). */
    const std::vector<Posting> &postings(uint32_t word_id) const;

    /**
     * Evaluates a conjunctive-ish query: documents are scored by
     * tf-idf summed over the terms they contain; the top @p k hits are
     * returned in score order.
     */
    std::vector<Hit> query(const std::vector<uint32_t> &terms, size_t k,
                           simt::TraceRecorder &rec) const;

    /**
     * Returns up to @p k vocabulary words starting with @p prefix
     * (lexicographic order) — the suggest/autocomplete backend.
     */
    std::vector<uint32_t> suggest(std::string_view prefix, size_t k,
                                  simt::TraceRecorder &rec) const;

    /** The corpus this index covers. */
    const Corpus &corpus() const { return corpus_; }

    /** Total postings stored (index footprint metric). */
    uint64_t totalPostings() const { return totalPostings_; }

  private:
    const Corpus &corpus_;
    std::vector<std::vector<Posting>> lists_; //!< Index = word id.
    std::vector<uint32_t> sortedWords_;       //!< Word ids, lexicographic.
    uint64_t totalPostings_ = 0;
};

} // namespace rhythm::search

#endif // RHYTHM_SEARCH_INDEX_HH
