/**
 * @file
 * Instrumented HTTP/1.1 request parser.
 *
 * Request parsing follows a fixed grammar, which makes it an ideal SIMT
 * kernel (Section 3.2 "Parser"): all requests walk the same parse states,
 * diverging only on data-dependent token lengths. The parser is
 * instrumented with TraceRecorder callbacks so the same code serves
 *  - the host baseline (NullTracer, zero overhead),
 *  - Table 2-style instruction counting (CountingTracer), and
 *  - the device parser-stage kernel profile (RecordingTracer).
 */

#ifndef RHYTHM_HTTP_PARSER_HH
#define RHYTHM_HTTP_PARSER_HH

#include <string_view>

#include "http/http.hh"
#include "simt/trace.hh"

namespace rhythm::http {

/** Basic-block identifier base for the parser (see DESIGN.md). */
inline constexpr uint32_t kParserBlockBase = 1000;

/** Parser basic blocks (stable ids shared across all request threads). */
enum ParserBlock : uint32_t {
    kBlockRequestLine = kParserBlockBase + 0,
    kBlockHeaderLine = kParserBlockBase + 1,
    kBlockCookieParse = kParserBlockBase + 2,
    kBlockContentLength = kParserBlockBase + 3,
    kBlockConnection = kParserBlockBase + 4,
    kBlockQueryParam = kParserBlockBase + 5,
    kBlockBody = kParserBlockBase + 6,
    kBlockSessionCookie = kParserBlockBase + 7,
    kBlockParseDone = kParserBlockBase + 8,
    kBlockParseError = kParserBlockBase + 9,
};

/**
 * Parses one HTTP/1.1 request.
 *
 * @param raw Complete request message (request line, headers, body).
 * @param vaddr Simulated address of the buffer holding @p raw; memory
 *        operations are recorded against it so the device model sees the
 *        true access pattern of the cohort's request buffer.
 * @param rec Trace recorder (NullTracer for the host fast path).
 * @param out Receives the parsed request.
 * @return true on success; false on malformed input (the request is then
 *         routed to per-request error handling, Section 4.4).
 */
bool parseRequest(std::string_view raw, uint64_t vaddr,
                  simt::TraceRecorder &rec, Request &out);

} // namespace rhythm::http

#endif // RHYTHM_HTTP_PARSER_HH
