/**
 * @file
 * The SPECWeb Banking workload as a Rhythm Service: adapts BankingApp,
 * the Besim-style backend and the quick pay host fallback to the
 * pipeline's service interface. Cohort type ids are the RequestType
 * enum values.
 */

#ifndef RHYTHM_RHYTHM_BANKING_SERVICE_HH
#define RHYTHM_RHYTHM_BANKING_SERVICE_HH

#include "backend/service.hh"
#include "rhythm/service.hh"
#include "specweb/banking.hh"

namespace rhythm::backend {
class RecoverableBackend;
}

namespace rhythm::core {

class SessionArray;

/** Banking on Rhythm. */
class BankingService : public Service
{
  public:
    /** Binds the service to a bank database (not owned). */
    explicit BankingService(backend::BankDb &db) : backend_(db) {}

    uint32_t
    numTypes() const override
    {
        return static_cast<uint32_t>(specweb::kNumRequestTypes);
    }

    bool resolveType(const http::Request &request,
                     uint32_t &type_id) const override;

    std::string_view
    typeName(uint32_t type_id) const override
    {
        return specweb::typeTable()[type_id].name;
    }

    int
    numStages(uint32_t type_id) const override
    {
        return specweb::typeTable()[type_id].backendRequests + 1;
    }

    uint32_t
    responseBufferBytes(uint32_t type_id) const override
    {
        return specweb::typeTable()[type_id].rhythmBufferKb * 1024;
    }

    void runStage(uint32_t type_id, int stage,
                  specweb::HandlerContext &ctx) const override;

    bool stageIsLaneParallel(uint32_t type_id, int stage) const override;

    std::string executeBackend(std::string_view request,
                               simt::TraceRecorder &rec) override;

    std::string executeBackend(std::string_view request, uint64_t token,
                               simt::TraceRecorder &rec) override;

    bool backendExactlyOnce() const override { return recovery_ != nullptr; }

    /**
     * Routes backend execution through a crash-recovery layer (not
     * owned; nullptr detaches). With a layer attached, mutating
     * operations are journaled and deduplicated by idempotency token —
     * backendExactlyOnce() turns true and the pipeline's watchdog may
     * hedge cohorts safely.
     */
    void setRecovery(backend::RecoverableBackend *recovery)
    {
        recovery_ = recovery;
    }

    uint32_t backendRequestSlotBytes() const override;
    uint32_t backendResponseSlotBytes() const override;

    std::optional<std::string>
    serveFallback(const http::Request &request,
                  specweb::SessionProvider &sessions,
                  simt::TraceRecorder &rec) override;

    /** The underlying backend service (harness accounting). */
    backend::BackendService &backendService() { return backend_; }

  private:
    specweb::BankingApp app_;
    backend::BackendService backend_;
    backend::RecoverableBackend *recovery_ = nullptr;
};

/**
 * Brings a SessionArray into @p recovery's crash domain: installs the
 * array's mutation hook (journaling every create/destroy) and the
 * snapshot/restore/replay closures recovery uses to rebuild session
 * state after a crash. Call after any pre-population (populate draws
 * from the array's RNG and must be inside the baseline checkpoint).
 */
void attachSessionRecovery(backend::RecoverableBackend &recovery,
                           SessionArray &sessions);

} // namespace rhythm::core

#endif // RHYTHM_RHYTHM_BANKING_SERVICE_HH
