/**
 * @file
 * The Banking application: the 14 SPECWeb2009 Banking request handlers.
 *
 * Each handler is decomposed into process stages separated by backend
 * round trips, exactly as the Rhythm pipeline requires (Section 3.2): a
 * type with n backend requests has n+1 stages. Stage i < n composes the
 * wire-format backend request; stage i > 0 first consumes the backend
 * response; the final stage emits the complete HTTP response (header with
 * back-patched Content-Length plus dynamic HTML).
 *
 * Handlers run unchanged on the host baseline and on the simulated
 * device; the execution substrate is selected by the HandlerContext's
 * writer/recorder/session implementations.
 */

#ifndef RHYTHM_SPECWEB_BANKING_HH
#define RHYTHM_SPECWEB_BANKING_HH

#include "specweb/context.hh"
#include "specweb/types.hh"

namespace rhythm::specweb {

/** Basic-block identifier base for application handlers. */
inline constexpr uint32_t kAppBlockBase = 2000;

/** Returns the block-id base of a request type's handler. */
constexpr uint32_t
appBlockBase(RequestType type)
{
    return kAppBlockBase + static_cast<uint32_t>(typeIndex(type)) * 32;
}

/**
 * The Banking service logic.
 *
 * Stateless: all mutable state lives in the backend database and the
 * session provider, so one instance can serve any number of concurrent
 * cohorts.
 */
class BankingApp
{
  public:
    /** Number of process stages for a type (backend round trips + 1). */
    static int
    numStages(RequestType type)
    {
        return typeInfo(type).backendRequests + 1;
    }

    /**
     * Runs one process stage of a handler.
     *
     * @param type Request type being processed.
     * @param stage Stage index in [0, numStages(type)).
     * @param ctx Per-request context. For stages < numStages-1 the
     *        handler leaves a backend request in ctx.backendRequest; for
     *        stages > 0 it consumes ctx.backendResponse. The final stage
     *        writes the HTTP response into ctx.out. If a stage fails
     *        (invalid session, bad parameters, backend error) it emits an
     *        error response immediately and sets ctx.failed — later
     *        stages must then be skipped (per-request error state,
     *        Section 4.4).
     */
    void runStage(RequestType type, int stage, HandlerContext &ctx) const;

  private:
    void login(int stage, HandlerContext &ctx) const;
    void accountSummary(int stage, HandlerContext &ctx) const;
    void addPayee(HandlerContext &ctx) const;
    void billPay(int stage, HandlerContext &ctx) const;
    void billPayStatus(int stage, HandlerContext &ctx) const;
    void changeProfile(int stage, HandlerContext &ctx) const;
    void checkDetail(int stage, HandlerContext &ctx) const;
    void orderCheck(int stage, HandlerContext &ctx) const;
    void placeCheckOrder(int stage, HandlerContext &ctx) const;
    void postPayee(int stage, HandlerContext &ctx) const;
    void postTransfer(int stage, HandlerContext &ctx) const;
    void profile(int stage, HandlerContext &ctx) const;
    void transfer(int stage, HandlerContext &ctx) const;
    void logout(HandlerContext &ctx) const;
};

/**
 * Emits a short error response (own header + body) and marks the
 * context failed. Exposed for reuse by the server layers.
 */
void emitErrorPage(HandlerContext &ctx, std::string_view reason);

} // namespace rhythm::specweb

#endif // RHYTHM_SPECWEB_BANKING_HH
