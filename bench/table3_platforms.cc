/**
 * @file
 * Table 3: SPECWeb Banking experimental results — power, latency,
 * throughput and requests/Joule for every platform (CPU baselines and
 * Titan A/B/C), printed next to the paper's measured values.
 *
 * Also prints Table 1 (the experimental platform descriptions) as the
 * header, since it parameterizes the models.
 */

#include <iostream>

#include "bench/common.hh"
#include "platform/cpu.hh"
#include "platform/measure.hh"
#include "platform/titan.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("table3_platforms", argc, argv);
    bench::banner("Table 1: experimental platforms",
                  "Table 1 (platform parameters used by the models)");
    {
        TableWriter t({"platform", "GHz", "description"});
        t.addRow({"Core i5", "3.4",
                  "i5 3570, 4 cores (4 threads), model: fitted IPC"});
        t.addRow({"Core i7", "3.4",
                  "i7 3770, 4 cores (8 threads), model: fitted IPC"});
        t.addRow({"ARM A9", "1.2", "OMAP 4460, 2 cores, model: fitted IPC"});
        simt::DeviceConfig dev;
        t.addRow({"Titan", "0.837",
                  std::to_string(dev.numSms) + " SMs, " +
                      std::to_string(dev.coresPerSm) + " cores/SM, " +
                      bench::fmt(dev.memBandwidthGBs, 0) + " GB/s, " +
                      std::to_string(dev.hardwareQueues) +
                      " HW queues (HyperQ), simulated"});
        t.printAscii(std::cout);
    }

    bench::banner("Table 3: platform results",
                  "Table 3 (measured (paper) for every cell)");

    platform::WorkloadMeasurement wm =
        platform::measureWorkload(60, 2000, 7);
    std::cout << "Workload: mix-weighted "
              << bench::fmt(wm.mixWeightedInstructions, 0)
              << " insts/request (paper-derived reference: 331,507)\n";

    TableWriter table({"platform", "idle W", "wall W", "dynamic W",
                       "latency ms", "KReqs/s", "reqs/J wall",
                       "reqs/J dynamic"});

    auto addRow = [&](const std::string &name, double idle, double wall,
                      double dynamic, double lat_ms, double kreqs,
                      double rpj_wall, double rpj_dyn,
                      const bench::PaperTable3Row &ref) {
        const std::string key = bench::slug(name);
        report.metric(key + ".throughput_kreqs", kreqs);
        report.metric(key + ".latency_ms", lat_ms);
        report.metric(key + ".reqs_per_joule_dynamic", rpj_dyn);
        table.addRow({name, bench::withRef(idle, ref.idleWatts, 0),
                      bench::withRef(wall, ref.wallWatts, 0),
                      bench::withRef(dynamic, ref.dynamicWatts, 0),
                      bench::withRef(lat_ms, ref.latencyMs, 3),
                      bench::withRef(kreqs, ref.throughputK, 0),
                      bench::withRef(rpj_wall, ref.rpjWall, 0),
                      bench::withRef(rpj_dyn, ref.rpjDynamic, 0)});
    };

    auto cpus = platform::standardCpuPlatforms();
    for (size_t i = 0; i < cpus.size(); ++i) {
        platform::CpuResult r =
            platform::evaluateCpu(cpus[i], wm.mixWeightedInstructions);
        addRow(r.name, r.idleWatts, r.wallWatts, r.dynamicWatts,
               r.latencyMs, r.throughput / 1e3, r.reqsPerJouleWall,
               r.reqsPerJouleDynamic, bench::kPaperTable3[i]);
    }

    platform::IsolatedRunOptions opts;
    opts.cohorts = 12;
    opts.users = 2000;
    opts.laneSample = 128;
    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.apply(opts);
    faults.recordConfig(report);
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    overlap.apply(opts);
    overlap.recordConfig(report);
    const platform::TitanVariant variants[] = {
        platform::titanA(), platform::titanB(), platform::titanC()};
    for (size_t v = 0; v < 3; ++v) {
        platform::TitanWorkloadResult r =
            platform::evaluateTitan(variants[v], opts);
        addRow(r.name, r.idleWatts, r.wallWatts, r.dynamicWatts,
               r.avgLatencyMs, r.throughput / 1e3, r.reqsPerJouleWall,
               r.reqsPerJouleDynamic, bench::kPaperTable3[6 + v]);
    }

    table.printAscii(std::cout);
    std::cout
        << "Each cell: measured (paper). Fidelity targets (DESIGN.md): "
           "throughput ordering\ni7 > i5 > A9; efficiency A9 >= i5 > "
           "i7; Titan A marginal & inefficient;\nTitan B ~4x i7 "
           "throughput near-A9 efficiency; Titan C ~8x i7, >=2.5x A9 "
           "dynamic\nefficiency; CPU latencies sub-ms, Titan B/C tens "
           "of ms, Titan A ~100 ms.\n";
    report.config("cohorts", opts.cohorts);
    report.config("users", opts.users);
    if (!report.write())
        return 1;
    return 0;
}
