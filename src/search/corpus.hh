/**
 * @file
 * Synthetic document corpus for the Search workload.
 *
 * The paper names Search as the next service to deploy on Rhythm
 * (Section 8). This corpus is the data substrate: deterministic
 * documents whose words follow a Zipfian distribution over a fixed
 * vocabulary, which gives the inverted index realistic posting-list
 * skew (a few very long lists, a long tail of short ones).
 */

#ifndef RHYTHM_SEARCH_CORPUS_HH
#define RHYTHM_SEARCH_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace rhythm::search {

/** One document. */
struct Document
{
    uint32_t docId = 0;
    std::string title;
    /** Body as word ids into the vocabulary (compact storage). */
    std::vector<uint32_t> words;
};

/**
 * The vocabulary plus generated documents.
 */
class Corpus
{
  public:
    /**
     * @param num_docs Documents to generate (ids 1..num_docs).
     * @param vocabulary_size Distinct words.
     * @param seed Deterministic seed.
     */
    Corpus(uint32_t num_docs, uint32_t vocabulary_size = 4096,
           uint64_t seed = 29);

    /** Number of documents. */
    uint32_t numDocs() const { return static_cast<uint32_t>(docs_.size()); }

    /** Vocabulary size. */
    uint32_t vocabularySize() const
    {
        return static_cast<uint32_t>(vocabulary_.size());
    }

    /** The word string for a word id. */
    const std::string &word(uint32_t word_id) const;

    /** A document by id (1-based). @return nullptr when out of range. */
    const Document *document(uint32_t doc_id) const;

    /**
     * Samples a word id with the same Zipfian skew used to build the
     * documents (query terms follow content popularity).
     */
    uint32_t sampleWord(Rng &rng) const;

    /** Renders a contiguous word range of a document as text. */
    std::string renderText(const Document &doc, size_t begin,
                           size_t count) const;

  private:
    std::vector<std::string> vocabulary_;
    std::vector<double> zipfCdf_;
    std::vector<Document> docs_;
};

} // namespace rhythm::search

#endif // RHYTHM_SEARCH_CORPUS_HH
