# Empty dependencies file for rhythm_specweb.
# This may be replaced when dependencies are built.
