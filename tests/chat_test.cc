/**
 * @file
 * Tests for the Chat workload: room store semantics (ring, sequences,
 * polling), backend protocol, and end-to-end serving through the
 * Rhythm pipeline including cross-cohort mutation visibility.
 */

#include <gtest/gtest.h>

#include "chat/service.hh"
#include "http/parser.hh"
#include "rhythm/server.hh"

namespace rhythm::chat {
namespace {

simt::NullTracer gNull;

TEST(RoomStore, SeededHistoryIsDeterministic)
{
    RoomStore a(8, 20, 5), b(8, 20, 5);
    EXPECT_EQ(a.latestSeq(3), b.latestSeq(3));
    auto ha = a.history(3, 10);
    auto hb = b.history(3, 10);
    ASSERT_EQ(ha.size(), hb.size());
    for (size_t i = 0; i < ha.size(); ++i)
        EXPECT_EQ(ha[i]->text, hb[i]->text);
}

TEST(RoomStore, PostAssignsMonotonicSequences)
{
    RoomStore store(2, 0, 1);
    EXPECT_EQ(store.latestSeq(1), 0u);
    EXPECT_EQ(store.post(1, 10, "first"), 1u);
    EXPECT_EQ(store.post(1, 11, "second"), 2u);
    EXPECT_EQ(store.post(2, 10, "other room"), 1u);
    EXPECT_EQ(store.latestSeq(1), 2u);
    EXPECT_EQ(store.totalPosted(), 3u);
}

TEST(RoomStore, RejectsInvalid)
{
    RoomStore store(2, 0, 1);
    EXPECT_EQ(store.post(0, 1, "x"), 0u);
    EXPECT_EQ(store.post(3, 1, "x"), 0u);
    EXPECT_EQ(store.post(1, 1, ""), 0u);
    EXPECT_TRUE(store.history(9, 5).empty());
    EXPECT_TRUE(store.since(9, 0).empty());
    EXPECT_EQ(store.latestSeq(0), 0u);
}

TEST(RoomStore, RingEvictsOldest)
{
    RoomStore store(1, 0, 1);
    for (uint64_t i = 0; i < RoomStore::kRingCapacity + 10; ++i)
        store.post(1, 1, "m" + std::to_string(i));
    auto history = store.history(1, 1000);
    EXPECT_EQ(history.size(), RoomStore::kRingCapacity);
    // Oldest retained message is #11; sequence numbers never reset.
    EXPECT_EQ(history.front()->seq, 11u);
    EXPECT_EQ(history.back()->seq, RoomStore::kRingCapacity + 10);
}

TEST(RoomStore, SinceReturnsOnlyNewer)
{
    RoomStore store(1, 0, 1);
    for (int i = 0; i < 10; ++i)
        store.post(1, 1, "m" + std::to_string(i));
    auto fresh = store.since(1, 7);
    ASSERT_EQ(fresh.size(), 3u);
    EXPECT_EQ(fresh[0]->seq, 8u);
    EXPECT_EQ(fresh[2]->seq, 10u);
    EXPECT_TRUE(store.since(1, 10).empty());
}

TEST(ChatService, BackendProtocol)
{
    RoomStore store(4, 5, 2);
    ChatService svc(store);
    EXPECT_EQ(svc.executeBackend("ROOMS", gNull).substr(0, 3), "OK|");
    EXPECT_EQ(svc.executeBackend("HIST|2|5", gNull).substr(0, 3), "OK|");
    const std::string posted =
        svc.executeBackend("POST|2|42|hello there", gNull);
    EXPECT_EQ(posted.substr(0, 3), "OK|");
    // The post is visible to POLL.
    const std::string poll = svc.executeBackend(
        "POLL|2|" + std::to_string(store.latestSeq(2) - 1), gNull);
    EXPECT_NE(poll.find("hello there"), std::string::npos);
    // Errors.
    EXPECT_EQ(svc.executeBackend("HIST|99|5", gNull).substr(0, 4),
              "ERR|");
    EXPECT_EQ(svc.executeBackend("POST|1|1|", gNull).substr(0, 4),
              "ERR|");
    EXPECT_EQ(svc.executeBackend("", gNull).substr(0, 4), "ERR|");
}

TEST(ChatGenerator, MixAndValidity)
{
    RoomStore store(8, 10, 3);
    ChatGenerator gen(store, 11);
    int counts[kNumPageTypes] = {};
    for (int i = 0; i < 1000; ++i) {
        PageType type;
        const std::string raw = gen.next(type);
        ++counts[static_cast<uint32_t>(type)];
        http::Request req;
        ASSERT_TRUE(http::parseRequest(raw, 0, gNull, req));
    }
    // Poll dominates the mix.
    EXPECT_GT(counts[3], counts[1]);
    EXPECT_GT(counts[1], counts[0]);
}

struct ChatRig
{
    ChatRig()
        : store(8, 20, 7), device(queue, simt::DeviceConfig{}),
          service(store), server(queue, device, service, config())
    {
        server.setResponseCallback([this](uint64_t client,
                                          std::string_view response,
                                          des::Time) {
            responses.emplace_back(client, response);
        });
    }

    static core::RhythmConfig
    config()
    {
        core::RhythmConfig cfg;
        cfg.cohortSize = 16;
        cfg.cohortContexts = 4;
        cfg.cohortTimeout = des::kMillisecond;
        cfg.backendOnDevice = true;
        cfg.networkOverPcie = false;
        return cfg;
    }

    des::EventQueue queue;
    RoomStore store;
    simt::Device device;
    ChatService service;
    core::RhythmServer server;
    std::vector<std::pair<uint64_t, std::string>> responses;
};

TEST(ChatOnRhythm, AllPageTypesServeValidResponses)
{
    ChatRig rig;
    ChatGenerator gen(rig.store, 13);
    std::vector<PageType> types;
    uint64_t id = 0;
    for (uint32_t t = 0; t < kNumPageTypes; ++t) {
        for (int i = 0; i < 16; ++i) {
            const std::string raw =
                gen.generate(static_cast<PageType>(t));
            while (!rig.server.injectRequest(raw, id))
                rig.queue.run();
            ++id;
            types.push_back(static_cast<PageType>(t));
        }
    }
    rig.server.flush();
    rig.queue.run();
    ASSERT_EQ(rig.responses.size(), types.size());
    for (const auto &[client, response] : rig.responses) {
        std::string reason;
        EXPECT_TRUE(
            validateChatResponse(types[client], response, &reason))
            << "client " << client << ": " << reason;
    }
    EXPECT_EQ(rig.server.stats().errorResponses, 0u);
}

TEST(ChatOnRhythm, PostedMessagesVisibleToLaterCohorts)
{
    ChatRig rig;
    // Cohort 1: sixteen posts to room 1.
    for (int i = 0; i < 16; ++i) {
        const std::string raw = http::buildRequest(
            http::Method::Post, "/chat/post",
            {{"room", "1"},
             {"user", std::to_string(100 + i)},
             {"text", "cohort+message+" + std::to_string(i)}});
        rig.server.injectRequest(raw, static_cast<uint64_t>(i));
    }
    rig.queue.run();
    ASSERT_EQ(rig.responses.size(), 16u);
    EXPECT_EQ(rig.store.totalPosted(), 8u * 20 + 16);

    // Cohort 2: history readers see the new messages.
    rig.responses.clear();
    for (int i = 0; i < 16; ++i) {
        const std::string raw = http::buildRequest(
            http::Method::Get, "/chat/history", {{"room", "1"}});
        rig.server.injectRequest(raw, 100u + static_cast<uint64_t>(i));
    }
    rig.queue.run();
    ASSERT_EQ(rig.responses.size(), 16u);
    for (const auto &[client, response] : rig.responses)
        EXPECT_NE(response.find("cohort message 15"), std::string::npos);
}

TEST(ChatOnRhythm, PollCohortSeesNothingNewAfterQuiesce)
{
    ChatRig rig;
    const uint64_t latest = rig.store.latestSeq(2);
    for (int i = 0; i < 16; ++i) {
        const std::string raw = http::buildRequest(
            http::Method::Get, "/chat/poll",
            {{"room", "2"}, {"since", std::to_string(latest)}});
        rig.server.injectRequest(raw, static_cast<uint64_t>(i));
    }
    rig.queue.run();
    ASSERT_EQ(rig.responses.size(), 16u);
    for (const auto &[client, response] : rig.responses)
        EXPECT_NE(response.find("no new messages"), std::string::npos);
}

} // namespace
} // namespace rhythm::chat
