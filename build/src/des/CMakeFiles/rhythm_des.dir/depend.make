# Empty dependencies file for rhythm_des.
# This may be replaced when dependencies are built.
