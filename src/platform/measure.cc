#include "platform/measure.hh"

#include "backend/bankdb.hh"
#include "host/server.hh"
#include "specweb/workload.hh"

namespace rhythm::platform {

WorkloadMeasurement
measureWorkload(uint64_t samples_per_type, uint64_t users, uint64_t seed)
{
    backend::BankDb db(users, seed);
    specweb::MapSessionProvider sessions;
    host::HostServer server(db, sessions);
    specweb::WorkloadGenerator gen(db, seed * 31 + 5);
    simt::NullTracer null;

    WorkloadMeasurement out;
    double mix_sum = 0.0;
    for (size_t i = 0; i < specweb::kNumRequestTypes; ++i) {
        const specweb::RequestTypeInfo &info = specweb::typeTable()[i];
        TypeMeasurement &tm = out.perType[i];
        tm.type = info.type;

        uint64_t valid = 0;
        double insts = 0.0;
        double bytes = 0.0;
        for (uint64_t s = 0; s < samples_per_type; ++s) {
            const uint64_t user = gen.sampleUser();
            const uint64_t sid =
                info.type == specweb::RequestType::Login
                    ? 0
                    : sessions.create(user, null);
            specweb::GeneratedRequest req =
                gen.generate(info.type, user, sid);
            simt::CountingTracer counter;
            const std::string response = server.serve(req.raw, counter);
            insts += static_cast<double>(counter.instructions());
            bytes += static_cast<double>(response.size());
            valid += specweb::validateResponse(info.type, response).ok;
        }
        tm.samples = samples_per_type;
        tm.instructionsPerRequest =
            insts / static_cast<double>(samples_per_type);
        tm.responseBytes = bytes / static_cast<double>(samples_per_type);
        tm.validationRate = static_cast<double>(valid) /
                            static_cast<double>(samples_per_type);

        out.mixWeightedInstructions +=
            info.mixPercent * tm.instructionsPerRequest;
        out.mixWeightedResponseBytes += info.mixPercent * tm.responseBytes;
        mix_sum += info.mixPercent;
    }
    out.mixWeightedInstructions /= mix_sum;
    out.mixWeightedResponseBytes /= mix_sum;
    return out;
}

} // namespace rhythm::platform
