# Empty dependencies file for rhythm_core.
# This may be replaced when dependencies are built.
