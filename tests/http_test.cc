/**
 * @file
 * Unit and property tests for the HTTP message types and parser.
 */

#include <gtest/gtest.h>

#include <string>

#include "http/http.hh"
#include "http/parser.hh"
#include "simt/trace.hh"
#include "util/rng.hh"

namespace rhythm::http {
namespace {

simt::NullTracer gNull;

Request
mustParse(const std::string &raw)
{
    Request req;
    EXPECT_TRUE(parseRequest(raw, 0, gNull, req)) << raw;
    return req;
}

TEST(Parser, SimpleGet)
{
    Request req = mustParse(
        "GET /bank/account.php HTTP/1.1\r\nHost: bank.example.com\r\n\r\n");
    EXPECT_EQ(req.method, Method::Get);
    EXPECT_EQ(req.path, "/bank/account.php");
    EXPECT_TRUE(req.params.empty());
    EXPECT_TRUE(req.keepAlive);
    EXPECT_EQ(req.sessionId, 0u);
}

TEST(Parser, GetWithQueryString)
{
    Request req = mustParse(
        "GET /bank/tx.php?acct=101&max=20 HTTP/1.1\r\nHost: h\r\n\r\n");
    EXPECT_EQ(req.path, "/bank/tx.php");
    ASSERT_EQ(req.params.size(), 2u);
    EXPECT_EQ(req.param("acct"), "101");
    EXPECT_EQ(req.param("max"), "20");
    EXPECT_TRUE(req.hasParam("acct"));
    EXPECT_FALSE(req.hasParam("missing"));
    EXPECT_EQ(req.param("missing"), "");
}

TEST(Parser, PostFormBody)
{
    const std::string raw =
        "POST /bank/login.php HTTP/1.1\r\nHost: h\r\n"
        "Content-Type: application/x-www-form-urlencoded\r\n"
        "Content-Length: 25\r\n\r\nuserid=42&password=pwd42x";
    Request req = mustParse(raw);
    EXPECT_EQ(req.method, Method::Post);
    EXPECT_EQ(req.contentLength, 25u);
    EXPECT_EQ(req.param("userid"), "42");
    EXPECT_EQ(req.param("password"), "pwd42x");
}

TEST(Parser, SessionCookieExtracted)
{
    Request req = mustParse(
        "GET /bank/summary.php HTTP/1.1\r\nHost: h\r\n"
        "Cookie: lang=en; session=987654321\r\n\r\n");
    EXPECT_EQ(req.sessionId, 987654321u);
    EXPECT_EQ(req.cookie, "lang=en; session=987654321");
}

TEST(Parser, ConnectionClose)
{
    Request req = mustParse(
        "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_FALSE(req.keepAlive);
}

TEST(Parser, Http10DefaultsToClose)
{
    Request req = mustParse("GET / HTTP/1.0\r\n\r\n");
    EXPECT_FALSE(req.keepAlive);
}

TEST(Parser, UrlDecoding)
{
    Request req = mustParse(
        "GET /p.php?name=John+Smith&sym=%26%3D HTTP/1.1\r\n\r\n");
    EXPECT_EQ(req.param("name"), "John Smith");
    EXPECT_EQ(req.param("sym"), "&=");
}

TEST(Parser, RejectsMalformed)
{
    Request req;
    EXPECT_FALSE(parseRequest("", 0, gNull, req));
    EXPECT_FALSE(parseRequest("GET\r\n\r\n", 0, gNull, req));
    EXPECT_FALSE(parseRequest("PUT / HTTP/1.1\r\n\r\n", 0, gNull, req));
    EXPECT_FALSE(parseRequest("GET / HTTP/2.0\r\n\r\n", 0, gNull, req));
    EXPECT_FALSE(parseRequest("GET / HTTP/1.1\r\nno-end", 0, gNull, req));
    EXPECT_FALSE(parseRequest(
        "POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort", 0, gNull,
        req));
    EXPECT_FALSE(parseRequest(
        "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", 0, gNull, req));
}

TEST(Parser, PostZeroLengthBodyParses)
{
    // "Content-Length: 0" is a legal POST with no body — the body scan
    // must be skipped entirely (no body block, no params from the
    // padding bytes that follow in a cohort slot).
    Request req = mustParse(
        "POST /bank/logout.php HTTP/1.1\r\nHost: h\r\n"
        "Content-Length: 0\r\n\r\n");
    EXPECT_EQ(req.method, Method::Post);
    EXPECT_EQ(req.contentLength, 0u);
    EXPECT_TRUE(req.params.empty());
}

TEST(Parser, PostBodyIgnoresTrailingSlotPadding)
{
    // Requests live in fixed-width cohort slots padded with whitespace
    // (Section 4.3.2); only Content-Length bytes belong to the body,
    // whatever follows in the slot must not leak into the params.
    const std::string padded =
        "POST /bank/login.php HTTP/1.1\r\nHost: h\r\n"
        "Content-Length: 8\r\n\r\n"
        "acct=101" +
        std::string(24, ' ');
    Request req = mustParse(padded);
    ASSERT_EQ(req.params.size(), 1u);
    EXPECT_EQ(req.param("acct"), "101");
}

TEST(Parser, ContentLengthWidthChangeAcrossPaddingBoundary)
{
    // Two same-shaped requests whose Content-Length differs in digit
    // width (9 vs 10): the body start shifts by one byte, so the
    // shorter header line carries one extra pad byte in a width-aligned
    // slot. Both must parse to their exact bodies.
    auto post = [](const std::string &body) {
        return "POST /bank/pay.php HTTP/1.1\r\nHost: h\r\n"
               "Content-Length: " +
               std::to_string(body.size()) + "\r\n\r\n" + body;
    };
    const std::string nine(9, 'a');       // "Content-Length: 9"
    const std::string ten = "k=" +        // "Content-Length: 10"
                            std::string(8, 'b');
    Request r9 = mustParse(post("k=" + nine.substr(2)));
    Request r10 = mustParse(post(ten));
    EXPECT_EQ(r9.contentLength, 9u);
    EXPECT_EQ(r10.contentLength, 10u);
    EXPECT_EQ(r9.param("k"), nine.substr(2));
    EXPECT_EQ(r10.param("k"), std::string(8, 'b'));

    // Width-aligned variant: pad both to one slot width; the value
    // with the wider length header has one pad byte fewer.
    const size_t slot = 96;
    std::string s9 = post("k=" + nine.substr(2));
    std::string s10 = post(ten);
    s9.append(slot - s9.size(), ' ');
    s10.append(slot - s10.size(), ' ');
    ASSERT_EQ(s9.size(), s10.size());
    EXPECT_EQ(mustParse(s9).param("k"), nine.substr(2));
    EXPECT_EQ(mustParse(s10).param("k"), std::string(8, 'b'));
}

TEST(Parser, UrlDecodeTruncatedEscapeStaysLiteral)
{
    // A '%' not followed by two hex digits cannot decode; the parser
    // keeps it literal rather than eating the tail. Also exercises the
    // no-escape fast path ("plain") against the decoding slow path.
    Request req = mustParse(
        "GET /p.php?plain=hello&cut=ab%2&pct=100%25 HTTP/1.1\r\n\r\n");
    EXPECT_EQ(req.param("plain"), "hello");
    EXPECT_EQ(req.param("cut"), "ab%2");
    EXPECT_EQ(req.param("pct"), "100%");
}

TEST(Parser, RecordsTraceBlocks)
{
    simt::ThreadTrace trace;
    simt::RecordingTracer rec(trace);
    Request req;
    ASSERT_TRUE(parseRequest(
        "GET /bank/summary.php?a=1 HTTP/1.1\r\nHost: h\r\n"
        "Cookie: session=5\r\n\r\n",
        0x10000, rec, req));
    EXPECT_GT(trace.blocks.size(), 3u);
    EXPECT_GT(trace.totalInstructions(), 100u);
    // All loads hit the request buffer region.
    for (const auto &op : trace.memOps) {
        EXPECT_GE(op.addr, 0x10000u);
        EXPECT_FALSE(op.isStore);
    }
    // Final block is the success terminator.
    EXPECT_EQ(trace.blocks.back().blockId, kBlockParseDone);
}

TEST(Parser, IdenticalRequestsYieldIdenticalBlockSequences)
{
    // The similarity property Rhythm exploits: two requests of the same
    // type (different values, same shape) produce the same control path.
    auto traceOf = [](const std::string &raw) {
        simt::ThreadTrace t;
        simt::RecordingTracer rec(t);
        Request req;
        EXPECT_TRUE(parseRequest(raw, 0, rec, req));
        return t;
    };
    auto a = traceOf(
        "GET /bank/tx.php?acct=101&max=20 HTTP/1.1\r\nHost: h\r\n"
        "Cookie: session=11\r\n\r\n");
    auto b = traceOf(
        "GET /bank/tx.php?acct=992&max=50 HTTP/1.1\r\nHost: h\r\n"
        "Cookie: session=99\r\n\r\n");
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (size_t i = 0; i < a.blocks.size(); ++i)
        EXPECT_EQ(a.blocks[i].blockId, b.blocks[i].blockId) << i;
}

TEST(RoundTrip, BuildThenParseGet)
{
    const std::string raw = buildRequest(
        Method::Get, "/bank/bill_pay.php",
        {{"payee", "17"}, {"amount", "2500"}}, "session=31");
    Request req = mustParse(raw);
    EXPECT_EQ(req.method, Method::Get);
    EXPECT_EQ(req.path, "/bank/bill_pay.php");
    EXPECT_EQ(req.param("payee"), "17");
    EXPECT_EQ(req.param("amount"), "2500");
    EXPECT_EQ(req.sessionId, 31u);
}

TEST(RoundTrip, BuildThenParsePost)
{
    const std::string raw = buildRequest(
        Method::Post, "/bank/login.php",
        {{"userid", "7"}, {"password", "pwd7"}});
    Request req = mustParse(raw);
    EXPECT_EQ(req.method, Method::Post);
    EXPECT_EQ(req.param("userid"), "7");
    EXPECT_EQ(req.param("password"), "pwd7");
}

class RoundTripProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RoundTripProperty, RandomParamsSurvive)
{
    Rng rng(GetParam());
    std::vector<std::pair<std::string, std::string>> params;
    const int n = static_cast<int>(rng.nextRange(0, 6));
    for (int i = 0; i < n; ++i) {
        params.emplace_back("k" + std::to_string(i),
                            std::to_string(rng.nextBounded(1000000)));
    }
    const Method method = rng.nextBool(0.5) ? Method::Get : Method::Post;
    const std::string cookie =
        rng.nextBool(0.5) ? "session=" + std::to_string(rng.nextBounded(1u << 30))
                          : "";
    const std::string raw =
        buildRequest(method, "/bank/x.php", params, cookie);
    Request req;
    ASSERT_TRUE(parseRequest(raw, 0, gNull, req));
    EXPECT_EQ(req.method, method);
    ASSERT_EQ(req.params.size(), params.size());
    for (const auto &[k, v] : params)
        EXPECT_EQ(req.param(k), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Range<uint64_t>(1, 25));

// ---- Fuzz-ish parser properties --------------------------------------
//
// The parser runs on every byte the simulated NIC delivers, so it must
// be total: any input — including corrupted SPECWeb Banking traffic —
// either parses or is rejected, never crashes or loiters. Seeded random
// mutations keep the corpus deterministic across runs and platforms.

/** A corpus of valid SPECWeb Banking requests (one per page shape). */
std::vector<std::string>
bankingCorpus(uint64_t seed)
{
    Rng rng(seed);
    const auto sid = [&rng]() {
        return "session=" + std::to_string(rng.nextBounded(1u << 30));
    };
    const auto num = [&rng](uint32_t bound) {
        return std::to_string(rng.nextBounded(bound));
    };
    return {
        buildRequest(Method::Post, "/bank/login.php",
                     {{"userid", num(5000)}, {"password", "pwd" + num(5000)}}),
        buildRequest(Method::Get, "/bank/account_summary.php", {}, sid()),
        buildRequest(Method::Get, "/bank/check_detail_html.php",
                     {{"check_no", num(90000)}}, sid()),
        buildRequest(Method::Get, "/bank/bill_pay.php",
                     {{"payee", num(40)}, {"amount", num(100000)}}, sid()),
        buildRequest(Method::Post, "/bank/post_transfer.php",
                     {{"from", num(4)}, {"to", num(4)},
                      {"amount", num(250000)}},
                     sid()),
        buildRequest(Method::Post, "/bank/post_payee.php",
                     {{"name", "Acme+Power"}, {"account", num(1000000)}},
                     sid()),
        buildRequest(Method::Get, "/bank/logout.php", {}, sid()),
    };
}

/** Applies one random byte-level mutation in place. */
void
mutate(std::string &raw, Rng &rng)
{
    if (raw.empty()) {
        raw.push_back(static_cast<char>(rng.nextBounded(256)));
        return;
    }
    const size_t pos = static_cast<size_t>(rng.nextBounded(
        static_cast<uint32_t>(raw.size())));
    switch (rng.nextBounded(5)) {
    case 0: // Substitute an arbitrary byte (including NUL and 0xFF).
        raw[pos] = static_cast<char>(rng.nextBounded(256));
        break;
    case 1: // Delete a byte (breaks lengths and CRLF pairs).
        raw.erase(pos, 1);
        break;
    case 2: // Insert a byte.
        raw.insert(pos, 1, static_cast<char>(rng.nextBounded(256)));
        break;
    case 3: // Truncate (simulates a torn read).
        raw.resize(pos);
        break;
    default: // Duplicate a span (repeated headers, doubled separators).
        raw.insert(pos, raw.substr(pos, rng.nextBounded(16) + 1));
        break;
    }
}

class ParserFuzzProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ParserFuzzProperty, MutatedBankingRequestsNeverCrashParser)
{
    Rng rng(GetParam() * 0x9e3779b97f4a7c15ull + 1);
    for (std::string raw : bankingCorpus(GetParam())) {
        const int mutations = static_cast<int>(rng.nextBounded(8)) + 1;
        for (int m = 0; m < mutations; ++m)
            mutate(raw, rng);
        Request req;
        const bool ok = parseRequest(raw, 0, gNull, req);
        // Whatever the verdict, parsing must be deterministic: the same
        // bytes give the same verdict and the same parsed fields.
        Request again;
        EXPECT_EQ(parseRequest(raw, 0, gNull, again), ok);
        if (ok) {
            EXPECT_EQ(again.method, req.method);
            EXPECT_EQ(again.path, req.path);
            EXPECT_EQ(again.params, req.params);
            EXPECT_EQ(again.sessionId, req.sessionId);
            // Accepted requests carry internally consistent lengths.
            EXPECT_LE(req.contentLength, raw.size());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzProperty,
                         ::testing::Range<uint64_t>(1, 101));

class ParserRoundTripProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ParserRoundTripProperty, ParseSerializeRoundTripIsStable)
{
    // For well-formed Banking traffic the parse → rebuild cycle is a
    // fixed point: rebuilding from the parsed fields reproduces the
    // original bytes, so a second parse sees an identical request.
    for (const std::string &raw : bankingCorpus(GetParam())) {
        Request req;
        ASSERT_TRUE(parseRequest(raw, 0, gNull, req)) << raw;
        const std::string rebuilt =
            buildRequest(req.method, req.path, req.params, req.cookie);
        Request reparsed;
        ASSERT_TRUE(parseRequest(rebuilt, 0, gNull, reparsed)) << rebuilt;
        EXPECT_EQ(reparsed.method, req.method);
        EXPECT_EQ(reparsed.path, req.path);
        EXPECT_EQ(reparsed.params, req.params);
        EXPECT_EQ(reparsed.cookie, req.cookie);
        EXPECT_EQ(reparsed.sessionId, req.sessionId);
        EXPECT_EQ(reparsed.keepAlive, req.keepAlive);
        // And the serialization itself is stable byte-for-byte.
        EXPECT_EQ(buildRequest(reparsed.method, reparsed.path,
                               reparsed.params, reparsed.cookie),
                  rebuilt);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripProperty,
                         ::testing::Range<uint64_t>(1, 26));

TEST(Response, SerializeContainsCorrectContentLength)
{
    ResponseBuilder rb(Status::Ok);
    rb.addHeader("Content-Type", "text/html");
    rb.append("<html>hello</html>");
    const std::string out = rb.serialize();
    EXPECT_NE(out.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(out.find("Content-Type: text/html\r\n"), std::string::npos);
    EXPECT_NE(out.find("Content-Length: 18\r\n"), std::string::npos);
    EXPECT_NE(out.find("\r\n\r\n<html>hello</html>"), std::string::npos);
}

TEST(Response, StatusReasons)
{
    EXPECT_EQ(statusReason(Status::Ok), "OK");
    EXPECT_EQ(statusReason(Status::NotFound), "Not Found");
    EXPECT_EQ(statusReason(Status::Found), "Found");
    EXPECT_EQ(statusReason(Status::BadRequest), "Bad Request");
    EXPECT_EQ(statusReason(Status::InternalError), "Internal Server Error");
}

TEST(Response, BodyAccumulates)
{
    ResponseBuilder rb;
    rb.append("a");
    rb.append("bc");
    EXPECT_EQ(rb.bodySize(), 3u);
    EXPECT_EQ(rb.body(), "abc");
}

} // namespace
} // namespace rhythm::http
