/**
 * @file
 * Quickstart: the smallest end-to-end Rhythm program.
 *
 * Builds a bank, a simulated GPU and a Rhythm server; logs a user in,
 * requests their account summary, and prints what came back. Shows the
 * push-mode API: inject requests, run the event loop, read responses
 * from the callback.
 */

#include <iostream>

#include "backend/bankdb.hh"
#include "des/event_queue.hh"
#include "http/http.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "simt/device.hh"
#include "specweb/workload.hh"

int
main()
{
    using namespace rhythm;

    // 1. The simulation substrate: an event queue and a GTX-Titan-like
    //    SIMT device (14 SMs, HyperQ, 288 GB/s).
    des::EventQueue queue;
    simt::Device device(queue, simt::DeviceConfig{});

    // 2. The service: a bank with 100 customers.
    backend::BankDb db(/*num_users=*/100, /*seed=*/1);

    // 3. The Rhythm server, configured like the paper's Titan B (SoC:
    //    integrated NIC, device-resident backend). Small cohorts keep
    //    this demo instant.
    core::RhythmConfig config;
    config.cohortSize = 16;
    config.cohortContexts = 4;
    config.backendOnDevice = true;
    config.networkOverPcie = false;
    core::BankingService service(db);
    core::RhythmServer server(queue, device, service, config);

    server.setResponseCallback([](uint64_t client,
                                  std::string_view response,
                                  des::Time latency) {
        std::cout << "client " << client << ": "
                  << response.substr(0, response.find("\r\n")) << " ("
                  << response.size() << " bytes, "
                  << des::toMillis(latency) << " ms simulated)\n";
    });

    // 4. Log user 42 in (POST /bank/login.php)...
    std::string login = http::buildRequest(
        http::Method::Post, "/bank/login.php",
        {{"userid", "42"}, {"password", "pwd42"}});
    server.injectRequest(login, /*client_id=*/1);
    server.flush();
    queue.run();

    // 5. ...then use the session it created for an account summary.
    simt::NullTracer null;
    const uint64_t sid = server.sessions().create(42, null);
    std::string summary = http::buildRequest(
        http::Method::Get, "/bank/account_summary.php", {},
        "session=" + std::to_string(sid));
    server.injectRequest(summary, /*client_id=*/2);
    server.flush();
    queue.run();

    const core::RhythmStats &stats = server.stats();
    std::cout << "\nServed " << stats.responsesCompleted
              << " responses in " << stats.cohortsLaunched
              << " cohorts; simulated time "
              << des::toMillis(queue.now()) << " ms; device utilization "
              << device.kernelUtilization() << "\n";
    return 0;
}
