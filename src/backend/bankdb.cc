#include "backend/bankdb.hh"

#include <algorithm>

#include "util/hash.hh"
#include "util/logging.hh"

namespace rhythm::backend {
namespace {

const char *kDescriptions[] = {
    "grocery store purchase", "online retailer",     "utility payment",
    "salary deposit",         "restaurant",          "atm withdrawal",
    "insurance premium",      "subscription service", "fuel station",
    "pharmacy",               "interest credit",      "wire transfer",
};

} // namespace

BankDb::BankDb(uint64_t num_users, uint64_t seed)
    : numUsers_(num_users), nextTxId_(1), nextPayeeId_(1), nextPaymentId_(1),
      nextOrderId_(1)
{
    RHYTHM_ASSERT(num_users > 0);
    Rng rng(seed);
    users_.resize(num_users);
    for (uint64_t uid = 1; uid <= num_users; ++uid) {
        UserData &u = users_[uid - 1];

        u.profile.userId = uid;
        u.profile.name = "User " + std::to_string(uid);
        u.profile.address = std::to_string(100 + rng.nextBounded(9899)) +
                            " Main Street, Springfield " +
                            std::to_string(10000 + rng.nextBounded(89999));
        u.profile.email = "user" + std::to_string(uid) + "@bank.example.com";
        u.profile.phone = "555-" + std::to_string(1000 + rng.nextBounded(8999));
        u.profile.password = "pwd" + std::to_string(uid);

        u.checking = Account{checkingId(uid), uid, true,
                             static_cast<int64_t>(rng.nextRange(50000,
                                                                5000000))};
        u.savings = Account{savingsId(uid), uid, false,
                            static_cast<int64_t>(rng.nextRange(100000,
                                                               20000000))};

        const int ntx = static_cast<int>(rng.nextRange(10, 20));
        for (int i = 0; i < ntx; ++i) {
            Transaction tx;
            tx.txId = nextTxId_++;
            tx.accountId =
                rng.nextBool(0.7) ? u.checking.accountId
                                  : u.savings.accountId;
            tx.amountCents = rng.nextRange(-250000, 250000);
            tx.date = static_cast<uint32_t>(18000 + i * 3 +
                                            rng.nextBounded(3));
            tx.description = kDescriptions[rng.nextBounded(
                sizeof(kDescriptions) / sizeof(kDescriptions[0]))];
            tx.hasCheck = tx.amountCents < 0 && rng.nextBool(0.3);
            u.txs.push_back(std::move(tx));
        }

        const int npayee = static_cast<int>(rng.nextRange(2, 8));
        for (int i = 0; i < npayee; ++i) {
            Payee p;
            p.payeeId = nextPayeeId_++;
            p.userId = uid;
            p.name = "Payee " + std::to_string(p.payeeId);
            p.address = std::to_string(1 + rng.nextBounded(999)) +
                        " Commerce Ave";
            p.externalAccount = 900000000 + rng.nextBounded(99999999);
            u.payees.push_back(std::move(p));
        }

        const int npay = static_cast<int>(rng.nextRange(0, 5));
        for (int i = 0; i < npay && !u.payees.empty(); ++i) {
            BillPayment bp;
            bp.paymentId = nextPaymentId_++;
            bp.userId = uid;
            bp.payeeId =
                u.payees[rng.nextBounded(u.payees.size())].payeeId;
            bp.amountCents = static_cast<int64_t>(rng.nextRange(500, 50000));
            bp.date = static_cast<uint32_t>(18000 + rng.nextBounded(90));
            bp.executed = rng.nextBool(0.5);
            u.payments.push_back(bp);
        }
    }
}

bool
BankDb::validUser(uint64_t user_id) const
{
    return user_id >= 1 && user_id <= numUsers_;
}

BankDb::UserData &
BankDb::user(uint64_t user_id)
{
    RHYTHM_ASSERT(validUser(user_id), "invalid user id");
    return users_[user_id - 1];
}

const BankDb::UserData &
BankDb::user(uint64_t user_id) const
{
    RHYTHM_ASSERT(validUser(user_id), "invalid user id");
    return users_[user_id - 1];
}

bool
BankDb::authenticate(uint64_t user_id, std::string_view password) const
{
    if (!validUser(user_id))
        return false;
    return user(user_id).profile.password == password;
}

const Profile &
BankDb::profile(uint64_t user_id) const
{
    return user(user_id).profile;
}

void
BankDb::updateProfile(uint64_t user_id, std::string_view address,
                      std::string_view email, std::string_view phone)
{
    UserData &u = user(user_id);
    if (!address.empty())
        u.profile.address = std::string(address);
    if (!email.empty())
        u.profile.email = std::string(email);
    if (!phone.empty())
        u.profile.phone = std::string(phone);
}

std::vector<const Account *>
BankDb::accounts(uint64_t user_id) const
{
    const UserData &u = user(user_id);
    return {&u.checking, &u.savings};
}

const Account *
BankDb::account(uint64_t account_id) const
{
    const uint64_t uid = account_id / 10;
    if (!validUser(uid))
        return nullptr;
    const UserData &u = user(uid);
    if (u.checking.accountId == account_id)
        return &u.checking;
    if (u.savings.accountId == account_id)
        return &u.savings;
    return nullptr;
}

std::vector<const Transaction *>
BankDb::transactions(uint64_t account_id, size_t max) const
{
    std::vector<const Transaction *> out;
    const uint64_t uid = account_id / 10;
    if (!validUser(uid))
        return out;
    const UserData &u = user(uid);
    for (auto it = u.txs.rbegin(); it != u.txs.rend() && out.size() < max;
         ++it) {
        if (it->accountId == account_id)
            out.push_back(&*it);
    }
    return out;
}

const Transaction *
BankDb::transaction(uint64_t tx_id) const
{
    // Transaction ids are allocated sequentially per user at populate
    // time; post-populate transactions are also appended to their user.
    for (const UserData &u : users_) {
        for (const Transaction &tx : u.txs) {
            if (tx.txId == tx_id)
                return &tx;
        }
    }
    return nullptr;
}

std::vector<uint64_t>
BankDb::checkTransactionIds() const
{
    std::vector<uint64_t> out;
    for (const UserData &u : users_) {
        for (const Transaction &tx : u.txs) {
            if (tx.hasCheck)
                out.push_back(tx.txId);
        }
    }
    return out;
}

std::vector<const Payee *>
BankDb::payees(uint64_t user_id) const
{
    std::vector<const Payee *> out;
    for (const Payee &p : user(user_id).payees)
        out.push_back(&p);
    return out;
}

uint64_t
BankDb::addPayee(uint64_t user_id, std::string_view name,
                 std::string_view address, uint64_t external_account)
{
    UserData &u = user(user_id);
    Payee p;
    p.payeeId = nextPayeeId_++;
    p.userId = user_id;
    p.name = std::string(name);
    p.address = std::string(address);
    p.externalAccount = external_account;
    u.payees.push_back(std::move(p));
    return u.payees.back().payeeId;
}

uint64_t
BankDb::payBill(uint64_t user_id, uint64_t payee_id, int64_t amount_cents,
                uint32_t date)
{
    UserData &u = user(user_id);
    const bool known =
        std::any_of(u.payees.begin(), u.payees.end(),
                    [&](const Payee &p) { return p.payeeId == payee_id; });
    if (!known || amount_cents <= 0 ||
        u.checking.balanceCents < amount_cents)
        return 0;

    u.checking.balanceCents -= amount_cents;

    BillPayment bp;
    bp.paymentId = nextPaymentId_++;
    bp.userId = user_id;
    bp.payeeId = payee_id;
    bp.amountCents = amount_cents;
    bp.date = date;
    bp.executed = false;
    u.payments.push_back(bp);

    Transaction tx;
    tx.txId = nextTxId_++;
    tx.accountId = u.checking.accountId;
    tx.amountCents = -amount_cents;
    tx.date = date;
    tx.description = "bill payment";
    u.txs.push_back(std::move(tx));
    return bp.paymentId;
}

std::vector<const BillPayment *>
BankDb::billPayments(uint64_t user_id, uint32_t from, uint32_t to) const
{
    std::vector<const BillPayment *> out;
    for (const BillPayment &bp : user(user_id).payments) {
        if (bp.date >= from && bp.date <= to)
            out.push_back(&bp);
    }
    return out;
}

uint64_t
BankDb::transfer(uint64_t user_id, uint64_t from_account,
                 uint64_t to_account, int64_t amount_cents)
{
    UserData &u = user(user_id);
    auto resolve = [&](uint64_t id) -> Account * {
        if (u.checking.accountId == id)
            return &u.checking;
        if (u.savings.accountId == id)
            return &u.savings;
        return nullptr;
    };
    Account *from = resolve(from_account);
    Account *to = resolve(to_account);
    if (!from || !to || from == to || amount_cents <= 0 ||
        from->balanceCents < amount_cents)
        return 0;

    from->balanceCents -= amount_cents;
    to->balanceCents += amount_cents;

    Transaction tx;
    tx.txId = nextTxId_++;
    tx.accountId = from_account;
    tx.amountCents = -amount_cents;
    tx.date = 18100;
    tx.description = "transfer";
    u.txs.push_back(std::move(tx));
    return u.txs.back().txId;
}

uint64_t
BankDb::externalDebit(uint64_t user_id, uint64_t peer_user,
                      int64_t amount_cents)
{
    UserData &u = user(user_id);
    if (amount_cents <= 0 || u.checking.balanceCents < amount_cents)
        return 0;
    u.checking.balanceCents -= amount_cents;
    Transaction tx;
    tx.txId = nextTxId_++;
    tx.accountId = u.checking.accountId;
    tx.amountCents = -amount_cents;
    tx.date = 18100;
    tx.description = "xfer-out to user " + std::to_string(peer_user);
    u.txs.push_back(std::move(tx));
    return u.txs.back().txId;
}

uint64_t
BankDb::externalCredit(uint64_t user_id, uint64_t peer_user,
                       int64_t amount_cents)
{
    UserData &u = user(user_id);
    if (amount_cents <= 0)
        return 0;
    u.checking.balanceCents += amount_cents;
    Transaction tx;
    tx.txId = nextTxId_++;
    tx.accountId = u.checking.accountId;
    tx.amountCents = amount_cents;
    tx.date = 18100;
    tx.description = "xfer-in from user " + std::to_string(peer_user);
    u.txs.push_back(std::move(tx));
    return u.txs.back().txId;
}

uint64_t
BankDb::orderCheck(uint64_t user_id, uint32_t style, uint32_t quantity)
{
    UserData &u = user(user_id);
    CheckOrder order;
    order.orderId = nextOrderId_++;
    order.userId = user_id;
    order.style = style;
    order.quantity = quantity;
    order.placed = false;
    u.orders.push_back(order);
    return order.orderId;
}

bool
BankDb::placeCheckOrder(uint64_t user_id, uint64_t order_id)
{
    for (CheckOrder &order : user(user_id).orders) {
        if (order.orderId == order_id) {
            order.placed = true;
            return true;
        }
    }
    return false;
}

namespace {

/** Folds one length-prefixed string into both accumulators. */
void
hashString(util::Fnv1a64 &f, util::Mix64 &m, std::string_view s)
{
    f.update(s.size());
    m.update(s.size());
    uint64_t word = 0;
    int shift = 0;
    for (char c : s) {
        word |= static_cast<uint64_t>(static_cast<uint8_t>(c)) << shift;
        shift += 8;
        if (shift == 64) {
            f.update(word);
            m.update(word);
            word = 0;
            shift = 0;
        }
    }
    if (shift != 0) {
        f.update(word);
        m.update(word);
    }
}

void
hashWord(util::Fnv1a64 &f, util::Mix64 &m, uint64_t word)
{
    f.update(word);
    m.update(word);
}

} // namespace

uint64_t
BankDb::digest() const
{
    util::Fnv1a64 f;
    util::Mix64 m;
    hashWord(f, m, numUsers_);
    hashWord(f, m, nextTxId_);
    hashWord(f, m, nextPayeeId_);
    hashWord(f, m, nextPaymentId_);
    hashWord(f, m, nextOrderId_);
    for (const UserData &u : users_) {
        hashString(f, m, u.profile.name);
        hashString(f, m, u.profile.address);
        hashString(f, m, u.profile.email);
        hashString(f, m, u.profile.phone);
        hashString(f, m, u.profile.password);
        for (const Account *a : {&u.checking, &u.savings}) {
            hashWord(f, m, a->accountId);
            hashWord(f, m, static_cast<uint64_t>(a->balanceCents));
        }
        hashWord(f, m, u.txs.size());
        for (const Transaction &tx : u.txs) {
            hashWord(f, m, tx.txId);
            hashWord(f, m, tx.accountId);
            hashWord(f, m, static_cast<uint64_t>(tx.amountCents));
            hashWord(f, m, tx.date);
            hashWord(f, m, tx.hasCheck ? 1 : 0);
            hashString(f, m, tx.description);
        }
        hashWord(f, m, u.payees.size());
        for (const Payee &p : u.payees) {
            hashWord(f, m, p.payeeId);
            hashWord(f, m, p.externalAccount);
            hashString(f, m, p.name);
            hashString(f, m, p.address);
        }
        hashWord(f, m, u.payments.size());
        for (const BillPayment &p : u.payments) {
            hashWord(f, m, p.paymentId);
            hashWord(f, m, p.payeeId);
            hashWord(f, m, static_cast<uint64_t>(p.amountCents));
            hashWord(f, m, p.date);
            hashWord(f, m, p.executed ? 1 : 0);
        }
        hashWord(f, m, u.orders.size());
        for (const CheckOrder &o : u.orders) {
            hashWord(f, m, o.orderId);
            hashWord(f, m, o.style);
            hashWord(f, m, o.quantity);
            hashWord(f, m, o.placed ? 1 : 0);
        }
    }
    // Fold the FNV digest into the mix chain so a collision needs to
    // defeat both structurally independent accumulators at once.
    m.update(f.digest());
    return m.digest();
}

const CheckOrder *
BankDb::checkOrder(uint64_t order_id) const
{
    for (const UserData &u : users_) {
        for (const CheckOrder &order : u.orders) {
            if (order.orderId == order_id)
                return &order;
        }
    }
    return nullptr;
}

} // namespace rhythm::backend
