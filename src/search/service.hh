/**
 * @file
 * The Search workload as a Rhythm Service (the paper's Section 8
 * direction: "exploring other workloads like Search ... and deploying
 * them using Rhythm").
 *
 * Four cohort types:
 *
 * | id | page        | path       | backend | buffer |
 * |----|-------------|------------|---------|--------|
 * | 0  | home        | /          | none    | 8 KiB  |
 * | 1  | results     | /search    | QUERY   | 16 KiB |
 * | 2  | document    | /doc       | DOC     | 32 KiB |
 * | 3  | suggest     | /suggest   | SUGGEST | 4 KiB  |
 *
 * Search is sessionless; the cohorts group by page type exactly as the
 * Banking workload groups by PHP file. The backend protocol mirrors the
 * Banking one ('|'-separated wire records in fixed slots) so the same
 * pipeline transpose/copy machinery applies.
 */

#ifndef RHYTHM_SEARCH_SERVICE_HH
#define RHYTHM_SEARCH_SERVICE_HH

#include <string>

#include "rhythm/service.hh"
#include "search/index.hh"
#include "util/rng.hh"

namespace rhythm::search {

/** Cohort type ids of the Search service. */
enum class PageType : uint32_t {
    Home = 0,
    Results = 1,
    Document = 2,
    Suggest = 3,
};

/** Number of Search page types. */
inline constexpr uint32_t kNumPageTypes = 4;

/** Static metadata of one page type. */
struct PageTypeInfo
{
    PageType type;
    std::string_view name;
    std::string_view path;
    int backendRequests;
    uint32_t bufferBytes;
    /** Mix fraction in percent (typical search-frontend traffic). */
    double mixPercent;
};

/** Metadata table (enum order). */
const PageTypeInfo *pageTable();

/** Metadata for one page type. */
const PageTypeInfo &pageInfo(PageType type);

/** Search on Rhythm. */
class SearchService : public core::Service
{
  public:
    /** Binds to an index (not owned). */
    explicit SearchService(InvertedIndex &index) : index_(index) {}

    uint32_t numTypes() const override { return kNumPageTypes; }
    bool resolveType(const http::Request &request,
                     uint32_t &type_id) const override;
    std::string_view typeName(uint32_t type_id) const override;
    int numStages(uint32_t type_id) const override;
    uint32_t responseBufferBytes(uint32_t type_id) const override;
    void runStage(uint32_t type_id, int stage,
                  specweb::HandlerContext &ctx) const override;
    std::string executeBackend(std::string_view request,
                               simt::TraceRecorder &rec) override;

  private:
    void homePage(specweb::HandlerContext &ctx) const;
    void resultsPage(int stage, specweb::HandlerContext &ctx) const;
    void documentPage(int stage, specweb::HandlerContext &ctx) const;
    void suggestPage(int stage, specweb::HandlerContext &ctx) const;

    InvertedIndex &index_;
};

/** A generated search client request. */
struct GeneratedQuery
{
    PageType type = PageType::Home;
    std::string raw;
};

/** Generates mix-distributed Search requests. */
class QueryGenerator
{
  public:
    QueryGenerator(const Corpus &corpus, uint64_t seed);

    /** Samples a page type from the mix. */
    PageType sampleType();

    /** Builds a raw request of the given type. */
    GeneratedQuery generate(PageType type);

    /** Convenience: sampleType + generate. */
    GeneratedQuery next() { return generate(sampleType()); }

  private:
    const Corpus &corpus_;
    Rng rng_;
    double cumulative_[kNumPageTypes];
};

/** Validates a Search response (status, Content-Length, page marker). */
bool validateSearchResponse(PageType type, std::string_view raw,
                            std::string *reason = nullptr);

} // namespace rhythm::search

#endif // RHYTHM_SEARCH_SERVICE_HH
