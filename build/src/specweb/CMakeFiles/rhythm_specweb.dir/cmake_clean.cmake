file(REMOVE_RECURSE
  "CMakeFiles/rhythm_specweb.dir/banking.cc.o"
  "CMakeFiles/rhythm_specweb.dir/banking.cc.o.d"
  "CMakeFiles/rhythm_specweb.dir/context.cc.o"
  "CMakeFiles/rhythm_specweb.dir/context.cc.o.d"
  "CMakeFiles/rhythm_specweb.dir/html.cc.o"
  "CMakeFiles/rhythm_specweb.dir/html.cc.o.d"
  "CMakeFiles/rhythm_specweb.dir/quickpay.cc.o"
  "CMakeFiles/rhythm_specweb.dir/quickpay.cc.o.d"
  "CMakeFiles/rhythm_specweb.dir/static_content.cc.o"
  "CMakeFiles/rhythm_specweb.dir/static_content.cc.o.d"
  "CMakeFiles/rhythm_specweb.dir/types.cc.o"
  "CMakeFiles/rhythm_specweb.dir/types.cc.o.d"
  "CMakeFiles/rhythm_specweb.dir/workload.cc.o"
  "CMakeFiles/rhythm_specweb.dir/workload.cc.o.d"
  "librhythm_specweb.a"
  "librhythm_specweb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_specweb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
