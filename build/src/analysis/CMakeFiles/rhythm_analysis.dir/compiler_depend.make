# Empty compiler generated dependencies file for rhythm_analysis.
# This may be replaced when dependencies are built.
