/**
 * @file
 * Copy-engine scheduling corners of the overlapped transfer model
 * (DESIGN.md Section 6h).
 *
 * Device level: chunk boundaries landing exactly on transfer edges,
 * engine starvation with fewer engines than transfers, per-transfer
 * setup latency hiding across engines, round-robin link arbitration,
 * CRC retransmits inside a chunked transfer, and the busy/overlap
 * accounting behind fig9's overlap_fraction. Server level: the
 * pipelined (double-buffered) server must produce the same completed
 * requests and response bytes as the serial pipeline under any thread
 * count, with watchdog hedges firing while downloads are in flight,
 * and under CRC-detected link corruption.
 */

#include <gtest/gtest.h>

#include <vector>

#include "des/event_queue.hh"
#include "fault/plan.hh"
#include "platform/titan.hh"
#include "simt/device.hh"
#include "util/thread_pool.hh"

namespace rhythm::simt {
namespace {

constexpr uint64_t kMiB = 1048576;

DeviceConfig
pooledConfig(int engines, uint32_t chunk)
{
    DeviceConfig cfg;
    cfg.launchOverhead = 0;
    cfg.pcieLatency = 0;
    cfg.pcieBandwidthGBs = 1.0; // 1 byte per ns: easy arithmetic
    cfg.copyEngines = engines;
    cfg.copyChunkBytes = chunk;
    return cfg;
}

KernelCost
kernelOf(double seconds)
{
    KernelCost c;
    c.deviceSeconds = seconds;
    c.maxShare = 1.0;
    return c;
}

TEST(OverlapDevice, PooledWholeTransferMatchesLegacyTiming)
{
    // Multiple engines but no chunking: a lone transfer costs exactly
    // the legacy latency + bytes/bandwidth and ships as one chunk.
    des::EventQueue eq;
    Device dev(eq, pooledConfig(4, 0));
    int s = dev.createStream();
    bool done = false;
    dev.copyToDevice(s, 1000000, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(des::toSeconds(eq.now()), 1e-3, 1e-9);
    EXPECT_EQ(dev.stats().copyChunksH2D, 1u);
    EXPECT_EQ(dev.stats().copiesToDevice, 1u);
}

TEST(OverlapDevice, ChunkCountExactAtSlotBoundary)
{
    // A transfer that is an exact multiple of the chunk size must ship
    // exactly bytes/chunk chunks — no trailing zero-byte chunk.
    {
        des::EventQueue eq;
        Device dev(eq, pooledConfig(1, 262144));
        dev.copyToDevice(dev.createStream(), 4 * 262144, nullptr);
        eq.run();
        EXPECT_EQ(dev.stats().copyChunksH2D, 4u);
        EXPECT_NEAR(des::toSeconds(eq.now()), 4 * 262144e-9, 1e-9);
    }
    // Exactly one chunk when bytes == chunk...
    {
        des::EventQueue eq;
        Device dev(eq, pooledConfig(1, 262144));
        dev.copyToDevice(dev.createStream(), 262144, nullptr);
        eq.run();
        EXPECT_EQ(dev.stats().copyChunksH2D, 1u);
    }
    // ...and one byte past the boundary rounds up to two.
    {
        des::EventQueue eq;
        Device dev(eq, pooledConfig(1, 262144));
        dev.copyToDevice(dev.createStream(), 262145, nullptr);
        eq.run();
        EXPECT_EQ(dev.stats().copyChunksH2D, 2u);
    }
}

TEST(OverlapDevice, ChunkingPreservesTotalWireTime)
{
    // The chunk size changes how concurrent transfers share the wire,
    // never how long one transfer's bytes occupy it.
    double whole = 0, chunked = 0;
    {
        des::EventQueue eq;
        Device dev(eq, pooledConfig(2, 0));
        dev.copyToDevice(dev.createStream(), 1000000, nullptr);
        eq.run();
        whole = des::toSeconds(eq.now());
    }
    {
        des::EventQueue eq;
        Device dev(eq, pooledConfig(2, 4096));
        dev.copyToDevice(dev.createStream(), 1000000, nullptr);
        eq.run();
        chunked = des::toSeconds(eq.now());
    }
    EXPECT_NEAR(whole, 1e-3, 1e-9);
    EXPECT_NEAR(chunked, whole, 1e-9);
}

TEST(OverlapDevice, SingleEngineStarvationSerializes)
{
    // One engine, two transfers: the second starves until the first
    // completes, so both its setup latency and its wire time land
    // strictly after the first transfer — 2 × (latency + wire).
    des::EventQueue eq;
    DeviceConfig cfg = pooledConfig(1, 65536);
    cfg.pcieLatency = 10 * des::kMicrosecond;
    Device dev(eq, cfg);
    int s1 = dev.createStream();
    int s2 = dev.createStream();
    std::vector<int> order;
    dev.copyToDevice(s1, kMiB, [&] { order.push_back(1); });
    dev.copyToDevice(s2, kMiB, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_NEAR(des::toSeconds(eq.now()), 2 * (1e-5 + kMiB * 1e-9), 1e-9);
    // The lone engine was busy for both assignment→completion spans.
    const Device::Stats s = dev.stats();
    ASSERT_EQ(s.engineBusySecondsH2D.size(), 1u);
    EXPECT_NEAR(s.engineBusySecondsH2D[0], 2 * (1e-5 + kMiB * 1e-9), 1e-9);
}

TEST(OverlapDevice, MultiEngineHidesSetupLatency)
{
    // Two engines: both transfers pay their per-transfer latency
    // concurrently, then share the serial wire — one latency total
    // instead of two.
    des::EventQueue eq;
    DeviceConfig cfg = pooledConfig(2, 65536);
    cfg.pcieLatency = 10 * des::kMicrosecond;
    Device dev(eq, cfg);
    dev.copyToDevice(dev.createStream(), kMiB, nullptr);
    dev.copyToDevice(dev.createStream(), kMiB, nullptr);
    eq.run();
    EXPECT_NEAR(des::toSeconds(eq.now()), 1e-5 + 2 * kMiB * 1e-9, 1e-9);
}

TEST(OverlapDevice, RoundRobinInterleavesConcurrentTransfers)
{
    // Two 2-chunk transfers on two engines alternate chunks on the
    // wire: A1 B1 A2 B2 — so A completes after 3 chunk times and B
    // after 4, and neither transfer monopolizes the link.
    des::EventQueue eq;
    Device dev(eq, pooledConfig(2, 524288));
    const double c = 524288e-9;
    double done_a = 0, done_b = 0;
    dev.copyToDevice(dev.createStream(), kMiB,
                     [&] { done_a = des::toSeconds(eq.now()); });
    dev.copyToDevice(dev.createStream(), kMiB,
                     [&] { done_b = des::toSeconds(eq.now()); });
    eq.run();
    EXPECT_NEAR(done_a, 3 * c, 1e-9);
    EXPECT_NEAR(done_b, 4 * c, 1e-9);
    const Device::Stats s = dev.stats();
    EXPECT_EQ(s.copyChunksH2D, 4u);
    // Engine busy spans assignment → completion; the link was occupied
    // back to back for all four chunks.
    ASSERT_EQ(s.engineBusySecondsH2D.size(), 2u);
    EXPECT_NEAR(s.engineBusySecondsH2D[0], 3 * c, 1e-9);
    EXPECT_NEAR(s.engineBusySecondsH2D[1], 4 * c, 1e-9);
    EXPECT_NEAR(s.h2dBusySeconds, 4 * c, 1e-9);
    EXPECT_NEAR(s.copyBusySeconds, 4 * c, 1e-9);
    // No kernels ran, so nothing was hidden under compute.
    EXPECT_NEAR(s.overlapSeconds, 0.0, 1e-12);
}

TEST(OverlapDevice, EngineStarvationBacklogDrains)
{
    // More transfers than engines: the excess wait in FIFO order and
    // are assigned as engines free up; every transfer completes.
    des::EventQueue eq;
    Device dev(eq, pooledConfig(2, 262144));
    int completions = 0;
    for (int i = 0; i < 5; ++i)
        dev.copyToDevice(dev.createStream(), 262144,
                         [&] { ++completions; });
    eq.run();
    EXPECT_EQ(completions, 5);
    EXPECT_EQ(dev.stats().copiesToDevice, 5u);
    EXPECT_EQ(dev.stats().copyChunksH2D, 5u);
    EXPECT_NEAR(des::toSeconds(eq.now()), 5 * 262144e-9, 1e-9);
    EXPECT_TRUE(dev.idle());
}

TEST(OverlapDevice, OppositeDirectionsOverlapOnPooledPath)
{
    // H2D and D2H have independent engine pools and wires: a download
    // in flight never delays an upload (and vice versa).
    des::EventQueue eq;
    Device dev(eq, pooledConfig(2, 262144));
    dev.copyToDevice(dev.createStream(), kMiB, nullptr);
    dev.copyToHost(dev.createStream(), kMiB, nullptr);
    eq.run();
    EXPECT_NEAR(des::toSeconds(eq.now()), kMiB * 1e-9, 1e-9);
    EXPECT_EQ(dev.stats().copyChunksH2D, 4u);
    EXPECT_EQ(dev.stats().copyChunksD2H, 4u);
}

TEST(OverlapDevice, CrcRetransmitMidOverlappedTransfer)
{
    // Frame CRC on the chunked path, with a kernel running throughout:
    // one corrupted frame deep inside the transfer is retransmitted,
    // the transfer still completes as one unit, the wire/retransmit
    // accounting is exact, and the whole copy is hidden under compute.
    des::EventQueue eq;
    DeviceConfig cfg = pooledConfig(2, 65536);
    cfg.pcieCrcEnabled = true; // frame 4096 B + 8 B overhead defaults
    Device dev(eq, cfg);
    uint64_t frame_calls = 0;
    DeviceFaultHooks hooks;
    hooks.frameCorrupt = [&](bool /*to_device*/) {
        return ++frame_calls == 100; // corrupt exactly one transmission
    };
    dev.setFaultHooks(hooks);
    int sk = dev.createStream();
    int sc = dev.createStream();
    dev.launchKernel(sk, kernelOf(2e-3), nullptr);
    double copy_done = 0;
    dev.copyToDevice(sc, kMiB, [&] { copy_done = des::toSeconds(eq.now()); });
    eq.run();

    const Device::Stats s = dev.stats();
    EXPECT_EQ(s.copyChunksH2D, 16u); // 1 MiB / 64 KiB chunks
    EXPECT_EQ(s.pcieCrcErrors, 1u);
    EXPECT_EQ(s.pcieRetrains, 0u);
    EXPECT_EQ(s.pcieRetransmittedBytes, 4096u + 8u);
    // 256 frames of payload+overhead, plus the one replayed frame.
    EXPECT_EQ(s.pcieWireBytes, kMiB + 256 * 8 + 4104);
    const double copy_seconds = static_cast<double>(s.pcieWireBytes) * 1e-9;
    EXPECT_NEAR(copy_done, copy_seconds, 1e-9);
    // The copy (retransmit included) ran entirely under the kernel.
    EXPECT_NEAR(s.copyBusySeconds, copy_seconds, 1e-9);
    EXPECT_NEAR(s.overlapSeconds, copy_seconds, 1e-9);
    EXPECT_NEAR(des::toSeconds(eq.now()), 2e-3, 1e-6);
}

TEST(OverlapDevice, LegacyDefaultsBypassPooledPath)
{
    // copyEngines == 1 and copyChunkBytes == 0 is the paper-exact
    // serial model: no chunk accounting, no per-engine vectors.
    des::EventQueue eq;
    Device dev(eq, pooledConfig(1, 0));
    dev.copyToDevice(dev.createStream(), 1000000, nullptr);
    eq.run();
    const Device::Stats s = dev.stats();
    EXPECT_EQ(s.copyChunksH2D, 0u);
    EXPECT_TRUE(s.engineBusySecondsH2D.empty());
    EXPECT_TRUE(s.engineBusySecondsD2H.empty());
    EXPECT_NEAR(s.h2dBusySeconds, 1e-3, 1e-9);
}

} // namespace
} // namespace rhythm::simt

namespace rhythm {
namespace {

/** One small isolated banking run; restores serial mode afterwards. */
platform::TypeRunResult
runType(specweb::RequestType type, const platform::IsolatedRunOptions &opts,
        unsigned threads)
{
    util::setSimThreads(threads);
    platform::TypeRunResult r =
        platform::runIsolatedType(platform::titanA(), type, opts);
    util::setSimThreads(1);
    return r;
}

platform::IsolatedRunOptions
smallRun()
{
    platform::IsolatedRunOptions opts;
    opts.cohorts = 4;
    opts.users = 400;
    opts.laneSample = 64;
    return opts;
}

platform::IsolatedRunOptions
overlapped(platform::IsolatedRunOptions opts)
{
    opts.overlapPipeline = true;
    opts.copyEngines = 4;
    opts.copyChunkBytes = 262144;
    return opts;
}

TEST(OverlapServer, ResponsesIdenticalAcrossModesAndThreads)
{
    // The double-buffered pipeline reorders simulation work, never
    // results: completed requests and client-visible response bytes
    // must match the serial pipeline at any thread count.
    for (specweb::RequestType type :
         {specweb::RequestType::PostPayee, specweb::RequestType::Logout}) {
        const platform::TypeRunResult off = runType(type, smallRun(), 1);
        ASSERT_GT(off.requests, 0u);
        for (unsigned threads : {1u, 8u}) {
            const platform::TypeRunResult off_t =
                runType(type, smallRun(), threads);
            const platform::TypeRunResult on_t =
                runType(type, overlapped(smallRun()), threads);
            EXPECT_EQ(off_t.requests, off.requests);
            EXPECT_EQ(on_t.requests, off.requests);
            EXPECT_EQ(off_t.responseBytesPerRequest,
                      off.responseBytesPerRequest);
            EXPECT_EQ(on_t.responseBytesPerRequest,
                      off.responseBytesPerRequest);
            // Determinism within a mode: the threaded run reproduces
            // the serial run bit for bit.
            EXPECT_EQ(off_t.elapsedSeconds, off.elapsedSeconds);
        }
    }
}

TEST(OverlapServer, HedgeDuringOverlappedDownloadsKeepsResponses)
{
    // Kernel hangs with a tight watchdog: hedged cohorts re-execute
    // while chunked downloads of neighbouring cohorts are in flight.
    // Exactly-once delivery must hold — same requests, same response
    // bytes as the fault-free serial run — with only timing changed.
    platform::IsolatedRunOptions faulty = smallRun();
    faulty.faults.at(fault::Site::KernelHang).probability = 0.5;
    faulty.faults.at(fault::Site::KernelHang).meanDelay =
        des::fromSeconds(5e-3);
    faulty.watchdogTimeout = des::fromSeconds(2e-3);
    faulty.recovery = true;

    const specweb::RequestType type = specweb::RequestType::PostPayee;
    const platform::TypeRunResult healthy = runType(type, smallRun(), 1);
    const platform::TypeRunResult off = runType(type, faulty, 1);
    const platform::TypeRunResult on = runType(type, overlapped(faulty), 1);
    const platform::TypeRunResult on8 = runType(type, overlapped(faulty), 8);

    EXPECT_EQ(off.requests, healthy.requests);
    EXPECT_EQ(on.requests, healthy.requests);
    EXPECT_EQ(off.responseBytesPerRequest, healthy.responseBytesPerRequest);
    EXPECT_EQ(on.responseBytesPerRequest, healthy.responseBytesPerRequest);
    // The faults actually fired: hangs + hedges cost simulated time.
    EXPECT_NE(on.elapsedSeconds, healthy.elapsedSeconds);
    // And the faulted overlapped run is itself thread-invariant.
    EXPECT_EQ(on8.elapsedSeconds, on.elapsedSeconds);
    EXPECT_EQ(on8.requests, on.requests);
}

TEST(OverlapServer, CrcCorruptionUnderOverlapKeepsResponses)
{
    // Frame CRC with injected corruption on the chunked path: every
    // corrupted frame is retransmitted, so responses never change —
    // only wire bytes and timing do.
    platform::IsolatedRunOptions faulty = smallRun();
    faulty.pcieFrameCrc = true;
    faulty.faults.at(fault::Site::PcieCorrupt).probability = 0.05;

    const specweb::RequestType type = specweb::RequestType::PostPayee;
    const platform::TypeRunResult healthy = runType(type, smallRun(), 1);
    const platform::TypeRunResult off = runType(type, faulty, 1);
    const platform::TypeRunResult on = runType(type, overlapped(faulty), 1);

    EXPECT_EQ(off.requests, healthy.requests);
    EXPECT_EQ(on.requests, healthy.requests);
    EXPECT_EQ(off.responseBytesPerRequest, healthy.responseBytesPerRequest);
    EXPECT_EQ(on.responseBytesPerRequest, healthy.responseBytesPerRequest);
    // CRC framing put more bytes on the wire than the payload needs.
    EXPECT_GT(on.pcieWireBytesPerRequest, 0u);
    EXPECT_GE(on.pcieWireBytesPerRequest, on.pcieBytesPerRequest);
}

} // namespace
} // namespace rhythm
