/**
 * @file
 * Extension experiment: the cohort-formation latency/throughput trade
 * (paper Sections 1 and 3.1 — "trade an increase in response time for
 * improvement in server throughput per Watt"; "requests can be delayed
 * for a limited amount of time and still achieve acceptable response
 * times").
 *
 * Requests arrive as an open-loop Poisson process at a configurable
 * fraction of the platform's capacity; the cohort-formation timeout is
 * swept. At low arrival rates cohorts launch partially full (timeout
 * bound), so small timeouts trade device efficiency for latency; at
 * high rates cohorts fill before the timeout and the knob stops
 * mattering — exactly the paper's observation that at ~1M reqs/s
 * arrival rates cohort formation time is negligible (Section 6.4).
 */

#include <iostream>

#include "backend/bankdb.hh"
#include "bench/common.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "specweb/workload.hh"

namespace {

using namespace rhythm;

struct RunResult
{
    double throughput;
    double meanLatencyMs;
    double p99LatencyMs;
    double avgCohortFill;
};

RunResult
runAtRate(double arrival_rate, des::Time timeout, uint64_t requests,
          const bench::FaultFlags &faults,
          const bench::OverlapFlags &overlap)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    faults.apply(dcfg);
    overlap.apply(dcfg);
    simt::Device device(queue, dcfg);
    backend::BankDb db(2000, 5);
    core::BankingService service(db);

    core::RhythmConfig cfg;
    cfg.cohortSize = 1024;
    cfg.cohortContexts = 8;
    cfg.cohortTimeout = timeout;
    cfg.backendOnDevice = true; // Titan B
    cfg.networkOverPcie = false;
    cfg.laneSample = 64;
    faults.apply(cfg);
    overlap.apply(cfg);
    core::RhythmServer server(queue, device, service, cfg);
    std::optional<fault::FaultPlan> plan;
    faults.arm(server, device, queue, plan);

    specweb::WorkloadGenerator gen(db, 31);
    auto sessions = server.sessions().populate(8192, 2000);

    // Open-loop Poisson arrivals of a single request type (isolating
    // the formation trade-off from multi-type context contention).
    Rng arrival_rng(7);
    uint64_t issued = 0;
    uint64_t dropped = 0;
    std::function<void()> arrive = [&]() {
        if (issued >= requests)
            return;
        const auto &[sid, user] = sessions[issued % sessions.size()];
        specweb::GeneratedRequest req = gen.generate(
            specweb::RequestType::AccountSummary, user, sid);
        // Open loop: a full reader drops the arrival (the client sees
        // no response). Track drops instead of retrying so the arrival
        // process stays independent of server state.
        if (!server.injectRequest(std::move(req.raw), issued))
            ++dropped;
        ++issued;
        queue.scheduleAfter(
            des::fromSeconds(
                arrival_rng.nextExponential(1.0 / arrival_rate)),
            arrive);
    };
    arrive();
    queue.run();
    if (dropped > 0)
        std::cerr << "note: reader dropped " << dropped << " of "
                  << requests << " open-loop arrivals\n";

    const core::RhythmStats &stats = server.stats();
    RunResult r;
    r.throughput = static_cast<double>(stats.responsesCompleted) /
                   des::toSeconds(queue.now());
    r.meanLatencyMs = stats.latencyMs.mean();
    r.p99LatencyMs = stats.latencyMs.percentile(99.0);
    r.avgCohortFill =
        stats.cohortsLaunched
            ? static_cast<double>(stats.responsesCompleted) /
                  (static_cast<double>(stats.cohortsLaunched) *
                   cfg.cohortSize)
            : 0.0;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter report("ext_timeout_tradeoff", argc, argv);
    bench::banner("Extension: cohort timeout vs latency/efficiency",
                  "Sections 1/3.1 (delay requests to form cohorts)");

    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.recordConfig(report);
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    overlap.recordConfig(report);

    for (const auto &[label, prefix, rate, requests] :
         {std::tuple<const char *, const char *, double, uint64_t>{
              "LOW arrival rate (100K reqs/s)", "low", 100e3, 20000},
          {"HIGH arrival rate (2M reqs/s)", "high", 2e6, 60000}}) {
        std::cout << "\n-- " << label << " --\n";
        TableWriter table({"timeout ms", "KReqs/s", "mean latency ms",
                           "p99 latency ms", "avg cohort fill"});
        for (double timeout_ms : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
            RunResult r =
                runAtRate(rate, des::fromSeconds(timeout_ms / 1e3),
                          requests, faults, overlap);
            table.addRow({bench::fmt(timeout_ms, 2),
                          bench::fmt(r.throughput / 1e3, 0),
                          bench::fmt(r.meanLatencyMs, 2),
                          bench::fmt(r.p99LatencyMs, 2),
                          bench::fmt(r.avgCohortFill, 2)});
            const std::string key = std::string(prefix) + "_timeout_" +
                                    bench::fmt(timeout_ms, 2);
            report.metric(key + ".throughput", r.throughput);
            report.metric(key + ".p99_latency_ms", r.p99LatencyMs);
        }
        table.printAscii(std::cout);
    }
    std::cout
        << "\nExpected shape: at low arrival rates, larger timeouts fill "
           "cohorts better\n(higher fill, better device efficiency) at "
           "the price of latency; at high arrival\nrates cohorts fill "
           "before any timeout expires and the knob is neutral — the\n"
           "paper's Section 6.4 observation.\n";
    if (!report.write())
        return 1;
    return 0;
}
