
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/specweb/banking.cc" "src/specweb/CMakeFiles/rhythm_specweb.dir/banking.cc.o" "gcc" "src/specweb/CMakeFiles/rhythm_specweb.dir/banking.cc.o.d"
  "/root/repo/src/specweb/context.cc" "src/specweb/CMakeFiles/rhythm_specweb.dir/context.cc.o" "gcc" "src/specweb/CMakeFiles/rhythm_specweb.dir/context.cc.o.d"
  "/root/repo/src/specweb/html.cc" "src/specweb/CMakeFiles/rhythm_specweb.dir/html.cc.o" "gcc" "src/specweb/CMakeFiles/rhythm_specweb.dir/html.cc.o.d"
  "/root/repo/src/specweb/quickpay.cc" "src/specweb/CMakeFiles/rhythm_specweb.dir/quickpay.cc.o" "gcc" "src/specweb/CMakeFiles/rhythm_specweb.dir/quickpay.cc.o.d"
  "/root/repo/src/specweb/static_content.cc" "src/specweb/CMakeFiles/rhythm_specweb.dir/static_content.cc.o" "gcc" "src/specweb/CMakeFiles/rhythm_specweb.dir/static_content.cc.o.d"
  "/root/repo/src/specweb/types.cc" "src/specweb/CMakeFiles/rhythm_specweb.dir/types.cc.o" "gcc" "src/specweb/CMakeFiles/rhythm_specweb.dir/types.cc.o.d"
  "/root/repo/src/specweb/workload.cc" "src/specweb/CMakeFiles/rhythm_specweb.dir/workload.cc.o" "gcc" "src/specweb/CMakeFiles/rhythm_specweb.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rhythm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/rhythm_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/rhythm_http.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/rhythm_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/rhythm_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
