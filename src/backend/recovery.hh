/**
 * @file
 * Crash recovery for the backend: checkpoint + write-ahead journal +
 * idempotency-token memo (DESIGN §6g).
 *
 * RecoverableBackend wraps a BackendService/BankDb pair and gives the
 * pipeline exactly-once semantics for mutating operations under three
 * conditions the base service cannot survive:
 *
 *  - **Crashes** (fault::Site::BackendCrash): all in-memory state is
 *    lost. Recovery restores the last checkpoint and re-executes the
 *    journal; because BankDb and SessionArray are deterministic, the
 *    rebuilt state is bit-identical to the pre-crash state.
 *  - **Torn writes** (fault::Site::JournalTorn): the crash interrupts
 *    the final journal append. scan() drops the unparsable tail; the
 *    in-flight operation is simply lost — and because its response was
 *    never released (log-before-respond), the client retry with the
 *    same idempotency token re-executes it, applying it exactly once.
 *  - **Duplicate delivery** (watchdog-hedged cohorts, client retries):
 *    every mutating operation carries an idempotency token; a token
 *    already in the memo returns the recorded response without
 *    touching the database.
 *
 * The memo is checkpointed with the database and rebuilt from the
 * journal on recovery, so a hedge replay arriving after a crash (or
 * after a checkpoint truncated the journal) still deduplicates. Reads
 * are not journaled or memoized — they are side-effect free and
 * re-execute deterministically.
 *
 * Session state (the device-resident session array) is part of the
 * crash domain: its mutations are journaled through the hooks
 * installed by core::attachSessionRecovery, and replay re-executes
 * create() against the restored array + RNG state, reproducing the
 * original session ids exactly.
 *
 * Cost model: journal appends and memo lookups are host-side bookkeeping
 * off the request's critical path (a real deployment writes the journal
 * from a separate flusher thread), so they charge nothing to the trace
 * recorder — with faults off, a recovery-wrapped backend produces
 * byte-identical simulated output to a bare one.
 */

#ifndef RHYTHM_BACKEND_RECOVERY_HH
#define RHYTHM_BACKEND_RECOVERY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "backend/journal.hh"
#include "backend/service.hh"
#include "des/time.hh"
#include "fault/plan.hh"
#include "simt/trace.hh"

namespace rhythm::backend {

/** Recovery layer tuning. */
struct RecoveryConfig
{
    /**
     * Journaled records between automatic checkpoints (0 = only
     * explicit checkpoint() calls). Each checkpoint deep-copies the
     * database + session array and truncates the journal, bounding
     * replay time after a crash.
     */
    uint64_t checkpointInterval = 4096;
};

/** Counters for reports and the chaos harness. */
struct RecoveryStats
{
    uint64_t journaledRecords = 0;
    uint64_t memoHits = 0;
    uint64_t crashes = 0;
    uint64_t tornRecords = 0;
    uint64_t replayedRecords = 0;
    /** Replayed records whose re-execution disagreed with the journal
     *  (always 0 for a deterministic backend; a nonzero value means
     *  the recovery contract is broken). */
    uint64_t replayMismatches = 0;
    uint64_t checkpoints = 0;
    /** Torn-tail operations re-executed by the client retry path. */
    uint64_t reexecutions = 0;
};

/**
 * Session-array participation in the crash domain. The backend layer
 * cannot see core::SessionArray (it links the other way), so the
 * rhythm layer injects closures: checkpoint/restore capture and
 * reinstate the array state, replayCreate/replayDestroy re-execute
 * journaled mutations during recovery.
 */
struct SessionHooks
{
    std::function<void()> checkpoint;
    std::function<void()> restore;
    /** Re-executes a create for @p user_id; returns the session id. */
    std::function<uint64_t(uint64_t user_id)> replayCreate;
    std::function<bool(uint64_t session_id)> replayDestroy;
};

/**
 * The recoverable backend. Not thread safe (single-threaded event
 * loop, like everything it wraps).
 */
class RecoverableBackend
{
  public:
    /**
     * Wraps a service and its database. Takes an immediate checkpoint
     * of @p db as the recovery baseline — construct (or call
     * checkpoint()) only after deterministic population is done.
     */
    RecoverableBackend(BackendService &service, BankDb &db,
                       RecoveryConfig config = {});

    /**
     * Installs the fault plan consulted for Site::BackendCrash (once
     * per journaled mutating operation) and Site::JournalTorn (once
     * per fired crash). nullptr disarms.
     */
    void setFaultPlan(fault::FaultPlan *plan,
                      std::function<des::Time()> clock = nullptr);

    /** Brings a session array into the crash domain (see SessionHooks).
     *  Re-checkpoints so the baseline includes the sessions. */
    void setSessionHooks(SessionHooks hooks);

    /**
     * Executes one wire request with exactly-once semantics for
     * mutating operations (keyed by @p token). Read-only requests pass
     * straight through.
     */
    std::string execute(std::string_view request, uint64_t token,
                        simt::TraceRecorder &rec);

    /** Journals a session create (called via the array's mutation
     *  hook; ignored while recovery itself is replaying). */
    void journalSessionCreate(uint64_t session_id, uint64_t user_id);

    /** Journals a session destroy. */
    void journalSessionDestroy(uint64_t session_id);

    /** Deep-copies db + sessions + memo and truncates the journal. */
    void checkpoint();

    /**
     * Simulates a crash-restart: discards all live state, restores the
     * last checkpoint and replays the journal. @p torn additionally
     * tears the final journal record first (the partial write a real
     * crash leaves). Exposed for tests; the serving path triggers it
     * from the fault plan.
     */
    void crashAndRecover(bool torn);

    /** True while crashAndRecover is replaying the journal. */
    bool replaying() const { return replaying_; }

    const RecoveryStats &stats() const { return stats_; }
    const Journal &journal() const { return journal_; }

    /** True for operations that mutate database state (and are
     *  therefore journaled + memoized). */
    static bool isMutating(Op op);

  private:
    void appendRecord(char kind, uint64_t token, std::string payload);
    void maybeCheckpoint();

    BackendService &service_;
    BankDb &db_;
    RecoveryConfig config_;
    fault::FaultPlan *faultPlan_ = nullptr;
    std::function<des::Time()> clock_;
    SessionHooks sessionHooks_;

    Journal journal_;
    std::unordered_map<uint64_t, std::string> memo_;
    /** Checkpointed state: database copy + memo at checkpoint time
     *  (session state is captured inside the hooks' closures). */
    std::unique_ptr<BankDb> dbCheckpoint_;
    std::unordered_map<uint64_t, std::string> memoCheckpoint_;

    RecoveryStats stats_;
    bool replaying_ = false;
};

} // namespace rhythm::backend

#endif // RHYTHM_BACKEND_RECOVERY_HH
