#include "backend/service.hh"

#include "util/strings.hh"

namespace rhythm::backend {
namespace {

/// Backend service basic blocks.
enum BackendBlock : uint32_t {
    kBlockDecode = kBackendBlockBase + 0,
    kBlockLookup = kBackendBlockBase + 1,
    kBlockRecordEmit = kBackendBlockBase + 2,
    kBlockMutate = kBackendBlockBase + 3,
    kBlockError = kBackendBlockBase + 4,
};

/// Fixed decode/validation weight per request.
constexpr uint32_t kDecodeInsts = 380;
/// Weight of a user/account lookup.
constexpr uint32_t kLookupInsts = 220;
/// Weight of a mutation (balance update, insert).
constexpr uint32_t kMutateInsts = 450;
/// Per-byte cost of emitting a response record.
constexpr uint32_t kEmitInstsPerByte = 3;

/// Appends a record and charges its emission cost.
void
emit(std::string &payload, std::string record, simt::TraceRecorder &rec)
{
    rec.block(kBlockRecordEmit,
              32 + static_cast<uint32_t>(record.size()) * kEmitInstsPerByte);
    payload.append(record);
    payload.push_back(';');
}

std::string
centsToString(int64_t cents)
{
    return std::to_string(cents);
}

} // namespace

std::string
BackendService::execute(std::string_view request, simt::TraceRecorder &rec)
{
    rec.block(kBlockDecode,
              kDecodeInsts + static_cast<uint32_t>(request.size()) * 2);
    BackendRequest req;
    if (!BackendRequest::parse(request, req)) {
        rec.block(kBlockError, 48);
        return response::error("malformed");
    }
    return execute(req, rec);
}

void
BackendService::setFaultPlan(fault::FaultPlan *plan,
                             std::function<des::Time()> clock)
{
    faultPlan_ = plan;
    clock_ = std::move(clock);
}

std::string
BackendService::execute(const BackendRequest &req, simt::TraceRecorder &rec)
{
    ++requestsServed_;
    if (faultPlan_ &&
        faultPlan_->at(fault::Site::BackendFail, clock_ ? clock_() : 0)
            .fire) {
        ++faultsInjected_;
        rec.block(kBlockError, 16);
        return response::error(response::kUnavailableReason);
    }
    rec.block(kBlockLookup, kLookupInsts);

    auto arg = [&](size_t i) -> std::string_view {
        return i < req.args.size() ? std::string_view(req.args[i])
                                   : std::string_view();
    };
    auto argU64 = [&](size_t i) -> uint64_t {
        uint64_t v = 0;
        parseU64(arg(i), v);
        return v;
    };

    if (req.op != Op::GetCheckDetail && !db_.validUser(req.userId)) {
        rec.block(kBlockError, 48);
        return response::error("no such user");
    }

    std::string payload;
    switch (req.op) {
      case Op::Authenticate: {
        if (!db_.authenticate(req.userId, arg(0))) {
            rec.block(kBlockError, 64);
            return response::error("bad credentials");
        }
        emit(payload, db_.profile(req.userId).name, rec);
        break;
      }
      case Op::GetAccounts: {
        for (const Account *a : db_.accounts(req.userId)) {
            emit(payload,
                 std::to_string(a->accountId) + "," +
                     (a->isChecking ? "checking" : "savings") + "," +
                     centsToString(a->balanceCents),
                 rec);
        }
        break;
      }
      case Op::GetTransactions: {
        const uint64_t account = argU64(0);
        const uint64_t max = argU64(1) ? argU64(1) : 10;
        for (const Transaction *tx : db_.transactions(account, max)) {
            emit(payload,
                 std::to_string(tx->txId) + "," + std::to_string(tx->date) +
                     "," + centsToString(tx->amountCents) + "," +
                     tx->description + "," + (tx->hasCheck ? "1" : "0"),
                 rec);
        }
        break;
      }
      case Op::GetPayees: {
        for (const Payee *p : db_.payees(req.userId)) {
            emit(payload,
                 std::to_string(p->payeeId) + "," + p->name + "," +
                     p->address + "," + std::to_string(p->externalAccount),
                 rec);
        }
        break;
      }
      case Op::AddPayee: {
        rec.block(kBlockMutate, kMutateInsts);
        const uint64_t id =
            db_.addPayee(req.userId, arg(0), arg(1), argU64(2));
        emit(payload, std::to_string(id), rec);
        break;
      }
      case Op::PayBill: {
        rec.block(kBlockMutate, kMutateInsts);
        const uint64_t id = db_.payBill(
            req.userId, argU64(0), static_cast<int64_t>(argU64(1)),
            static_cast<uint32_t>(argU64(2)));
        if (id == 0) {
            rec.block(kBlockError, 64);
            return response::error("payment rejected");
        }
        emit(payload, std::to_string(id), rec);
        break;
      }
      case Op::GetPayments: {
        const uint32_t from = static_cast<uint32_t>(argU64(0));
        const uint32_t to =
            req.args.size() > 1 ? static_cast<uint32_t>(argU64(1)) : 0xffffffffu;
        for (const BillPayment *bp : db_.billPayments(req.userId, from, to)) {
            emit(payload,
                 std::to_string(bp->paymentId) + "," +
                     std::to_string(bp->payeeId) + "," +
                     centsToString(bp->amountCents) + "," +
                     std::to_string(bp->date) + "," +
                     (bp->executed ? "1" : "0"),
                 rec);
        }
        break;
      }
      case Op::UpdateProfile: {
        rec.block(kBlockMutate, kMutateInsts);
        db_.updateProfile(req.userId, arg(0), arg(1), arg(2));
        emit(payload, "updated", rec);
        break;
      }
      case Op::GetProfile: {
        const Profile &p = db_.profile(req.userId);
        emit(payload,
             p.name + "," + p.address + "," + p.email + "," + p.phone, rec);
        break;
      }
      case Op::GetCheckDetail: {
        const Transaction *tx = db_.transaction(argU64(0));
        if (!tx || !tx->hasCheck) {
            rec.block(kBlockError, 64);
            return response::error("no such check");
        }
        emit(payload,
             std::to_string(tx->txId) + "," + std::to_string(tx->date) +
                 "," + centsToString(tx->amountCents) + "," +
                 tx->description + ",check-" + std::to_string(tx->txId),
             rec);
        break;
      }
      case Op::OrderCheck: {
        rec.block(kBlockMutate, kMutateInsts);
        const uint64_t id =
            db_.orderCheck(req.userId, static_cast<uint32_t>(argU64(0)),
                           static_cast<uint32_t>(argU64(1)));
        emit(payload, std::to_string(id), rec);
        break;
      }
      case Op::PlaceCheckOrder: {
        rec.block(kBlockMutate, kMutateInsts);
        if (req.args.size() >= 2) {
            // Combined create-and-place (the place_check_order page's
            // single backend round trip): args = style, quantity.
            const uint64_t id =
                db_.orderCheck(req.userId,
                               static_cast<uint32_t>(argU64(0)),
                               static_cast<uint32_t>(argU64(1)));
            db_.placeCheckOrder(req.userId, id);
            emit(payload, std::to_string(id), rec);
            break;
        }
        if (!db_.placeCheckOrder(req.userId, argU64(0))) {
            rec.block(kBlockError, 64);
            return response::error("no such order");
        }
        emit(payload, "placed", rec);
        break;
      }
      case Op::Summary: {
        // Composite record set: "A,..." account rows followed by
        // "T,..." recent checking transactions — the account_summary
        // page's single backend round trip.
        for (const Account *a : db_.accounts(req.userId)) {
            emit(payload,
                 std::string("A,") + std::to_string(a->accountId) + "," +
                     (a->isChecking ? "checking" : "savings") + "," +
                     centsToString(a->balanceCents),
                 rec);
        }
        for (const Transaction *tx :
             db_.transactions(BankDb::checkingId(req.userId), 12)) {
            emit(payload,
                 std::string("T,") + std::to_string(tx->txId) + "," +
                     std::to_string(tx->date) + "," +
                     centsToString(tx->amountCents) + "," +
                     tx->description + "," + (tx->hasCheck ? "1" : "0"),
                 rec);
        }
        break;
      }
      case Op::Transfer: {
        rec.block(kBlockMutate, kMutateInsts);
        const uint64_t id = db_.transfer(req.userId, argU64(0), argU64(1),
                                         static_cast<int64_t>(argU64(2)));
        if (id == 0) {
            rec.block(kBlockError, 64);
            return response::error("transfer rejected");
        }
        emit(payload, std::to_string(id), rec);
        break;
      }
      case Op::XferOut: {
        rec.block(kBlockMutate, kMutateInsts);
        const uint64_t id = db_.externalDebit(
            req.userId, argU64(0), static_cast<int64_t>(argU64(1)));
        if (id == 0) {
            rec.block(kBlockError, 64);
            return response::error("transfer rejected");
        }
        emit(payload, std::to_string(id), rec);
        break;
      }
      case Op::XferIn: {
        rec.block(kBlockMutate, kMutateInsts);
        const uint64_t id = db_.externalCredit(
            req.userId, argU64(0), static_cast<int64_t>(argU64(1)));
        if (id == 0) {
            rec.block(kBlockError, 64);
            return response::error("transfer rejected");
        }
        emit(payload, std::to_string(id), rec);
        break;
      }
    }
    return response::ok(payload);
}

} // namespace rhythm::backend
