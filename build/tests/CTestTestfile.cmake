# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/des_test[1]_include.cmake")
include("/root/repo/build/tests/simt_trace_test[1]_include.cmake")
include("/root/repo/build/tests/simt_warp_test[1]_include.cmake")
include("/root/repo/build/tests/simt_device_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/backend_test[1]_include.cmake")
include("/root/repo/build/tests/specweb_test[1]_include.cmake")
include("/root/repo/build/tests/rhythm_core_test[1]_include.cmake")
include("/root/repo/build/tests/rhythm_server_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/backpressure_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/chat_test[1]_include.cmake")
include("/root/repo/build/tests/service_contract_test[1]_include.cmake")
include("/root/repo/build/tests/fidelity_test[1]_include.cmake")
