file(REMOVE_RECURSE
  "CMakeFiles/rhythm_analysis.dir/similarity.cc.o"
  "CMakeFiles/rhythm_analysis.dir/similarity.cc.o.d"
  "librhythm_analysis.a"
  "librhythm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
