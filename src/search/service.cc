#include "search/service.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/strings.hh"

namespace rhythm::search {
namespace {

/** Handler basic-block base (per type: base + type*32 + local). */
constexpr uint32_t kSearchBlockBase = 7100;

enum LocalBlock : uint32_t {
    kLbValidate = 0,
    kLbCompose = 1,
    kLbConsume = 2,
    kLbRender = 3,
    kLbRow = 4,
    kLbError = 31,
};

constexpr uint32_t
blockBase(PageType type)
{
    return kSearchBlockBase + static_cast<uint32_t>(type) * 32;
}

constexpr PageTypeInfo kPages[] = {
    {PageType::Home, "home", "/", 0, 8 * 1024, 12.0},
    {PageType::Results, "results", "/search", 1, 16 * 1024, 62.0},
    {PageType::Document, "document", "/doc", 1, 32 * 1024, 16.0},
    {PageType::Suggest, "suggest", "/suggest", 1, 4 * 1024, 10.0},
};

static_assert(sizeof(kPages) / sizeof(kPages[0]) == kNumPageTypes);

constexpr std::string_view kSearchStyles =
    "<style>body{font-family:Arial,sans-serif;margin:0;color:#202124}"
    "#bar{background:#1a4fa0;color:#fff;padding:10px 20px;font-size:20px}"
    "#box{margin:16px 20px}input[type=text]{width:420px;padding:6px;"
    "border:1px solid #9ab}#res{margin:0 20px}.hit{margin:14px 0}"
    ".hit a{color:#1a0dab;font-size:16px;text-decoration:none}"
    ".hit .sn{color:#4d5156;font-size:13px}.hit .sc{color:#006621;"
    "font-size:12px}#foot{margin:18px 20px;color:#70757a;font-size:11px}"
    ".blurb{color:#444;font-size:12px;margin:8px 20px;max-width:640px}"
    "</style>";

constexpr std::string_view kBlurbs[] = {
    "<p class=\"blurb\">Rhythm Search indexes the public corpus "
    "continuously; results reflect documents crawled within the last "
    "crawl cycle. Ranking combines term frequency with inverse document "
    "frequency and is entirely query dependent: no personalization, no "
    "stored profile, and no session state is consulted when ranking, "
    "which is also what makes every results request follow the same "
    "control path on the serving hardware.</p>\n",
    "<p class=\"blurb\">Operators note: this deployment serves query "
    "cohorts on data-parallel hardware. Requests of the same page type "
    "are batched and executed in lockstep; the suggest endpoint is "
    "served from the vocabulary table and the document endpoint from "
    "the compressed store. Throughput figures for each endpoint are "
    "published on the status page together with the cohort size and "
    "formation timeout currently in effect.</p>\n",
    "<p class=\"blurb\">Advanced syntax: multiple terms are combined "
    "with OR semantics and ranked by combined score. Quoted phrases, "
    "negation and field restriction are not yet supported in this "
    "build. Queries are limited to eight terms; longer queries are "
    "truncated. The index stores the full body of every document, so "
    "any word that appears anywhere in a document can retrieve it.</p>\n",
    "<p class=\"blurb\">Privacy: queries are processed in memory and "
    "are not written to durable storage. Aggregate counters (queries "
    "per second, cache hit rate, p99 latency) are retained for capacity "
    "planning. Document snippets are computed at query time from the "
    "indexed text and never cached across requests, which keeps the "
    "response generation path identical for every request in a "
    "cohort.</p>\n",
};
constexpr size_t kNumBlurbs = sizeof(kBlurbs) / sizeof(kBlurbs[0]);

/** Emits the response header with a reserved Content-Length. */
struct Frame
{
    size_t clOffset;
    size_t headerEnd;
};

Frame
beginPage(specweb::HandlerContext &ctx, PageType type,
          std::string_view title)
{
    const uint32_t rb = blockBase(type) + kLbRender;
    ctx.out->appendStatic(rb,
                          "HTTP/1.1 200 OK\r\nServer: RhythmSearch/1.0\r\n"
                          "Content-Type: text/html\r\nContent-Length: ");
    Frame frame;
    frame.clOffset = ctx.out->reserve(rb, 10);
    ctx.out->appendStatic(rb, "\r\n\r\n");
    frame.headerEnd = ctx.out->size();
    ctx.out->appendStatic(rb, "<!DOCTYPE html><html><head><title>");
    ctx.out->appendDynamic(rb, title);
    ctx.out->appendStatic(rb, " - Rhythm Search</title>");
    ctx.out->appendStatic(rb, kSearchStyles);
    ctx.out->appendStatic(
        rb,
        "</head><body><div id=\"bar\">Rhythm Search</div>\n"
        "<div id=\"box\"><form action=\"/search\" method=\"get\">"
        "<input type=\"text\" name=\"q\" value=\"\">"
        " <input type=\"submit\" value=\"Search\"></form></div>\n");
    return frame;
}

void
endPage(specweb::HandlerContext &ctx, PageType type, const Frame &frame,
        int blurbs)
{
    const uint32_t rb = blockBase(type) + kLbRender;
    for (int i = 0; i < blurbs; ++i)
        ctx.out->appendStatic(rb,
                              kBlurbs[static_cast<size_t>(i) % kNumBlurbs]);
    ctx.out->appendStatic(rb, "<!-- search:ok -->\n");
    ctx.out->appendStatic(rb,
                          "<div id=\"foot\">Rhythm Search &mdash; cohort "
                          "scheduled, data parallel. &copy; 2014</div>"
                          "</body></html>\n");
    const size_t body = ctx.out->size() - frame.headerEnd;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%zu", body);
    ctx.out->patch(frame.clOffset, buf);
}

void
emitSearchError(specweb::HandlerContext &ctx, std::string_view reason)
{
    ctx.failed = true;
    const uint32_t rb = kSearchBlockBase + 500;
    ctx.rec->block(rb, 180);
    std::string body = "<html><body><h2>Search error</h2><p>";
    body += reason;
    body += "</p><!-- search:error --></body></html>\n";
    ctx.out->appendStatic(rb, "HTTP/1.1 400 Bad Request\r\n"
                              "Content-Type: text/html\r\n"
                              "Content-Length: ");
    ctx.out->appendDynamic(rb, std::to_string(body.size()));
    ctx.out->appendStatic(rb, "\r\n\r\n");
    ctx.out->appendDynamic(rb, body);
}

} // namespace

const PageTypeInfo *
pageTable()
{
    return kPages;
}

const PageTypeInfo &
pageInfo(PageType type)
{
    return kPages[static_cast<uint32_t>(type)];
}

bool
SearchService::resolveType(const http::Request &request,
                           uint32_t &type_id) const
{
    for (const PageTypeInfo &info : kPages) {
        if (request.path == info.path) {
            type_id = static_cast<uint32_t>(info.type);
            return true;
        }
    }
    return false;
}

std::string_view
SearchService::typeName(uint32_t type_id) const
{
    RHYTHM_ASSERT(type_id < kNumPageTypes);
    return kPages[type_id].name;
}

int
SearchService::numStages(uint32_t type_id) const
{
    RHYTHM_ASSERT(type_id < kNumPageTypes);
    return kPages[type_id].backendRequests + 1;
}

uint32_t
SearchService::responseBufferBytes(uint32_t type_id) const
{
    RHYTHM_ASSERT(type_id < kNumPageTypes);
    return kPages[type_id].bufferBytes;
}

void
SearchService::runStage(uint32_t type_id, int stage,
                        specweb::HandlerContext &ctx) const
{
    switch (static_cast<PageType>(type_id)) {
      case PageType::Home:
        homePage(ctx);
        return;
      case PageType::Results:
        resultsPage(stage, ctx);
        return;
      case PageType::Document:
        documentPage(stage, ctx);
        return;
      case PageType::Suggest:
        suggestPage(stage, ctx);
        return;
    }
    RHYTHM_PANIC("unknown search page type");
}

// ---------------------------------------------------------------------
// Backend protocol: QUERY|terms|k, DOC|id, SUGGEST|prefix|k
// ---------------------------------------------------------------------

std::string
SearchService::executeBackend(std::string_view request,
                              simt::TraceRecorder &rec)
{
    auto parts = split(request, '|');
    if (parts.empty())
        return "ERR|malformed";

    if (parts[0] == "QUERY" && parts.size() >= 3) {
        std::vector<uint32_t> terms;
        for (std::string_view token : split(parts[1], ' ')) {
            uint32_t id;
            if (!token.empty() && index_.wordId(token, id))
                terms.push_back(id);
        }
        uint64_t k = 10;
        parseU64(parts[2], k);
        auto hits = index_.query(terms, k, rec);
        std::string payload;
        for (const Hit &hit : hits) {
            const Document *doc = index_.corpus().document(hit.docId);
            payload += std::to_string(hit.docId);
            payload += ',';
            payload += std::to_string(
                static_cast<uint64_t>(hit.score * 100.0));
            payload += ',';
            payload += doc->title;
            payload += ';';
        }
        return "OK|" + payload;
    }

    if (parts[0] == "DOC" && parts.size() >= 2) {
        uint64_t id = 0;
        parseU64(parts[1], id);
        const Document *doc =
            index_.corpus().document(static_cast<uint32_t>(id));
        if (!doc)
            return "ERR|no such document";
        rec.block(7004, 80 + static_cast<uint32_t>(doc->words.size()));
        std::string text =
            index_.corpus().renderText(*doc, 0, doc->words.size());
        if (text.size() > 3500)
            text.resize(3500); // fit the 4 KiB response slot
        return "OK|" + doc->title + "|" +
               std::to_string(doc->words.size()) + "|" + text;
    }

    if (parts[0] == "SUGGEST" && parts.size() >= 3) {
        uint64_t k = 8;
        parseU64(parts[2], k);
        auto words = index_.suggest(parts[1], k, rec);
        std::string payload;
        for (uint32_t w : words) {
            payload += index_.corpus().word(w);
            payload += ';';
        }
        return "OK|" + payload;
    }
    return "ERR|unknown op";
}

// ---------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------

void
SearchService::homePage(specweb::HandlerContext &ctx) const
{
    const PageType type = PageType::Home;
    ctx.rec->block(blockBase(type) + kLbValidate, 900);
    Frame frame = beginPage(ctx, type, "Search");
    ctx.out->appendStatic(
        blockBase(type) + kLbRender,
        "<p class=\"blurb\"><b>Search the corpus.</b> Type one or more "
        "terms above. Results are ranked by relevance; click a result "
        "to open the cached document view.</p>\n");
    endPage(ctx, type, frame, 11);
}

void
SearchService::resultsPage(int stage, specweb::HandlerContext &ctx) const
{
    const PageType type = PageType::Results;
    if (stage == 0) {
        ctx.rec->block(blockBase(type) + kLbValidate, 1400);
        const std::string_view q = ctx.request->param("q");
        if (q.empty()) {
            emitSearchError(ctx, "empty query");
            return;
        }
        ctx.rec->block(blockBase(type) + kLbCompose,
                       40 + 6 * static_cast<uint32_t>(q.size()));
        ctx.backendRequest = "QUERY|" + std::string(q) + "|10";
        return;
    }

    ctx.rec->block(blockBase(type) + kLbConsume,
                   60 + static_cast<uint32_t>(
                            ctx.backendResponse.size()) /
                            4);
    if (!startsWith(ctx.backendResponse, "OK|")) {
        emitSearchError(ctx, "query failed");
        return;
    }
    Frame frame = beginPage(ctx, type, "Results");
    const uint32_t rb = blockBase(type) + kLbRender;
    const uint32_t row = blockBase(type) + kLbRow;
    ctx.out->appendStatic(rb, "<div id=\"res\"><h3>Results for \"");
    ctx.out->appendDynamic(rb, ctx.request->param("q"));
    ctx.out->appendStatic(rb, "\"</h3>\n");
    int rank = 0;
    for (std::string_view record :
         split(std::string_view(ctx.backendResponse).substr(3), ';')) {
        if (record.empty())
            continue;
        auto f = split(record, ',');
        if (f.size() < 3)
            continue;
        ++rank;
        ctx.out->appendStatic(row, "<div class=\"hit\"><a href=\"/doc?id=");
        ctx.out->appendDynamic(row, f[0]);
        ctx.out->appendStatic(row, "\">");
        ctx.out->appendDynamic(row, f[2]);
        ctx.out->appendStatic(row, "</a><div class=\"sc\">document ");
        ctx.out->appendDynamic(row, f[0]);
        ctx.out->appendStatic(row, " &middot; score ");
        ctx.out->appendDynamic(row, f[1]);
        ctx.out->appendStatic(
            row,
            "</div><div class=\"sn\">&hellip; indexed text snippet "
            "rendered from the document body at query time, terms "
            "highlighted in context &hellip;</div></div>\n");
    }
    if (rank == 0)
        ctx.out->appendStatic(rb,
                              "<p class=\"blurb\">No documents matched "
                              "your query. Fewer or more common terms "
                              "usually help.</p>\n");
    ctx.out->appendStatic(rb, "</div>\n");
    endPage(ctx, type, frame, 24);
}

void
SearchService::documentPage(int stage, specweb::HandlerContext &ctx) const
{
    const PageType type = PageType::Document;
    if (stage == 0) {
        ctx.rec->block(blockBase(type) + kLbValidate, 800);
        uint64_t id = 0;
        if (!parseU64(ctx.request->param("id"), id) || id == 0) {
            emitSearchError(ctx, "missing document id");
            return;
        }
        ctx.rec->block(blockBase(type) + kLbCompose, 60);
        ctx.backendRequest = "DOC|" + std::to_string(id);
        return;
    }

    ctx.rec->block(blockBase(type) + kLbConsume,
                   60 + static_cast<uint32_t>(
                            ctx.backendResponse.size()) /
                            4);
    if (!startsWith(ctx.backendResponse, "OK|")) {
        emitSearchError(ctx, "document not found");
        return;
    }
    auto parts = split(std::string_view(ctx.backendResponse).substr(3),
                       '|');
    Frame frame = beginPage(ctx, type, "Cached document");
    const uint32_t rb = blockBase(type) + kLbRender;
    ctx.out->appendStatic(rb, "<div id=\"res\"><h3>");
    ctx.out->appendDynamic(rb, parts.empty() ? "" : parts[0]);
    ctx.out->appendStatic(rb,
                          "</h3>\n<div class=\"sc\">cached copy &middot; ");
    ctx.out->appendDynamic(rb, parts.size() > 1 ? parts[1] : "0");
    ctx.out->appendStatic(rb, " words</div>\n<p class=\"sn\">");
    // The document body: the page's dominant dynamic content.
    ctx.out->appendDynamic(rb, parts.size() > 2 ? parts[2] : "");
    ctx.out->appendStatic(rb, "</p>\n</div>\n");
    endPage(ctx, type, frame, 46);
}

void
SearchService::suggestPage(int stage, specweb::HandlerContext &ctx) const
{
    const PageType type = PageType::Suggest;
    if (stage == 0) {
        ctx.rec->block(blockBase(type) + kLbValidate, 500);
        const std::string_view q = ctx.request->param("q");
        if (q.empty()) {
            emitSearchError(ctx, "empty prefix");
            return;
        }
        ctx.backendRequest = "SUGGEST|" + std::string(q) + "|8";
        return;
    }

    ctx.rec->block(blockBase(type) + kLbConsume, 80);
    if (!startsWith(ctx.backendResponse, "OK|")) {
        emitSearchError(ctx, "suggest failed");
        return;
    }
    Frame frame = beginPage(ctx, type, "Suggestions");
    const uint32_t rb = blockBase(type) + kLbRender;
    const uint32_t row = blockBase(type) + kLbRow;
    ctx.out->appendStatic(rb, "<div id=\"res\"><h3>Completions for \"");
    ctx.out->appendDynamic(rb, ctx.request->param("q"));
    ctx.out->appendStatic(rb, "\"</h3>\n<ul>\n");
    for (std::string_view word :
         split(std::string_view(ctx.backendResponse).substr(3), ';')) {
        if (word.empty())
            continue;
        ctx.out->appendStatic(row, "<li><a href=\"/search?q=");
        ctx.out->appendDynamic(row, word);
        ctx.out->appendStatic(row, "\">");
        ctx.out->appendDynamic(row, word);
        ctx.out->appendStatic(row, "</a></li>\n");
    }
    ctx.out->appendStatic(rb, "</ul>\n</div>\n");
    endPage(ctx, type, frame, 2);
}

// ---------------------------------------------------------------------
// Generator & validator
// ---------------------------------------------------------------------

QueryGenerator::QueryGenerator(const Corpus &corpus, uint64_t seed)
    : corpus_(corpus), rng_(seed)
{
    double total = 0.0;
    for (const PageTypeInfo &info : kPages)
        total += info.mixPercent;
    double acc = 0.0;
    for (uint32_t i = 0; i < kNumPageTypes; ++i) {
        acc += kPages[i].mixPercent / total;
        cumulative_[i] = acc;
    }
    cumulative_[kNumPageTypes - 1] = 1.0;
}

PageType
QueryGenerator::sampleType()
{
    const double u = rng_.nextDouble();
    for (uint32_t i = 0; i < kNumPageTypes; ++i) {
        if (u <= cumulative_[i])
            return static_cast<PageType>(i);
    }
    return PageType::Home;
}

GeneratedQuery
QueryGenerator::generate(PageType type)
{
    GeneratedQuery out;
    out.type = type;
    using Params = std::vector<std::pair<std::string, std::string>>;
    Params params;
    switch (type) {
      case PageType::Home:
        break;
      case PageType::Results: {
        const int terms = 1 + static_cast<int>(rng_.nextBounded(4));
        std::string q;
        for (int t = 0; t < terms; ++t) {
            if (t)
                q += '+';
            q += corpus_.word(corpus_.sampleWord(rng_));
        }
        params = {{"q", q}};
        break;
      }
      case PageType::Document:
        params = {{"id", std::to_string(
                             1 + rng_.nextBounded(corpus_.numDocs()))}};
        break;
      case PageType::Suggest: {
        const std::string &word = corpus_.word(corpus_.sampleWord(rng_));
        const size_t len = std::min<size_t>(word.size(),
                                            2 + rng_.nextBounded(3));
        params = {{"q", word.substr(0, len)}};
        break;
      }
    }
    out.raw = http::buildRequest(http::Method::Get, pageInfo(type).path,
                                 params);
    return out;
}

bool
validateSearchResponse(PageType type, std::string_view raw,
                       std::string *reason)
{
    auto fail = [&](const char *why) {
        if (reason)
            *reason = why;
        return false;
    };
    if (!startsWith(raw, "HTTP/1.1 200 OK\r\n"))
        return fail("bad status");
    const size_t header_end = raw.find("\r\n\r\n");
    if (header_end == std::string_view::npos)
        return fail("no header end");
    const size_t cl_pos = raw.find("Content-Length: ");
    if (cl_pos == std::string_view::npos)
        return fail("no content length");
    uint64_t declared = 0;
    size_t p = cl_pos + 16;
    while (p < raw.size() && raw[p] >= '0' && raw[p] <= '9')
        declared = declared * 10 + static_cast<uint64_t>(raw[p++] - '0');
    if (declared != raw.size() - header_end - 4)
        return fail("content length mismatch");
    if (raw.find("<!-- search:ok -->") == std::string_view::npos)
        return fail("missing marker");
    const char *markers[] = {"Search the corpus", "Results for",
                             "cached copy", "Completions for"};
    if (raw.find(markers[static_cast<uint32_t>(type)]) ==
        std::string_view::npos)
        return fail("missing type marker");
    return true;
}

} // namespace rhythm::search
