# Empty compiler generated dependencies file for banking_server.
# This may be replaced when dependencies are built.
