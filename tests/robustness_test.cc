/**
 * @file
 * Robustness and conservation properties:
 *  - the HTTP parser never crashes or mis-accounts on mutated input;
 *  - the device's processor-sharing engine conserves work exactly;
 *  - the full server survives hostile request streams.
 */

#include <gtest/gtest.h>

#include "backend/bankdb.hh"
#include "des/event_queue.hh"
#include "http/parser.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "simt/device.hh"
#include "specweb/workload.hh"
#include "util/rng.hh"

namespace rhythm {
namespace {

simt::NullTracer gNull;

// ---------------------------------------------------------------------
// Parser fuzzing
// ---------------------------------------------------------------------

class ParserFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ParserFuzz, MutatedRequestsNeverCrash)
{
    Rng rng(GetParam());
    backend::BankDb db(50, 1);
    specweb::WorkloadGenerator gen(db, GetParam() * 3 + 1);

    for (int iter = 0; iter < 200; ++iter) {
        std::string raw = gen.next(1 + rng.nextBounded(100)).raw;
        // Apply 1-8 random byte mutations (overwrite, delete, insert).
        const int mutations = 1 + static_cast<int>(rng.nextBounded(8));
        for (int m = 0; m < mutations && !raw.empty(); ++m) {
            const size_t pos = rng.nextBounded(raw.size());
            switch (rng.nextBounded(3)) {
              case 0:
                raw[pos] = static_cast<char>(rng.next() & 0xff);
                break;
              case 1:
                raw.erase(pos, 1 + rng.nextBounded(4));
                break;
              default:
                raw.insert(pos, 1,
                           static_cast<char>(rng.next() & 0xff));
                break;
            }
        }
        http::Request req;
        // Must not crash; on success the invariants hold.
        if (http::parseRequest(raw, 0, gNull, req)) {
            EXPECT_TRUE(req.method == http::Method::Get ||
                        req.method == http::Method::Post);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range<uint64_t>(1, 9));

TEST(ParserFuzz, PathologicalInputs)
{
    http::Request req;
    // Long header lines, binary bodies, no terminator, huge
    // Content-Length claims, header-only torrents.
    std::string long_line = "GET /x HTTP/1.1\r\nX-A: ";
    long_line.append(100000, 'a');
    long_line += "\r\n\r\n";
    EXPECT_TRUE(http::parseRequest(long_line, 0, gNull, req));

    std::string many_headers = "GET /x HTTP/1.1\r\n";
    for (int i = 0; i < 5000; ++i)
        many_headers += "X-H: v\r\n";
    many_headers += "\r\n";
    EXPECT_TRUE(http::parseRequest(many_headers, 0, gNull, req));

    EXPECT_FALSE(http::parseRequest(
        "POST /x HTTP/1.1\r\nContent-Length: 18446744073709551615\r\n"
        "\r\nbody",
        0, gNull, req));

    std::string binary = "GET /\x01\x02\x7f HTTP/1.1\r\n\r\n";
    http::parseRequest(binary, 0, gNull, req); // must not crash

    EXPECT_FALSE(http::parseRequest(std::string(1 << 16, 'x'), 0, gNull,
                                    req));
}

// ---------------------------------------------------------------------
// Device work conservation
// ---------------------------------------------------------------------

class DeviceConservation : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DeviceConservation, BusyIntegralEqualsTotalDemand)
{
    // Whatever the arrival pattern, caps and queue mapping, the kernel
    // engine must do exactly the demanded device-seconds of work.
    Rng rng(GetParam());
    des::EventQueue queue;
    simt::DeviceConfig cfg;
    cfg.launchOverhead = 0;
    cfg.hardwareQueues = 1 + static_cast<int>(rng.nextBounded(32));
    simt::Device device(queue, cfg);

    double total_demand = 0.0;
    const int streams = 1 + static_cast<int>(rng.nextBounded(6));
    std::vector<int> ids;
    for (int s = 0; s < streams; ++s)
        ids.push_back(device.createStream());

    const int kernels = 20 + static_cast<int>(rng.nextBounded(30));
    for (int k = 0; k < kernels; ++k) {
        simt::KernelCost cost;
        cost.deviceSeconds = 1e-5 + rng.nextDouble() * 1e-3;
        cost.maxShare = 0.05 + rng.nextDouble() * 0.95;
        total_demand += cost.deviceSeconds;
        const int stream = ids[rng.nextBounded(ids.size())];
        // Stagger some arrivals through simulated time.
        if (rng.nextBool(0.5)) {
            queue.scheduleAfter(
                des::fromSeconds(rng.nextDouble() * 1e-3),
                [&device, stream, cost]() {
                    device.launchKernel(stream, cost, nullptr);
                });
        } else {
            device.launchKernel(stream, cost, nullptr);
        }
    }
    queue.run();
    EXPECT_TRUE(device.idle());
    EXPECT_NEAR(device.stats().kernelBusySeconds, total_demand,
                total_demand * 1e-6 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceConservation,
                         ::testing::Range<uint64_t>(1, 17));

// ---------------------------------------------------------------------
// Server under hostile input
// ---------------------------------------------------------------------

TEST(ServerRobustness, HostileStreamAllRequestsAnswered)
{
    des::EventQueue queue;
    simt::Device device(queue, simt::DeviceConfig{});
    backend::BankDb db(50, 1);
    core::BankingService service(db);
    core::RhythmConfig cfg;
    cfg.cohortSize = 16;
    cfg.cohortContexts = 4;
    cfg.cohortTimeout = des::kMillisecond;
    cfg.backendOnDevice = true;
    cfg.networkOverPcie = false;
    core::RhythmServer server(queue, device, service, cfg);

    uint64_t answered = 0;
    server.setResponseCallback(
        [&](uint64_t, std::string_view, des::Time) { ++answered; });

    Rng rng(5);
    specweb::WorkloadGenerator gen(db, 9);
    uint64_t sent = 0;
    for (int i = 0; i < 200; ++i) {
        std::string raw;
        switch (rng.nextBounded(4)) {
          case 0:
            raw = "garbage\r\n\r\n";
            break;
          case 1:
            raw = "GET /nowhere.php HTTP/1.1\r\n\r\n";
            break;
          case 2: {
            // Valid page, bogus session.
            raw = gen.generate(specweb::RequestType::Profile,
                               1 + rng.nextBounded(50), 999999)
                      .raw;
            break;
          }
          default: {
            simt::NullTracer null;
            const uint64_t user = 1 + rng.nextBounded(50);
            raw = gen.generate(specweb::RequestType::BillPay, user,
                               server.sessions().create(user, null))
                      .raw;
            break;
          }
        }
        while (!server.injectRequest(raw, sent))
            queue.run();
        ++sent;
    }
    server.flush();
    queue.run();
    queue.run(); // timeout-launched stragglers
    EXPECT_EQ(answered, sent);
    EXPECT_TRUE(server.drained());

    // Conservation: every accepted request is answered exactly once,
    // as a success, an error or a shed 503.
    const core::RhythmStats &st = server.stats();
    EXPECT_EQ(st.requestsAccepted, sent);
    EXPECT_EQ(st.requestsAccepted, st.responsesCompleted +
                                       st.errorResponses +
                                       st.requestsShed);
}

} // namespace
} // namespace rhythm
