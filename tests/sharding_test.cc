/**
 * @file
 * Tests for the multi-device sharded serving layer (DESIGN.md §6k):
 * the canonical per-stream event merge (equal-timestamp ordering,
 * interleaving invariance, stream inheritance), the front-end routing
 * map (stable session hash, per-type least-outstanding overrides,
 * deterministic dead-home remap), two-phase cross-shard transfers
 * (money moves between authoritative shard copies, idempotency-token
 * replay dedups, a crash between the phases never double-spends) and
 * the 4-device chaos path (kill one device mid-flight: committed
 * transactions survive the journal replay and re-sharded sessions are
 * served by the survivors through the cookie rewrite).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "backend/bankdb.hh"
#include "backend/protocol.hh"
#include "backend/recovery.hh"
#include "des/event_queue.hh"
#include "rhythm/fleet.hh"
#include "simt/trace.hh"
#include "specweb/workload.hh"

namespace rhythm {
namespace {

// ---- Canonical stream merge (EventQueue property tests) ---------------

TEST(CanonicalMerge, EqualTimestampsDispatchInStreamIdOrder)
{
    // Three streams plus the default, all with an event at the same
    // instant, scheduled in *reverse* stream order. The merge must
    // dispatch lowest stream id first regardless of insertion order.
    des::EventQueue queue;
    const des::StreamId s1 = queue.createStream();
    const des::StreamId s2 = queue.createStream();
    const des::StreamId s3 = queue.createStream();
    const des::Time t = 5 * des::kMicrosecond;
    std::vector<des::StreamId> order;
    for (des::StreamId s : {s3, s2, s1, des::StreamId{0}})
        queue.scheduleAtOn(s, t, [&order, &queue] {
            order.push_back(queue.currentStream());
        });
    queue.run();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order, (std::vector<des::StreamId>{0, s1, s2, s3}));
}

TEST(CanonicalMerge, WithinStreamTiesStayFifo)
{
    des::EventQueue queue;
    const des::StreamId s1 = queue.createStream();
    const des::Time t = des::kMicrosecond;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        queue.scheduleAtOn(s1, t, [&order, i] { order.push_back(i); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

/** One logical schedule: (stream, time, tag) triples. */
struct Planned
{
    des::StreamId stream;
    des::Time when;
    int tag;
};

/** Schedules @p plan into a fresh queue in the given order, runs it and
 *  returns (dispatch sequence of tags, orderHash). */
std::pair<std::vector<int>, uint64_t>
runPlan(const std::vector<Planned> &plan, uint32_t streams)
{
    des::EventQueue queue;
    for (uint32_t i = 0; i < streams; ++i)
        queue.createStream();
    std::vector<int> order;
    for (const Planned &p : plan)
        queue.scheduleAtOn(p.stream, p.when,
                           [&order, tag = p.tag] { order.push_back(tag); });
    queue.run();
    return {order, queue.orderHash()};
}

TEST(CanonicalMerge, GlobalInterleavingDoesNotChangeDispatchOrder)
{
    // Property: the dispatch order depends only on the *per-stream*
    // schedules (their internal FIFO order), never on how the streams'
    // insertions were interleaved globally. Build a pseudo-random
    // schedule over 4 streams — with deliberate cross-stream timestamp
    // ties — and feed it in three different global interleavings.
    constexpr uint32_t kStreams = 3; // ids 1..3, plus stream 0
    constexpr int kPerStream = 64;
    uint64_t lcg = 12345;
    auto next = [&lcg] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return lcg >> 33;
    };
    // Per-stream schedules with nondecreasing per-stream insertion
    // times (coarse timestamps force cross-stream ties).
    std::vector<std::vector<Planned>> per(kStreams + 1);
    int tag = 0;
    for (uint32_t s = 0; s <= kStreams; ++s) {
        des::Time t = 0;
        for (int i = 0; i < kPerStream; ++i) {
            t += (next() % 3) * des::kMicrosecond;
            per[s].push_back({s, t, tag++});
        }
    }
    // Interleaving A: stream-major. B: round-robin. C: reverse
    // stream-major. Within a stream the order never changes (that is
    // the per-stream FIFO contract the callers rely on).
    std::vector<Planned> a, b, c;
    for (uint32_t s = 0; s <= kStreams; ++s)
        for (const Planned &p : per[s])
            a.push_back(p);
    for (int i = 0; i < kPerStream; ++i)
        for (uint32_t s = 0; s <= kStreams; ++s)
            b.push_back(per[s][i]);
    for (uint32_t s = kStreams + 1; s-- > 0;)
        for (const Planned &p : per[s])
            c.push_back(p);

    const auto ra = runPlan(a, kStreams);
    const auto rb = runPlan(b, kStreams);
    const auto rc = runPlan(c, kStreams);
    ASSERT_EQ(ra.first.size(),
              static_cast<size_t>((kStreams + 1) * kPerStream));
    EXPECT_EQ(ra.first, rb.first);
    EXPECT_EQ(ra.first, rc.first);
    EXPECT_EQ(ra.second, rb.second);
    EXPECT_EQ(ra.second, rc.second);
}

TEST(CanonicalMerge, ChildEventsInheritTheParentStream)
{
    des::EventQueue queue;
    const des::StreamId s1 = queue.createStream();
    const des::StreamId s2 = queue.createStream();
    std::vector<des::StreamId> child_streams;
    auto parent = [&queue, &child_streams] {
        // scheduleAfter() carries no stream argument: the child must
        // land on the dispatching event's stream.
        const des::EventId id = queue.scheduleAfter(
            des::kMicrosecond, [&queue, &child_streams] {
                child_streams.push_back(queue.currentStream());
            });
        EXPECT_EQ(id.stream, queue.currentStream());
    };
    queue.scheduleAtOn(s2, des::kMicrosecond, parent);
    queue.scheduleAtOn(s1, des::kMicrosecond, parent);
    queue.run();
    EXPECT_EQ(child_streams, (std::vector<des::StreamId>{s1, s2}));
    // Between events the queue is back on the default stream.
    EXPECT_EQ(queue.currentStream(), 0u);
}

// ---- Front-end routing ------------------------------------------------

core::RhythmConfig
smallServerConfig()
{
    core::RhythmConfig cfg;
    cfg.cohortSize = 64;
    cfg.cohortContexts = 4;
    cfg.cohortTimeout = des::fromSeconds(0.1e-3);
    cfg.backendOnDevice = true;
    cfg.networkOverPcie = false;
    return cfg;
}

TEST(FleetRouting, HomeShardIsStableAndCoversEveryShard)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    core::FleetConfig fc;
    fc.devices = 4;
    core::Fleet fleet(queue, dcfg, smallServerConfig(), fc, 64, 3);
    std::set<uint32_t> seen;
    for (uint64_t u = 1; u <= 64; ++u) {
        const uint32_t home = fleet.homeShard(u);
        ASSERT_LT(home, 4u);
        EXPECT_EQ(home, fleet.homeShard(u)); // stable
        EXPECT_EQ(home, fleet.routeShard(u, 1));
        seen.insert(home);
    }
    // splitmix64 over 64 users must touch all four shards.
    EXPECT_EQ(seen.size(), 4u);
}

TEST(FleetRouting, PerTypeOverrideRoutesLeastOutstanding)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    core::FleetConfig fc;
    fc.devices = 3;
    fc.leastOutstandingTypes = {7}; // a "stateless" type id
    core::Fleet fleet(queue, dcfg, smallServerConfig(), fc, 32, 3);
    // All shards idle: least-outstanding resolves to the first alive
    // shard, for every user — the override ignores the home map.
    for (uint64_t u = 1; u <= 32; ++u)
        EXPECT_EQ(fleet.routeShard(u, 7), 0u);
    // Any other type keeps the session-sharded home.
    bool off_zero = false;
    for (uint64_t u = 1; u <= 32; ++u) {
        EXPECT_EQ(fleet.routeShard(u, 1), fleet.homeShard(u));
        off_zero |= fleet.homeShard(u) != 0;
    }
    EXPECT_TRUE(off_zero);
}

TEST(FleetRouting, DeadHomeRemapsDeterministicallyToSurvivors)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    core::FleetConfig fc;
    fc.devices = 4;
    core::Fleet fleet(queue, dcfg, smallServerConfig(), fc, 128, 3);
    fleet.killDevice(2);
    EXPECT_EQ(fleet.aliveCount(), 3u);
    std::set<uint32_t> remap_targets;
    for (uint64_t u = 1; u <= 128; ++u) {
        const uint32_t r = fleet.routeShard(u, 1);
        ASSERT_NE(r, 2u);
        ASSERT_TRUE(fleet.alive(r));
        EXPECT_EQ(r, fleet.routeShard(u, 1)); // deterministic
        if (fleet.homeShard(u) == 2)
            remap_targets.insert(r);
        else
            EXPECT_EQ(r, fleet.homeShard(u)); // survivors keep users
    }
    // The dead shard's users spread over every survivor, not one.
    EXPECT_EQ(remap_targets.size(), 3u);
}

// ---- Cross-shard transfers --------------------------------------------

/** Finds a user homed on @p shard (user ids 1..max). */
uint64_t
userHomedOn(const core::Fleet &fleet, uint32_t shard, uint64_t max,
            uint64_t skip = 0)
{
    for (uint64_t u = 1; u <= max; ++u)
        if (u != skip && fleet.homeShard(u) == shard)
            return u;
    ADD_FAILURE() << "no user homed on shard " << shard;
    return 0;
}

int64_t
checking(const core::Fleet &fleet, uint32_t shard, uint64_t user)
{
    const backend::Account *a = const_cast<core::Fleet &>(fleet)
                                    .db(shard)
                                    .account(backend::BankDb::checkingId(user));
    EXPECT_NE(a, nullptr);
    return a ? a->balanceCents : 0;
}

TEST(CrossShard, TransferMovesMoneyBetweenAuthoritativeShards)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    core::FleetConfig fc;
    fc.devices = 2;
    fc.recovery = true;
    core::Fleet fleet(queue, dcfg, smallServerConfig(), fc, 64, 5);
    const uint64_t payer = userHomedOn(fleet, 0, 64);
    const uint64_t payee = userHomedOn(fleet, 1, 64);
    const int64_t payer0 = checking(fleet, 0, payer);
    const int64_t payee1 = checking(fleet, 1, payee);
    ASSERT_GE(payer0, 500); // seeded balances are comfortably positive

    fleet.beginCrossShardTransfer(payer, payee, 500);
    queue.run();

    // Authoritative copies move...
    EXPECT_EQ(checking(fleet, 0, payer), payer0 - 500);
    EXPECT_EQ(checking(fleet, 1, payee), payee1 + 500);
    // ...and the non-authoritative replicas never do (each shard holds
    // an identically seeded BankDb; routing decides authority).
    EXPECT_EQ(checking(fleet, 1, payer), payer0);
    EXPECT_EQ(checking(fleet, 0, payee), payee1);
    EXPECT_EQ(fleet.stats().crossStarted, 1u);
    EXPECT_EQ(fleet.stats().crossCompleted, 1u);
    EXPECT_EQ(fleet.stats().crossRejected, 0u);
}

TEST(CrossShard, RejectedDebitNeverCreditsThePayee)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    core::FleetConfig fc;
    fc.devices = 2;
    fc.recovery = true;
    core::Fleet fleet(queue, dcfg, smallServerConfig(), fc, 64, 5);
    const uint64_t payer = userHomedOn(fleet, 0, 64);
    const uint64_t payee = userHomedOn(fleet, 1, 64);
    const int64_t payer0 = checking(fleet, 0, payer);
    const int64_t payee1 = checking(fleet, 1, payee);

    // Far beyond any seeded balance: phase 1 must reject, and phase 2
    // must never be scheduled.
    fleet.beginCrossShardTransfer(payer, payee, 1'000'000'000'000ll);
    queue.run();

    EXPECT_EQ(checking(fleet, 0, payer), payer0);
    EXPECT_EQ(checking(fleet, 1, payee), payee1);
    EXPECT_EQ(fleet.stats().crossRejected, 1u);
    EXPECT_EQ(fleet.stats().crossCompleted, 0u);
}

TEST(CrossShard, Phase2TokenReplayDedupsInsteadOfDoubleCrediting)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    core::FleetConfig fc;
    fc.devices = 2;
    fc.recovery = true;
    core::Fleet fleet(queue, dcfg, smallServerConfig(), fc, 64, 5);
    const uint64_t payer = userHomedOn(fleet, 0, 64);
    const uint64_t payee = userHomedOn(fleet, 1, 64);
    const int64_t payee1 = checking(fleet, 1, payee);

    fleet.beginCrossShardTransfer(payer, payee, 500);
    queue.run();
    ASSERT_EQ(checking(fleet, 1, payee), payee1 + 500);

    // A coordinator retry after losing the phase-2 ack replays the
    // credit leg with the same idempotency token (transfer id 1,
    // phase bit 1). The shard's recovery memo must swallow it.
    const uint64_t token_in = (1ull << 62) | (1ull << 1) | 1ull;
    backend::BackendRequest credit;
    credit.op = backend::Op::XferIn;
    credit.userId = payee;
    credit.args = {std::to_string(payer), "500"};
    backend::RecoverableBackend *recov = fleet.recovery(1);
    ASSERT_NE(recov, nullptr);
    const uint64_t memo_before = recov->stats().memoHits;
    simt::NullTracer rec;
    const std::string replay = recov->execute(credit.serialize(),
                                              token_in, rec);
    EXPECT_TRUE(backend::response::isOk(replay));
    EXPECT_EQ(recov->stats().memoHits, memo_before + 1);
    EXPECT_EQ(checking(fleet, 1, payee), payee1 + 500); // applied once
}

TEST(CrossShard, CrashBetweenPhasesNeverDoubleSpends)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    core::FleetConfig fc;
    fc.devices = 2;
    fc.recovery = true;
    core::Fleet fleet(queue, dcfg, smallServerConfig(), fc, 64, 5);
    const uint64_t payer = userHomedOn(fleet, 0, 64);
    const uint64_t payee = userHomedOn(fleet, 1, 64);
    const int64_t payer0 = checking(fleet, 0, payer);
    const int64_t payee1 = checking(fleet, 1, payee);

    // Transfer #1 completes cleanly (phase 2 lands at ~20us). Transfer
    // #2 starts at 50us; its phase-1 debit applies immediately and the
    // payee's device is killed at 60us — squarely between the phases.
    // The credit leg, already scheduled into the dead shard's drain,
    // applies exactly once after the journal replay.
    fleet.beginCrossShardTransfer(payer, payee, 500);
    queue.scheduleAt(50 * des::kMicrosecond, [&fleet, payer, payee] {
        fleet.beginCrossShardTransfer(payer, payee, 500);
    });
    uint64_t digest_pre = 0, digest_post = 0;
    queue.scheduleAt(60 * des::kMicrosecond, [&] {
        digest_pre = fleet.db(1).digest();
        fleet.killDevice(1);
        digest_post = fleet.db(1).digest();
    });
    queue.run();

    // The crash-recovery replay restored every committed transaction —
    // including transfer #1's credit — bit for bit.
    EXPECT_EQ(digest_pre, digest_post);
    EXPECT_EQ(fleet.stats().devicesKilled, 1u);
    // Exactly-once across the fleet: the payer paid twice, the payee
    // was credited twice, and no replica moved.
    EXPECT_EQ(checking(fleet, 0, payer), payer0 - 1000);
    EXPECT_EQ(checking(fleet, 1, payee), payee1 + 1000);
    EXPECT_EQ(checking(fleet, 1, payer), payer0);
    EXPECT_EQ(checking(fleet, 0, payee), payee1);
    EXPECT_EQ(fleet.stats().crossCompleted, 2u);
    EXPECT_EQ(fleet.stats().crossRejected, 0u);
}

TEST(CrossShard, CreditRemapsWhenTheHomeShardIsAlreadyDead)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    core::FleetConfig fc;
    fc.devices = 2;
    fc.recovery = true;
    core::Fleet fleet(queue, dcfg, smallServerConfig(), fc, 64, 5);
    const uint64_t payer = userHomedOn(fleet, 0, 64);
    const uint64_t payee = userHomedOn(fleet, 1, 64);
    const int64_t payee_init = checking(fleet, 1, payee);

    // The payee's home dies before the transfer starts: phase 2 must
    // follow the routing remap to the survivor instead of crediting a
    // dead shard's replica.
    fleet.killDevice(1);
    fleet.beginCrossShardTransfer(payer, payee, 500);
    queue.run();

    EXPECT_EQ(fleet.stats().crossCompleted, 1u);
    EXPECT_EQ(checking(fleet, 0, payee), payee_init + 500);
    EXPECT_EQ(checking(fleet, 1, payee), payee_init); // dead copy idle
}

// ---- 4-device chaos: kill one mid-flight ------------------------------

TEST(FleetChaos, KillOneOfFourMidFlightLosesNothing)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    core::FleetConfig fc;
    fc.devices = 4;
    fc.recovery = true;
    core::Fleet fleet(queue, dcfg, smallServerConfig(), fc, 200, 11);

    constexpr uint32_t kVictim = 1;
    const des::Time kill_at = 100 * des::kMicrosecond;
    uint64_t responses_after_kill = 0;
    fleet.setResponseCallback(
        [&](uint64_t, std::string_view, des::Time t) {
            if (t > kill_at)
                ++responses_after_kill;
        });

    // Round-robin interleave of every shard's session pool; the flat
    // copy deliberately keeps the victim's (sid, user) pairs so the
    // post-kill stretch keeps presenting dead-shard cookies.
    const auto &pools = fleet.populateSessions(128, 200);
    std::vector<std::pair<uint64_t, uint64_t>> flat;
    size_t longest = 0;
    for (const auto &p : pools)
        longest = std::max(longest, p.size());
    for (size_t k = 0; k < longest; ++k)
        for (const auto &p : pools)
            if (k < p.size())
                flat.push_back(p[k]);
    ASSERT_FALSE(flat.empty());

    backend::BankDb front_db(200, 11);
    specweb::WorkloadGenerator gen(front_db, 29);
    constexpr uint64_t kRequests = 1200;
    // ~360us of open-loop arrivals, so the 100us kill lands mid-run.
    const des::Time gap = 300 * des::kNanosecond;
    uint64_t issued = 0;
    std::function<void()> arrive = [&] {
        if (issued >= kRequests)
            return;
        const auto &[sid, user] = flat[issued % flat.size()];
        specweb::RequestType type;
        do {
            type = gen.sampleType();
        } while (type == specweb::RequestType::Login ||
                 type == specweb::RequestType::Logout);
        specweb::GeneratedRequest req = gen.generate(type, user, sid);
        ++issued;
        fleet.injectRequest(std::move(req.raw), issued, user,
                            static_cast<uint32_t>(type));
        if (issued < kRequests)
            queue.scheduleAfter(gap, arrive);
    };
    queue.scheduleAfter(gap, arrive);

    uint64_t digest_pre = 0, digest_post = 0;
    queue.scheduleAt(kill_at, [&] {
        digest_pre = fleet.db(kVictim).digest();
        fleet.killDevice(kVictim);
        digest_post = fleet.db(kVictim).digest();
    });
    queue.run();

    // Zero lost committed transactions: the journal replay restored
    // the victim's database exactly, mid-flight traffic and all.
    EXPECT_EQ(digest_pre, digest_post);
    EXPECT_EQ(fleet.stats().devicesKilled, 1u);
    EXPECT_EQ(fleet.aliveCount(), 3u);
    EXPECT_FALSE(fleet.alive(kVictim));

    // Every re-homed session was re-created on a survivor, and the
    // front end rewrote dead cookies on the way in.
    EXPECT_GT(fleet.stats().sessionsResharded, 0u);
    EXPECT_EQ(fleet.stats().reshardDrops, 0u);
    EXPECT_GT(fleet.stats().rewrittenCookies, 0u);
    // The survivors kept serving — including the re-sharded users.
    EXPECT_GT(responses_after_kill, 0u);

    // Full drain and conservation: every accepted request was answered
    // or deliberately shed, nowhere silently dropped.
    EXPECT_TRUE(fleet.drainedAll());
    EXPECT_EQ(fleet.totalAccepted(), fleet.totalResponses() +
                                         fleet.totalErrors() +
                                         fleet.totalShed());
    EXPECT_GT(fleet.totalResponses(), 0u);
}

} // namespace
} // namespace rhythm
