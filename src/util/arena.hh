/**
 * @file
 * Recycling allocators for hot-path allocations: a bump Arena with
 * epoch reset and a free-list ObjectPool.
 *
 * The server's cohort pipeline builds and discards large vector-backed
 * structures (per-stage ThreadTrace arrays, cohort buffers) once per
 * cohort; recycling them keeps their heap capacity alive across
 * cohorts instead of re-growing it from zero each time. Both helpers
 * are purely host-side allocation optimizations with no effect on
 * simulated results.
 *
 * Not thread-safe: acquire/release must happen on the owning (DES)
 * thread. Objects handed out may be used inside parallel regions as
 * long as each worker touches a disjoint object.
 */

#ifndef RHYTHM_UTIL_ARENA_HH
#define RHYTHM_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace rhythm::util {

/**
 * A bump allocator with epoch-based reset.
 *
 * Scratch memory whose lifetime is one pipeline iteration (one cohort)
 * comes from an Arena: allocation is a pointer bump, and reset() at the
 * iteration boundary recycles every block in place — the blocks keep
 * their capacity, so after the first iteration the arena allocates no
 * further heap memory for a steady-state workload. reset() bumps an
 * epoch counter so holders of stale pointers can assert freshness.
 *
 * Not thread-safe: alloc()/reset() must happen on the owning thread.
 * Blocks handed out may be *written* from parallel workers as long as
 * each worker touches a disjoint byte range (the zero-copy cohort
 * buffer slices one block into per-lane slots this way).
 */
class Arena
{
  public:
    /** @param block_bytes Granularity of backing blocks. */
    explicit Arena(size_t block_bytes = 64 * 1024)
        : blockBytes_(block_bytes)
    {
    }

    /**
     * Allocates @p bytes aligned to @p align (a power of two).
     * The memory is uninitialized and valid until the next reset().
     */
    char *
    alloc(size_t bytes, size_t align = 64)
    {
        for (; cur_ < blocks_.size(); ++cur_) {
            Block &b = blocks_[cur_];
            const size_t aligned = (b.used + align - 1) & ~(align - 1);
            if (aligned + bytes <= b.size) {
                b.used = aligned + bytes;
                return b.data.get() + aligned;
            }
            if (b.used == 0)
                break; // empty block too small: replace below
        }
        const size_t size = bytes > blockBytes_ ? bytes : blockBytes_;
        if (cur_ < blocks_.size()) {
            // Grow an empty-but-undersized block in place.
            blocks_[cur_] =
                Block{std::make_unique<char[]>(size), size, bytes};
        } else {
            blocks_.push_back(
                Block{std::make_unique<char[]>(size), size, bytes});
            cur_ = blocks_.size() - 1;
        }
        return blocks_[cur_].data.get();
    }

    /** Recycles all blocks (capacity kept) and starts a new epoch. */
    void
    reset()
    {
        for (Block &b : blocks_)
            b.used = 0;
        cur_ = 0;
        ++epoch_;
    }

    /** Epochs begun so far (== number of reset() calls). */
    uint64_t epoch() const { return epoch_; }

    /** Total backing bytes currently held. */
    size_t
    capacityBytes() const
    {
        size_t total = 0;
        for (const Block &b : blocks_)
            total += b.size;
        return total;
    }

    /** Bytes handed out since the last reset. */
    size_t
    usedBytes() const
    {
        size_t total = 0;
        for (const Block &b : blocks_)
            total += b.used;
        return total;
    }

  private:
    struct Block
    {
        std::unique_ptr<char[]> data;
        size_t size = 0;
        size_t used = 0;
    };

    size_t blockBytes_;
    std::vector<Block> blocks_;
    size_t cur_ = 0;
    uint64_t epoch_ = 0;
};

/**
 * A bounded free list of reusable objects.
 *
 * @tparam T Object type; must be movable and default-constructible.
 * @tparam Reset Functor invoked on release to scrub the object while
 *         preserving its capacity (e.g. clear() on containers).
 */
template <typename T, typename Reset>
class ObjectPool
{
  public:
    explicit ObjectPool(Reset reset = Reset{}, size_t max_free = 64)
        : reset_(std::move(reset)), maxFree_(max_free)
    {
    }

    /** Pops a recycled object, or default-constructs one. */
    T acquire()
    {
        if (free_.empty())
            return T{};
        T obj = std::move(free_.back());
        free_.pop_back();
        return obj;
    }

    /** Scrubs and shelves an object for reuse (dropped when full). */
    void release(T obj)
    {
        if (free_.size() >= maxFree_)
            return; // drop: the pool is at capacity
        reset_(obj);
        free_.push_back(std::move(obj));
    }

    /** Objects currently shelved. */
    size_t freeCount() const { return free_.size(); }

  private:
    std::vector<T> free_;
    Reset reset_;
    size_t maxFree_;
};

} // namespace rhythm::util

#endif // RHYTHM_UTIL_ARENA_HH
