# CMake generated Testfile for 
# Source directory: /root/repo/src/chat
# Build directory: /root/repo/build/src/chat
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
