/**
 * @file
 * Property-style tests for util::ThreadPool: work conservation,
 * deterministic merge/join order, exception propagation, and the edge
 * cases the determinism contract leans on (zero tasks, single thread,
 * nested regions).
 */

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.hh"

namespace rhythm::util {
namespace {

TEST(ThreadPoolTest, WorkConservationEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        constexpr size_t kN = 1000;
        std::vector<int> hits(kN, 0); // Per-index slot: no sharing.
        pool.parallelFor(kN, [&hits](size_t i) { ++hits[i]; });
        for (size_t i = 0; i < kN; ++i)
            EXPECT_EQ(hits[i], 1) << "index " << i << " at " << threads
                                  << " threads";
    }
}

TEST(ThreadPoolTest, RangesCoverIndexSpaceForAwkwardGrains)
{
    ThreadPool pool(4);
    for (size_t n : {1u, 7u, 64u, 103u}) {
        for (size_t grain : {1u, 3u, 10u, 200u}) {
            std::vector<int> hits(n, 0);
            pool.parallelRanges(n, grain,
                                [&hits](size_t begin, size_t end) {
                                    for (size_t i = begin; i < end; ++i)
                                        ++hits[i];
                                });
            EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
                      static_cast<int>(n))
                << "n=" << n << " grain=" << grain;
        }
    }
}

TEST(ThreadPoolTest, CanonicalMergeIsThreadCountInvariant)
{
    // The contract: per-index slots merged in index order afterwards
    // give the same result for any thread count.
    auto run = [](unsigned threads) {
        ThreadPool pool(threads);
        constexpr size_t kN = 257;
        std::vector<uint64_t> slots(kN);
        pool.parallelFor(kN, [&slots](size_t i) {
            slots[i] = i * 2654435761ull + 17;
        });
        uint64_t merged = 1469598103934665603ull;
        for (uint64_t v : slots)
            merged = (merged ^ v) * 1099511628211ull;
        return merged;
    };
    const uint64_t serial = run(1);
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(4), serial);
    EXPECT_EQ(run(8), serial);
}

TEST(ThreadPoolTest, ExceptionPropagatesLowestChunkFirst)
{
    ThreadPool pool(4);
    // Multiple failing indices: the rethrown exception must always be
    // the lowest-indexed one, independent of execution interleaving.
    for (int round = 0; round < 20; ++round) {
        try {
            pool.parallelFor(100, [](size_t i) {
                if (i == 13 || i == 14 || i == 99)
                    throw std::runtime_error("boom " + std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom 13");
        }
    }
}

TEST(ThreadPoolTest, PoolSurvivesExceptionAndRemainsUsable)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(10, [](size_t) { throw std::logic_error("x"); }),
        std::logic_error);
    // All chunks still completed (work conservation even under errors),
    // and the pool accepts new regions.
    std::atomic<size_t> count{0};
    pool.parallelFor(50, [&count](size_t) { ++count; });
    EXPECT_EQ(count.load(), 50u);
}

TEST(ThreadPoolTest, ZeroTasksReturnsImmediately)
{
    ThreadPool pool(4);
    bool called = false;
    pool.parallelFor(0, [&called](size_t) { called = true; });
    pool.parallelRanges(0, 16, [&called](size_t, size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller)
{
    ThreadPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::set<std::thread::id> ids;
    pool.parallelFor(32, [&ids, caller](size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ids.insert(std::this_thread::get_id());
    });
    EXPECT_EQ(ids.size(), 1u);
    EXPECT_EQ(pool.threads(), 1u);
}

TEST(ThreadPoolTest, NestedRegionsRunInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::vector<uint64_t> outer(16, 0);
    pool.parallelFor(16, [&pool, &outer](size_t i) {
        // A nested region on the same pool must execute inline on this
        // worker (no deadlock, no double-claiming).
        std::vector<uint64_t> inner(8, 0);
        pool.parallelFor(8, [&inner](size_t j) { inner[j] = j + 1; });
        outer[i] = std::accumulate(inner.begin(), inner.end(), 0ull);
        // A *sibling* nested region after the first one finished must
        // also run inline (the in-region marker is restored, not
        // cleared, when a nested region ends).
        std::vector<uint64_t> inner2(4, 0);
        pool.parallelFor(4, [&inner2](size_t j) { inner2[j] = 1; });
        outer[i] += std::accumulate(inner2.begin(), inner2.end(), 0ull);
    });
    for (uint64_t v : outer)
        EXPECT_EQ(v, 36u + 4u);
}

TEST(ThreadPoolTest, GlobalSimPoolFollowsConfiguredThreads)
{
    EXPECT_EQ(simThreads(), 1u); // Default: serial.
    setSimThreads(3);
    EXPECT_EQ(simThreads(), 3u);
    EXPECT_EQ(simPool().threads(), 3u);
    setSimThreads(0); // Clamped to 1.
    EXPECT_EQ(simThreads(), 1u);
    EXPECT_EQ(simPool().threads(), 1u);
}

} // namespace
} // namespace rhythm::util
