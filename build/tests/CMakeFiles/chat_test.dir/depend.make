# Empty dependencies file for chat_test.
# This may be replaced when dependencies are built.
