/**
 * @file
 * Determinism-equivalence harness for the parallel execution engine.
 *
 * Runs real workload configurations — sized-down versions of the fig8
 * (Titan variant evaluation), fig9 (PCIe-bound Titan A) and sec6.2
 * (Titan C scaling) experiments — at --sim-threads ∈ {1, 2, 4, 8} and
 * asserts that *everything observable* is identical to the serial run:
 * the flattened metrics registry (what `--json` serializes), the Chrome
 * trace export, the final DES clock, the event count and dispatch-order
 * hash, and the engine's per-SM counters. Exact equality of doubles is
 * intentional: all parallel accounting is integer-based and merged in
 * canonical order, so there is nothing to be approximately equal about.
 *
 * Under tsan (the CI sanitizer matrix runs this binary) the multi-thread
 * runs also prove the pool/engine/metrics layers are race-free.
 */

#include <algorithm>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "backend/bankdb.hh"
#include "des/event_queue.hh"
#include "fault/device_injector.hh"
#include "fault/plan.hh"
#include "net/arrival.hh"
#include "obs/obs.hh"
#include "platform/titan.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/fleet.hh"
#include "rhythm/server.hh"
#include "simt/device.hh"
#include "simt/profile_cache.hh"
#include "specweb/workload.hh"
#include "util/hash.hh"
#include "util/thread_pool.hh"

namespace rhythm {
namespace {

/** Everything a run exposes; compared field-by-field across thread counts. */
struct Fingerprint
{
    des::Time clock = 0;
    uint64_t dispatched = 0;
    uint64_t orderHash = 0;
    uint64_t responses = 0;
    uint64_t errors = 0;
    uint64_t engineLaunches = 0;
    uint64_t engineWarps = 0;
    //! Injected kernel hangs hedged by the watchdog (fault runs only).
    uint64_t kernelHangs = 0;
    std::vector<simt::Engine::SmCounters> sms;
    std::vector<std::pair<std::string, double>> metrics;
    std::string trace;
    //! Order-insensitive response-byte digest (fusion runs only).
    uint64_t responseDigestSum = 0;
    //! Profile-cache accounting (zero when no cache was attached).
    simt::ProfileCache::Stats cacheStats;
};

void
expectIdentical(const Fingerprint &serial, const Fingerprint &parallel,
                unsigned threads)
{
    SCOPED_TRACE("sim-threads=" + std::to_string(threads));
    EXPECT_EQ(serial.clock, parallel.clock);
    EXPECT_EQ(serial.dispatched, parallel.dispatched);
    EXPECT_EQ(serial.orderHash, parallel.orderHash);
    EXPECT_EQ(serial.responses, parallel.responses);
    EXPECT_EQ(serial.errors, parallel.errors);
    EXPECT_EQ(serial.engineLaunches, parallel.engineLaunches);
    EXPECT_EQ(serial.engineWarps, parallel.engineWarps);
    EXPECT_EQ(serial.kernelHangs, parallel.kernelHangs);
    ASSERT_EQ(serial.sms.size(), parallel.sms.size());
    for (size_t s = 0; s < serial.sms.size(); ++s)
        EXPECT_TRUE(serial.sms[s] == parallel.sms[s]) << "SM " << s;
    ASSERT_EQ(serial.metrics.size(), parallel.metrics.size());
    for (size_t i = 0; i < serial.metrics.size(); ++i) {
        EXPECT_EQ(serial.metrics[i].first, parallel.metrics[i].first);
        EXPECT_EQ(serial.metrics[i].second, parallel.metrics[i].second)
            << "metric " << serial.metrics[i].first;
    }
    EXPECT_EQ(serial.trace, parallel.trace);
    EXPECT_EQ(serial.responseDigestSum, parallel.responseDigestSum);
}

/** Which authentication traffic the banking run carries. */
enum class AuthMode : uint8_t {
    None,       //!< Browsing steady state (Login/Logout excluded).
    LoginOnly,  //!< Every request is a Login (session-creating).
    LogoutOnly, //!< Every request is a Logout (session-consuming).
    Mixed,      //!< Browsing interleaved with Logins and Logouts.
};

/**
 * One rhythm_sim-shaped banking run (mixed browsing steady state) with
 * observability recording, so metrics and trace spans are captured.
 *
 * @param cache_entries When nonzero, a ProfileCache of that capacity is
 *        attached to the engine (the --profile-cache=on path). The
 *        fingerprint's metrics exclude the cache's own "profile_cache."
 *        meta-counters — those describe the cache, not the simulation,
 *        and are asserted separately via Fingerprint::cacheStats.
 * @param auth Session-churning traffic mix: Login creates sessions and
 *        Logout destroys them, so both mutate the shared session store
 *        through the serial-stage path — the interleave of those
 *        serial stages with the lane-parallel stages is exactly what
 *        must stay canonical across thread counts.
 */
Fingerprint
runBanking(unsigned threads, size_t cache_entries = 0,
           AuthMode auth = AuthMode::None)
{
    util::setSimThreads(threads);
    obs::global().reset();

    platform::TitanVariant variant = platform::titanB();
    core::RhythmConfig cfg = variant.server;
    cfg.cohortSize = 512;
    cfg.cohortContexts = 8;
    cfg.laneSample = 64;
    if (cache_entries > 0)
        cfg.traceTemplateCacheEntries =
            static_cast<uint32_t>(cache_entries);
    const uint64_t total = 4 * cfg.cohortSize;
    const uint64_t seed = 42;
    const uint64_t users = 400;
    if (auth != AuthMode::None) {
        // Session-tree sizing for auth churn (mirrors rhythm_sim's
        // --type=login/logout path).
        cfg.sessionNodesPerBucket = static_cast<uint32_t>(
            3 * total / std::min<uint64_t>(users, cfg.cohortSize) + 16);
    }

    des::EventQueue queue;
    obs::global().enable(queue);
    simt::ProfileCache cache(std::max<size_t>(cache_entries, 1));
    simt::Device device(queue, variant.device);
    if (cache_entries > 0)
        device.engine().setProfileCache(&cache);
    backend::BankDb db(users, seed);
    core::BankingService service(db);
    core::RhythmServer server(queue, device, service, cfg);
    specweb::WorkloadGenerator gen(db, seed * 31 + 7);

    // Logout consumes one session per request, so the logout-bearing
    // modes preload a full-size pool; Mixed draws logouts from the back
    // of the pool (each destroyed once) while browsing reuses the
    // front.
    auto sessions = server.sessions().populate(
        auth == AuthMode::LogoutOnly || auth == AuthMode::Mixed
            ? total
            : std::min<uint64_t>(total, 8192),
        users);
    uint64_t issued = 0;
    uint64_t logouts = 0;
    server.start([&]() -> std::optional<std::string> {
        if (issued >= total)
            return std::nullopt;
        const uint64_t n = issued++;
        if (auth == AuthMode::LoginOnly ||
            (auth == AuthMode::Mixed && n % 5 == 2)) {
            return gen.generate(specweb::RequestType::Login,
                                gen.sampleUser(), 0)
                .raw;
        }
        if (auth == AuthMode::LogoutOnly ||
            (auth == AuthMode::Mixed && n % 11 == 7)) {
            const auto &[sid, user] =
                auth == AuthMode::LogoutOnly
                    ? sessions[n]
                    : sessions[sessions.size() - 1 - logouts++];
            return gen.generate(specweb::RequestType::Logout, user, sid)
                .raw;
        }
        specweb::RequestType type;
        do {
            type = gen.sampleType();
        } while (type == specweb::RequestType::Login ||
                 type == specweb::RequestType::Logout);
        const auto &[sid, user] = sessions[n % sessions.size()];
        return gen.generate(type, user, sid).raw;
    });
    queue.run();

    Fingerprint fp;
    fp.clock = queue.now();
    fp.dispatched = queue.dispatched();
    fp.orderHash = queue.orderHash();
    fp.responses = server.stats().responsesCompleted;
    fp.errors = server.stats().errorResponses;
    fp.engineLaunches = device.engine().launches();
    fp.engineWarps = device.engine().warps();
    fp.sms = device.engine().smCounters();
    fp.metrics = obs::global().metrics().flatten(
        std::span<const std::string_view>(
            obs::kBaselineExcludedPrefixes));
    std::ostringstream trace;
    obs::global().tracer().writeChromeTrace(trace);
    fp.trace = trace.str();
    fp.cacheStats = cache.stats();

    obs::global().disable();
    obs::global().reset();
    util::setSimThreads(1);
    return fp;
}

/**
 * One fleet-mode banking run (DESIGN.md 6k): N shards on per-device
 * event streams, the session-hash front end, open-loop Poisson
 * arrivals and a cross-shard transfer every 64 arrivals, with each
 * shard's backend journaled. The canonical stream merge (lowest front
 * timestamp, then lowest stream id) makes the whole run — dispatch
 * order, responses, per-device metrics, trace — byte-identical across
 * thread counts and profile-cache settings, exactly like one device.
 * The fingerprint's metrics use the unfiltered flatten, so the
 * per-device "dev<i>." namespaces are compared too.
 */
Fingerprint
runFleet(unsigned threads, uint32_t devices, size_t cache_entries = 0)
{
    util::setSimThreads(threads);
    obs::global().reset();

    platform::TitanVariant variant = platform::titanB();
    core::RhythmConfig cfg = variant.server;
    cfg.cohortSize = 256;
    cfg.cohortContexts = 8;
    cfg.laneSample = 64;
    cfg.cohortTimeout = des::fromSeconds(0.5e-3);
    if (cache_entries > 0)
        cfg.traceTemplateCacheEntries =
            static_cast<uint32_t>(cache_entries);
    const uint64_t total = 3000;
    const uint64_t users = 400;
    const uint64_t seed = 42;

    des::EventQueue queue;
    obs::global().enable(queue);
    core::FleetConfig fc;
    fc.devices = devices;
    fc.recovery = true;
    core::Fleet fleet(queue, variant.device, cfg, fc, users, seed);
    std::vector<std::unique_ptr<simt::ProfileCache>> caches;
    for (uint32_t i = 0; i < devices && cache_entries > 0; ++i) {
        caches.push_back(
            std::make_unique<simt::ProfileCache>(cache_entries));
        fleet.device(i).engine().setProfileCache(caches.back().get());
    }
    backend::BankDb db(users, seed);
    specweb::WorkloadGenerator gen(db, seed * 31 + 7);
    uint64_t digest_sum = 0;
    fleet.setResponseCallback(
        [&](uint64_t cid, std::string_view resp, des::Time) {
            util::Fnv1a64 h;
            h.update(cid);
            h.update(resp.size());
            for (const char c : resp)
                h.update(static_cast<uint64_t>(
                    static_cast<unsigned char>(c)));
            digest_sum += h.digest();
        });

    const auto &pools = fleet.populateSessions(
        std::max<uint64_t>(2048 / devices, 1), users);
    std::vector<std::pair<uint64_t, uint64_t>> flat;
    size_t longest = 0;
    for (const auto &p : pools)
        longest = std::max(longest, p.size());
    for (size_t k = 0; k < longest; ++k)
        for (const auto &p : pools)
            if (k < p.size())
                flat.push_back(p[k]);

    net::ArrivalConfig acfg;
    acfg.kind = net::ArrivalKind::Poisson;
    acfg.rate = 400e3;
    acfg.seed = 7;
    net::ArrivalProcess arrivals(acfg);
    uint64_t issued = 0;
    std::function<void()> arrive = [&]() {
        if (issued >= total)
            return;
        specweb::RequestType type;
        do {
            type = gen.sampleType();
        } while (type == specweb::RequestType::Login ||
                 type == specweb::RequestType::Logout);
        const auto &[sid, user] = flat[issued % flat.size()];
        specweb::GeneratedRequest req = gen.generate(type, user, sid);
        ++issued;
        fleet.injectRequest(std::move(req.raw), issued, user,
                            static_cast<uint32_t>(type));
        if (issued % 64 == 0)
            fleet.beginCrossShardTransfer(gen.sampleUser(),
                                          gen.sampleUser(), 250);
        if (issued < total)
            queue.scheduleAfter(arrivals.nextGap(), arrive);
    };
    queue.scheduleAfter(arrivals.nextGap(), arrive);
    queue.run();

    Fingerprint fp;
    fp.clock = queue.now();
    fp.dispatched = queue.dispatched();
    fp.orderHash = queue.orderHash();
    fp.responses = fleet.totalResponses();
    fp.errors = fleet.totalErrors();
    for (uint32_t i = 0; i < devices; ++i) {
        const simt::Engine &engine = fleet.device(i).engine();
        fp.engineLaunches += engine.launches();
        fp.engineWarps += engine.warps();
        const auto &sms = engine.smCounters();
        fp.sms.insert(fp.sms.end(), sms.begin(), sms.end());
    }
    fp.metrics = obs::global().metrics().flatten();
    std::ostringstream trace;
    obs::global().tracer().writeChromeTrace(trace);
    fp.trace = trace.str();
    fp.responseDigestSum = digest_sum;

    obs::global().disable();
    obs::global().reset();
    util::setSimThreads(1);
    return fp;
}

/** Field-exact fingerprint of an isolated-type platform run. */
Fingerprint
runIsolated(const platform::TitanVariant &variant,
            specweb::RequestType type, unsigned threads)
{
    util::setSimThreads(threads);
    platform::IsolatedRunOptions opts;
    opts.cohorts = 2;
    opts.users = 400;
    opts.laneSample = 64;
    platform::TypeRunResult r =
        platform::runIsolatedType(variant, type, opts);
    util::setSimThreads(1);

    // Pack the result's fields into the metrics list; doubles computed
    // from identical integer inputs in identical (serial, post-barrier)
    // order must be bit-equal.
    Fingerprint fp;
    fp.responses = r.requests;
    fp.metrics = {
        {"elapsed", r.elapsedSeconds},
        {"throughput", r.throughput},
        {"avg_latency_ms", r.avgLatencyMs},
        {"p99_latency_ms", r.p99LatencyMs},
        {"device_utilization", r.deviceUtilization},
        {"memory_utilization", r.memoryUtilization},
        {"copy_utilization", r.copyUtilization},
        {"simd_efficiency", r.simdEfficiency},
        {"pcie_bytes_per_request",
         static_cast<double>(r.pcieBytesPerRequest)},
        {"dynamic_watts", r.dynamicWatts},
        {"reqs_per_joule_wall", r.reqsPerJouleWall},
    };
    return fp;
}

/** Field-exact fingerprint of a whole-variant (fig8-style) evaluation. */
Fingerprint
runVariant(const platform::TitanVariant &variant, unsigned threads)
{
    util::setSimThreads(threads);
    platform::IsolatedRunOptions opts;
    opts.cohorts = 1;
    opts.users = 200;
    opts.laneSample = 32;
    platform::TitanWorkloadResult r =
        platform::evaluateTitan(variant, opts);
    util::setSimThreads(1);

    Fingerprint fp;
    fp.metrics = {
        {"throughput", r.throughput},
        {"avg_latency_ms", r.avgLatencyMs},
        {"dynamic_watts", r.dynamicWatts},
        {"wall_watts", r.wallWatts},
        {"reqs_per_joule_wall", r.reqsPerJouleWall},
        {"reqs_per_joule_dynamic", r.reqsPerJouleDynamic},
    };
    for (size_t i = 0; i < specweb::kNumRequestTypes; ++i) {
        const std::string p = "type" + std::to_string(i) + ".";
        fp.metrics.emplace_back(p + "throughput",
                                r.perType[i].throughput);
        fp.metrics.emplace_back(p + "p99_ms", r.perType[i].p99LatencyMs);
        fp.metrics.emplace_back(p + "simd_efficiency",
                                r.perType[i].simdEfficiency);
    }
    return fp;
}

/**
 * One adaptive-batching run under open-loop flash-crowd arrivals
 * (DESIGN.md Section 6i): slack-based early dispatch, priority
 * preemption and deadline-aware admission all active, per-type
 * deadlines on the interactive money-movement types. The adaptive
 * scheduler consults EWMAs fed from cohort completions, so this is the
 * sharpest probe that the parallel engine's completion order stays
 * canonical — a single reordered completion would skew the cost model
 * and change every subsequent dispatch decision.
 *
 * @param with_faults Arms a seeded crash/hang fault plan (kernel hangs
 *        hedged by the watchdog, client disconnects) on top: the
 *        adaptive policy's decisions must stay byte-identical across
 *        thread counts even while cohorts hang and hedge.
 */
Fingerprint
runAdaptiveFlash(unsigned threads, size_t cache_entries = 0,
                 bool with_faults = false)
{
    util::setSimThreads(threads);
    obs::global().reset();

    platform::TitanVariant variant = platform::titanB();
    core::RhythmConfig cfg = variant.server;
    cfg.cohortSize = 512;
    cfg.cohortContexts = 8;
    cfg.laneSample = 64;
    cfg.cohortTimeout = 4 * des::kMillisecond;
    cfg.adaptiveBatching = true;
    cfg.defaultDeadline = 8 * des::kMillisecond;
    if (cache_entries > 0)
        cfg.traceTemplateCacheEntries =
            static_cast<uint32_t>(cache_entries);
    if (with_faults)
        cfg.watchdogTimeout = 5 * des::kMillisecond;
    const uint64_t total = 4 * cfg.cohortSize;
    const uint64_t users = 400;

    des::EventQueue queue;
    obs::global().enable(queue);
    simt::ProfileCache cache(std::max<size_t>(cache_entries, 1));
    simt::Device device(queue, variant.device);
    if (cache_entries > 0)
        device.engine().setProfileCache(&cache);
    backend::BankDb db(users, 42);
    core::BankingService service(db);
    cfg.typeDeadlines.assign(service.numTypes(), 0);
    for (specweb::RequestType t : {specweb::RequestType::Transfer,
                                   specweb::RequestType::PostTransfer,
                                   specweb::RequestType::PostPayee})
        cfg.typeDeadlines[specweb::typeIndex(t)] =
            3 * des::kMillisecond;
    core::RhythmServer server(queue, device, service, cfg);

    std::optional<fault::FaultPlan> plan;
    if (with_faults) {
        fault::FaultConfig fcfg;
        fcfg.seed = 1234;
        // High rates on purpose: the flash run only launches a few
        // dozen cohorts, and the hedge path proves nothing unless a
        // hang actually fires.
        fcfg.at(fault::Site::KernelHang).probability = 0.5;
        fcfg.at(fault::Site::ClientDisconnect).probability = 0.05;
        plan.emplace(fcfg);
        server.setFaultPlan(&*plan);
        fault::installDeviceFaults(device, *plan, queue);
    }

    specweb::WorkloadGenerator gen(db, 42 * 31 + 7);
    auto sessions = server.sessions().populate(
        std::min<uint64_t>(total, 8192), users);

    net::ArrivalConfig acfg;
    acfg.kind = net::ArrivalKind::Flash;
    acfg.rate = 100e3;
    acfg.seed = 9;
    acfg.flashStartSec = 0.005;
    acfg.flashDurationSec = 0.01;
    acfg.flashMultiplier = 8.0;
    net::ArrivalProcess arrivals(acfg);
    uint64_t issued = 0;
    std::function<void()> arrive = [&]() {
        if (issued >= total)
            return;
        specweb::RequestType type;
        do {
            type = gen.sampleType();
        } while (type == specweb::RequestType::Login ||
                 type == specweb::RequestType::Logout);
        const auto &[sid, user] = sessions[issued % sessions.size()];
        server.injectRequest(gen.generate(type, user, sid).raw,
                             issued + 1);
        ++issued;
        if (issued < total)
            queue.scheduleAfter(arrivals.nextGap(), arrive);
    };
    queue.scheduleAfter(arrivals.nextGap(), arrive);
    queue.run();

    Fingerprint fp;
    fp.clock = queue.now();
    fp.dispatched = queue.dispatched();
    fp.orderHash = queue.orderHash();
    fp.responses = server.stats().responsesCompleted;
    fp.errors = server.stats().errorResponses;
    fp.engineLaunches = device.engine().launches();
    fp.engineWarps = device.engine().warps();
    fp.kernelHangs = server.stats().kernelHangs;
    fp.sms = device.engine().smCounters();
    fp.metrics = obs::global().metrics().flatten(
        std::span<const std::string_view>(
            obs::kBaselineExcludedPrefixes));
    std::ostringstream trace;
    obs::global().tracer().writeChromeTrace(trace);
    fp.trace = trace.str();
    fp.cacheStats = cache.stats();

    obs::global().disable();
    obs::global().reset();
    util::setSimThreads(1);
    return fp;
}

/** Per-response FNV-1a, combined with a wrapping sum (order-free). */
uint64_t
responseHash(uint64_t client_id, std::string_view response)
{
    util::Fnv1a64 h;
    h.update(client_id);
    h.update(response.size());
    uint64_t word = 0;
    int shift = 0;
    for (const char c : response) {
        word |= static_cast<uint64_t>(static_cast<unsigned char>(c))
                << shift;
        shift += 8;
        if (shift == 64) {
            h.update(word);
            word = 0;
            shift = 0;
        }
    }
    if (shift > 0)
        h.update(word);
    return h.digest();
}

/**
 * One cross-type cohort-fusion run under open-loop flash-crowd arrivals
 * (DESIGN.md Section 6j), in the completion-independent configuration
 * the fusion byte-equality contract requires: fixed batching, open-loop
 * arrivals and cohort contexts sized so dispatch never waits on a
 * completion. The burst overfills some cohorts and the formation
 * timeout flushes partial ones, so tail warps of several request types
 * coexist — exactly what the fusion packer repacks. The fingerprint
 * additionally carries an order-insensitive digest of every response
 * byte, so fusion on and off can be compared across arms (not just
 * across thread counts).
 *
 * @param burst Flash-crowd arrivals when true; steady Poisson when
 *        false. The flash burst exceeds the reader's drain rate, so
 *        admission (reader drops) becomes timing-dependent — fine for
 *        the across-threads matrix (each arm is compared with itself)
 *        but not for the fusion-on-vs-off byte comparison, which uses
 *        the steady shape where no admission decision ever consults
 *        pipeline state.
 */
Fingerprint
runFusionFlash(unsigned threads, bool fusion, size_t cache_entries = 0,
               bool burst = true)
{
    util::setSimThreads(threads);
    obs::global().reset();

    platform::TitanVariant variant = platform::titanB();
    core::RhythmConfig cfg = variant.server;
    cfg.cohortSize = 128;
    cfg.cohortContexts = 256; // ample: dispatch never blocks on release
    cfg.laneSample = 128;
    // The default formation timeout. Tighter timeouts make the cohort
    // chopping sensitive to parser-kernel completion times — the parser
    // shares the device with cohort kernels, so fusing cohorts shifts
    // parse completions — and the on/off byte comparison then compares
    // different cohort compositions. 2 ms leaves formation enough slack
    // that the chopping is identical (the CI digest gate's shape).
    cfg.cohortTimeout = 2 * des::kMillisecond;
    cfg.fusionEnabled = fusion;
    if (cache_entries > 0)
        cfg.traceTemplateCacheEntries =
            static_cast<uint32_t>(cache_entries);
    const uint64_t total = 16 * cfg.cohortSize;
    const uint64_t users = 400;

    des::EventQueue queue;
    obs::global().enable(queue);
    simt::ProfileCache cache(std::max<size_t>(cache_entries, 1));
    simt::Device device(queue, variant.device);
    if (cache_entries > 0)
        device.engine().setProfileCache(&cache);
    backend::BankDb db(users, 42);
    core::BankingService service(db);
    core::RhythmServer server(queue, device, service, cfg);

    Fingerprint fp;
    server.setResponseCallback(
        [&fp](uint64_t client_id, std::string_view response, des::Time) {
            fp.responseDigestSum += responseHash(client_id, response);
        });

    specweb::WorkloadGenerator gen(db, 42 * 31 + 7);
    auto sessions = server.sessions().populate(
        std::min<uint64_t>(total, 8192), users);

    net::ArrivalConfig acfg;
    acfg.kind = burst ? net::ArrivalKind::Flash : net::ArrivalKind::Poisson;
    acfg.rate = 50e3;
    acfg.seed = 9;
    acfg.flashStartSec = 0.005;
    acfg.flashDurationSec = 0.01;
    acfg.flashMultiplier = 8.0;
    net::ArrivalProcess arrivals(acfg);
    uint64_t issued = 0;
    std::function<void()> arrive = [&]() {
        if (issued >= total)
            return;
        specweb::RequestType type;
        do {
            type = gen.sampleType();
        } while (type == specweb::RequestType::Login ||
                 type == specweb::RequestType::Logout);
        const auto &[sid, user] = sessions[issued % sessions.size()];
        server.injectRequest(gen.generate(type, user, sid).raw,
                             issued + 1);
        ++issued;
        if (issued < total)
            queue.scheduleAfter(arrivals.nextGap(), arrive);
    };
    queue.scheduleAfter(arrivals.nextGap(), arrive);
    queue.run();

    fp.clock = queue.now();
    fp.dispatched = queue.dispatched();
    fp.orderHash = queue.orderHash();
    fp.responses = server.stats().responsesCompleted;
    fp.errors = server.stats().errorResponses;
    fp.engineLaunches = device.engine().launches();
    fp.engineWarps = device.engine().warps();
    fp.sms = device.engine().smCounters();
    fp.metrics = obs::global().metrics().flatten(
        std::span<const std::string_view>(
            obs::kBaselineExcludedPrefixes));
    // The flatten excludes warp.fusion.* (baseline-gated), so fold the
    // fusion accounting in explicitly: it too must be thread-invariant.
    fp.metrics.emplace_back(
        "fusion.fused_launches",
        static_cast<double>(server.stats().fusedLaunches));
    fp.metrics.emplace_back(
        "fusion.fused_cohorts",
        static_cast<double>(server.stats().fusedCohorts));
    fp.metrics.emplace_back(
        "fusion.saved_warps",
        static_cast<double>(server.stats().fusionSavedWarps));
    std::ostringstream trace;
    obs::global().tracer().writeChromeTrace(trace);
    fp.trace = trace.str();
    fp.cacheStats = cache.stats();

    obs::global().disable();
    obs::global().reset();
    util::setSimThreads(1);
    return fp;
}

/** Looks up one flattened metric; -1 when absent. */
double
metricValue(const Fingerprint &fp, std::string_view name)
{
    for (const auto &[key, value] : fp.metrics)
        if (key == name)
            return value;
    return -1.0;
}

constexpr unsigned kThreadCounts[] = {2, 4, 8};

TEST(ParallelEquivalenceTest, BankingServerRunIsByteIdentical)
{
    const Fingerprint serial = runBanking(1);
    // Sanity: the run did real work through the engine.
    ASSERT_GT(serial.responses, 0u);
    ASSERT_GT(serial.engineWarps, 0u);
    ASSERT_FALSE(serial.metrics.empty());
    ASSERT_FALSE(serial.trace.empty());
    for (unsigned threads : kThreadCounts)
        expectIdentical(serial, runBanking(threads), threads);
}

void
expectSameCacheStats(const simt::ProfileCache::Stats &a,
                     const simt::ProfileCache::Stats &b, unsigned threads)
{
    SCOPED_TRACE("sim-threads=" + std::to_string(threads));
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.intraHits, b.intraHits);
    EXPECT_EQ(a.insertions, b.insertions);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.bytesSaved, b.bytesSaved);
}

TEST(ParallelEquivalenceTest, ProfileCacheOnMatchesCacheOffSerial)
{
    // The determinism contract of DESIGN.md Section 6e: attaching the
    // profile cache changes host wall-clock only. Clock, order hash,
    // metrics and Chrome trace must be byte-identical to the uncached
    // serial run.
    const Fingerprint off = runBanking(1);
    const Fingerprint on = runBanking(1, 4096);
    expectIdentical(off, on, 1);
    // The cache did real work (every simulated warp is inserted).
    EXPECT_GT(on.cacheStats.misses, 0u);
    EXPECT_GT(on.cacheStats.insertions, 0u);
    EXPECT_EQ(off.cacheStats.misses, 0u); // no cache attached
}

TEST(ParallelEquivalenceTest, ProfileCacheOnIsByteIdenticalAcrossThreads)
{
    const Fingerprint serial = runBanking(1, 4096);
    ASSERT_GT(serial.responses, 0u);
    for (unsigned threads : kThreadCounts) {
        const Fingerprint parallel = runBanking(threads, 4096);
        expectIdentical(serial, parallel, threads);
        // Lookups happen on the DES thread in canonical warp order, so
        // even the cache's own accounting is thread-count-invariant.
        expectSameCacheStats(serial.cacheStats, parallel.cacheStats,
                             threads);
    }
}

TEST(ParallelEquivalenceTest, TinyCacheForcingEvictionsStaysIdentical)
{
    // Capacity 1 forces an eviction on nearly every insertion; LRU
    // churn must not leak into simulated outputs at any thread count.
    const Fingerprint off = runBanking(1);
    const Fingerprint tiny = runBanking(1, 1);
    expectIdentical(off, tiny, 1);
    EXPECT_GT(tiny.cacheStats.evictions, 0u);
    for (unsigned threads : kThreadCounts) {
        const Fingerprint parallel = runBanking(threads, 1);
        expectIdentical(off, parallel, threads);
        expectSameCacheStats(tiny.cacheStats, parallel.cacheStats,
                             threads);
    }
}

TEST(ParallelEquivalenceTest, LoginRunIsByteIdentical)
{
    // Login creates a session per request: every cohort ends in the
    // session-store serial stage. The fork/join of lane-parallel stages
    // around that serial stage must leave all outputs canonical.
    const Fingerprint serial = runBanking(1, 0, AuthMode::LoginOnly);
    ASSERT_GT(serial.responses, 0u);
    ASSERT_EQ(serial.errors, 0u);
    for (unsigned threads : kThreadCounts)
        expectIdentical(serial,
                        runBanking(threads, 0, AuthMode::LoginOnly),
                        threads);
}

TEST(ParallelEquivalenceTest, LogoutRunIsByteIdentical)
{
    // Logout destroys a (distinct) session per request — the inverse
    // serial-stage mutation of the session store.
    const Fingerprint serial = runBanking(1, 0, AuthMode::LogoutOnly);
    ASSERT_GT(serial.responses, 0u);
    for (unsigned threads : kThreadCounts)
        expectIdentical(serial,
                        runBanking(threads, 0, AuthMode::LogoutOnly),
                        threads);
}

TEST(ParallelEquivalenceTest, MixedAuthBrowsingRunIsByteIdentical)
{
    // Browsing cohorts (pure lane-parallel stages) interleaved with
    // Login and Logout cohorts (serial session-store stages), with the
    // profile cache both off and on: the full stage-major / serial
    // stage mix of DESIGN.md Section 6f at every thread count.
    const Fingerprint serial = runBanking(1, 0, AuthMode::Mixed);
    ASSERT_GT(serial.responses, 0u);
    for (unsigned threads : kThreadCounts)
        expectIdentical(serial, runBanking(threads, 0, AuthMode::Mixed),
                        threads);

    const Fingerprint cached = runBanking(1, 4096, AuthMode::Mixed);
    expectIdentical(serial, cached, 1);
    EXPECT_GT(cached.cacheStats.insertions, 0u);
    for (unsigned threads : kThreadCounts) {
        const Fingerprint parallel =
            runBanking(threads, 4096, AuthMode::Mixed);
        expectIdentical(serial, parallel, threads);
        expectSameCacheStats(cached.cacheStats, parallel.cacheStats,
                             threads);
    }
}

TEST(ParallelEquivalenceTest, AdaptiveFlashRunIsByteIdentical)
{
    // Adaptive batching under an open-loop flash crowd: every
    // scheduling decision flows through completion-fed EWMAs, so this
    // run is maximally sensitive to any non-canonical completion
    // order in the parallel engine.
    const Fingerprint serial = runAdaptiveFlash(1);
    ASSERT_GT(serial.responses, 0u);
    // The adaptive machinery must actually have engaged, or the matrix
    // proves nothing.
    EXPECT_GT(metricValue(serial, "adaptive.early_dispatches"), 0.0);
    for (unsigned threads : kThreadCounts)
        expectIdentical(serial, runAdaptiveFlash(threads), threads);
}

TEST(ParallelEquivalenceTest, AdaptiveFlashWithCacheIsByteIdentical)
{
    // The profile cache must stay wall-clock-only under the adaptive
    // policy too: cache-on output identical to cache-off, at every
    // thread count, with thread-invariant cache accounting.
    const Fingerprint off = runAdaptiveFlash(1);
    const Fingerprint cached = runAdaptiveFlash(1, 4096);
    expectIdentical(off, cached, 1);
    EXPECT_GT(cached.cacheStats.insertions, 0u);
    for (unsigned threads : kThreadCounts) {
        const Fingerprint parallel = runAdaptiveFlash(threads, 4096);
        expectIdentical(off, parallel, threads);
        expectSameCacheStats(cached.cacheStats, parallel.cacheStats,
                             threads);
    }
}

TEST(ParallelEquivalenceTest, AdaptiveFlashUnderFaultsIsByteIdentical)
{
    // Crash/hang chaos on top of the adaptive flash run: hedged
    // cohorts complete through the watchdog path and disconnected
    // clients vanish mid-pipeline, yet the adaptive cost model — and
    // with it every dispatch decision — must stay byte-identical
    // across thread counts.
    const Fingerprint serial = runAdaptiveFlash(1, 0, true);
    ASSERT_GT(serial.responses, 0u);
    EXPECT_GT(serial.kernelHangs, 0u);
    for (unsigned threads : kThreadCounts)
        expectIdentical(serial, runAdaptiveFlash(threads, 0, true),
                        threads);
}

TEST(ParallelEquivalenceTest, FusionFlashRunIsByteIdentical)
{
    // Cross-type cohort fusion under the flash crowd: lane packing,
    // fused command building and the follower delivery loop all run on
    // top of the parallel engine, and every output — including the
    // fusion accounting itself — must stay canonical across threads.
    const Fingerprint serial = runFusionFlash(1, true);
    ASSERT_GT(serial.responses, 0u);
    // The packer must actually have fused, or the matrix proves nothing.
    ASSERT_GT(metricValue(serial, "fusion.fused_launches"), 0.0);
    ASSERT_GT(metricValue(serial, "fusion.saved_warps"), 0.0);
    for (unsigned threads : kThreadCounts)
        expectIdentical(serial, runFusionFlash(threads, true), threads);
}

TEST(ParallelEquivalenceTest, FusionOnMatchesFusionOffResponses)
{
    // The §6j determinism contract: in the completion-independent
    // configuration (steady open-loop arrivals, fixed batching, ample
    // contexts), fusing cohorts changes pipeline timing but not a
    // single response byte. Compared via the order-insensitive digest,
    // across arms and thread counts.
    const Fingerprint off = runFusionFlash(1, false, 0, false);
    const Fingerprint on = runFusionFlash(1, true, 0, false);
    ASSERT_GT(off.responses, 0u);
    EXPECT_EQ(on.responses, off.responses);
    EXPECT_EQ(on.errors, off.errors);
    EXPECT_EQ(on.responseDigestSum, off.responseDigestSum);
    // Fusion did real work while leaving the bytes alone.
    EXPECT_GT(metricValue(on, "fusion.fused_cohorts"), 0.0);
    EXPECT_EQ(metricValue(off, "fusion.fused_launches"), 0.0);
    for (unsigned threads : kThreadCounts) {
        SCOPED_TRACE("sim-threads=" + std::to_string(threads));
        EXPECT_EQ(runFusionFlash(threads, true, 0, false)
                      .responseDigestSum,
                  off.responseDigestSum);
    }
}

TEST(ParallelEquivalenceTest, FusionWithCacheIsByteIdentical)
{
    // Mixed-type warps reach the profile cache under tag-aware
    // fingerprints: the cache must stay wall-clock-only (identical
    // outputs to the uncached fusion run) with thread-invariant
    // accounting.
    const Fingerprint uncached = runFusionFlash(1, true);
    const Fingerprint cached = runFusionFlash(1, true, 4096);
    expectIdentical(uncached, cached, 1);
    EXPECT_GT(cached.cacheStats.insertions, 0u);
    for (unsigned threads : kThreadCounts) {
        const Fingerprint parallel = runFusionFlash(threads, true, 4096);
        expectIdentical(uncached, parallel, threads);
        expectSameCacheStats(cached.cacheStats, parallel.cacheStats,
                             threads);
    }
}

TEST(ParallelEquivalenceTest, Fig9SizedTitanARunIsIdentical)
{
    // Titan A is the PCIe-bound configuration of Figure 9.
    const auto variant = platform::titanA();
    const specweb::RequestType type = specweb::typeTable()[0].type;
    const Fingerprint serial = runIsolated(variant, type, 1);
    ASSERT_GT(serial.responses, 0u);
    for (unsigned threads : kThreadCounts)
        expectIdentical(serial, runIsolated(variant, type, threads),
                        threads);
}

TEST(ParallelEquivalenceTest, Sec62SizedTitanCRunIsIdentical)
{
    // Titan C is the section 6.2 scaling configuration.
    const auto variant = platform::titanC();
    const specweb::RequestType type = specweb::typeTable()[1].type;
    const Fingerprint serial = runIsolated(variant, type, 1);
    ASSERT_GT(serial.responses, 0u);
    for (unsigned threads : kThreadCounts)
        expectIdentical(serial, runIsolated(variant, type, threads),
                        threads);
}

TEST(ParallelEquivalenceTest, Fig8SizedVariantEvaluationIsIdentical)
{
    // The full per-type fan-out of the fig8 evaluation: nine isolated
    // simulations run concurrently on the pool, merged in type order.
    const auto variant = platform::titanB();
    const Fingerprint serial = runVariant(variant, 1);
    for (unsigned threads : kThreadCounts)
        expectIdentical(serial, runVariant(variant, threads), threads);
}

// ---- Multi-device fleet equivalence (DESIGN.md 6k) -------------------
// The per-device event streams merge canonically, so a sharded run is
// as deterministic as a single-device one: byte-identical responses,
// metrics (per-device namespaces included), trace, dispatch order and
// order hash across --sim-threads — and across profile-cache on/off.

TEST(ParallelEquivalenceTest, TwoDeviceFleetIsByteIdentical)
{
    const Fingerprint serial = runFleet(1, 2);
    EXPECT_GT(serial.responses, 0u);
    for (unsigned threads : {2u, 8u})
        expectIdentical(serial, runFleet(threads, 2), threads);
}

TEST(ParallelEquivalenceTest, FourDeviceFleetIsByteIdentical)
{
    const Fingerprint serial = runFleet(1, 4);
    EXPECT_GT(serial.responses, 0u);
    for (unsigned threads : {2u, 8u})
        expectIdentical(serial, runFleet(threads, 4), threads);
}

TEST(ParallelEquivalenceTest, FleetWithProfileCacheIsByteIdentical)
{
    // Per-device caches must not perturb anything simulated, serial or
    // parallel — and the cache-off and cache-on runs must deliver the
    // same response bytes.
    const Fingerprint off = runFleet(1, 2);
    const Fingerprint on = runFleet(1, 2, 512);
    EXPECT_EQ(off.responseDigestSum, on.responseDigestSum);
    EXPECT_EQ(off.orderHash, on.orderHash);
    expectIdentical(on, runFleet(8, 2, 512), 8);
}

} // namespace
} // namespace rhythm
