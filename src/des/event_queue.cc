#include "des/event_queue.hh"

#include "util/logging.hh"

namespace rhythm::des {

EventId
EventQueue::scheduleAt(Time when, Callback cb)
{
    return scheduleAtOn(currentStream_, when, std::move(cb));
}

EventId
EventQueue::scheduleAfter(Time delay, Callback cb)
{
    return scheduleAtOn(currentStream_, now_ + delay, std::move(cb));
}

EventId
EventQueue::scheduleAtOn(StreamId stream, Time when, Callback cb)
{
    RHYTHM_ASSERT(when >= now_, "cannot schedule into the past");
    RHYTHM_ASSERT(cb, "null event callback");
    RHYTHM_ASSERT(stream < streams_.size(), "unknown event stream");
    Stream &s = streams_[stream];
    EventId id{when, s.nextSequence++, stream};
    s.events.emplace(Key{id.when, id.sequence}, std::move(cb));
    ++pendingCount_;
    if (pendingCount_ > maxPending_)
        maxPending_ = pendingCount_;
    return id;
}

EventId
EventQueue::scheduleAfterOn(StreamId stream, Time delay, Callback cb)
{
    return scheduleAtOn(stream, now_ + delay, std::move(cb));
}

StreamId
EventQueue::createStream()
{
    streams_.emplace_back();
    return static_cast<StreamId>(streams_.size() - 1);
}

bool
EventQueue::cancel(const EventId &id)
{
    if (id.stream >= streams_.size())
        return false;
    if (streams_[id.stream].events.erase(Key{id.when, id.sequence}) == 0)
        return false;
    --pendingCount_;
    return true;
}

size_t
EventQueue::frontStream() const
{
    // Canonical merge: lowest front timestamp wins; ties break toward the
    // lowest stream id. Stream ids are unique, so this totally orders the
    // fronts regardless of how the sub-queues were populated.
    size_t best = streams_.size();
    Time bestTime = 0;
    for (size_t s = 0; s < streams_.size(); ++s) {
        const auto &events = streams_[s].events;
        if (events.empty())
            continue;
        const Time t = events.begin()->first.first;
        if (best == streams_.size() || t < bestTime) {
            best = s;
            bestTime = t;
        }
    }
    return best;
}

uint64_t
EventQueue::run(Time horizon)
{
    stopRequested_ = false;
    uint64_t dispatched = 0;
    while (pendingCount_ > 0 && !stopRequested_) {
        const size_t front = frontStream();
        if (horizon != 0 &&
            streams_[front].events.begin()->first.first > horizon) {
            now_ = horizon;
            return dispatched;
        }
        if (!step())
            break;
        ++dispatched;
    }
    if (horizon != 0 && now_ < horizon && pendingCount_ == 0)
        now_ = horizon;
    return dispatched;
}

namespace {

/// Folds one 64-bit value into an FNV-1a hash, byte by byte.
uint64_t
fnv1a(uint64_t hash, uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (i * 8)) & 0xff;
        hash *= 1099511628211ull;
    }
    return hash;
}

} // namespace

bool
EventQueue::step()
{
    const size_t front = frontStream();
    if (front == streams_.size())
        return false;
    Stream &stream = streams_[front];
    auto it = stream.events.begin();
    RHYTHM_ASSERT(it->first.first >= now_, "event queue went backwards");
    const Key key = it->first;
    now_ = key.first;
    Callback cb = std::move(it->second);
    stream.events.erase(it);
    --pendingCount_;
    ++dispatched_;
    orderHash_ =
        fnv1a(fnv1a(orderHash_, static_cast<uint64_t>(key.first)), key.second);
    if (front != 0) {
        // Fold the stream id too so the audit covers the canonical merge.
        // Stream-0 events keep the exact pre-stream fold, which keeps
        // single-device runs byte-identical to the seed kernel.
        orderHash_ = fnv1a(orderHash_, static_cast<uint64_t>(front));
    }
    const StreamId saved = currentStream_;
    currentStream_ = static_cast<StreamId>(front);
    cb();
    currentStream_ = saved;
    return true;
}

} // namespace rhythm::des
