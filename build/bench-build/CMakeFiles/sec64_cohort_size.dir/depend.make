# Empty dependencies file for sec64_cohort_size.
# This may be replaced when dependencies are built.
