/**
 * @file
 * Multi-device sharded serving: an N-Titan fleet behind one front end.
 *
 * The paper evaluates one Titan; the ROADMAP north-star (millions of
 * users) needs scale-out. A Fleet instantiates N complete serving
 * shards — each with its own DES event stream, simt::Device (own PCIe
 * link and copy engines), BankDb, BankingService, RhythmServer and
 * optional RecoverableBackend — and a front-end load balancer that
 * routes each request to a shard (DESIGN.md Section 6k):
 *
 *  - SessionHash (default): users are session-sharded by a stable
 *    hash of (user id, shard map seed). Each shard's session array is
 *    populated only with its homed users, so every stateful banking
 *    request finds its session locally.
 *  - LeastOutstanding: requests go to the alive shard with the fewest
 *    outstanding requests. Sessions are populated identically on every
 *    shard (the arrays share one RNG seed, so the pools coincide),
 *    trading per-user state affinity for balance — the mode meant for
 *    stateless request types, selectable per type via
 *    FleetConfig::leastOutstandingTypes even under SessionHash.
 *
 * Determinism: each shard's causal chain stays on its own DES stream
 * (events scheduled from a shard's callbacks inherit the stream), and
 * the EventQueue merges stream fronts canonically — lowest timestamp,
 * then lowest stream id — so a fleet run is byte-identical across
 * --sim-threads and profile-cache settings, exactly like one device.
 *
 * Cross-shard transfers are two-phase: XferOut debits the payer on the
 * payer's home shard, then the coordinator schedules XferIn on the
 * payee's shard one hop later. Both legs carry idempotency tokens
 * through the recovery journal, so a coordinator retry after a crash
 * between the phases dedups instead of double-spending.
 *
 * Device failure: killDevice() crash-recovers the shard's backend
 * through its journal (committed transactions survive by
 * construction), marks the shard dead for routing, and re-creates its
 * sessions on the survivors; the front end rewrites re-sharded session
 * cookies on the way in.
 */

#ifndef RHYTHM_RHYTHM_FLEET_HH
#define RHYTHM_RHYTHM_FLEET_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "backend/bankdb.hh"
#include "backend/recovery.hh"
#include "des/event_queue.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "simt/device.hh"

namespace rhythm::core {

/** Front-end balancing policy (see file header). */
enum class BalanceMode : uint8_t {
    SessionHash,      //!< Stable hash of the user id (default).
    LeastOutstanding, //!< Fewest outstanding requests wins.
};

/** Fleet-level configuration (per-shard config is RhythmConfig). */
struct FleetConfig
{
    /** Number of devices (shards); >= 1. */
    uint32_t devices = 1;
    /** Front-end balancing policy. */
    BalanceMode balance = BalanceMode::SessionHash;
    /** Seed of the user → shard map (and of the re-shard remap). */
    uint64_t shardMapSeed = 0x52687974686d5348ull;
    /**
     * Request-type ids routed least-outstanding even in SessionHash
     * mode — the per-type override for stateless types.
     */
    std::vector<uint32_t> leastOutstandingTypes;
    /** Give each shard a journaled RecoverableBackend. */
    bool recovery = false;
    /** Journaled records between checkpoints (recovery only). */
    uint64_t checkpointInterval = 4096;
    /** Modeled coordinator hop between cross-shard phases. */
    des::Time crossShardHop = 20 * des::kMicrosecond;
};

/**
 * N complete banking shards plus the front-end balancer and the
 * cross-shard coordinator. Single-threaded like everything else on the
 * DES thread.
 */
class Fleet
{
  public:
    /**
     * Builds the fleet: per shard a DES stream, a BankDb(users,
     * db_seed) (identical per-user state on every shard — routing
     * decides which copy is authoritative for a user), a Device, a
     * BankingService, a RhythmServer, and optionally a
     * RecoverableBackend. Also binds each stream to its device in the
     * observability layer, so fleet metrics/traces namespace as
     * "dev<i>." / per-device trace processes.
     */
    Fleet(des::EventQueue &queue, const simt::DeviceConfig &device_config,
          const RhythmConfig &server_config, const FleetConfig &config,
          uint64_t users, uint64_t db_seed);
    ~Fleet();

    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;

    uint32_t devices() const { return static_cast<uint32_t>(shards_.size()); }
    RhythmServer &server(uint32_t i) { return *shards_[i]->server; }
    simt::Device &device(uint32_t i) { return *shards_[i]->device; }
    backend::BankDb &db(uint32_t i) { return *shards_[i]->db; }
    backend::RecoverableBackend *recovery(uint32_t i)
    {
        return shards_[i]->recovery.get();
    }
    des::StreamId stream(uint32_t i) const { return shards_[i]->stream; }
    bool alive(uint32_t i) const { return shards_[i]->alive; }
    uint32_t aliveCount() const;

    /** Stable home shard of a user (ignores liveness). */
    uint32_t homeShard(uint64_t user_id) const;

    /**
     * Shard a request for @p user_id of @p type_id is routed to:
     * least-outstanding when the mode or a per-type override says so,
     * otherwise the home shard, remapped deterministically to a
     * survivor when the home shard is dead.
     */
    uint32_t routeShard(uint64_t user_id, uint32_t type_id) const;

    /** Registers the static-content store on every shard. */
    void setStaticContent(const specweb::StaticContent *content);

    /**
     * Registers the fan-in response callback (invoked for every
     * response from every shard). The fleet always interposes its own
     * per-shard callback to track outstanding counts.
     */
    void setResponseCallback(RhythmServer::ResponseCallback cb);

    /**
     * Populates every shard's session array: @p per_shard sessions
     * drawn from users <= @p max_user_id, filtered to each shard's
     * homed users under SessionHash (so the pools partition the user
     * space), identical on every shard under LeastOutstanding.
     * @return Per-shard (session id, user id) pools; also retained
     *         internally for the re-shard path.
     */
    const std::vector<std::vector<std::pair<uint64_t, uint64_t>>> &
    populateSessions(uint64_t per_shard, uint64_t max_user_id);

    /**
     * Routes and injects one raw request. Applies the re-shard session
     * rewrite ("session=<old>" → the survivor's session id) when the
     * session was re-created after a device kill. Same contract as
     * RhythmServer::injectRequest; false = the target shard's reader
     * is full.
     */
    bool injectRequest(std::string raw, uint64_t client_id,
                       uint64_t user_id, uint32_t type_id);

    /**
     * Starts a two-phase cross-shard transfer: XferOut debits @p payer
     * on its current shard now; on success XferIn credits @p payee on
     * its current shard one crossShardHop later. Both legs are
     * journaled with distinct idempotency tokens when recovery is on.
     * @return The transfer's coordinator id (for logging/tests).
     */
    uint64_t beginCrossShardTransfer(uint64_t payer, uint64_t payee,
                                     int64_t cents);

    /**
     * Kills a device mid-flight: the shard's backend crash-recovers
     * from its journal (every committed transaction survives), the
     * shard stops receiving new requests, and its session pool is
     * re-created on the surviving shards (front-end cookie rewrite
     * maps old session ids to the new ones). Requests already inside
     * the dead shard's pipeline drain normally — the model is a
     * serving process that must be restarted, not vanished silicon.
     * At least one shard must survive.
     */
    void killDevice(uint32_t index);

    /** Flushes partially formed batches on every alive shard. */
    void flushAll();

    /** True when every shard's pipeline is empty. */
    bool drainedAll() const;

    /** Fleet-level counters (per-shard counters: server(i).stats()). */
    struct Stats
    {
        uint64_t crossStarted = 0;   //!< Coordinator transfers begun.
        uint64_t crossCompleted = 0; //!< Both phases applied.
        uint64_t crossRejected = 0;  //!< Phase-1 debit rejected.
        uint64_t devicesKilled = 0;
        uint64_t sessionsResharded = 0; //!< Re-created on survivors.
        uint64_t reshardDrops = 0;   //!< No survivor bucket space.
        uint64_t rewrittenCookies = 0; //!< session= rewrites applied.
    };
    const Stats &stats() const { return stats_; }

    // ---- Aggregates across shards (bench reporting) ----------------
    uint64_t totalAccepted() const;
    uint64_t totalResponses() const;
    uint64_t totalErrors() const;
    uint64_t totalShed() const;
    uint64_t totalReaderDrops() const;
    uint64_t totalCohorts() const;

  private:
    struct Shard
    {
        des::StreamId stream = 0;
        std::unique_ptr<backend::BankDb> db;
        std::unique_ptr<simt::Device> device;
        std::unique_ptr<BankingService> service;
        std::unique_ptr<backend::RecoverableBackend> recovery;
        std::unique_ptr<RhythmServer> server;
        bool alive = true;
        uint64_t outstanding = 0; //!< Accepted minus responded.
    };

    /** Deterministic survivor for a user whose home shard died. */
    uint32_t remapShard(uint64_t user_id) const;
    /** Alive shard with the fewest outstanding requests. */
    uint32_t leastOutstandingShard() const;
    /** Executes one backend leg on a shard (journaled when possible). */
    std::string execBackend(Shard &shard, const backend::BackendRequest &req,
                            uint64_t token);

    des::EventQueue &queue_;
    FleetConfig config_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::vector<std::pair<uint64_t, uint64_t>>> pools_;
    /** Old session id → (survivor shard, new session id). */
    std::map<uint64_t, std::pair<uint32_t, uint64_t>> sessionRemap_;
    RhythmServer::ResponseCallback userCb_;
    uint64_t crossSeq_ = 0;
    Stats stats_;
};

} // namespace rhythm::core

#endif // RHYTHM_RHYTHM_FLEET_HH
