file(REMOVE_RECURSE
  "librhythm_des.a"
)
