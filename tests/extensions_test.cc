/**
 * @file
 * Tests for the paper's auxiliary mechanisms: static image cohorts
 * (Section 5.1, bypassing the process stage), the quick pay host
 * fallback (Sections 3.1/5.1), and their integration in both servers.
 */

#include <gtest/gtest.h>

#include "backend/bankdb.hh"
#include "host/server.hh"
#include "http/parser.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "specweb/quickpay.hh"
#include "specweb/static_content.hh"
#include "specweb/workload.hh"

namespace rhythm {
namespace {

simt::NullTracer gNull;

// ---------------------------------------------------------------------
// StaticContent
// ---------------------------------------------------------------------

TEST(StaticContent, StandardAssetsExist)
{
    specweb::StaticContent content(8, 3);
    EXPECT_NE(content.lookup("/images/logo.gif"), nullptr);
    EXPECT_NE(content.lookup("/images/check_1_front.gif"), nullptr);
    EXPECT_NE(content.lookup("/images/check_8_back.gif"), nullptr);
    EXPECT_EQ(content.lookup("/images/check_9_front.gif"), nullptr);
    EXPECT_EQ(content.lookup("/images/nope.gif"), nullptr);
    EXPECT_EQ(content.paths().size(), 4u + 16u);
    EXPECT_GT(content.totalBytes(), 100u * 1024);
}

TEST(StaticContent, DeterministicAcrossInstances)
{
    specweb::StaticContent a(4, 9), b(4, 9);
    EXPECT_EQ(*a.lookup("/images/check_2_front.gif"),
              *b.lookup("/images/check_2_front.gif"));
}

TEST(StaticContent, PathClassification)
{
    EXPECT_TRUE(specweb::StaticContent::isStaticPath("/images/logo.gif"));
    EXPECT_TRUE(specweb::StaticContent::isStaticPath("/images/a.png"));
    EXPECT_FALSE(specweb::StaticContent::isStaticPath("/bank/login.php"));
    EXPECT_FALSE(specweb::StaticContent::isStaticPath("/images/readme.txt"));
    EXPECT_FALSE(specweb::StaticContent::isStaticPath("/img/logo.gif"));
}

TEST(StaticContent, ResponseHasCorrectContentLength)
{
    specweb::StaticContent content(2, 5);
    const std::string resp = content.buildResponse("/images/logo.gif");
    EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(resp.find("Content-Type: image/gif"), std::string::npos);
    const size_t body = resp.size() - resp.find("\r\n\r\n") - 4;
    EXPECT_NE(resp.find("Content-Length: " + std::to_string(body)),
              std::string::npos);
    EXPECT_EQ(body, content.lookup("/images/logo.gif")->size());
}

// ---------------------------------------------------------------------
// Quick pay (host fallback)
// ---------------------------------------------------------------------

class QuickPayTest : public ::testing::Test
{
  protected:
    QuickPayTest() : db_(50, 3), svc_(db_) {}

    http::Request
    makeRequest(uint64_t user, const std::string &payees,
                const std::string &amounts)
    {
        const uint64_t sid = sessions_.create(user, gNull);
        const std::string raw = http::buildRequest(
            http::Method::Post, std::string(specweb::kQuickPayPath),
            {{"payees", payees}, {"amounts", amounts}},
            "session=" + std::to_string(sid));
        http::Request req;
        EXPECT_TRUE(http::parseRequest(raw, 0, gNull, req));
        return req;
    }

    backend::BankDb db_;
    backend::BackendService svc_;
    specweb::MapSessionProvider sessions_;
};

TEST_F(QuickPayTest, PaysMultiplePayees)
{
    auto payees = db_.payees(7);
    ASSERT_GE(payees.size(), 2u);
    const int64_t before =
        db_.account(backend::BankDb::checkingId(7))->balanceCents;
    http::Request req = makeRequest(
        7,
        std::to_string(payees[0]->payeeId) + "," +
            std::to_string(payees[1]->payeeId),
        "150,250");
    const std::string page =
        specweb::serveQuickPay(req, svc_, sessions_, gNull);
    EXPECT_NE(page.find("Quick Pay Results"), std::string::npos);
    EXPECT_NE(page.find("page:ok"), std::string::npos);
    EXPECT_EQ(db_.account(backend::BankDb::checkingId(7))->balanceCents,
              before - 400);
}

TEST_F(QuickPayTest, RejectedPaymentsReported)
{
    http::Request req = makeRequest(7, "999999999", "100");
    const std::string page =
        specweb::serveQuickPay(req, svc_, sessions_, gNull);
    EXPECT_NE(page.find("rejected"), std::string::npos);
    EXPECT_NE(page.find("page:ok"), std::string::npos);
}

TEST_F(QuickPayTest, RequiresSession)
{
    http::Request req;
    ASSERT_TRUE(http::parseRequest(
        http::buildRequest(http::Method::Post,
                           std::string(specweb::kQuickPayPath),
                           {{"payees", "1"}, {"amounts", "1"}}),
        0, gNull, req));
    const std::string page =
        specweb::serveQuickPay(req, svc_, sessions_, gNull);
    EXPECT_NE(page.find("page:error"), std::string::npos);
}

TEST_F(QuickPayTest, RejectsMalformedLists)
{
    // Mismatched lengths.
    http::Request req = makeRequest(7, "1,2", "100");
    EXPECT_NE(specweb::serveQuickPay(req, svc_, sessions_, gNull)
                  .find("page:error"),
              std::string::npos);
    // Oversized list.
    std::string many;
    for (int i = 0; i < 20; ++i)
        many += (i ? ",1" : "1");
    http::Request big = makeRequest(7, many, many);
    EXPECT_NE(specweb::serveQuickPay(big, svc_, sessions_, gNull)
                  .find("page:error"),
              std::string::npos);
}

TEST_F(QuickPayTest, VariableBackendTripsShowInInstructionCount)
{
    auto payees = db_.payees(9);
    ASSERT_GE(payees.size(), 2u);
    simt::CountingTracer one, two;
    {
        http::Request req =
            makeRequest(9, std::to_string(payees[0]->payeeId), "10");
        specweb::serveQuickPay(req, svc_, sessions_, one);
    }
    {
        http::Request req = makeRequest(
            9,
            std::to_string(payees[0]->payeeId) + "," +
                std::to_string(payees[1]->payeeId),
            "10,10");
        specweb::serveQuickPay(req, svc_, sessions_, two);
    }
    EXPECT_GT(two.instructions(), one.instructions());
}

// ---------------------------------------------------------------------
// Host server integration
// ---------------------------------------------------------------------

TEST(HostServerExtensions, ServesStaticImages)
{
    backend::BankDb db(20, 1);
    specweb::MapSessionProvider sessions;
    specweb::StaticContent content(4, 2);
    host::HostServer server(db, sessions, &content);
    const std::string raw = http::buildRequest(
        http::Method::Get, "/images/check_3_front.gif", {});
    const std::string resp = server.serve(raw, gNull);
    EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(resp.find("image/gif"), std::string::npos);
}

TEST(HostServerExtensions, ImagePathWithoutStoreIs404)
{
    backend::BankDb db(20, 1);
    specweb::MapSessionProvider sessions;
    host::HostServer server(db, sessions);
    const std::string resp = server.serve(
        http::buildRequest(http::Method::Get, "/images/logo.gif", {}),
        gNull);
    EXPECT_NE(resp.find("404"), std::string::npos);
}

TEST(HostServerExtensions, ServesQuickPay)
{
    backend::BankDb db(20, 1);
    specweb::MapSessionProvider sessions;
    host::HostServer server(db, sessions);
    const uint64_t sid = sessions.create(5, gNull);
    auto payees = db.payees(5);
    ASSERT_FALSE(payees.empty());
    const std::string raw = http::buildRequest(
        http::Method::Post, std::string(specweb::kQuickPayPath),
        {{"payees", std::to_string(payees[0]->payeeId)},
         {"amounts", "75"}},
        "session=" + std::to_string(sid));
    const std::string resp = server.serve(raw, gNull);
    EXPECT_NE(resp.find("Quick Pay Results"), std::string::npos);
}

// ---------------------------------------------------------------------
// Rhythm server integration
// ---------------------------------------------------------------------

struct ExtensionRig
{
    ExtensionRig()
        : db(100, 7), device(queue, simt::DeviceConfig{}),
          service(db), server(queue, device, service, config()),
          content(8, 5)
    {
        server.setStaticContent(&content);
        server.setResponseCallback([this](uint64_t client,
                                          std::string_view response,
                                          des::Time) {
            responses.emplace_back(client, response);
        });
    }

    static core::RhythmConfig
    config()
    {
        core::RhythmConfig cfg;
        cfg.cohortSize = 16;
        cfg.cohortContexts = 4;
        cfg.cohortTimeout = des::kMillisecond;
        cfg.backendOnDevice = true;
        cfg.networkOverPcie = false;
        return cfg;
    }

    des::EventQueue queue;
    backend::BankDb db;
    simt::Device device;
    core::BankingService service;
    core::RhythmServer server;
    specweb::StaticContent content;
    std::vector<std::pair<uint64_t, std::string>> responses;
};

TEST(RhythmServerExtensions, ImageCohortBypassesProcessStage)
{
    ExtensionRig rig;
    for (int i = 0; i < 16; ++i) {
        const std::string path =
            "/images/check_" + std::to_string(1 + i % 8) + "_front.gif";
        rig.server.injectRequest(
            http::buildRequest(http::Method::Get, path, {}),
            100u + static_cast<uint64_t>(i));
    }
    rig.queue.run();
    ASSERT_EQ(rig.responses.size(), 16u);
    for (const auto &[client, resp] : rig.responses)
        EXPECT_NE(resp.find("image/gif"), std::string::npos);
    const auto &stats = rig.server.stats();
    EXPECT_EQ(stats.imageRequests, 16u);
    EXPECT_EQ(stats.imageCohorts, 1u);
    EXPECT_GT(stats.imageBytes, 16u * 8 * 1024);
    // No process cohort was launched for the images.
    EXPECT_EQ(stats.cohortsLaunched, 0u);
    EXPECT_TRUE(rig.server.drained());
}

TEST(RhythmServerExtensions, PartialImageCohortFlushesOnTimeout)
{
    ExtensionRig rig;
    rig.server.injectRequest(
        http::buildRequest(http::Method::Get, "/images/logo.gif", {}), 1);
    rig.server.flush(); // forces the reader batch through the parser
    rig.queue.run();
    ASSERT_EQ(rig.responses.size(), 1u);
    EXPECT_EQ(rig.server.stats().imageCohorts, 1u);
    EXPECT_TRUE(rig.server.drained());
}

TEST(RhythmServerExtensions, QuickPayRunsOnHostFallback)
{
    ExtensionRig rig;
    simt::NullTracer null;
    const uint64_t sid = rig.server.sessions().create(9, null);
    auto payees = rig.db.payees(9);
    ASSERT_FALSE(payees.empty());
    rig.server.injectRequest(
        http::buildRequest(
            http::Method::Post, std::string(specweb::kQuickPayPath),
            {{"payees", std::to_string(payees[0]->payeeId)},
             {"amounts", "20"}},
            "session=" + std::to_string(sid)),
        7);
    rig.server.flush();
    rig.queue.run();
    ASSERT_EQ(rig.responses.size(), 1u);
    EXPECT_NE(rig.responses[0].second.find("Quick Pay Results"),
              std::string::npos);
    EXPECT_EQ(rig.server.stats().hostFallbackRequests, 1u);
    EXPECT_EQ(rig.server.stats().cohortsLaunched, 0u);
    EXPECT_TRUE(rig.server.drained());
}

TEST(RhythmServerExtensions, MixedImagesPagesAndFallback)
{
    ExtensionRig rig;
    simt::NullTracer null;
    specweb::WorkloadGenerator gen(rig.db, 21);
    int expected = 0;
    for (int i = 0; i < 16; ++i) {
        const uint64_t user = 1 + static_cast<uint64_t>(i);
        const uint64_t sid = rig.server.sessions().create(user, null);
        auto page = gen.generate(specweb::RequestType::AccountSummary,
                                 user, sid);
        rig.server.injectRequest(page.raw, 1000u + i);
        ++expected;
        rig.server.injectRequest(
            http::buildRequest(http::Method::Get, "/images/logo.gif", {}),
            2000u + i);
        ++expected;
    }
    rig.queue.run();
    EXPECT_EQ(rig.responses.size(), static_cast<size_t>(expected));
    EXPECT_EQ(rig.server.stats().imageRequests, 16u);
    EXPECT_EQ(rig.server.stats().cohortsLaunched, 1u);
    EXPECT_TRUE(rig.server.drained());
}

} // namespace
} // namespace rhythm
