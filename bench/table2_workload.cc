/**
 * @file
 * Table 2: SPECWeb Banking workload characterization — dynamic x86
 * instructions per request, response sizes (SPECWeb and Rhythm buffer),
 * request mix and backend round trips, measured on our standalone host
 * implementation and printed next to the paper's reference columns.
 */

#include <iostream>

#include "bench/common.hh"
#include "platform/measure.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("table2_workload", argc, argv);
    bench::banner("Table 2: SPECWeb Banking workload characterization",
                  "Table 2 (instructions, response sizes, mix, backend)");

    platform::WorkloadMeasurement wm =
        platform::measureWorkload(100, 2000, 7);

    TableWriter table({"request type", "insts/req (paper)",
                       "response KB (specweb)", "rhythm buffer KB",
                       "mix %", "backend", "validated"});
    for (size_t i = 0; i < specweb::kNumRequestTypes; ++i) {
        const auto &info = specweb::typeTable()[i];
        const auto &tm = wm.perType[i];
        report.metric(bench::slug(info.name) + ".instructions_per_request",
                      tm.instructionsPerRequest);
        table.addRow(
            {std::string(info.name),
             bench::withRef(tm.instructionsPerRequest,
                            info.paperInstructions, 0),
             bench::withRef(tm.responseBytes / 1024.0,
                            info.specwebResponseKb, 1),
             std::to_string(info.rhythmBufferKb),
             bench::fmt(info.mixPercent, 2),
             std::to_string(info.backendRequests),
             bench::fmt(tm.validationRate * 100.0, 0) + "%"});
    }
    table.printAscii(std::cout);
    std::cout << "Mix-weighted mean: "
              << bench::withRef(wm.mixWeightedInstructions, 331507, 0)
              << " insts/req, "
              << bench::withRef(wm.mixWeightedResponseBytes / 1024.0,
                                15.5, 1)
              << " KB/response (measured (paper)).\n"
              << "Paper also reports the simple average 429,563 insts "
                 "and 15.5 KB across types.\n";
    report.config("sessions", 100.0);
    report.config("users", 2000.0);
    report.metric("mix_weighted_instructions", wm.mixWeightedInstructions);
    report.metric("mix_weighted_response_bytes",
                  wm.mixWeightedResponseBytes);
    if (!report.write())
        return 1;
    return 0;
}
