/**
 * @file
 * Room/message store for the Chat workload (paper Section 8 names Chat
 * among the services to deploy on Rhythm).
 *
 * A fixed set of rooms, each a bounded ring of messages. Posts are real
 * mutations — the store is the workload's equivalent of the bank
 * database — and polls/history reads return consistent snapshots, which
 * lets tests assert end-to-end chat semantics through the cohort
 * pipeline.
 */

#ifndef RHYTHM_CHAT_STORE_HH
#define RHYTHM_CHAT_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace rhythm::chat {

/** One chat message. */
struct Message
{
    uint64_t seq = 0; //!< Room-local sequence number (1-based).
    uint64_t userId = 0;
    std::string text;
};

/**
 * The chat rooms.
 *
 * Each room keeps its most recent kRingCapacity messages; the room-wide
 * sequence number keeps growing, so pollers can detect missed messages.
 */
class RoomStore
{
  public:
    /** Messages retained per room. */
    static constexpr size_t kRingCapacity = 128;

    /**
     * @param rooms Number of rooms (ids 1..rooms).
     * @param seed_messages Messages pre-posted per room (synthetic
     *        history).
     * @param seed Deterministic seed.
     */
    RoomStore(uint32_t rooms, uint32_t seed_messages = 40,
              uint64_t seed = 23);

    /** Number of rooms. */
    uint32_t numRooms() const { return rooms_; }

    /** True if the room id exists. */
    bool validRoom(uint32_t room) const
    {
        return room >= 1 && room <= rooms_;
    }

    /** Latest sequence number of a room (0 when empty). */
    uint64_t latestSeq(uint32_t room) const;

    /**
     * Posts a message.
     * @return Its sequence number, or 0 for an invalid room/empty text.
     */
    uint64_t post(uint32_t room, uint64_t user, std::string text);

    /**
     * Returns up to @p max most recent messages (oldest first).
     */
    std::vector<const Message *> history(uint32_t room, size_t max) const;

    /**
     * Returns retained messages with seq > @p since (oldest first).
     */
    std::vector<const Message *> since(uint32_t room,
                                       uint64_t since_seq) const;

    /** Total messages ever posted (across rooms). */
    uint64_t totalPosted() const { return totalPosted_; }

    /** Synthesizes a deterministic chat phrase. */
    static std::string synthesizeText(Rng &rng);

  private:
    struct Room
    {
        std::vector<Message> ring; //!< Ordered oldest → newest.
        uint64_t nextSeq = 1;
    };

    uint32_t rooms_;
    std::vector<Room> store_;
    uint64_t totalPosted_ = 0;
};

} // namespace rhythm::chat

#endif // RHYTHM_CHAT_STORE_HH
