/**
 * @file
 * The backend service: executes wire-protocol requests against BankDb.
 *
 * This is the component the paper calls "Besim". Where it runs differs by
 * platform (the key Titan A / Titan B distinction):
 *  - CPU baselines call it directly ("backend as a function call", §5.3).
 *  - Titan A runs it on host threads, with request/response records
 *    crossing the PCIe link.
 *  - Titan B/C run it "on the device" (the SoC emulation), so no PCIe
 *    transfer and no backend-buffer transpose is needed.
 *
 * Execution is instrumented so the service's dynamic instructions are
 * part of each request's Table 2 cost on CPU platforms.
 */

#ifndef RHYTHM_BACKEND_SERVICE_HH
#define RHYTHM_BACKEND_SERVICE_HH

#include <functional>
#include <string>
#include <string_view>

#include "backend/bankdb.hh"
#include "backend/protocol.hh"
#include "des/time.hh"
#include "fault/plan.hh"
#include "simt/trace.hh"

namespace rhythm::backend {

/** Basic-block identifier base for the backend service. */
inline constexpr uint32_t kBackendBlockBase = 3000;

/**
 * Executes backend requests against a BankDb.
 *
 * Not thread safe; the single-threaded event loop serializes access
 * (matching the paper's lock-free single-thread control design).
 */
class BackendService
{
  public:
    /** Binds the service to a database (not owned). */
    explicit BackendService(BankDb &db) : db_(db) {}

    /**
     * Executes one serialized request.
     * @param request Wire-format request (see protocol.hh).
     * @param rec Trace recorder for instruction accounting.
     * @return Wire-format response ("OK|..." or "ERR|...").
     */
    std::string execute(std::string_view request, simt::TraceRecorder &rec);

    /** Typed convenience overload. */
    std::string execute(const BackendRequest &request,
                        simt::TraceRecorder &rec);

    /** Number of requests executed (for harness accounting). */
    uint64_t requestsServed() const { return requestsServed_; }

    /**
     * Installs a fault plan (not owned; nullptr disarms). When armed,
     * each execution first consults Site::BackendFail and answers
     * "ERR|unavailable" on a hit — the host-path injection point for
     * harnesses that call the backend directly (the CPU baseline). Do
     * NOT also install a plan on the RhythmServer feeding this service,
     * or each backend call is consulted twice.
     * @param clock Supplies the current simulated time for schedule
     *        windows (nullptr = always time 0).
     */
    void setFaultPlan(fault::FaultPlan *plan,
                      std::function<des::Time()> clock = nullptr);

    /** Requests answered "ERR|unavailable" by the installed plan. */
    uint64_t faultsInjected() const { return faultsInjected_; }

    /** The installed fault plan (nullptr when disarmed). The recovery
     *  layer disarms it around journal replay — replayed operations
     *  already passed injection once and must reproduce their recorded
     *  outcome, not roll new faults. */
    fault::FaultPlan *faultPlan() const { return faultPlan_; }

    /** The clock installed alongside the fault plan. */
    const std::function<des::Time()> &faultClock() const { return clock_; }

  private:
    BankDb &db_;
    uint64_t requestsServed_ = 0;
    fault::FaultPlan *faultPlan_ = nullptr;
    std::function<des::Time()> clock_;
    uint64_t faultsInjected_ = 0;
};

} // namespace rhythm::backend

#endif // RHYTHM_BACKEND_SERVICE_HH
