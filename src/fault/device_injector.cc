#include "fault/device_injector.hh"

namespace rhythm::fault {

void
installDeviceFaults(simt::Device &device, FaultPlan &plan,
                    des::EventQueue &queue)
{
    simt::DeviceFaultHooks hooks;
    hooks.commandStall = [&plan, &queue]() -> des::Time {
        const Decision d = plan.at(Site::StreamStall, queue.now());
        return d.fire ? d.delay : 0;
    };
    // With the frame-CRC link model on, Site::PcieCorrupt is consulted
    // per frame through frameCorrupt; the legacy whole-transfer replay
    // path must then NOT consult it again, or one corruption schedule
    // would be drawn twice per copy.
    const bool frame_crc = device.config().pcieCrcEnabled;
    hooks.copyExtra = [&plan, &queue, frame_crc](
                          bool, uint64_t, des::Time nominal) -> des::Time {
        des::Time extra = 0;
        if (!frame_crc) {
            const Decision corrupt =
                plan.at(Site::PcieCorrupt, queue.now());
            if (corrupt.fire) {
                // Corruption is detected by the link-layer LCRC and the
                // transfer replays: the payload crosses the wire twice.
                extra += nominal;
            }
        }
        const Decision degrade = plan.at(Site::PcieDegrade, queue.now());
        if (degrade.fire && degrade.factor > 1.0) {
            extra += des::fromSeconds(des::toSeconds(nominal) *
                                      (degrade.factor - 1.0));
        }
        return extra;
    };
    if (frame_crc) {
        hooks.frameCorrupt = [&plan, &queue](bool) -> bool {
            return plan.at(Site::PcieCorrupt, queue.now()).fire;
        };
    }
    device.setFaultHooks(std::move(hooks));
}

} // namespace rhythm::fault
