
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simt/device.cc" "src/simt/CMakeFiles/rhythm_simt.dir/device.cc.o" "gcc" "src/simt/CMakeFiles/rhythm_simt.dir/device.cc.o.d"
  "/root/repo/src/simt/kernel.cc" "src/simt/CMakeFiles/rhythm_simt.dir/kernel.cc.o" "gcc" "src/simt/CMakeFiles/rhythm_simt.dir/kernel.cc.o.d"
  "/root/repo/src/simt/trace.cc" "src/simt/CMakeFiles/rhythm_simt.dir/trace.cc.o" "gcc" "src/simt/CMakeFiles/rhythm_simt.dir/trace.cc.o.d"
  "/root/repo/src/simt/warp.cc" "src/simt/CMakeFiles/rhythm_simt.dir/warp.cc.o" "gcc" "src/simt/CMakeFiles/rhythm_simt.dir/warp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rhythm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/rhythm_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
