# Empty dependencies file for fidelity_test.
# This may be replaced when dependencies are built.
