file(REMOVE_RECURSE
  "../bench/table3_platforms"
  "../bench/table3_platforms.pdb"
  "CMakeFiles/table3_platforms.dir/table3_platforms.cc.o"
  "CMakeFiles/table3_platforms.dir/table3_platforms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
