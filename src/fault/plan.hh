/**
 * @file
 * Deterministic fault injection for the Rhythm pipeline.
 *
 * A FaultPlan is a seeded oracle that injectors consult at well-defined
 * sites: backend request failure/slowdown (host and on-device paths),
 * PCIe transfer corruption and bandwidth degradation, device stream
 * stalls, and mid-pipeline client disconnects. Because the whole system
 * is a discrete-event simulation, consultations happen in a fixed order
 * for a fixed seed, so every failure scenario is exactly reproducible —
 * the property a real GPU testbed cannot give you.
 *
 * Determinism contract:
 *  - each site owns an independent RNG stream (derived from the plan
 *    seed and the site index), so adding a consultation at one site
 *    never perturbs the decisions of another;
 *  - every consultation draws the same number of variates whether or
 *    not the fault fires, so decision streams stay aligned across
 *    configuration sweeps of other sites.
 *
 * All probabilities default to zero: a default FaultConfig injects
 * nothing and a null plan pointer is always a valid "faults off" state.
 */

#ifndef RHYTHM_FAULT_PLAN_HH
#define RHYTHM_FAULT_PLAN_HH

#include <array>
#include <cstdint>
#include <set>
#include <string_view>

#include "des/time.hh"
#include "util/rng.hh"

namespace rhythm::fault {

/** Injection sites a FaultPlan can be consulted at. */
enum class Site : uint32_t {
    /** A backend request fails (service unavailable). Consulted once
     *  per executed backend call, including retries. */
    BackendFail = 0,
    /** The backend service browns out: one cohort backend round trip
     *  takes extra time. Consulted once per cohort backend stage. */
    BackendSlow,
    /** A PCIe transfer is corrupted in flight. The link layer detects
     *  it (LCRC) and replays the transfer, so the observable effect is
     *  a doubled transfer time. Consulted once per copy. */
    PcieCorrupt,
    /** PCIe bandwidth degradation (link retraining, lane drop): the
     *  transfer runs slower by `factor`. Consulted once per copy. */
    PcieDegrade,
    /** A device stream stalls before its next command starts. */
    StreamStall,
    /** The client disconnects mid-pipeline; the response cannot be
     *  delivered. Consulted once per accepted request. */
    ClientDisconnect,
    /** The backend process crashes and restarts, losing all in-memory
     *  state; the recovery layer restores the last checkpoint and
     *  replays its journal. Consulted once per journaled mutating
     *  backend operation. */
    BackendCrash,
    /** The crash tears the final journal record (a partial write hit
     *  the disk): replay must detect and drop it. Consulted once per
     *  fired BackendCrash, as a sub-decision. */
    JournalTorn,
    /** A cohort's kernel wedges (infinite-loop-equivalent straggler):
     *  the stream makes no progress until the hang resolves; the
     *  watchdog hedges the cohort instead of waiting. Consulted once
     *  per cohort launch when a plan is armed. */
    KernelHang,
};

/** Number of distinct injection sites. */
inline constexpr size_t kNumSites = 9;

/** Printable site name. */
std::string_view siteName(Site site);

/** Per-site probability/duration schedule. */
struct SiteSchedule
{
    /** Probability a consultation fires, in [0, 1]. */
    double probability = 0.0;
    /** Mean of the exponential extra delay for delay-type sites. */
    des::Time meanDelay = 0;
    /** Slowdown multiplier for rate-degradation sites (>= 1). */
    double factor = 1.0;
    /** Faults only fire inside [activeFrom, activeUntil). */
    des::Time activeFrom = 0;
    des::Time activeUntil = ~des::Time{0};
};

/** Full plan configuration: a seed plus one schedule per site. */
struct FaultConfig
{
    /** Seed for the per-site RNG streams. */
    uint64_t seed = 1;
    /** Schedules indexed by static_cast<size_t>(Site). */
    std::array<SiteSchedule, kNumSites> sites;

    /** Mutable schedule accessor. */
    SiteSchedule &at(Site site)
    {
        return sites[static_cast<size_t>(site)];
    }
    /** Schedule accessor. */
    const SiteSchedule &at(Site site) const
    {
        return sites[static_cast<size_t>(site)];
    }
    /** True when no site can ever fire. */
    bool allQuiet() const;
};

/** Outcome of one consultation. */
struct Decision
{
    /** The fault fires. */
    bool fire = false;
    /** Extra delay to apply (delay-type sites; 0 otherwise). */
    des::Time delay = 0;
    /** Rate multiplier to apply (degradation sites; 1.0 otherwise). */
    double factor = 1.0;
};

/**
 * The seeded fault oracle.
 *
 * Thread-compatibility matches the rest of the library: single-threaded
 * use from the owning event loop only.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(const FaultConfig &config);

    /**
     * Consults the plan at a site.
     * @param site Injection site.
     * @param now Current simulated time (schedules are windowed).
     */
    Decision at(Site site, des::Time now);

    /**
     * Schedules a targeted fault: the @p ordinal-th consultation of
     * @p site (0-based) fires regardless of probability. Used by tests
     * to poison exactly one lane/transfer deterministically.
     */
    void scheduleFault(Site site, uint64_t ordinal);

    /** Consultations so far at a site. */
    uint64_t consultations(Site site) const;

    /** Faults fired so far at a site. */
    uint64_t injected(Site site) const;

    /** Faults fired so far across all sites. */
    uint64_t totalInjected() const;

    /** The configuration the plan was built from. */
    const FaultConfig &config() const { return config_; }

  private:
    struct SiteState
    {
        Rng rng{1};
        uint64_t consultations = 0;
        uint64_t injected = 0;
        std::set<uint64_t> scheduled;
    };

    FaultConfig config_;
    std::array<SiteState, kNumSites> state_;
};

} // namespace rhythm::fault

#endif // RHYTHM_FAULT_PLAN_HH
