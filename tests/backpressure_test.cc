/**
 * @file
 * Structural-hazard and backpressure tests for the Rhythm pipeline:
 * reader double-buffer stalls, cohort-pool exhaustion, dispatch
 * queueing, and the transposeRegionLoads helper.
 */

#include <gtest/gtest.h>

#include "backend/bankdb.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/buffers.hh"
#include "rhythm/server.hh"
#include "simt/warp.hh"
#include "specweb/workload.hh"

namespace rhythm::core {
namespace {

simt::NullTracer gNull;

struct Rig
{
    explicit Rig(RhythmConfig cfg)
        : db(300, 13), device(queue, simt::DeviceConfig{}),
          service(db), server(queue, device, service, cfg), gen(db, 31)
    {
        server.setResponseCallback([this](uint64_t, std::string_view,
                                          des::Time) { ++completed; });
    }

    std::string
    request(specweb::RequestType type, uint64_t user)
    {
        const uint64_t sid = type == specweb::RequestType::Login
                                 ? 0
                                 : server.sessions().create(user, gNull);
        return gen.generate(type, user, sid).raw;
    }

    des::EventQueue queue;
    backend::BankDb db;
    simt::Device device;
    BankingService service;
    RhythmServer server;
    specweb::WorkloadGenerator gen;
    int completed = 0;
};

RhythmConfig
tinyConfig()
{
    RhythmConfig cfg;
    cfg.cohortSize = 8;
    cfg.cohortContexts = 2;
    cfg.cohortTimeout = des::kMillisecond;
    cfg.backendOnDevice = true;
    cfg.networkOverPcie = false;
    return cfg;
}

TEST(Backpressure, ReaderStallsWhenBothBuffersFull)
{
    Rig rig(tinyConfig());
    // Without running the event loop, the parser cannot complete: after
    // one batch is in the parser and the forming buffer fills, further
    // injections are refused (the reader's double-buffer stall).
    int accepted = 0;
    for (int i = 0; i < 64; ++i) {
        if (rig.server.injectRequest(
                rig.request(specweb::RequestType::Transfer,
                            1 + static_cast<uint64_t>(i)),
                static_cast<uint64_t>(i)))
            ++accepted;
    }
    EXPECT_LT(accepted, 64);
    EXPECT_GE(accepted, 16); // two buffers' worth at least
    // Draining the event loop frees the reader again.
    rig.queue.run();
    EXPECT_TRUE(rig.server.injectRequest(
        rig.request(specweb::RequestType::Transfer, 100), 999));
    rig.server.flush();
    rig.queue.run();
    EXPECT_EQ(rig.completed, accepted + 1);
    EXPECT_TRUE(rig.server.drained());
}

TEST(Backpressure, PoolExhaustionQueuesDispatchButCompletes)
{
    // Three request types with only two cohort contexts: the third
    // type's requests wait in the dispatch queue until a context frees,
    // but everything completes.
    Rig rig(tinyConfig());
    std::vector<std::string> raws;
    for (int i = 0; i < 8; ++i) {
        const uint64_t u = 1 + static_cast<uint64_t>(i);
        raws.push_back(rig.request(specweb::RequestType::Transfer, u));
        raws.push_back(
            rig.request(specweb::RequestType::AccountSummary, u));
        raws.push_back(rig.request(specweb::RequestType::BillPay, u));
    }
    uint64_t id = 0;
    for (const std::string &raw : raws) {
        while (!rig.server.injectRequest(raw, id))
            rig.queue.run();
        ++id;
    }
    rig.server.flush();
    rig.queue.run();
    // flush() may leave late-queued dispatch entries in fresh partial
    // cohorts; the timeout launches them.
    rig.queue.run();
    EXPECT_EQ(rig.completed, 24);
    EXPECT_TRUE(rig.server.drained());
    EXPECT_EQ(rig.server.stats().responsesCompleted, 24u);
}

TEST(Backpressure, HeavyOverloadDrainsEventually)
{
    RhythmConfig cfg = tinyConfig();
    cfg.cohortContexts = 3;
    // One fresh session per request: size the array for all of them.
    cfg.sessionNodesPerBucket = 128;
    Rig rig(cfg);
    uint64_t id = 0;
    for (int round = 0; round < 16; ++round) {
        for (int i = 0; i < 24; ++i) {
            const std::string raw = rig.request(
                static_cast<specweb::RequestType>(i % 3 + 1),
                1 + static_cast<uint64_t>(i));
            while (!rig.server.injectRequest(raw, id))
                rig.queue.run();
            ++id;
        }
    }
    rig.server.flush();
    rig.queue.run();
    rig.queue.run();
    EXPECT_EQ(rig.server.stats().responsesCompleted, id);
    EXPECT_TRUE(rig.server.drained());
    EXPECT_EQ(rig.server.stats().errorResponses, 0u);
}

TEST(Shedding, BacklogShedsAtExactLimitNotBelow)
{
    // The backlog shedder's contract is `backlog >= limit`: with the
    // limit at 10, the first 10 injections (which each observe a
    // backlog of 0..9) are admitted and the 11th (observing exactly
    // 10) is shed. No event-loop runs in between, so the backlog is
    // exactly the forming reader batch.
    RhythmConfig cfg = tinyConfig();
    cfg.cohortSize = 64; // everything stays in the reader batch
    cfg.shedBacklogLimit = 10;
    Rig rig(cfg);
    for (uint64_t i = 0; i < 10; ++i) {
        EXPECT_TRUE(rig.server.injectRequest(
            rig.request(specweb::RequestType::AccountSummary, 1 + i),
            i));
        EXPECT_EQ(rig.server.stats().requestsShed, 0u)
            << "injection " << i << " observed backlog " << i
            << " < limit and must not shed";
    }
    EXPECT_TRUE(rig.server.injectRequest(
        rig.request(specweb::RequestType::AccountSummary, 11), 10));
    EXPECT_EQ(rig.server.stats().requestsShed, 1u);
    // Draining the backlog re-admits: the boundary is evaluated per
    // request, not latched.
    rig.server.flush();
    rig.queue.run();
    rig.queue.run();
    EXPECT_TRUE(rig.server.injectRequest(
        rig.request(specweb::RequestType::AccountSummary, 12), 11));
    EXPECT_EQ(rig.server.stats().requestsShed, 1u);
    rig.server.flush();
    rig.queue.run();
    // 11 real responses; the shed request got an immediate 503 (also
    // delivered through the response callback).
    EXPECT_EQ(rig.server.stats().responsesCompleted, 11u);
    EXPECT_EQ(rig.completed, 12);
}

TEST(Shedding, SloShedderNeedsMinimumSamplesExactly)
{
    // The latency shedder arms only once kMinSloSamples (64)
    // completions are observed: an injection with 63 samples in the
    // window is admitted even with an absurdly tight SLO; the next,
    // with exactly 64, is shed.
    RhythmConfig cfg = tinyConfig();
    cfg.cohortSize = 32;
    cfg.shedLatencySlo = des::kMicrosecond; // all real latencies exceed
    Rig rig(cfg);
    auto wave = [&](uint64_t base, int n) {
        for (int i = 0; i < n; ++i)
            ASSERT_TRUE(rig.server.injectRequest(
                rig.request(specweb::RequestType::AccountSummary,
                            1 + base + static_cast<uint64_t>(i)),
                base + static_cast<uint64_t>(i)));
        rig.server.flush();
        rig.queue.run();
        rig.queue.run();
    };
    wave(0, 32);
    wave(32, 31);
    EXPECT_EQ(rig.completed, 63);
    EXPECT_EQ(rig.server.stats().requestsShed, 0u);
    // 63 observed samples: below the minimum, admitted.
    EXPECT_TRUE(rig.server.injectRequest(
        rig.request(specweb::RequestType::AccountSummary, 100), 100));
    EXPECT_EQ(rig.server.stats().requestsShed, 0u);
    rig.server.flush();
    rig.queue.run();
    rig.queue.run();
    EXPECT_EQ(rig.completed, 64);
    // 64 observed samples and p99 >> 1 us: the next injection sheds.
    EXPECT_TRUE(rig.server.injectRequest(
        rig.request(specweb::RequestType::AccountSummary, 101), 101));
    EXPECT_EQ(rig.server.stats().requestsShed, 1u);
}

TEST(Shedding, AdaptiveAdmissionShedsUnderOverloadAndReadmitsOnDrain)
{
    // Deadline-aware admission (DESIGN.md 6i): open-loop arrivals far
    // above the tiny pipeline's capacity must trip the measured-drain
    // shedder; once the burst ends and the backlog drains, the server
    // must leave degraded mode and admit new work again.
    RhythmConfig cfg = tinyConfig();
    cfg.adaptiveBatching = true;
    cfg.defaultDeadline = des::kMillisecond;
    cfg.sessionNodesPerBucket = 128;
    Rig rig(cfg);
    // Seed the launch-rate and cost models: the admission test stays
    // disarmed until at least 8 launch gaps have been measured.
    uint64_t id = 0;
    for (int w = 0; w < 12; ++w) {
        for (int i = 0; i < 8; ++i) {
            ASSERT_TRUE(rig.server.injectRequest(
                rig.request(specweb::RequestType::AccountSummary,
                            1 + id % 150),
                id));
            ++id;
        }
        rig.server.flush();
        rig.queue.run();
        rig.queue.run();
    }
    EXPECT_EQ(rig.server.stats().requestsShed, 0u);
    EXPECT_EQ(rig.server.stats().adaptiveAdmissionSheds, 0u);

    // Open-loop burst at ~100K/s against a pipeline that serves a few
    // thousand per second: the dispatch backlog blows straight past
    // the drain threshold mid-run.
    uint64_t dropped = 0;
    std::function<void(int)> arrive = [&](int remaining) {
        if (remaining == 0)
            return;
        if (!rig.server.injectRequest(
                rig.request(specweb::RequestType::AccountSummary,
                            1 + id % 150),
                id))
            ++dropped;
        ++id;
        rig.queue.scheduleAfter(10 * des::kMicrosecond,
                                [&arrive, remaining]() {
                                    arrive(remaining - 1);
                                });
    };
    arrive(300);
    rig.queue.run();
    const uint64_t burst_sheds = rig.server.stats().adaptiveAdmissionSheds;
    EXPECT_GT(burst_sheds, 0u);
    EXPECT_GT(rig.server.stats().degradedTime, des::Time(0));

    // Fully drained: the very next injection must be admitted (the
    // drain estimate is zero again) and complete normally.
    rig.server.flush();
    rig.queue.run();
    rig.queue.run();
    EXPECT_TRUE(rig.server.drained());
    const int completed_before = rig.completed;
    ASSERT_TRUE(rig.server.injectRequest(
        rig.request(specweb::RequestType::AccountSummary, 7), id));
    EXPECT_EQ(rig.server.stats().adaptiveAdmissionSheds, burst_sheds);
    rig.server.flush();
    rig.queue.run();
    rig.queue.run();
    EXPECT_EQ(rig.completed, completed_before + 1);
    EXPECT_TRUE(rig.server.drained());
}

TEST(TransposeRegionLoads, RewritesOnlySlotLoads)
{
    simt::ThreadTrace trace;
    simt::RecordingTracer rec(trace);
    rec.block(1, 10);
    rec.load(0x9000'0000 + 2 * 1024 + 64, 4, 4, 4); // lane 2's slot
    rec.load(0x5000'0000, 4, 4, 4);                 // unrelated region
    rec.store(0x9000'0000 + 2 * 1024 + 8, 1, 0, 4); // store: untouched

    transposeRegionLoads(trace, 0x9000'0000, 2, 1024, 32);

    // Slot load rewritten to column-major: element 16 (byte 64) of lane
    // 2 in a 32-lane region = base + 16*32*4 + 2*4.
    EXPECT_EQ(trace.memOps[0].addr, 0x9000'0000u + 16 * 32 * 4 + 2 * 4);
    EXPECT_EQ(trace.memOps[0].stride, 32u * 4);
    // Others untouched.
    EXPECT_EQ(trace.memOps[1].addr, 0x5000'0000u);
    EXPECT_EQ(trace.memOps[1].stride, 4u);
    EXPECT_EQ(trace.memOps[2].addr, 0x9000'0000u + 2 * 1024 + 8);
}

TEST(TransposeRegionLoads, MakesWarpLoadsCoalesce)
{
    // 32 lanes each load the same offsets of their row-major slots:
    // uncoalesced before rewriting, fully coalesced after.
    auto build = [](bool transpose) {
        std::vector<simt::ThreadTrace> traces(32);
        for (uint32_t l = 0; l < 32; ++l) {
            simt::RecordingTracer rec(traces[l]);
            rec.block(1, 10);
            rec.load(0x9000'0000 + l * 512, 32, 4, 4);
            if (transpose)
                transposeRegionLoads(traces[l], 0x9000'0000, l, 512, 32);
        }
        std::vector<const simt::ThreadTrace *> ptrs;
        for (auto &t : traces)
            ptrs.push_back(&t);
        return simt::KernelProfile::fromTraces(ptrs, simt::WarpModel{},
                                               "t");
    };
    const auto row = build(false);
    const auto col = build(true);
    EXPECT_GT(row.totals.globalTransactions,
              col.totals.globalTransactions * 10);
    EXPECT_GT(col.totals.coalescingEfficiency(), 0.99);
}

} // namespace
} // namespace rhythm::core
