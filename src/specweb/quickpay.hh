/**
 * @file
 * Quick pay: the Banking request the paper's prototype could not run on
 * the device ("a variable number of kernel launches based on backend
 * data", Section 5.1) and therefore the canonical host-fallback case —
 * Rhythm's dispatch routes requests that do not fit the data-parallel
 * model to the general purpose CPU (Section 3.1).
 *
 * Quick pay executes several bill payments in a single request: the
 * number of backend round trips depends on the submitted payee list, so
 * no fixed stage pipeline fits it.
 */

#ifndef RHYTHM_SPECWEB_QUICKPAY_HH
#define RHYTHM_SPECWEB_QUICKPAY_HH

#include <string>

#include "backend/service.hh"
#include "http/http.hh"
#include "specweb/context.hh"

namespace rhythm::specweb {

/** URL path of the quick pay page. */
inline constexpr std::string_view kQuickPayPath = "/bank/quick_pay.php";

/**
 * Serves one quick pay request synchronously (host execution).
 *
 * Parameters: "payees" and "amounts" — comma-separated lists of equal
 * length; each pair becomes one bill payment.
 *
 * @param request Parsed request (session cookie required).
 * @param backend Backend service (executed as direct calls).
 * @param sessions Session store.
 * @param rec Trace recorder charged with all work.
 * @return Complete HTTP response (confirmation page or error page).
 */
std::string serveQuickPay(const http::Request &request,
                          backend::BackendService &backend,
                          SessionProvider &sessions,
                          simt::TraceRecorder &rec);

} // namespace rhythm::specweb

#endif // RHYTHM_SPECWEB_QUICKPAY_HH
