#include "backend/recovery.hh"

#include <charconv>

#include "obs/obs.hh"
#include "util/logging.hh"

namespace rhythm::backend {
namespace {

/** Separator between request and response in a 'B' record payload. */
constexpr char kReqRespSep = '\x1f';

uint64_t
parseU64(std::string_view text)
{
    uint64_t v = 0;
    std::from_chars(text.data(), text.data() + text.size(), v);
    return v;
}

} // namespace

bool
RecoverableBackend::isMutating(Op op)
{
    switch (op) {
      case Op::AddPayee:
      case Op::PayBill:
      case Op::UpdateProfile:
      case Op::OrderCheck:
      case Op::PlaceCheckOrder:
      case Op::Transfer:
      case Op::XferOut:
      case Op::XferIn:
        return true;
      default:
        return false;
    }
}

RecoverableBackend::RecoverableBackend(BackendService &service, BankDb &db,
                                       RecoveryConfig config)
    : service_(service), db_(db), config_(config)
{
    checkpoint();
    stats_.checkpoints = 0; // the baseline copy is not a checkpoint event
}

void
RecoverableBackend::setFaultPlan(fault::FaultPlan *plan,
                                 std::function<des::Time()> clock)
{
    faultPlan_ = plan;
    clock_ = std::move(clock);
}

void
RecoverableBackend::setSessionHooks(SessionHooks hooks)
{
    sessionHooks_ = std::move(hooks);
    // Re-baseline so the checkpoint covers the session array too.
    checkpoint();
    stats_.checkpoints = 0;
}

void
RecoverableBackend::appendRecord(char kind, uint64_t token,
                                 std::string payload)
{
    JournalRecord rec;
    rec.kind = kind;
    rec.token = token;
    rec.payload = std::move(payload);
    journal_.append(rec);
    ++stats_.journaledRecords;
    OBS_COUNTER_ADD("recovery.journaled_records", 1);
}

void
RecoverableBackend::journalSessionCreate(uint64_t session_id,
                                         uint64_t user_id)
{
    if (replaying_)
        return;
    appendRecord('C', session_id, std::to_string(user_id));
}

void
RecoverableBackend::journalSessionDestroy(uint64_t session_id)
{
    if (replaying_)
        return;
    appendRecord('D', session_id, std::string());
}

std::string
RecoverableBackend::execute(std::string_view request, uint64_t token,
                            simt::TraceRecorder &rec)
{
    BackendRequest parsed;
    if (!BackendRequest::parse(request, parsed) || !isMutating(parsed.op))
        return service_.execute(request, rec);

    if (auto it = memo_.find(token); it != memo_.end()) {
        ++stats_.memoHits;
        OBS_COUNTER_ADD("recovery.memo_hits", 1);
        return it->second;
    }

    // Draw the crash decision up front: the crash "happens" while this
    // operation is in flight, i.e. after apply+append but before the
    // response escapes the process (the worst case log-before-respond
    // has to cover).
    fault::Decision crash;
    if (faultPlan_)
        crash = faultPlan_->at(fault::Site::BackendCrash,
                               clock_ ? clock_() : 0);

    std::string response = service_.execute(request, rec);
    memo_[token] = response;
    {
        std::string payload;
        payload.reserve(request.size() + response.size() + 1);
        payload.append(request);
        payload.push_back(kReqRespSep);
        payload.append(response);
        appendRecord('B', token, std::move(payload));
    }

    if (crash.fire) {
        ++stats_.crashes;
        OBS_COUNTER_ADD("recovery.crashes", 1);
        const bool torn =
            faultPlan_ &&
            faultPlan_->at(fault::Site::JournalTorn, clock_ ? clock_() : 0)
                .fire;
        crashAndRecover(torn);
        if (torn) {
            // This operation's record was the torn tail: its effect and
            // response are gone. The client retry (same token) finds no
            // memo entry and re-executes — applied exactly once overall.
            ++stats_.reexecutions;
            OBS_COUNTER_ADD("recovery.reexecutions", 1);
            response = service_.execute(request, rec);
            memo_[token] = response;
            std::string payload;
            payload.reserve(request.size() + response.size() + 1);
            payload.append(request);
            payload.push_back(kReqRespSep);
            payload.append(response);
            appendRecord('B', token, std::move(payload));
        } else {
            response = memo_.at(token);
        }
    }
    maybeCheckpoint();
    return response;
}

void
RecoverableBackend::checkpoint()
{
    dbCheckpoint_ = std::make_unique<BankDb>(db_);
    memoCheckpoint_ = memo_;
    if (sessionHooks_.checkpoint)
        sessionHooks_.checkpoint();
    journal_.clear();
    ++stats_.checkpoints;
    OBS_COUNTER_ADD("recovery.checkpoints", 1);
}

void
RecoverableBackend::maybeCheckpoint()
{
    if (config_.checkpointInterval > 0 &&
        journal_.records() >= config_.checkpointInterval)
        checkpoint();
}

void
RecoverableBackend::crashAndRecover(bool torn)
{
    if (torn)
        journal_.tearLastRecord();

    // Everything in memory dies with the process; only the checkpoint
    // and the journal image survive.
    const Journal::ScanResult scanned = Journal::scan(journal_.data());
    if (scanned.torn) {
        ++stats_.tornRecords;
        OBS_COUNTER_ADD("recovery.torn_records", 1);
    }
    db_ = *dbCheckpoint_;
    memo_ = memoCheckpoint_;
    if (sessionHooks_.restore)
        sessionHooks_.restore();

    // Replay with injection disarmed: replayed operations already
    // passed injection once and must reproduce their recorded outcome.
    replaying_ = true;
    fault::FaultPlan *saved_plan = service_.faultPlan();
    std::function<des::Time()> saved_clock = service_.faultClock();
    if (saved_plan)
        service_.setFaultPlan(nullptr);
    simt::NullTracer null;
    for (const JournalRecord &rec : scanned.records) {
        ++stats_.replayedRecords;
        OBS_COUNTER_ADD("recovery.replayed_records", 1);
        if (rec.kind == 'B') {
            const size_t sep = rec.payload.find(kReqRespSep);
            RHYTHM_ASSERT(sep != std::string::npos,
                          "malformed backend journal payload");
            const std::string_view request(rec.payload.data(), sep);
            const std::string_view recorded(rec.payload.data() + sep + 1,
                                            rec.payload.size() - sep - 1);
            const std::string replayed = service_.execute(request, null);
            if (replayed != recorded)
                ++stats_.replayMismatches;
            memo_[rec.token] = std::string(recorded);
        } else if (rec.kind == 'C') {
            const uint64_t replayed_sid =
                sessionHooks_.replayCreate
                    ? sessionHooks_.replayCreate(parseU64(rec.payload))
                    : 0;
            if (replayed_sid != rec.token)
                ++stats_.replayMismatches;
        } else {
            if (sessionHooks_.replayDestroy &&
                !sessionHooks_.replayDestroy(rec.token))
                ++stats_.replayMismatches;
        }
    }
    if (saved_plan)
        service_.setFaultPlan(saved_plan, saved_clock);
    replaying_ = false;

    // The torn tail never made it to disk: drop it from the image so
    // post-recovery appends continue from the last good record.
    if (scanned.torn) {
        std::string survivors = journal_.data();
        survivors.resize(survivors.size() - scanned.tornBytes);
        journal_.setData(std::move(survivors), scanned.records.size());
    }
}

} // namespace rhythm::backend
