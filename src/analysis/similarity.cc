#include "analysis/similarity.hh"

#include <algorithm>

#include "backend/bankdb.hh"
#include "host/server.hh"
#include "simt/warp.hh"
#include "specweb/workload.hh"
#include "util/logging.hh"

namespace rhythm::analysis {

SimilarityResult
measureSimilarity(const std::vector<const simt::ThreadTrace *> &traces)
{
    SimilarityResult result;
    result.traceCount = traces.size();
    if (traces.empty())
        return result;

    // Merge with the SIMT lockstep scheduler, widened so all traces
    // occupy one "warp" (the paper's idealized SIMD hardware).
    simt::WarpModel model;
    model.warpWidth = std::max<int>(32, static_cast<int>(traces.size()));
    simt::WarpStats ws = simt::simulateWarp(
        std::span<const simt::ThreadTrace *const>(traces.data(),
                                                  traces.size()),
        model);
    result.sumBlocks = ws.laneBlockExecs;
    result.mergedBlocks = ws.steps;
    if (ws.steps > 0)
        result.speedup = static_cast<double>(ws.laneBlockExecs) /
                         static_cast<double>(ws.steps);
    result.normalizedSpeedup =
        result.speedup / static_cast<double>(traces.size());
    return result;
}

std::vector<simt::ThreadTrace>
captureRequestTraces(specweb::RequestType type, int count, uint64_t users,
                     uint64_t seed)
{
    backend::BankDb db(users, seed);
    specweb::MapSessionProvider sessions;
    host::HostServer server(db, sessions);
    specweb::WorkloadGenerator gen(db, seed * 131 + 7);
    simt::NullTracer null;

    std::vector<simt::ThreadTrace> traces(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        const uint64_t user = gen.sampleUser();
        const uint64_t sid = type == specweb::RequestType::Login
                                 ? 0
                                 : sessions.create(user, null);
        specweb::GeneratedRequest req = gen.generate(type, user, sid);
        // Traces are merged per request *form* (the paper merges traces
        // that follow the same top-level flow): bill_pay_status_output
        // has two forms — execute-payment and list-history — so pin the
        // dominant history form.
        while (type == specweb::RequestType::BillPayStatusOutput &&
               req.raw.find("payee=") != std::string::npos)
            req = gen.generate(type, user, sid);
        simt::RecordingTracer rec(traces[static_cast<size_t>(i)]);
        server.serve(req.raw, rec);
    }
    return traces;
}

} // namespace rhythm::analysis
