/**
 * @file
 * The Rhythm server: a single-threaded, event-driven, cohort-pipelined
 * web server executing on the simulated SIMT device (paper Sections 3-4).
 *
 * Pipeline: Reader (double-buffered batches) → request-buffer transpose →
 * Parser kernel → Dispatch (host; groups parsed requests into typed
 * cohorts) → Process stages interleaved with Backend access → response
 * transpose → Response. Each typed cohort rides a device stream; multiple
 * cohorts are kept in flight to saturate the device (HyperQ).
 *
 * Platform variants from the paper map onto the configuration:
 *  - Titan A: networkOverPcie=true, backendOnDevice=false — request,
 *    response and backend records cross the PCIe link; backend runs on
 *    host threads.
 *  - Titan B: networkOverPcie=false, backendOnDevice=true — SoC-style
 *    integrated NIC and device backend.
 *  - Titan C: Titan B + offloadResponseTranspose=true — the response
 *    transpose is performed by NIC/memory-controller hardware.
 *
 * Handlers execute for real (the responses are genuine, validatable
 * HTTP), producing per-thread traces that the SIMT model turns into
 * kernel costs. For large cohorts the server can execute a sample of
 * lanes and scale the kernel profiles (laneSample), the standard
 * sampling trade made by architectural simulators.
 */

#ifndef RHYTHM_RHYTHM_SERVER_HH
#define RHYTHM_RHYTHM_SERVER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "des/event_queue.hh"
#include "rhythm/buffers.hh"
#include "rhythm/cohort.hh"
#include "rhythm/service.hh"
#include "rhythm/session_array.hh"
#include "simt/device.hh"
#include "specweb/static_content.hh"
#include "util/stats.hh"

namespace rhythm::core {

/** Rhythm server configuration. */
struct RhythmConfig
{
    /** Requests per cohort (paper sweet spot: 4096). */
    uint32_t cohortSize = 4096;
    /** Cohort contexts ≈ cohorts in flight (paper: 8 on the Titan). */
    uint32_t cohortContexts = 8;
    /** Cohort-formation timeout for partial cohorts. */
    des::Time cohortTimeout = 2 * des::kMillisecond;
    /** Run the backend on the device (Titan B/C) vs host (Titan A). */
    bool backendOnDevice = false;
    /** Requests/responses cross the PCIe link (discrete GPU, Titan A). */
    bool networkOverPcie = true;
    /** Transpose cohort buffers for coalesced access (Section 4.3.2). */
    bool transposeBuffers = true;
    /** Warp-max whitespace padding of responses. */
    bool padResponses = true;
    /** Offload the response transpose to NIC/DRAM logic (Titan C). */
    bool offloadResponseTranspose = false;
    /** Host backend service rate (vector-interface KV store, §2.2.3). */
    double hostBackendReqsPerSec = 10e6;
    /** PCIe slot bytes reserved per raw request (paper: 1 KiB). */
    uint32_t requestSlotBytes = 1024;
    /** Execute only this many lanes per cohort and scale profiles
     *  (0 = execute every lane; use powers of the warp width). */
    uint32_t laneSample = 0;
    /** Session array depth (capacity = cohortSize × this). */
    uint32_t sessionNodesPerBucket = 16;
    /**
     * Host instruction rate for fallback execution (quick pay and other
     * requests that do not fit the data-parallel model, Section 3.1).
     */
    double hostFallbackInstsPerSec = 20e9;
    /** Warp model for kernel profiling. */
    simt::WarpModel warpModel;
};

/** Aggregate server statistics. */
struct RhythmStats
{
    uint64_t requestsAccepted = 0;
    uint64_t responsesCompleted = 0;
    uint64_t errorResponses = 0;
    uint64_t cohortsLaunched = 0;
    uint64_t cohortTimeouts = 0;
    uint64_t parserBatches = 0;
    /** Requests served on the host CPU (quick pay fallback). */
    uint64_t hostFallbackRequests = 0;
    /** Static image requests served via image cohorts. */
    uint64_t imageRequests = 0;
    /** Image cohorts launched (bypass the process stage). */
    uint64_t imageCohorts = 0;
    uint64_t imageBytes = 0;
    uint64_t backendRequests = 0;
    uint64_t responseBytes = 0;
    uint64_t paddingBytes = 0;
    /** Request latency (arrival → response sent), milliseconds. */
    Histogram latencyMs;
    /** Cohort-formation wait (arrival → cohort launch), milliseconds. */
    Histogram formationMs;
    /** Pipeline execution (cohort launch → response), milliseconds. */
    Histogram pipelineMs;
    /** Aggregate SIMD efficiency of process-stage kernels. */
    double processIssueSlots = 0;
    double processLaneInstructions = 0;
};

/**
 * The Rhythm server.
 *
 * Drive it either by push (injectRequest + EventQueue::run) or by pull
 * (setSource + start, the paper's idealized pre-generated request
 * stream).
 */
class RhythmServer
{
  public:
    /** Pulls the next raw request; nullopt when the stream is drained. */
    using Source = std::function<std::optional<std::string>()>;
    /** Invoked per completed response (executed lanes carry content). */
    using ResponseCallback = std::function<void(
        uint64_t client_id, const std::string &response,
        des::Time latency)>;

    /**
     * @param queue Event queue (simulated time).
     * @param device The accelerator the cohorts execute on.
     * @param service The application being served (not owned).
     * @param config Pipeline configuration.
     */
    RhythmServer(des::EventQueue &queue, simt::Device &device,
                 Service &service, const RhythmConfig &config);
    ~RhythmServer();

    RhythmServer(const RhythmServer &) = delete;
    RhythmServer &operator=(const RhythmServer &) = delete;

    /** The device session array (pre-populate for isolation runs). */
    SessionArray &sessions() { return *sessions_; }

    /**
     * Registers the static-content store (not owned). Image requests
     * are then grouped into image cohorts that bypass the process stage
     * (Section 5.1); without a store they 404.
     */
    void setStaticContent(const specweb::StaticContent *content);

    /** Registers the per-response callback. */
    void setResponseCallback(ResponseCallback cb);

    /** Installs a pull source and begins pumping requests. */
    void start(Source source);

    /**
     * Pushes one request into the reader.
     * @return false when the reader is full (caller should retry after
     *         running the event loop — a structural stall).
     */
    bool injectRequest(std::string raw, uint64_t client_id);

    /** Launches any partially formed batches/cohorts immediately. */
    void flush();

    /** True when no request is anywhere in the pipeline. */
    bool drained() const;

    /** Statistics so far. */
    const RhythmStats &stats() const { return stats_; }

    /** The configuration. */
    const RhythmConfig &config() const { return config_; }

    /**
     * Device memory footprint of the preallocated pools (Section 6.3):
     * session array + per-context request/response/backend buffers.
     */
    uint64_t memoryFootprintBytes() const;

  private:
    struct RawEntry
    {
        std::string raw;
        uint64_t clientId;
        des::Time arrival;
    };

    struct ReaderBatch
    {
        std::vector<RawEntry> entries;
        des::Time firstArrival = 0;
    };

    void pump();
    void maybeLaunchBatch(bool force);
    void parseBatch(std::unique_ptr<ReaderBatch> batch);
    void dispatchParsed(std::vector<CohortEntry> parsed);
    void drainDispatch();
    bool serveOnHost(CohortEntry &entry);
    void launchImageCohort();
    void launchCohort(CohortContext &ctx);
    void scheduleTimeoutScan();
    void completeRequest(uint64_t client_id, const std::string &response,
                         des::Time latency, bool failed);

    // Pipeline execution (host-side eager run producing stage profiles).
    struct CohortRun;
    void executeCohort(CohortContext &ctx, CohortRun &run);
    void enqueueCohortPipeline(CohortContext &ctx,
                               std::shared_ptr<CohortRun> run);
    void cohortCompleted(CohortContext &ctx,
                         const std::shared_ptr<CohortRun> &run);

    des::EventQueue &queue_;
    simt::Device &device_;
    Service &service_;
    RhythmConfig config_;

    std::unique_ptr<SessionArray> sessions_;
    CohortPool pool_;

    Source source_;
    ResponseCallback responseCb_;

    std::unique_ptr<ReaderBatch> forming_;
    bool parserBusy_ = false;
    uint64_t inflightRequests_ = 0;
    uint64_t nextClientId_ = 1;
    std::deque<CohortEntry> pendingDispatch_;
    bool drainActive_ = false;
    std::vector<CohortEntry> pendingImages_;
    const specweb::StaticContent *staticContent_ = nullptr;

    std::vector<int> cohortStreams_; //!< Stream per cohort context.
    int parserStream_ = -1;

    bool timeoutScanScheduled_ = false;

    RhythmStats stats_;
};

} // namespace rhythm::core

#endif // RHYTHM_RHYTHM_SERVER_HH
