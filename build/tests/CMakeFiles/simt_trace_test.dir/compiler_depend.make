# Empty compiler generated dependencies file for simt_trace_test.
# This may be replaced when dependencies are built.
