file(REMOVE_RECURSE
  "CMakeFiles/fidelity_test.dir/fidelity_test.cc.o"
  "CMakeFiles/fidelity_test.dir/fidelity_test.cc.o.d"
  "fidelity_test"
  "fidelity_test.pdb"
  "fidelity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidelity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
