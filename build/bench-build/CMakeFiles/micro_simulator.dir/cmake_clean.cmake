file(REMOVE_RECURSE
  "../bench/micro_simulator"
  "../bench/micro_simulator.pdb"
  "CMakeFiles/micro_simulator.dir/micro_simulator.cc.o"
  "CMakeFiles/micro_simulator.dir/micro_simulator.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
