/**
 * @file
 * Tests for the Search workload: corpus, inverted index, backend
 * protocol, page handlers through the Rhythm pipeline, and the
 * same-type similarity property that makes Search cohort-friendly.
 */

#include <gtest/gtest.h>

#include "http/parser.hh"
#include "rhythm/server.hh"
#include "search/service.hh"
#include "simt/warp.hh"

namespace rhythm::search {
namespace {

simt::NullTracer gNull;

class SearchFixture : public ::testing::Test
{
  protected:
    SearchFixture() : corpus_(500, 2048, 3), index_(corpus_) {}

    Corpus corpus_;
    InvertedIndex index_;
};

TEST_F(SearchFixture, CorpusIsDeterministic)
{
    Corpus other(500, 2048, 3);
    EXPECT_EQ(other.document(42)->title, corpus_.document(42)->title);
    EXPECT_EQ(other.document(199)->words, corpus_.document(199)->words);
}

TEST_F(SearchFixture, CorpusShape)
{
    EXPECT_EQ(corpus_.numDocs(), 500u);
    EXPECT_EQ(corpus_.vocabularySize(), 2048u);
    EXPECT_EQ(corpus_.document(0), nullptr);
    EXPECT_EQ(corpus_.document(501), nullptr);
    for (uint32_t d = 1; d <= 500; ++d) {
        const Document *doc = corpus_.document(d);
        ASSERT_NE(doc, nullptr);
        EXPECT_GE(doc->words.size(), 80u);
        EXPECT_LE(doc->words.size(), 400u);
        EXPECT_FALSE(doc->title.empty());
    }
}

TEST_F(SearchFixture, ZipfSkewIsPresent)
{
    // Word 0's posting list must dwarf a tail word's list.
    const size_t head = index_.postings(0).size();
    size_t tail_sum = 0;
    for (uint32_t w = 2000; w < 2048; ++w)
        tail_sum += index_.postings(w).size();
    EXPECT_GT(head, tail_sum / 48 * 5 + 1);
}

TEST_F(SearchFixture, WordIdRoundTrip)
{
    for (uint32_t w = 0; w < 64; ++w) {
        uint32_t id;
        ASSERT_TRUE(index_.wordId(corpus_.word(w), id));
        EXPECT_EQ(id, w);
    }
    uint32_t id;
    EXPECT_FALSE(index_.wordId("notaword!!", id));
}

TEST_F(SearchFixture, QueryFindsContainingDocs)
{
    // Pick a mid-frequency word; every hit must actually contain it.
    const uint32_t term = 100;
    auto hits = index_.query({term}, 10, gNull);
    ASSERT_FALSE(hits.empty());
    for (const Hit &hit : hits) {
        const Document *doc = corpus_.document(hit.docId);
        bool contains = false;
        for (uint32_t w : doc->words)
            contains |= w == term;
        EXPECT_TRUE(contains) << "doc " << hit.docId;
        EXPECT_GT(hit.score, 0.0);
    }
    // Scores descending.
    for (size_t i = 1; i < hits.size(); ++i)
        EXPECT_GE(hits[i - 1].score, hits[i].score);
}

TEST_F(SearchFixture, MultiTermScoresAtLeastSingleTerm)
{
    auto one = index_.query({150}, 5, gNull);
    auto two = index_.query({150, 151}, 5, gNull);
    ASSERT_FALSE(one.empty());
    ASSERT_FALSE(two.empty());
    EXPECT_GE(two[0].score, one[0].score - 1e-12);
}

TEST_F(SearchFixture, EmptyAndUnknownQueries)
{
    EXPECT_TRUE(index_.query({}, 10, gNull).empty());
    EXPECT_TRUE(index_.query({999999}, 10, gNull).empty());
}

TEST_F(SearchFixture, SuggestReturnsMatchingPrefixes)
{
    const std::string &word = corpus_.word(7);
    const std::string prefix = word.substr(0, 2);
    auto suggestions = index_.suggest(prefix, 8, gNull);
    ASSERT_FALSE(suggestions.empty());
    EXPECT_LE(suggestions.size(), 8u);
    for (uint32_t w : suggestions)
        EXPECT_EQ(corpus_.word(w).substr(0, 2), prefix);
    EXPECT_TRUE(index_.suggest("zzzzzzz", 8, gNull).empty());
}

TEST_F(SearchFixture, BackendProtocol)
{
    SearchService svc(index_);
    // QUERY
    const std::string q = "QUERY|" + corpus_.word(50) + "|5";
    const std::string qr = svc.executeBackend(q, gNull);
    EXPECT_EQ(qr.substr(0, 3), "OK|");
    // DOC
    const std::string dr = svc.executeBackend("DOC|3", gNull);
    EXPECT_EQ(dr.substr(0, 3), "OK|");
    EXPECT_NE(dr.find(corpus_.document(3)->title), std::string::npos);
    EXPECT_LE(dr.size(), 4096u); // fits the response slot
    // SUGGEST
    const std::string sr = svc.executeBackend(
        "SUGGEST|" + corpus_.word(9).substr(0, 2) + "|4", gNull);
    EXPECT_EQ(sr.substr(0, 3), "OK|");
    // Errors
    EXPECT_EQ(svc.executeBackend("DOC|99999", gNull).substr(0, 4),
              "ERR|");
    EXPECT_EQ(svc.executeBackend("NOPE|1", gNull).substr(0, 4), "ERR|");
    EXPECT_EQ(svc.executeBackend("", gNull).substr(0, 4), "ERR|");
}

TEST_F(SearchFixture, GeneratorMixAndDeterminism)
{
    QueryGenerator a(corpus_, 5), b(corpus_, 5);
    int counts[kNumPageTypes] = {0, 0, 0, 0};
    for (int i = 0; i < 2000; ++i) {
        GeneratedQuery qa = a.next();
        GeneratedQuery qb = b.next();
        EXPECT_EQ(qa.raw, qb.raw);
        ++counts[static_cast<uint32_t>(qa.type)];
    }
    // Results dominate the mix.
    EXPECT_GT(counts[1], counts[0]);
    EXPECT_GT(counts[1], counts[2]);
    EXPECT_GT(counts[1], counts[3]);
}

struct SearchRig
{
    SearchRig()
        : corpus(400, 2048, 9), index(corpus),
          device(queue, simt::DeviceConfig{}), service(index),
          server(queue, device, service, config())
    {
        server.setResponseCallback([this](uint64_t client,
                                          std::string_view response,
                                          des::Time) {
            responses.emplace_back(client, response);
        });
    }

    static core::RhythmConfig
    config()
    {
        core::RhythmConfig cfg;
        cfg.cohortSize = 16;
        cfg.cohortContexts = 4;
        cfg.cohortTimeout = des::kMillisecond;
        cfg.backendOnDevice = true;
        cfg.networkOverPcie = false;
        return cfg;
    }

    des::EventQueue queue;
    Corpus corpus;
    InvertedIndex index;
    simt::Device device;
    SearchService service;
    core::RhythmServer server;
    std::vector<std::pair<uint64_t, std::string>> responses;
};

TEST(SearchOnRhythm, AllPageTypesServeValidResponses)
{
    SearchRig rig;
    QueryGenerator gen(rig.corpus, 17);
    std::vector<PageType> types;
    uint64_t id = 0;
    for (uint32_t t = 0; t < kNumPageTypes; ++t) {
        for (int i = 0; i < 16; ++i) {
            GeneratedQuery q = gen.generate(static_cast<PageType>(t));
            while (!rig.server.injectRequest(q.raw, id))
                rig.queue.run(); // reader stall: drain and retry
            ++id;
            types.push_back(q.type);
        }
    }
    rig.queue.run();
    ASSERT_EQ(rig.responses.size(), types.size());
    for (const auto &[client, response] : rig.responses) {
        std::string reason;
        EXPECT_TRUE(validateSearchResponse(types[client], response,
                                           &reason))
            << "client " << client << ": " << reason;
    }
    EXPECT_EQ(rig.server.stats().cohortsLaunched, 4u);
    EXPECT_EQ(rig.server.stats().errorResponses, 0u);
}

TEST(SearchOnRhythm, ResponseSizesFitBuffers)
{
    SearchRig rig;
    QueryGenerator gen(rig.corpus, 23);
    std::vector<PageType> types;
    uint64_t id = 0;
    for (int i = 0; i < 64; ++i) {
        GeneratedQuery q = gen.next();
        types.push_back(q.type);
        while (!rig.server.injectRequest(q.raw, id))
            rig.queue.run(); // reader stall: drain and retry
        ++id;
    }
    rig.server.flush();
    rig.queue.run();
    ASSERT_EQ(rig.responses.size(), 64u);
    for (const auto &[client, response] : rig.responses) {
        EXPECT_LE(response.size(),
                  pageInfo(types[client]).bufferBytes)
            << pageInfo(types[client]).name;
        EXPECT_GT(response.size(),
                  pageInfo(types[client]).bufferBytes / 8);
    }
}

TEST(SearchOnRhythm, SameTypeQueriesShareControlFlow)
{
    // The property that makes Search cohort-friendly: two different
    // queries of the same page type merge near-linearly.
    Corpus corpus(300, 2048, 4);
    InvertedIndex index(corpus);
    SearchService service(index);
    QueryGenerator gen(corpus, 8);

    auto traceOf = [&](const GeneratedQuery &q) {
        simt::ThreadTrace trace;
        simt::RecordingTracer rec(trace);
        http::Request req;
        EXPECT_TRUE(http::parseRequest(q.raw, 0, rec, req));
        uint32_t type_id = 0;
        EXPECT_TRUE(service.resolveType(req, type_id));
        specweb::MapSessionProvider sessions;
        specweb::StringResponseWriter writer(rec);
        specweb::HandlerContext ctx;
        ctx.request = &req;
        ctx.rec = &rec;
        ctx.out = &writer;
        ctx.sessions = &sessions;
        const int stages = service.numStages(type_id);
        for (int s = 0; s < stages && !ctx.failed; ++s) {
            service.runStage(type_id, s, ctx);
            if (!ctx.failed && s < stages - 1) {
                ctx.backendResponse =
                    service.executeBackend(ctx.backendRequest, rec);
            }
        }
        return trace;
    };

    simt::ThreadTrace a = traceOf(gen.generate(PageType::Results));
    simt::ThreadTrace b = traceOf(gen.generate(PageType::Results));
    const std::vector<const simt::ThreadTrace *> lanes = {&a, &b};
    simt::WarpStats ws = simt::simulateWarp(
        std::span<const simt::ThreadTrace *const>(lanes.data(), 2));
    const double efficiency =
        static_cast<double>(ws.laneInstructions) /
        (2.0 * static_cast<double>(ws.issueSlots));
    EXPECT_GT(efficiency, 0.80);
}

TEST(SearchOnRhythm, UnknownPathIs404)
{
    SearchRig rig;
    rig.server.injectRequest(
        "GET /bank/login.php HTTP/1.1\r\nHost: h\r\n\r\n", 1);
    rig.server.flush();
    rig.queue.run();
    ASSERT_EQ(rig.responses.size(), 1u);
    EXPECT_NE(rig.responses[0].second.find("404"), std::string::npos);
}

} // namespace
} // namespace rhythm::search
