/**
 * @file
 * Minimal streaming JSON writer.
 *
 * Shared by the observability exporters (metrics registry dump, Chrome
 * trace output) and the benchmark JSON reporter, so every machine-read
 * artifact this repo produces goes through one escaping/formatting
 * implementation.
 */

#ifndef RHYTHM_OBS_JSON_HH
#define RHYTHM_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace rhythm::obs {

/** Escapes a string for inclusion in a JSON string literal. */
std::string jsonEscape(std::string_view s);

/**
 * Appends the escaped form of @p s to @p out without allocating a
 * temporary. Exporters on hot emission paths (trace events, metric
 * dumps) reuse one scratch string across calls.
 */
void jsonEscapeTo(std::string_view s, std::string &out);

/**
 * Formats a double as a JSON number. Uses up to 12 significant digits
 * (ample for gate comparisons while keeping files readable); non-finite
 * values, which JSON cannot represent, become null.
 */
std::string jsonNumber(double v);

/**
 * A streaming JSON writer with automatic comma/indent management.
 *
 * Usage:
 *     JsonWriter w(out);
 *     w.beginObject();
 *     w.key("bench"); w.value("fig9");
 *     w.key("metrics"); w.beginObject(); ... w.endObject();
 *     w.endObject();
 *
 * The writer asserts nothing; malformed call sequences produce
 * malformed JSON, and the unit tests validate well-formedness of every
 * exporter built on top of it.
 */
class JsonWriter
{
  public:
    /**
     * @param out Destination stream.
     * @param indent Spaces per nesting level (0 = compact single line).
     */
    explicit JsonWriter(std::ostream &out, int indent = 2);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Writes an object key (must be inside an object). */
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v);
    void value(double v);
    void value(uint64_t v);
    void value(int64_t v);
    void value(int v);
    void value(bool v);
    /** Writes a null value. */
    void null();
    /** Writes pre-rendered JSON verbatim (caller guarantees validity). */
    void raw(std::string_view json);

  private:
    void separate();
    void newline();

    struct Level
    {
        bool isObject = false;
        bool empty = true;
        bool expectValue = false; //!< A key was just written.
    };

    std::ostream &out_;
    int indent_;
    std::vector<Level> stack_;
    std::string scratch_; //!< Reused escape/indent buffer (hot paths).
};

} // namespace rhythm::obs

#endif // RHYTHM_OBS_JSON_HH
